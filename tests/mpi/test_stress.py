"""Concurrency stress tests for the MPI substrate."""

import random

import pytest

from repro.mpi import ANY_SOURCE, SUM, run_world
from repro.mpi.request import waitall


class TestMessageStorm:
    def test_all_pairs_random_order(self):
        """Every rank sends many tagged messages to every other rank in a
        shuffled order; all must arrive exactly once, per-pair FIFO."""
        world, per_pair = 5, 30

        def main(comm):
            rng = random.Random(comm.rank)
            sends = [
                (dst, seq)
                for dst in range(comm.size)
                if dst != comm.rank
                for seq in range(per_pair)
            ]
            rng.shuffle(sends)
            # sequence numbers per destination must stay ordered for the
            # FIFO check, so re-sort per destination but interleave dests
            per_dest: dict[int, int] = {d: 0 for d in range(comm.size)}
            for dst, _ in sends:
                seq = per_dest[dst]
                per_dest[dst] += 1
                comm.send((comm.rank, seq), dest=dst, tag=7)
            got: dict[int, list[int]] = {}
            expected = (comm.size - 1) * per_pair
            for _ in range(expected):
                src, seq = comm.recv(source=ANY_SOURCE, tag=7)
                got.setdefault(src, []).append(seq)
            return got

        results = run_world(world, main, timeout=120)
        for rank, got in enumerate(results):
            assert set(got) == set(range(world)) - {rank}
            for src, seqs in got.items():
                assert seqs == list(range(per_pair))  # per-pair FIFO

    def test_nonblocking_storm(self):
        def main(comm):
            reqs = [
                comm.isend(f"{comm.rank}:{i}", dest=(comm.rank + 1) % comm.size,
                           tag=i % 8)
                for i in range(100)
            ]
            waitall(reqs)
            left = (comm.rank - 1) % comm.size
            recvs = [comm.irecv(source=left, tag=i % 8) for i in range(100)]
            payloads = waitall(recvs)
            # within each tag class, arrival order matches send order
            by_tag: dict[int, list[int]] = {}
            for payload in payloads:
                _, idx = payload.split(":")
                by_tag.setdefault(int(idx) % 8, []).append(int(idx))
            return all(seq == sorted(seq) for seq in by_tag.values())

        assert all(run_world(4, main, timeout=120))

    def test_interleaved_collectives_and_p2p(self):
        def main(comm):
            total = 0
            for i in range(15):
                comm.send(i, dest=(comm.rank + 1) % comm.size, tag=99)
                total += comm.allreduce(i, SUM)
                got = comm.recv(source=(comm.rank - 1) % comm.size, tag=99)
                assert got == i
            return total

        results = run_world(6, main, timeout=120)
        assert len(set(results)) == 1

    @pytest.mark.parametrize("size", [2, 7])
    def test_repeated_split_storm(self, size):
        """Six rounds of split+allreduce; each rank always lands in the
        group of its own parity, so its total is 6x that group's size."""

        def main(comm):
            acc = 0
            for round_no in range(6):
                color = (comm.rank + round_no) % 2
                sub = comm.split(color, key=comm.rank)
                acc += sub.allreduce(1, SUM)
            return acc

        results = run_world(size, main, timeout=120)
        evens = len(range(0, size, 2))
        odds = size - evens
        for rank, acc in enumerate(results):
            assert acc == 6 * (evens if rank % 2 == 0 else odds)
