"""Communicator split/dup, intercommunicators and dynamic spawn."""

import pytest

from repro.mpi import SUM, run_world
from repro.mpi.runtime import MPIRuntime


class TestSplit:
    def test_split_even_odd(self):
        def main(comm):
            color = comm.rank % 2
            sub = comm.split(color, key=comm.rank)
            return (color, sub.rank, sub.size, sub.allreduce(comm.rank, SUM))

        results = run_world(6, main)
        for world_rank, (color, sub_rank, sub_size, total) in enumerate(results):
            assert sub_size == 3
            assert sub_rank == world_rank // 2
            expected = sum(r for r in range(6) if r % 2 == color)
            assert total == expected

    def test_split_with_undefined_color(self):
        def main(comm):
            sub = comm.split(0 if comm.rank < 2 else None)
            if sub is None:
                return "excluded"
            return sub.size

        assert run_world(4, main) == [2, 2, "excluded", "excluded"]

    def test_split_key_reorders_ranks(self):
        def main(comm):
            # reverse ordering: highest world rank becomes rank 0
            sub = comm.split(0, key=-comm.rank)
            return sub.rank

        assert run_world(4, main) == [3, 2, 1, 0]

    def test_split_isolates_traffic(self):
        """Same-tag messages in sibling comms must not cross."""

        def main(comm):
            sub = comm.split(comm.rank % 2, key=comm.rank)
            peer = 1 - sub.rank
            sub.send(f"color{comm.rank % 2}", dest=peer, tag=0)
            return sub.recv(source=peer, tag=0)

        results = run_world(4, main)
        assert results == ["color0", "color1", "color0", "color1"]

    def test_nested_split(self):
        def main(comm):
            half = comm.split(comm.rank // 2)
            quarter = half.split(half.rank)
            return quarter.size

        assert run_world(4, main) == [1, 1, 1, 1]


class TestDup:
    def test_dup_preserves_shape(self):
        def main(comm):
            dup = comm.dup()
            return (dup.rank, dup.size)

        assert run_world(3, main) == [(0, 3), (1, 3), (2, 3)]

    def test_dup_isolates_pending_messages(self):
        def main(comm):
            dup = comm.dup()
            if comm.rank == 0:
                comm.send("orig", dest=1, tag=1)
                dup.send("dup", dest=1, tag=1)
                return None
            # receive from the dup first: must get the dup message even
            # though the original-comm message arrived first
            from_dup = dup.recv(source=0, tag=1)
            from_orig = comm.recv(source=0, tag=1)
            return (from_dup, from_orig)

        assert run_world(2, main)[1] == ("dup", "orig")


class TestSpawn:
    def test_spawn_and_echo(self):
        def child(comm, factor):
            parent = comm.Get_parent()
            assert parent is not None
            value = parent.recv(source=0, tag=1)
            parent.send(value * factor, dest=0, tag=2)
            return None

        def main(comm):
            inter = comm.spawn(child, nprocs=3, args=(10,))
            assert inter.remote_size == 3
            for dst in range(3):
                inter.send(dst + 1, dest=dst, tag=1)
            return sorted(inter.recv(source=src, tag=2) for src in range(3))

        assert run_world(1, main) == [[10, 20, 30]]

    def test_children_have_own_world(self):
        def child(comm):
            # children form their own world communicator
            return_value = comm.allreduce(comm.rank, SUM)
            comm.Get_parent().send((comm.size, return_value), dest=0, tag=0)

        def main(comm):
            inter = comm.spawn(child, nprocs=4)
            reports = [inter.recv(source=s, tag=0) for s in range(4)]
            return reports

        reports = run_world(1, main)[0]
        assert reports == [(4, 6)] * 4

    def test_spawn_from_multirank_parent(self):
        def child(comm):
            parent = comm.Get_parent()
            src = parent.recv(source=0, tag=0)
            parent.send(f"ack{comm.rank}<-{src}", dest=0, tag=1)

        def main(comm):
            inter = comm.spawn(child, nprocs=2)
            # every parent rank sees the same remote group
            if comm.rank == 0:
                for dst in range(2):
                    inter.send("hello", dest=dst, tag=0)
                return sorted(inter.recv(source=s, tag=1) for s in range(2))
            return inter.remote_size

        results = run_world(2, main)
        assert results[0] == ["ack0<-hello", "ack1<-hello"]
        assert results[1] == 2

    def test_intercomm_merge(self):
        def child(comm):
            merged = comm.Get_parent().merge()
            return_value = merged.allreduce(merged.rank, SUM)
            comm.Get_parent().send(return_value, dest=0, tag=9)

        def main(comm):
            inter = comm.spawn(child, nprocs=2)
            merged = inter.merge()
            total = merged.allreduce(merged.rank, SUM)
            child_totals = [inter.recv(source=s, tag=9) for s in range(2)]
            return (merged.rank, total, child_totals)

        rank, total, child_totals = run_world(1, main)[0]
        assert rank == 0  # parent side comes first in the merge
        assert total == 0 + 1 + 2
        assert child_totals == [3, 3]


class TestRuntime:
    def test_results_in_rank_order(self):
        assert run_world(5, lambda comm: comm.rank**2) == [0, 1, 4, 9, 16]

    def test_reuse_of_runtime_forbidden_by_fresh_worlds(self):
        runtime = MPIRuntime()
        first = runtime.run(lambda comm: comm.size, 2)
        assert first == [2, 2]

    def test_context_allocation_unique(self):
        runtime = MPIRuntime()
        contexts = {runtime.allocate_context() for _ in range(100)}
        assert len(contexts) == 100

    def test_unknown_endpoint_raises(self):
        from repro.common.errors import MPIError

        with pytest.raises(MPIError):
            MPIRuntime().endpoint(99)

    def test_run_world_passes_args(self):
        def main(comm, a, b):
            return a + b + comm.rank

        assert run_world(2, main, 10, 20) == [30, 31]
