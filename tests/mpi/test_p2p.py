"""Point-to-point semantics of the from-scratch MPI substrate."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Status, run_world
from repro.mpi.datatypes import TAG_UB


class TestBasicSendRecv:
    def test_two_rank_roundtrip(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = run_world(2, main)
        assert results[1] == {"a": 7, "b": 3.14}

    def test_ring(self):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest=right, tag=5)
            return comm.recv(source=left, tag=5)

        assert run_world(5, main) == [4, 0, 1, 2, 3]

    def test_status_reports_source_and_tag(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(b"xyz", dest=1, tag=9)
                return None
            status = Status()
            comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
            return (status.Get_source(), status.Get_tag(), status.Get_count() > 0)

        assert run_world(2, main)[1] == (0, 9, True)

    def test_sendrecv(self):
        def main(comm):
            partner = 1 - comm.rank
            return comm.sendrecv(
                f"from{comm.rank}", dest=partner, sendtag=1, source=partner, recvtag=1
            )

        assert run_world(2, main) == ["from1", "from0"]

    def test_negative_tag_rejected(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(1, dest=1, tag=-5)
            else:
                comm.recv(source=0)

        from repro.common.errors import MPIError

        with pytest.raises(MPIError):
            run_world(2, main)

    def test_large_tag_ok(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("big", dest=1, tag=TAG_UB - 1)
                return None
            return comm.recv(source=0, tag=TAG_UB - 1)

        assert run_world(2, main)[1] == "big"


class TestMatching:
    def test_tag_selectivity(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("t1", dest=1, tag=1)
                comm.send("t2", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert run_world(2, main)[1] == ("t1", "t2")

    def test_non_overtaking_same_tag(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send(i, dest=1, tag=7)
                return None
            return [comm.recv(source=0, tag=7) for _ in range(50)]

        assert run_world(2, main)[1] == list(range(50))

    def test_any_source_collects_all(self):
        def main(comm):
            if comm.rank == 0:
                got = sorted(comm.recv(source=ANY_SOURCE, tag=3) for _ in range(3))
                return got
            comm.send(comm.rank * 10, dest=0, tag=3)
            return None

        assert run_world(4, main)[0] == [10, 20, 30]

    def test_source_selectivity_with_interleaving(self):
        def main(comm):
            if comm.rank == 0:
                # rank 2's message arrives but rank 0 asks for rank 1 first
                a = comm.recv(source=1, tag=0)
                b = comm.recv(source=2, tag=0)
                return (a, b)
            comm.send(f"r{comm.rank}", dest=0, tag=0)
            return None

        assert run_world(3, main)[0] == ("r1", "r2")


class TestNonBlocking:
    def test_isend_irecv(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2, 3], dest=1, tag=4)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=4)
            return req.wait()

        assert run_world(2, main)[1] == [1, 2, 3]

    def test_irecv_test_polls(self):
        def main(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=99)  # handshake: wait until 1 is ready
                comm.send("payload", dest=1, tag=5)
                return None
            req = comm.irecv(source=0, tag=5)
            done, _ = req.test()
            assert not done  # nothing sent yet
            comm.send(None, dest=0, tag=99)
            return req.wait()

        assert run_world(2, main)[1] == "payload"

    def test_issend_completes_on_consumption(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.issend("sync", dest=1, tag=1)
                done_before, _ = req.test()
                comm.send(done_before, dest=1, tag=2)
                req.wait()
                return None
            done_before = comm.recv(source=0, tag=2)
            assert done_before is False  # not consumed yet
            return comm.recv(source=0, tag=1)

        assert run_world(2, main)[1] == "sync"

    def test_waitall(self):
        from repro.mpi.request import waitall

        def main(comm):
            if comm.rank == 0:
                reqs = [comm.isend(i, dest=1, tag=i) for i in range(5)]
                waitall(reqs)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(5)]
            return waitall(reqs)

        assert run_world(2, main)[1] == [0, 1, 2, 3, 4]

    def test_probe_then_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("probed", dest=1, tag=8)
                return None
            status = comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            return comm.recv(source=status.source, tag=status.tag)

        assert run_world(2, main)[1] == "probed"

    def test_iprobe_nonblocking(self):
        def main(comm):
            if comm.rank == 1:
                assert comm.iprobe(source=0, tag=42) is None
                comm.send(None, dest=0, tag=1)  # ready
                return comm.recv(source=0, tag=42)
            comm.recv(source=1, tag=1)
            comm.send("later", dest=1, tag=42)
            return None

        assert run_world(2, main)[1] == "later"


class TestFailurePropagation:
    def test_exception_aborts_world(self):
        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            comm.recv(source=0)  # would block forever without abort

        with pytest.raises(RuntimeError, match="boom"):
            run_world(3, main, timeout=30)

    def test_timeout_on_missing_message(self):
        def main(comm):
            if comm.rank == 1:
                with pytest.raises(TimeoutError):
                    comm.recv(source=0, tag=1, timeout=0.2)
            return "done"

        assert run_world(2, main) == ["done", "done"]
