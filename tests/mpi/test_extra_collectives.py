"""Tests for exscan and reduce_scatter."""

import pytest

from repro.common.errors import MPIError
from repro.mpi import MAX, SUM, run_world
from repro.mpi.datatypes import Op


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
class TestExscan:
    def test_exclusive_prefix_sum(self, size):
        def main(comm):
            return comm.exscan(comm.rank + 1, SUM)

        results = run_world(size, main)
        assert results[0] is None
        for rank in range(1, size):
            assert results[rank] == sum(range(1, rank + 1))

    def test_exscan_max(self, size):
        def main(comm):
            return comm.exscan((comm.rank * 7) % 5, MAX)

        results = run_world(size, main)
        values = [(r * 7) % 5 for r in range(size)]
        for rank in range(1, size):
            assert results[rank] == max(values[:rank])

    def test_exscan_then_scan_consistent(self, size):
        def main(comm):
            ex = comm.exscan(comm.rank + 1, SUM)
            inc = comm.scan(comm.rank + 1, SUM)
            return (ex or 0) + comm.rank + 1 == inc

        assert all(run_world(size, main))


@pytest.mark.parametrize("size", [1, 2, 4, 6])
class TestReduceScatter:
    def test_elementwise_sum(self, size):
        def main(comm):
            vector = [comm.rank * 100 + i for i in range(comm.size)]
            return comm.reduce_scatter(vector, SUM)

        results = run_world(size, main)
        for i in range(size):
            assert results[i] == sum(r * 100 + i for r in range(size))

    def test_non_commutative_rank_order(self, size):
        concat = Op(lambda a, b: a + b, "CONCAT", commutative=False)

        def main(comm):
            vector = [f"[{comm.rank}->{i}]" for i in range(comm.size)]
            return comm.reduce_scatter(vector, concat)

        results = run_world(size, main)
        for i in range(size):
            assert results[i] == "".join(f"[{r}->{i}]" for r in range(size))


def test_reduce_scatter_wrong_length():
    def main(comm):
        comm.reduce_scatter([1], SUM)  # size is 2

    with pytest.raises(MPIError):
        run_world(2, main, timeout=30)
