"""MPI matching semantics the indexed-mailbox transport must preserve.

The transport keeps one FIFO sub-queue per (context, source, tag) and a
wildcard path that picks the earliest arrival across sub-queues; these
tests pin down the observable contract: non-overtaking per (source,
tag), exact/wildcard interleaving, probe consistency, and abort wakeups.
"""

import time

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, run_world


def _await_arrivals(comm, source, tag):
    """Handshake: block until the message sent *last* by ``source`` has
    arrived; eager deposits from one sender are ordered, so everything
    sent before it is then in the mailbox too."""
    while comm.iprobe(source=source, tag=tag) is None:
        time.sleep(0.001)


class TestNonOvertaking:
    def test_per_source_tag_order_with_many_tags(self):
        """Messages interleaved across tags stay FIFO within each tag."""

        def main(comm):
            if comm.rank == 0:
                for i in range(30):
                    comm.send(("t1", i), dest=1, tag=1)
                    comm.send(("t2", i), dest=1, tag=2)
                return None
            t2 = [comm.recv(source=0, tag=2)[1] for _ in range(30)]
            t1 = [comm.recv(source=0, tag=1)[1] for _ in range(30)]
            return (t1, t2)

        assert run_world(2, main)[1] == (list(range(30)), list(range(30)))

    def test_wildcard_and_exact_interleaved(self):
        """A mix of exact and wildcard receives still sees each
        (source, tag) stream in send order, and wildcards match the
        earliest pending message."""

        def main(comm):
            if comm.rank == 0:
                for i in range(6):
                    comm.send(i, dest=1, tag=7)
                comm.send("x", dest=1, tag=9)
                return None
            _await_arrivals(comm, source=0, tag=9)
            out = [
                comm.recv(source=0, tag=7),            # exact       -> 0
                comm.recv(source=ANY_SOURCE, tag=ANY_TAG),  # earliest -> 1
                comm.recv(source=0, tag=7),            # exact       -> 2
                comm.recv(source=ANY_SOURCE, tag=7),   # tag-only    -> 3
                comm.recv(source=0, tag=ANY_TAG),      # source-only -> 4
                comm.recv(source=0, tag=7),            # exact       -> 5
                comm.recv(source=0, tag=9),            # exact       -> "x"
            ]
            return out

        assert run_world(2, main)[1] == [0, 1, 2, 3, 4, 5, "x"]

    def test_wildcard_sees_global_arrival_order_per_sender(self):
        """With every message already deposited, pure-wildcard receives
        drain one sender's stream in its send order."""

        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=10 + i)  # five distinct tags
                comm.send(None, dest=1, tag=99)
                return None
            _await_arrivals(comm, source=0, tag=99)
            got = [comm.recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(5)]
            comm.recv(source=0, tag=99)
            return got

        assert run_world(2, main)[1] == [0, 1, 2, 3, 4]


class TestProbeConsistency:
    def test_probe_then_receive_gets_probed_message(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(b"payload-a", dest=1, tag=4)
                return None
            status = comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            # probing twice must be idempotent (nothing consumed)
            again = comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            assert (status.source, status.tag) == (again.source, again.tag)
            msg = comm.recv(source=status.source, tag=status.tag)
            return (status.source, status.tag, status.count > 0, msg)

        assert run_world(2, main)[1] == (0, 4, True, b"payload-a")

    def test_probe_reports_earliest_of_a_stream(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                comm.send(None, dest=1, tag=99)
                return None
            _await_arrivals(comm, source=0, tag=99)
            status = comm.probe(source=0, tag=ANY_TAG)
            first = comm.recv(source=0, tag=status.tag)
            return (status.tag, first)

        assert run_world(2, main)[1] == (1, "first")

    def test_iprobe_exact_does_not_see_other_tags(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=5)
                comm.send(None, dest=1, tag=99)
                return None
            _await_arrivals(comm, source=0, tag=99)
            assert comm.iprobe(source=0, tag=6) is None
            assert comm.iprobe(source=0, tag=5) is not None
            comm.recv(source=0, tag=5)
            comm.recv(source=0, tag=99)
            return "ok"

        assert run_world(2, main)[1] == "ok"


class TestAbortWakesReceivers:
    def test_abort_wakes_exact_match_receiver(self):
        """A receiver parked on a per-key condition must observe abort."""

        def main(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=123)  # nothing ever sent
            else:
                time.sleep(0.1)
                raise RuntimeError("peer died")

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="peer died"):
            run_world(2, main, timeout=60)
        # woken by the abort notification, not the 60 s runtime timeout
        assert time.monotonic() - start < 30

    def test_abort_wakes_wildcard_receiver(self):
        def main(comm):
            if comm.rank == 0:
                comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            else:
                time.sleep(0.1)
                raise RuntimeError("peer died")

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="peer died"):
            run_world(2, main, timeout=60)
        assert time.monotonic() - start < 30

    def test_abort_wakes_blocked_probe(self):
        def main(comm):
            if comm.rank == 0:
                comm.probe(source=1, tag=7)  # blocking peek, never satisfied
            else:
                time.sleep(0.1)
                raise RuntimeError("peer died")

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="peer died"):
            run_world(2, main, timeout=60)
        assert time.monotonic() - start < 30


class TestIndexedMailboxHousekeeping:
    def test_pending_count_spans_subqueues(self):
        def main(comm):
            if comm.rank == 0:
                for tag in (1, 2, 3):
                    comm.send(tag, dest=1, tag=tag)
                comm.send(None, dest=1, tag=99)
                return None
            _await_arrivals(comm, source=0, tag=99)
            endpoint = comm.runtime.endpoint(comm.group[comm.rank])
            before = endpoint.pending_count()
            for tag in (1, 2, 3):
                comm.recv(source=0, tag=tag)
            comm.recv(source=0, tag=99)
            return (before, endpoint.pending_count())

        assert run_world(2, main)[1] == (4, 0)
