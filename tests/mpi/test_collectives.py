"""Collective operations across a range of world sizes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MAX, MIN, PROD, SUM, run_world
from repro.mpi.datatypes import MAXLOC_OP, Op

SIZES = [1, 2, 3, 4, 7, 8]


@pytest.mark.parametrize("size", SIZES)
class TestBcast:
    def test_bcast_from_root0(self, size):
        def main(comm):
            obj = {"data": list(range(10))} if comm.rank == 0 else None
            return comm.bcast(obj, root=0)

        results = run_world(size, main)
        assert all(r == {"data": list(range(10))} for r in results)

    def test_bcast_from_last_rank(self, size):
        def main(comm):
            obj = "payload" if comm.rank == comm.size - 1 else None
            return comm.bcast(obj, root=comm.size - 1)

        assert run_world(size, main) == ["payload"] * size


@pytest.mark.parametrize("size", SIZES)
class TestGatherScatter:
    def test_gather(self, size):
        def main(comm):
            return comm.gather((comm.rank + 1) ** 2, root=0)

        results = run_world(size, main)
        assert results[0] == [(i + 1) ** 2 for i in range(size)]
        assert all(r is None for r in results[1:])

    def test_gather_nonzero_root(self, size):
        root = size - 1

        def main(comm):
            return comm.gather(comm.rank, root=root)

        results = run_world(size, main)
        assert results[root] == list(range(size))

    def test_scatter(self, size):
        def main(comm):
            objs = [i * 10 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert run_world(size, main) == [i * 10 for i in range(size)]

    def test_allgather(self, size):
        def main(comm):
            return comm.allgather(comm.rank * 2)

        expected = [i * 2 for i in range(size)]
        assert run_world(size, main) == [expected] * size


@pytest.mark.parametrize("size", SIZES)
class TestReductions:
    def test_allreduce_sum(self, size):
        def main(comm):
            return comm.allreduce(comm.rank, SUM)

        expected = sum(range(size))
        assert run_world(size, main) == [expected] * size

    def test_reduce_max_at_root(self, size):
        def main(comm):
            return comm.reduce(comm.rank * 3, MAX, root=0)

        results = run_world(size, main)
        assert results[0] == (size - 1) * 3

    def test_reduce_min(self, size):
        def main(comm):
            return comm.reduce(100 - comm.rank, MIN, root=0)

        assert run_world(size, main)[0] == 100 - (size - 1)

    def test_allreduce_prod(self, size):
        def main(comm):
            return comm.allreduce(comm.rank + 1, PROD)

        import math

        assert run_world(size, main)[0] == math.factorial(size)

    def test_maxloc(self, size):
        def main(comm):
            return comm.allreduce((comm.rank % 3, comm.rank), MAXLOC_OP)

        value, loc = run_world(size, main)[0]
        expected = max((i % 3, i) for i in range(size))[0]
        assert value == expected

    def test_scan_inclusive(self, size):
        def main(comm):
            return comm.scan(comm.rank + 1, SUM)

        assert run_world(size, main) == [
            sum(range(1, i + 2)) for i in range(size)
        ]

    def test_non_commutative_op_rank_order(self, size):
        concat = Op(lambda a, b: a + b, "CONCAT", commutative=False)

        def main(comm):
            return comm.reduce(f"[{comm.rank}]", concat, root=0)

        assert run_world(size, main)[0] == "".join(f"[{i}]" for i in range(size))


@pytest.mark.parametrize("size", SIZES)
class TestAlltoallBarrier:
    def test_alltoall(self, size):
        def main(comm):
            row = [f"{comm.rank}->{dst}" for dst in range(comm.size)]
            return comm.alltoall(row)

        results = run_world(size, main)
        for dst, row in enumerate(results):
            assert row == [f"{src}->{dst}" for src in range(size)]

    def test_barrier_orders_phases(self, size):
        import threading

        counter = {"n": 0}
        lock = threading.Lock()

        def main(comm):
            with lock:
                counter["n"] += 1
            comm.barrier()
            # after the barrier every rank must observe all increments
            with lock:
                seen = counter["n"]
            return seen

        assert run_world(size, main) == [size] * size

    def test_alltoall_wrong_length_raises(self, size):
        from repro.common.errors import MPIError

        def main(comm):
            comm.alltoall([0] * (comm.size + 1))

        with pytest.raises(MPIError):
            run_world(size, main, timeout=30)


class TestCollectiveSequences:
    def test_many_collectives_in_order(self):
        """Back-to-back collectives must not cross-match."""

        def main(comm):
            total = 0
            for i in range(20):
                total += comm.allreduce(i + comm.rank, SUM)
                comm.barrier()
            return total

        results = run_world(4, main)
        assert len(set(results)) == 1

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=4, max_size=4))
    def test_allreduce_matches_python_sum(self, values):
        def main(comm):
            return comm.allreduce(values[comm.rank], SUM)

        assert run_world(4, main) == [sum(values)] * 4

    def test_scatter_requires_exact_length(self):
        from repro.common.errors import MPIError

        def main(comm):
            comm.scatter([1, 2, 3], root=0)  # size is 2 -> error

        with pytest.raises(MPIError):
            run_world(2, main, timeout=30)
