"""The process-per-rank socket backend: wire framing, ProcessRuntime
end-to-end, worker failure capture, and spawn-over-socket.

Everything the thread backend guarantees (matching semantics, abort
fan-out, structured failure records) must hold when each rank is an OS
process connected to the driver-side router over a local socket.
"""

import os
import pickle
import socket

import pytest

from repro.common.errors import MPIAbort, MPIError
from repro.mpi.datatypes import SUM
from repro.mpi.runtime import ProcessRuntime, ThreadRuntime, create_runtime
from repro.mpi.transport import Envelope, FaultInjector, FaultRule, TruncatedPayload
from repro.net.wire import (
    FLAG_TRUNCATED,
    FrameConnection,
    FrameKind,
    FrameTruncatedError,
    pack_envelope_frame,
    pack_frame,
    pack_obj_frame,
    unpack_envelope_frame,
    unpack_obj,
)


# -- wire framing -----------------------------------------------------------------


class TestWireFrames:
    def test_envelope_header_round_trip(self):
        payload = pickle.dumps({"key": "value", "n": 41})
        frame = pack_envelope_frame(
            context=12, source=3, tag=900_001, origin=7, dest=5,
            nbytes=len(payload), payload=payload,
        )
        conn_kind, body = frame[4], frame[5:]
        assert conn_kind == FrameKind.ENVELOPE
        context, source, tag, origin, dest, epoch, trace, parent, nbytes, flags, raw = (
            unpack_envelope_frame(body)
        )
        assert (context, source, tag, origin, dest) == (12, 3, 900_001, 7, 5)
        assert epoch == 0  # default incarnation
        assert (trace, parent) == (0, 0)  # untraced by default
        assert nbytes == len(payload)
        assert flags == 0
        assert pickle.loads(raw) == {"key": "value", "n": 41}

    def test_truncation_flag_travels_in_the_header(self):
        frame = pack_envelope_frame(
            context=0, source=0, tag=1, origin=0, dest=1,
            nbytes=100, payload=b"x", flags=FLAG_TRUNCATED,
        )
        *_, nbytes, flags, _raw = unpack_envelope_frame(frame[5:])
        assert flags & FLAG_TRUNCATED
        assert nbytes == 100  # original size survives even though payload didn't

    def test_negative_tags_and_wildcards_survive_the_struct(self):
        # ANY_SOURCE/ANY_TAG are negative sentinels; the header must be signed
        frame = pack_envelope_frame(
            context=4, source=-1, tag=-1, origin=2, dest=0,
            nbytes=0, payload=b"",
        )
        context, source, tag, *_ = unpack_envelope_frame(frame[5:])
        assert (context, source, tag) == (4, -1, -1)

    def test_obj_frame_round_trip(self):
        frame = pack_obj_frame(FrameKind.HELLO, (7, 1234))
        assert frame[4] == FrameKind.HELLO
        assert unpack_obj(frame[5:]) == (7, 1234)

    def test_frame_connection_preserves_order_over_a_socketpair(self):
        left, right = socket.socketpair()
        a, b = FrameConnection(left), FrameConnection(right)
        try:
            for i in range(50):
                a.send(pack_obj_frame(FrameKind.RPC_REQ, i))
            a.send(pack_frame(FrameKind.BYE))
            got = []
            while True:
                kind, body = b.recv()
                if kind == FrameKind.BYE:
                    break
                got.append(unpack_obj(body))
            assert got == list(range(50))  # non-overtaking on one connection
        finally:
            a.close()
            b.close()

    def test_eof_reads_as_none_not_an_exception(self):
        left, right = socket.socketpair()
        a, b = FrameConnection(left), FrameConnection(right)
        a.close()
        assert b.recv() is None
        assert not b.truncated  # a clean close is not corruption
        b.close()

    def test_mid_frame_eof_raises_and_latches_truncated(self):
        # a SIGKILL'd peer can die between the length prefix and the body:
        # that must surface as FrameTruncatedError, not a silent None
        left, right = socket.socketpair()
        b = FrameConnection(right)
        frame = pack_obj_frame(FrameKind.RPC_REQ, {"big": "x" * 512})
        left.sendall(frame[: len(frame) // 2])
        left.close()
        with pytest.raises(FrameTruncatedError):
            b.recv()
        assert b.truncated
        b.close()

    def test_eof_inside_the_length_prefix_is_also_truncation(self):
        left, right = socket.socketpair()
        b = FrameConnection(right)
        left.sendall(b"\x00\x00")  # 2 of the 4 length bytes
        left.close()
        with pytest.raises(FrameTruncatedError):
            b.recv()
        assert b.truncated
        b.close()

    def test_connect_local_retries_until_the_listener_appears(self, tmp_path):
        import random
        import threading
        import time

        from repro.net.wire import connect_local

        # a respawned worker may beat the router to the socket: the first
        # connects fail, the jittered retry loop must absorb that
        path = str(tmp_path / "late-sock")
        server_box = []

        def late_listener():
            time.sleep(0.1)
            server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            server.bind(path)
            server.listen(8)
            server_box.append(server)

        threading.Thread(target=late_listener, daemon=True).start()
        conn = connect_local(
            path, timeout=5.0, retries=10, backoff=0.02,
            rng=random.Random(1234),
        )
        conn.close()
        server_box[0].close()

    def test_connect_local_gives_up_after_its_retry_budget(self, tmp_path):
        import random

        from repro.net.wire import connect_local

        nobody = str(tmp_path / "nobody-home")
        with pytest.raises(OSError):
            connect_local(nobody, timeout=1.0, retries=2, backoff=0.01,
                          rng=random.Random(5))


# -- runtime selection ---------------------------------------------------------


class TestCreateRuntime:
    def test_launcher_names(self):
        assert isinstance(create_runtime("threads"), ThreadRuntime)
        assert isinstance(create_runtime("processes"), ProcessRuntime)
        assert isinstance(create_runtime("sockets"), ProcessRuntime)

    def test_unknown_launcher_is_an_error(self):
        with pytest.raises(MPIError, match="unknown launcher"):
            create_runtime("quantum")


# -- end-to-end worlds ---------------------------------------------------------

# module-level so the fns are picklable: worker-initiated spawn ships them
# over the router RPC (fork inherits driver-initiated closures, but deep
# spawns cannot rely on inheritance)


def _child_main(comm, base):
    total = comm.allreduce(comm.rank + base, SUM)
    if comm.rank == 0:
        comm.send("ping", dest=1, tag=7)
        assert comm.recv(source=1, tag=8) == "pong"
    elif comm.rank == 1:
        assert comm.recv(source=0, tag=7) == "ping"
        comm.send("pong", dest=0, tag=8)
    comm.parent.send(("result", comm.rank, total), dest=0, tag=5)


def _driver(comm, nprocs):
    inter = comm.spawn(_child_main, nprocs, args=(10,), name="kids")
    return sorted(inter.recv(tag=5) for _ in range(nprocs))


def _crasher(comm):
    if comm.rank == 1:
        raise ValueError("boom from worker")
    comm.recv(source=0, tag=99, timeout=30)  # blocks until the abort


def _crash_driver(comm, n):
    inter = comm.spawn(_crasher, n, name="crash")
    inter.recv(tag=5)  # never arrives


def _killed(comm):
    if comm.rank == 0:
        os._exit(1)  # no BYE, no FAIL: simulates a hard kill
    comm.recv(source=0, tag=99, timeout=30)


def _kill_driver(comm, n):
    inter = comm.spawn(_killed, n, name="killed")
    inter.recv(tag=5)


def _grandchild(comm, token):
    comm.parent.send(("gc", comm.rank, token), dest=0, tag=11)


def _spawning_worker(comm):
    # spawn is collective: every rank of the child world calls it
    inter = comm.spawn(_grandchild, 2, args=("deep",), name="gkids")
    if comm.rank == 0:
        got = sorted(inter.recv(tag=11) for _ in range(2))
        comm.parent.send(got, dest=0, tag=12)


def _spawn_driver(comm, n):
    inter = comm.spawn(_spawning_worker, n, name="kids")
    return inter.recv(tag=12)


class TestProcessRuntimeEndToEnd:
    def test_both_backends_run_the_same_world_identically(self):
        expected = [("result", r, 4 * 10 + 0 + 1 + 2 + 3) for r in range(4)]
        for cls in (ThreadRuntime, ProcessRuntime):
            out = cls().run(_driver, 1, args=(4,), timeout=60, name="driver")
            assert out[0] == expected, cls.__name__

    def test_worker_exception_reraised_driver_side_with_record(self):
        rt = ProcessRuntime()
        with pytest.raises(ValueError, match="boom from worker"):
            rt.run(_crash_driver, 1, args=(3,), timeout=60)
        records = rt.failure_records
        assert any(r.kind == "rank" for r in records)
        ranked = next(r for r in records if r.kind == "rank")
        assert "boom from worker" in ranked.error

    def test_hard_killed_worker_is_blamed_not_hung(self):
        rt = ProcessRuntime()
        with pytest.raises(MPIAbort):
            rt.run(_kill_driver, 1, args=(2,), timeout=60)
        records = rt.failure_records
        assert any(r.kind == "rank" and "goodbye" in r.error for r in records)

    def test_spawn_over_socket_reaches_grandchildren(self):
        out = ProcessRuntime().run(_spawn_driver, 1, args=(2,), timeout=60)
        assert out[0] == [("gc", 0, "deep"), ("gc", 1, "deep")]


# -- fault-injection serialization ------------------------------------------------


def _match_big(envelope):
    return envelope.nbytes > 10


class TestInjectorSerialization:
    def test_injector_pickles_with_rules_and_state(self):
        injector = FaultInjector()
        injector.drop(tag=42, max_matches=1)
        injector.sever(3)
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.severed == frozenset({3})
        assert len(clone.rules) == 1
        assert clone.rules[0].tag == 42
        # the clone's lock is fresh and functional
        env = Envelope(context=0, source=0, tag=42, payload="x", nbytes=1)
        assert clone.apply(1, env) == []  # dropped

    def test_module_level_match_predicate_survives_pickling(self):
        injector = FaultInjector()
        injector.drop(match=_match_big)
        clone = pickle.loads(pickle.dumps(injector))
        small = Envelope(context=0, source=0, tag=1, payload="x", nbytes=1)
        big = Envelope(context=0, source=0, tag=1, payload="y", nbytes=99)
        assert clone.apply(1, small) != []
        assert clone.apply(1, big) == []

    def test_lambda_match_predicate_is_rejected_up_front(self):
        with pytest.raises(MPIError, match="module-level"):
            FaultRule(action="drop", match=lambda env: True)

    def test_closure_match_predicate_is_rejected_up_front(self):
        limit = 10

        def closure_match(env):
            return env.nbytes > limit

        with pytest.raises(MPIError, match="module-level"):
            FaultRule(action="drop", match=closure_match)


# -- truncated payloads across the wire -------------------------------------------


class TestEnvelopeCodec:
    @staticmethod
    def _round_trip(env, dest):
        from repro.mpi.socket_transport import _decode_envelope, _encode_envelope

        frame = _encode_envelope(dest, env)
        assert frame[4] == FrameKind.ENVELOPE
        context, source, tag, origin, wire_dest, epoch, trace, parent, nbytes, flags, raw = (
            unpack_envelope_frame(frame[5:])
        )
        assert wire_dest == dest
        assert epoch == 0
        return _decode_envelope(
            context, source, tag, origin, nbytes, flags, raw,
            trace=trace, parent=parent,
        )

    def test_truncated_payload_round_trips_through_the_codec(self):
        original = {"data": list(range(20))}
        env = Envelope(
            context=8, source=1, tag=5,
            payload=TruncatedPayload(original), nbytes=123,
        )
        decoded = self._round_trip(env, dest=2)
        assert isinstance(decoded.payload, TruncatedPayload)
        assert decoded.payload.original == original
        assert decoded.nbytes == 123

    def test_plain_payload_round_trips_with_a_fresh_local_seq(self):
        env = Envelope(context=8, source=1, tag=5, payload=("k", 2), nbytes=16)
        decoded = self._round_trip(env, dest=0)
        assert decoded.payload == ("k", 2)
        assert (decoded.context, decoded.source, decoded.tag) == (8, 1, 5)
        assert decoded.seq > env.seq  # stamped in the receiving interpreter
