"""Tests for the Grep and Join workloads (both engines vs references)."""

import pytest

from repro.hadoop import MiniHadoopCluster
from repro.hdfs import MiniDFSCluster
from repro.workloads.grep import grep_datampi, grep_hadoop, grep_reference
from repro.workloads.join import (
    generate_relations,
    join_datampi,
    join_hadoop,
    join_reference,
)
from repro.workloads.wordcount import generate_text, write_text_to_dfs

PATTERN = r"word0(0[1-4]|1[0-2])"


class TestGrep:
    @pytest.fixture(scope="class")
    def setup(self):
        lines = generate_text(150, seed=13)
        cluster = MiniDFSCluster(num_nodes=3, block_size=700)
        write_text_to_dfs(cluster.client(0), "/grep/in", lines)
        return cluster, lines

    def test_datampi_matches_reference(self, setup):
        cluster, lines = setup
        result, counts = grep_datampi(cluster, "/grep/in", PATTERN, 3, 2, nprocs=3)
        assert result.success
        assert counts == grep_reference(lines, PATTERN)

    def test_hadoop_matches_reference(self, setup):
        cluster, lines = setup
        hadoop = MiniHadoopCluster(cluster)
        result, counts = grep_hadoop(hadoop, "/grep/in", "/grep/out", PATTERN, 2)
        assert result.success
        assert counts == grep_reference(lines, PATTERN)

    def test_pattern_with_no_matches(self, setup):
        cluster, _ = setup
        result, counts = grep_datampi(cluster, "/grep/in", "zebra", 2, 1, nprocs=2)
        assert result.success
        assert counts == {}

    def test_reference_counts_duplicate_lines(self):
        lines = ["match a", "match a", "other"]
        assert grep_reference(lines, "match") == {"match a": 2}


class TestJoin:
    @pytest.fixture(scope="class")
    def relations(self):
        return generate_relations(250, 180, key_space=30)

    def test_datampi_matches_reference(self, relations):
        r_rows, s_rows = relations
        result, out = join_datampi(r_rows, s_rows, o_tasks=4, a_tasks=3, nprocs=4)
        assert result.success
        assert out == join_reference(r_rows, s_rows)

    def test_hadoop_matches_reference(self, relations):
        r_rows, s_rows = relations
        cluster = MiniDFSCluster(num_nodes=3, block_size=1024)
        hadoop = MiniHadoopCluster(cluster)
        result, out = join_hadoop(hadoop, r_rows, s_rows, num_reduces=2)
        assert result.success
        assert out == join_reference(r_rows, s_rows)

    def test_odd_o_task_count(self, relations):
        """Heterogeneous O communicator with unequal R/S scanner counts."""
        r_rows, s_rows = relations
        _, out = join_datampi(r_rows, s_rows, o_tasks=5, a_tasks=2, nprocs=3)
        assert out == join_reference(r_rows, s_rows)

    def test_disjoint_keys_join_empty(self):
        r_rows = [(1, "r0"), (2, "r1")]
        s_rows = [(10, "s0"), (11, "s1")]
        _, out = join_datampi(r_rows, s_rows, o_tasks=2, a_tasks=2, nprocs=2)
        assert out == set()

    def test_many_to_many_keys(self):
        r_rows = [(7, "ra"), (7, "rb")]
        s_rows = [(7, "sa"), (7, "sb"), (7, "sc")]
        _, out = join_datampi(r_rows, s_rows, o_tasks=2, a_tasks=1, nprocs=2)
        assert len(out) == 6  # full cross product per key

    def test_reference_semantics(self):
        assert join_reference([(1, "r")], [(1, "s"), (2, "x")]) == {(1, "r", "s")}
