"""Cross-engine workload equivalence tests (the paper's five benchmarks).

Each benchmark runs on DataMPI and on its baseline engine and both must
match an independent reference — the functional-correctness half of the
evaluation (performance shapes are covered by the simulator benches).
"""

import numpy as np
import pytest

from repro.hadoop import MiniHadoopCluster
from repro.hdfs import MiniDFSCluster
from repro.workloads import (
    generate_graph,
    generate_points,
    generate_stream,
    generate_text,
    kmeans_datampi,
    kmeans_hadoop,
    kmeans_reference,
    pagerank_datampi,
    pagerank_hadoop,
    pagerank_reference,
    sample_boundaries,
    teragen,
    teragen_to_dfs,
    terasort_datampi,
    terasort_hadoop,
    topk_datampi,
    topk_reference,
    topk_s4,
    verify_sorted_records,
    verify_terasort_output,
    wordcount_datampi,
    wordcount_hadoop,
    wordcount_reference,
)
from repro.workloads.teragen import RECORD_LEN, teragen_records
from repro.workloads.wordcount import write_text_to_dfs


class TestTeraGen:
    def test_record_shape(self):
        blob = teragen(10)
        assert len(blob) == 10 * RECORD_LEN

    def test_deterministic(self):
        assert teragen(50, seed=1) == teragen(50, seed=1)
        assert teragen(50, seed=1) != teragen(50, seed=2)

    def test_chunked_generation_consistent(self):
        """Generating in two chunks equals one shot (same seed/start)."""
        whole = teragen(100, seed=9)
        parts = teragen(60, seed=9, start=0) + teragen(40, seed=9, start=60)
        assert whole == parts

    def test_records_iterator(self):
        pairs = list(teragen_records(5))
        assert len(pairs) == 5
        assert all(len(k) == 10 and len(v) == 90 for k, v in pairs)

    def test_verify_sorted_records(self):
        records = sorted(teragen_records(50), key=lambda kv: kv[0])
        blob = b"".join(k + v for k, v in records)
        assert verify_sorted_records(blob)
        assert not verify_sorted_records(blob[RECORD_LEN:] + blob[:RECORD_LEN])

    def test_dfs_write_requires_aligned_blocks(self):
        dfs = MiniDFSCluster(num_nodes=1, block_size=150).client(0)
        with pytest.raises(Exception):
            teragen_to_dfs(dfs, "/x", 10)


class TestTeraSort:
    N = 600

    @pytest.fixture()
    def dfs_cluster(self):
        cluster = MiniDFSCluster(num_nodes=4, block_size=50 * RECORD_LEN)
        teragen_to_dfs(cluster.client(0), "/tera/in", self.N)
        return cluster

    def test_datampi_globally_sorted(self, dfs_cluster):
        result = terasort_datampi(
            dfs_cluster, "/tera/in", "/tera/out", o_tasks=4, a_tasks=3, nprocs=4
        )
        assert result.success
        assert verify_terasort_output(dfs_cluster.client(None), "/tera/out", self.N)
        assert result.a_data_locality == 1.0

    def test_hadoop_globally_sorted(self, dfs_cluster):
        hadoop = MiniHadoopCluster(dfs_cluster)
        result = terasort_hadoop(hadoop, "/tera/in", "/tera/out-h", num_reduces=3)
        assert result.success
        assert verify_terasort_output(dfs_cluster.client(None), "/tera/out-h", self.N)

    def test_engines_produce_identical_bytes(self, dfs_cluster):
        terasort_datampi(dfs_cluster, "/tera/in", "/d", o_tasks=2, a_tasks=2, nprocs=2)
        hadoop = MiniHadoopCluster(dfs_cluster)
        terasort_hadoop(hadoop, "/tera/in", "/h", num_reduces=2)
        dfs = dfs_cluster.client(None)
        d_bytes = b"".join(dfs.read_file(p) for p in dfs.listdir("/d"))
        h_bytes = b"".join(dfs.read_file(p) for p in dfs.listdir("/h"))
        assert d_bytes == h_bytes

    def test_sampled_boundaries_are_sorted(self, dfs_cluster):
        bounds = sample_boundaries(dfs_cluster.client(None), "/tera/in", 8)
        assert len(bounds) == 7
        assert bounds == sorted(bounds)

    def test_single_partition_needs_no_boundaries(self, dfs_cluster):
        assert sample_boundaries(dfs_cluster.client(None), "/tera/in", 1) == []


class TestWordCount:
    @pytest.fixture()
    def setup(self):
        lines = generate_text(120)
        cluster = MiniDFSCluster(num_nodes=3, block_size=512)
        write_text_to_dfs(cluster.client(0), "/wc/in", lines)
        return cluster, lines

    def test_datampi_matches_reference(self, setup):
        cluster, lines = setup
        result, counts = wordcount_datampi(cluster, "/wc/in", o_tasks=3, a_tasks=2,
                                           nprocs=3)
        assert result.success
        assert counts == wordcount_reference(lines)

    def test_hadoop_matches_reference(self, setup):
        cluster, lines = setup
        hadoop = MiniHadoopCluster(cluster)
        result, counts = wordcount_hadoop(hadoop, "/wc/in", "/wc/out", num_reduces=2)
        assert result.success
        assert counts == wordcount_reference(lines)

    def test_combiner_active_on_both_engines(self, setup):
        cluster, _ = setup
        result, _ = wordcount_datampi(cluster, "/wc/in", 2, 2, nprocs=2)
        assert result.metrics.combined_away > 0
        hadoop = MiniHadoopCluster(cluster)
        hresult, _ = wordcount_hadoop(hadoop, "/wc/in", "/wc/out2", 2)
        assert hresult.counters.combine_output_records > 0


class TestPageRank:
    ROUNDS = 4

    @pytest.fixture(scope="class")
    def graph(self):
        return generate_graph(80, mean_out_degree=4)

    def test_datampi_matches_power_iteration(self, graph):
        reference = pagerank_reference(graph, self.ROUNDS)
        result, ranks = pagerank_datampi(
            graph, self.ROUNDS, o_tasks=3, a_tasks=2, nprocs=3
        )
        assert result.success
        assert set(ranks) == set(reference)
        np.testing.assert_allclose(
            [ranks[n] for n in sorted(graph)],
            [reference[n] for n in sorted(graph)],
            rtol=1e-12,
        )

    def test_hadoop_matches_power_iteration(self, graph):
        reference = pagerank_reference(graph, self.ROUNDS)
        cluster = MiniDFSCluster(num_nodes=3, block_size=2048)
        hadoop = MiniHadoopCluster(cluster)
        results, ranks = pagerank_hadoop(hadoop, graph, self.ROUNDS, num_reduces=2)
        assert all(r.success for r in results)
        assert len(results) == self.ROUNDS  # one MapReduce job per round
        np.testing.assert_allclose(
            [ranks[n] for n in sorted(graph)],
            [reference[n] for n in sorted(graph)],
            rtol=1e-9,
        )

    def test_update_rule_converges_to_networkx(self, graph):
        from repro.workloads.pagerank import pagerank_networkx

        converged = pagerank_reference(graph, rounds=80)
        nx_ranks = pagerank_networkx(graph)
        err = max(abs(converged[n] - nx_ranks[n]) for n in graph)
        # networkx stops at its own tolerance (1e-6 * N scaled), so agree
        # to slightly better than that, not to machine precision
        assert err < 1e-5

    def test_ranks_sum_to_one(self, graph):
        _, ranks = pagerank_datampi(graph, 3, o_tasks=2, a_tasks=2, nprocs=2)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-9)


class TestKMeans:
    ROUNDS, K = 4, 3

    @pytest.fixture(scope="class")
    def points(self):
        return generate_points(240, self.K)

    def test_datampi_matches_lloyd(self, points):
        reference = kmeans_reference(points, self.K, self.ROUNDS)
        result, centroids = kmeans_datampi(
            points, self.K, self.ROUNDS, o_tasks=3, a_tasks=2, nprocs=3
        )
        assert result.success
        np.testing.assert_allclose(centroids, reference, rtol=1e-10)

    def test_hadoop_matches_lloyd(self, points):
        reference = kmeans_reference(points, self.K, self.ROUNDS)
        cluster = MiniDFSCluster(num_nodes=3, block_size=4096)
        hadoop = MiniHadoopCluster(cluster)
        results, centroids = kmeans_hadoop(
            hadoop, points, self.K, self.ROUNDS, num_reduces=2
        )
        assert all(r.success for r in results)
        np.testing.assert_allclose(centroids, reference, rtol=1e-9)

    def test_empty_cluster_carries_centroid_forward(self):
        """A cluster that loses all members keeps its last centroid, like
        the reference Lloyd loop (regression: it used to zero out)."""
        points = generate_points(600, 5, dims=2, seed=5)
        rounds = 5
        reference = kmeans_reference(points, 5, rounds)
        _, centroids = kmeans_datampi(points, 5, rounds, o_tasks=3,
                                      a_tasks=2, nprocs=3)
        np.testing.assert_allclose(centroids, reference, rtol=1e-10)
        # the seed above genuinely produces an empty cluster: the final
        # centroid set still contains the carried-forward initial point
        assert not np.allclose(centroids[4], 0.0)


class TestTopK:
    K = 8

    @pytest.fixture(scope="class")
    def words(self):
        return generate_stream(1500)

    def test_s4_matches_reference(self, words):
        top, latencies = topk_s4(words, self.K)
        assert top == topk_reference(words, self.K)
        assert len(latencies) == 2 * len(words)  # word event + count update

    def test_datampi_matches_reference(self, words):
        result, top, latencies = topk_datampi(
            words, self.K, o_tasks=2, a_tasks=3, nprocs=3
        )
        assert result.success
        assert top == topk_reference(words, self.K)
        assert len(latencies) == len(words)

    def test_reference_tie_break_deterministic(self):
        words = ["b", "a", "c", "a", "b", "c"]
        assert topk_reference(words, 2) == [("a", 2), ("b", 2)]


class TestProcessBackendParity:
    """The paper workloads must produce identical results when every
    rank is an OS process (``mpi.d.launcher=processes``) instead of a
    thread — outputs travel through files/DFS commits, never through
    driver-memory closures."""

    CONF = {"mpi.d.launcher": "processes"}

    def test_wordcount_matches_reference_on_processes(self):
        cluster = MiniDFSCluster(num_nodes=3)
        lines = generate_text(200)
        write_text_to_dfs(cluster.client(None), "/wc/in", lines)
        result, counts = wordcount_datampi(
            cluster, "/wc/in", o_tasks=3, a_tasks=2, nprocs=3, conf=self.CONF
        )
        assert result.success
        assert counts == wordcount_reference(lines)

    def test_terasort_globally_sorted_on_processes(self):
        cluster = MiniDFSCluster(num_nodes=4, block_size=50 * RECORD_LEN)
        teragen_to_dfs(cluster.client(0), "/tera/in", 400)
        result = terasort_datampi(
            cluster, "/tera/in", "/tera/out", o_tasks=4, a_tasks=3,
            nprocs=4, conf=self.CONF,
        )
        assert result.success
        assert verify_terasort_output(cluster.client(None), "/tera/out", 400)

    def test_kmeans_matches_lloyd_on_processes(self):
        points = generate_points(240, 3)
        reference = kmeans_reference(points, 3, 4)
        result, centroids = kmeans_datampi(
            points, 3, 4, o_tasks=3, a_tasks=2, nprocs=3, conf=self.CONF
        )
        assert result.success
        np.testing.assert_allclose(centroids, reference, rtol=1e-10)
