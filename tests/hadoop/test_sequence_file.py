"""Tests for the mini-SequenceFile format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.hadoop.sequence_file import (
    SYNC_INTERVAL,
    SYNC_MARKER,
    SequenceFileReader,
    SequenceFileWriter,
    read_sequence_file,
    write_sequence_file,
)
from repro.hdfs import MiniDFSCluster


@pytest.fixture()
def dfs():
    return MiniDFSCluster(num_nodes=2, block_size=4096).client(0)


class TestRoundTrip:
    def test_basic(self, dfs):
        records = [(f"k{i}", [i, i * 2]) for i in range(50)]
        assert write_sequence_file(dfs, "/seq", records) == 50
        assert read_sequence_file(dfs, "/seq") == records

    def test_empty_file(self, dfs):
        write_sequence_file(dfs, "/empty", [])
        assert read_sequence_file(dfs, "/empty") == []

    def test_pickle_backend(self, dfs):
        records = [({"complex": {1, 2}}, None)]
        write_sequence_file(dfs, "/p", records, serializer="pickle")
        assert read_sequence_file(dfs, "/p") == records

    def test_heterogeneous_records(self, dfs):
        records = [(1, "a"), ("two", 2.5), (b"three", (3, 3))]
        write_sequence_file(dfs, "/h", records)
        assert read_sequence_file(dfs, "/h") == records

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.text(max_size=12), st.integers(-1000, 1000)),
            max_size=40,
        )
    )
    def test_roundtrip_property(self, records):
        dfs = MiniDFSCluster(num_nodes=1, block_size=512).client(0)
        write_sequence_file(dfs, "/prop", records)
        assert read_sequence_file(dfs, "/prop") == records

    def test_writer_context_manager_closes(self, dfs):
        with SequenceFileWriter(dfs, "/cm") as writer:
            writer.append("a", 1)
        with pytest.raises(SerializationError):
            writer.append("b", 2)

    def test_not_a_sequence_file(self, dfs):
        dfs.write_file("/junk", b"plain text, definitely not MSEQ")
        with pytest.raises(SerializationError, match="not a mini-SequenceFile"):
            SequenceFileReader(dfs, "/junk")


class TestSyncMarkersAndSplits:
    def _write_big(self, dfs, n=2000):
        records = [(f"key-{i:05d}", "v" * 20) for i in range(n)]
        write_sequence_file(dfs, "/big", records)
        return records

    def test_sync_markers_present(self, dfs):
        self._write_big(dfs)
        data = dfs.read_file("/big")
        # at least one marker beyond the header for a multi-interval file
        assert data.count(SYNC_MARKER) >= len(data) // SYNC_INTERVAL

    def test_resync_from_arbitrary_offset(self, dfs):
        records = self._write_big(dfs)
        reader = SequenceFileReader(dfs, "/big")
        # start in the middle of nowhere: reader skips to the next marker
        midpoint_records = list(reader.records_from(len(dfs.read_file("/big")) // 2))
        assert 0 < len(midpoint_records) < len(records)
        # and what it returns is a suffix of the record stream
        assert midpoint_records == records[-len(midpoint_records):]

    def test_splits_partition_records_exactly(self, dfs):
        """Reading by byte ranges yields every record exactly once."""
        records = self._write_big(dfs)
        reader = SequenceFileReader(dfs, "/big")
        size = len(dfs.read_file("/big"))
        n_splits = 5
        bounds = [size * i // n_splits for i in range(n_splits + 1)]
        collected = []
        for i in range(n_splits):
            collected.extend(reader.split_records(bounds[i], bounds[i + 1]))
        assert collected == records

    def test_single_split_covers_all(self, dfs):
        records = self._write_big(dfs, n=100)
        reader = SequenceFileReader(dfs, "/big")
        assert list(reader.split_records(0, 10**9)) == records
