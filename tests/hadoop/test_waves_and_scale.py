"""Mini-Hadoop under constrained slots: waves, big jobs, stress."""

import pytest

from repro.hadoop import HadoopJob, MiniHadoopCluster
from repro.hdfs import MiniDFSCluster


def word_mapper(_k, line, emit):
    for w in line.split():
        emit(w, 1)


def sum_reducer(k, vs, emit):
    emit(k, sum(vs))


class TestSlotWaves:
    def test_reduces_exceed_slots(self):
        """8 reduces on a cluster with 2x1 reduce slots -> 4 waves."""
        dfs_cluster = MiniDFSCluster(num_nodes=2, block_size=256)
        cluster = MiniHadoopCluster(
            dfs_cluster, map_slots_per_node=1, reduce_slots_per_node=1
        )
        dfs_cluster.client(0).write_file(
            "/in/d", ("\n".join(["a b c d e f g h"] * 20) + "\n").encode()
        )
        job = HadoopJob("waves", "/in", "/out", word_mapper, sum_reducer,
                        num_reduces=8)
        result = cluster.run_job(job)
        assert result.success
        assert len(result.output_files) == 8
        counts = {k: int(v) for k, v in cluster.read_output(job)}
        assert counts == {w: 20 for w in "abcdefgh"}

    def test_maps_exceed_slots(self):
        dfs_cluster = MiniDFSCluster(num_nodes=2, block_size=64)
        cluster = MiniHadoopCluster(
            dfs_cluster, map_slots_per_node=1, reduce_slots_per_node=1
        )
        text = "\n".join(f"line{i} word" for i in range(60)) + "\n"
        dfs_cluster.client(0).write_file("/in/d", text.encode())
        splits = len(dfs_cluster.namenode.get_block_locations("/in/d"))
        assert splits > 2  # genuinely multiple waves per slot
        job = HadoopJob("mwaves", "/in", "/out", word_mapper, sum_reducer, 2)
        result = cluster.run_job(job)
        assert result.success
        counts = {k: int(v) for k, v in cluster.read_output(job)}
        assert counts["word"] == 60

    def test_sequential_jobs_on_one_cluster(self):
        """The shuffle directory and servers must not leak across jobs."""
        dfs_cluster = MiniDFSCluster(num_nodes=2, block_size=512)
        cluster = MiniHadoopCluster(dfs_cluster)
        dfs_cluster.client(0).write_file("/in/d", b"x y x\n")
        for round_no in range(3):
            job = HadoopJob(
                f"j{round_no}", "/in", f"/out{round_no}",
                word_mapper, sum_reducer, 2,
            )
            result = cluster.run_job(job)
            assert result.success
            counts = {k: int(v) for k, v in cluster.read_output(job)}
            assert counts == {"x": 2, "y": 1}


class TestStress:
    def test_thousands_of_records_through_tiny_buffers(self):
        dfs_cluster = MiniDFSCluster(num_nodes=3, block_size=1024)
        cluster = MiniHadoopCluster(dfs_cluster)
        lines = [f"w{i % 37} w{i % 11} w{i % 7}" for i in range(1500)]
        dfs_cluster.client(0).write_file(
            "/in/d", ("\n".join(lines) + "\n").encode()
        )
        job = HadoopJob(
            "stress", "/in", "/out", word_mapper, sum_reducer, 4,
            sort_buffer_bytes=2048,  # force many spills
        )
        result = cluster.run_job(job)
        assert result.success
        assert result.counters.spill_files > 10
        counts = {k: int(v) for k, v in cluster.read_output(job)}
        assert sum(counts.values()) == 4500

    def test_counters_conserve_records(self):
        dfs_cluster = MiniDFSCluster(num_nodes=2, block_size=512)
        cluster = MiniHadoopCluster(dfs_cluster)
        dfs_cluster.client(0).write_file(
            "/in/d", ("\n".join(["k v"] * 100) + "\n").encode()
        )
        job = HadoopJob("cons", "/in", "/out", word_mapper, sum_reducer, 3)
        result = cluster.run_job(job)
        c = result.counters
        # without a combiner, every map output reaches exactly one reducer
        assert c.map_output_records == c.reduce_input_records == 200
