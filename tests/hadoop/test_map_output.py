"""Tests for the map-side spill buffer and I/O formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DataMPIError
from repro.core.partition import hash_partitioner
from repro.hadoop.io_formats import (
    BytesConcatOutputFormat,
    FixedLengthRecordFormat,
    KeyValueTextOutputFormat,
    TextInputFormat,
    compute_splits,
)
from repro.hadoop.map_output import MapOutputBuffer
from repro.hdfs.cluster import MiniDFSCluster


class TestMapOutputBuffer:
    def make(self, **kwargs):
        defaults = dict(
            num_partitions=2,
            partitioner=hash_partitioner,
            sort_buffer_bytes=10**9,
        )
        defaults.update(kwargs)
        return MapOutputBuffer(**defaults)

    def test_collect_and_finish(self):
        buf = self.make()
        for word in ["b", "a", "c", "a"]:
            buf.collect(word, 1)
        outputs = buf.finish()
        all_records = [kv for run in outputs.values() for kv in run]
        assert sorted(all_records) == [("a", 1), ("a", 1), ("b", 1), ("c", 1)]
        for run in outputs.values():
            assert [k for k, _ in run] == sorted(k for k, _ in run)

    def test_spills_on_budget(self):
        buf = self.make(sort_buffer_bytes=100)
        for i in range(50):
            buf.collect(f"key{i}", "v" * 10)
        assert buf.num_spills > 1
        outputs = buf.finish()
        total = sum(len(run) for run in outputs.values())
        assert total == 50

    def test_multi_spill_merge_is_sorted(self):
        buf = self.make(sort_buffer_bytes=64, num_partitions=1)
        import random

        rng = random.Random(0)
        keys = [f"{rng.randint(0, 999):03d}" for _ in range(100)]
        for k in keys:
            buf.collect(k, None)
        (run,) = buf.finish().values()
        assert [k for k, _ in run] == sorted(keys)

    def test_combiner_applied_per_spill_and_merge(self):
        buf = self.make(
            sort_buffer_bytes=80, num_partitions=1,
            combiner=lambda k, vs: [sum(vs)],
        )
        for _ in range(40):
            buf.collect("hot", 1)
        (run,) = buf.finish().values()
        assert run == [("hot", 40)]
        assert buf.combined_records > 0

    def test_partitions_respected(self):
        buf = self.make(num_partitions=3, partitioner=lambda k, v, n: k % n)
        for i in range(30):
            buf.collect(i, None)
        outputs = buf.finish()
        for partition, run in outputs.items():
            assert all(k % 3 == partition for k, _ in run)

    @settings(max_examples=25)
    @given(st.lists(st.text(min_size=1, max_size=8), max_size=60))
    def test_no_records_lost(self, keys):
        buf = self.make(sort_buffer_bytes=128, num_partitions=4)
        for k in keys:
            buf.collect(k, 1)
        outputs = buf.finish()
        assert sum(len(r) for r in outputs.values()) == len(keys)


class TestTextInputFormat:
    def test_basic_lines(self):
        fmt = TextInputFormat()
        records = list(fmt.read_records(b"alpha\nbeta\n"))
        assert records == [(0, "alpha"), (6, "beta")]

    def test_line_stitching_across_blocks(self):
        """LineRecordReader semantics: no line lost or duplicated."""
        cluster = MiniDFSCluster(num_nodes=2, block_size=17)
        dfs = cluster.client(0)
        lines = [f"line-{i:04d}" for i in range(40)]
        dfs.write_file("/t", ("\n".join(lines) + "\n").encode())
        fmt = TextInputFormat()
        collected = []
        for split in compute_splits(dfs, "/t"):
            collected.extend(v for _, v in fmt.read_split(dfs, split))
        assert collected == lines

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.text(alphabet="abcxyz", min_size=1, max_size=30), min_size=1,
                 max_size=30),
        st.integers(min_value=5, max_value=64),
    )
    def test_stitching_property(self, lines, block_size):
        cluster = MiniDFSCluster(num_nodes=1, block_size=block_size)
        dfs = cluster.client(0)
        dfs.write_file("/p", ("\n".join(lines) + "\n").encode())
        fmt = TextInputFormat()
        collected = []
        for split in compute_splits(dfs, "/p"):
            collected.extend(v for _, v in fmt.read_split(dfs, split))
        assert collected == lines


class TestFixedAndOutputFormats:
    def test_fixed_records(self):
        fmt = FixedLengthRecordFormat(record_len=10, key_len=3)
        data = b"aaa0000000bbb1111111"
        records = list(fmt.read_records(data))
        assert records == [(b"aaa", b"0000000"), (b"bbb", b"1111111")]

    def test_fixed_misaligned_raises(self):
        fmt = FixedLengthRecordFormat(record_len=10, key_len=3)
        with pytest.raises(DataMPIError):
            list(fmt.read_records(b"short"))

    def test_fixed_validation(self):
        with pytest.raises(DataMPIError):
            FixedLengthRecordFormat(record_len=10, key_len=10)

    def test_kv_text_roundtrip(self):
        fmt = KeyValueTextOutputFormat()
        blob = fmt.serialize([("a", 1), ("b", "x y")])
        assert fmt.parse(blob) == [("a", "1"), ("b", "x y")]

    def test_bytes_concat(self):
        fmt = BytesConcatOutputFormat()
        blob = fmt.serialize([(b"key", b"val")])
        assert blob == b"keyval"
