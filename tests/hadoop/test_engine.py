"""End-to-end mini-Hadoop jobs: scheduling, shuffle, counters."""

import pytest

from repro.hadoop import HadoopJob, MiniHadoopCluster
from repro.hadoop.shuffle_http import ShuffleDirectory, ShuffleServer
from repro.hdfs.cluster import MiniDFSCluster


def word_mapper(_k, line, emit):
    for word in line.split():
        emit(word, 1)


def sum_reducer(key, values, emit):
    emit(key, sum(values))


@pytest.fixture()
def cluster():
    dfs_cluster = MiniDFSCluster(num_nodes=3, block_size=256)
    return MiniHadoopCluster(dfs_cluster)


def write_input(cluster, lines):
    dfs = cluster.dfs_cluster.client(0)
    dfs.write_file("/in/part0", ("\n".join(lines) + "\n").encode())


class TestWordCountJob:
    LINES = ["a b a", "c a b", "b c c c"] * 15

    def expected(self):
        from collections import Counter

        counter = Counter()
        for line in self.LINES:
            counter.update(line.split())
        return {k: str(v) for k, v in counter.items()}

    def test_end_to_end(self, cluster):
        write_input(cluster, self.LINES)
        job = HadoopJob("wc", "/in", "/out", word_mapper, sum_reducer, num_reduces=2)
        result = cluster.run_job(job)
        assert result.success
        assert dict(cluster.read_output(job)) == self.expected()

    def test_counters_consistent(self, cluster):
        write_input(cluster, self.LINES)
        job = HadoopJob("wc", "/in", "/out", word_mapper, sum_reducer, num_reduces=2)
        result = cluster.run_job(job)
        c = result.counters
        total_words = sum(len(line.split()) for line in self.LINES)
        assert c.map_output_records == total_words
        assert c.reduce_input_records == total_words  # no combiner
        assert c.reduce_output_records == 3  # distinct words
        assert c.shuffle_fetches == 2 * c.data_local_maps + 2 * c.rack_remote_maps

    def test_combiner_cuts_shuffle(self, cluster):
        write_input(cluster, self.LINES)
        plain = HadoopJob("p", "/in", "/out-p", word_mapper, sum_reducer, 2)
        combined = HadoopJob(
            "c", "/in", "/out-c", word_mapper, sum_reducer, 2,
            combiner=lambda k, vs: [sum(vs)],
        )
        r_plain = cluster.run_job(plain)
        r_comb = cluster.run_job(combined)
        assert dict(cluster.read_output(plain)) == dict(cluster.read_output(combined))
        assert (
            r_comb.counters.reduce_shuffle_bytes
            < r_plain.counters.reduce_shuffle_bytes
        )

    def test_output_one_file_per_reduce(self, cluster):
        write_input(cluster, self.LINES)
        job = HadoopJob("wc", "/in", "/out", word_mapper, sum_reducer, num_reduces=4)
        result = cluster.run_job(job)
        assert len(result.output_files) == 4
        assert result.output_files == sorted(result.output_files)

    def test_timelines_recorded(self, cluster):
        write_input(cluster, self.LINES)
        job = HadoopJob("wc", "/in", "/out", word_mapper, sum_reducer, num_reduces=2)
        result = cluster.run_job(job)
        assert len(result.map_timeline.ends) >= 1
        assert len(result.reduce_timeline.ends) == 2
        # the proxy-based shuffle: no reduce starts before the last map ends
        assert min(result.reduce_timeline.starts.values()) >= max(
            result.map_timeline.ends.values()
        )


class TestSchedulingAndFailures:
    def test_map_locality_preferred(self):
        """With replication=3 on 3 nodes every split can run locally."""
        dfs_cluster = MiniDFSCluster(num_nodes=3, block_size=128, replication=3)
        cluster = MiniHadoopCluster(dfs_cluster)
        write_input(cluster, ["x y z"] * 30)
        job = HadoopJob("loc", "/in", "/out", word_mapper, sum_reducer, 1)
        result = cluster.run_job(job)
        assert result.counters.map_locality == 1.0

    def test_empty_input_fails_cleanly(self, cluster):
        job = HadoopJob("none", "/missing", "/out", word_mapper, sum_reducer, 1)
        result = cluster.run_job(job)
        assert not result.success
        assert "no input" in result.error

    def test_mapper_exception_fails_job(self, cluster):
        write_input(cluster, ["boom"])

        def bad_mapper(_k, _v, _emit):
            raise ValueError("mapper exploded")

        job = HadoopJob("bad", "/in", "/out", bad_mapper, sum_reducer, 1)
        result = cluster.run_job(job)
        assert not result.success
        assert "mapper exploded" in result.error

    def test_reducer_exception_fails_job(self, cluster):
        write_input(cluster, ["ok data"])

        def bad_reducer(_k, _vs, _emit):
            raise RuntimeError("reducer exploded")

        job = HadoopJob("bad", "/in", "/out", word_mapper, bad_reducer, 1)
        result = cluster.run_job(job)
        assert not result.success

    def test_invalid_job_config(self, cluster):
        job = HadoopJob("inv", "/in", "/out", word_mapper, sum_reducer, num_reduces=0)
        with pytest.raises(Exception):
            cluster.run_job(job)


class TestShuffleServer:
    def test_register_and_fetch(self):
        server = ShuffleServer(0)
        server.register_map_output(3, {0: [("a", 1)], 1: [("b", 2)]})
        assert server.fetch(3, 0) == [("a", 1)]
        assert server.fetch(3, 9) == []  # empty partitions are a valid GET
        assert server.requests_served == 2
        assert server.bytes_served > 0

    def test_directory_resolves_hosts(self):
        servers = [ShuffleServer(0), ShuffleServer(1)]
        servers[1].register_map_output(7, {0: [("k", "v")]})
        directory = ShuffleDirectory(servers)
        directory.announce_completion(7, 1)
        run, host = directory.fetch(7, 0)
        assert host == 1 and run == [("k", "v")]

    def test_fetch_before_completion_raises(self):
        directory = ShuffleDirectory([ShuffleServer(0)])
        with pytest.raises(Exception):
            directory.host_of(0)
