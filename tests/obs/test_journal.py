"""Journal round-trip, torn-tail tolerance, and the Chrome exporter."""

import json

from repro.obs.journal import (
    Journal,
    JournalWriter,
    export_chrome,
    read_journal,
    to_chrome_trace,
    write_journal,
)


def _sample_events():
    return [
        {"ph": "X", "ts": 0.0, "dur": 0.5, "name": "O-task-0", "cat": "task",
         "tid": "MainThread", "rank": 0, "args": {"task": 0}},
        {"ph": "i", "ts": 0.1, "name": "fault.drop", "cat": "fault",
         "tid": "recv", "rank": 1, "args": {"origin": 0}},
        {"ph": "C", "ts": 0.2, "name": "bytes", "tid": "MainThread",
         "rank": 0, "args": {"value": 42}},
    ]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        write_journal(
            path,
            meta={"job": "t", "nprocs": 2},
            events=_sample_events(),
            series={"cpu": ([0.0, 1.0], [10.0, 20.0])},
            summary={"wall_seconds": 1.5, "phase_times": {"compute": 1.0}},
        )
        j = read_journal(path)
        assert j.meta["job"] == "t"
        assert j.meta["version"] == 1
        assert len(j.events) == 3
        assert len(j.spans) == 1
        assert len(j.instants) == 1
        assert len(j.counters) == 1
        assert j.series["cpu"] == ([0.0, 1.0], [10.0, 20.0])
        assert j.summary["wall_seconds"] == 1.5

    def test_writer_is_a_context_manager(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with JournalWriter(path) as w:
            w.write_meta(job="x")
            w.write_event({"ph": "i", "ts": 0.0, "name": "e"})
        assert len(read_journal(path).events) == 1

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        write_journal(path, meta={"job": "t"}, events=_sample_events())
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"type": "event", "ph": "i", "na')  # crash mid-line
        j = read_journal(path)
        assert len(j.events) == 3  # torn line skipped, prefix intact

    def test_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write('\n{"type": "meta", "version": 1, "job": "x"}\n\n')
        assert read_journal(path).meta["job"] == "x"


class TestChromeExport:
    def test_structure_and_units(self):
        j = Journal(
            meta={"job": "t"},
            events=_sample_events(),
            series={"cpu": ([1.0], [50.0])},
        )
        trace = to_chrome_trace(j)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == 0.0 and span["dur"] == 0.5 * 1e6  # microseconds
        assert span["pid"] == 0
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["pid"] == 1  # rank lanes
        # metadata names every process and thread lane
        names = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in names)
        assert any(e["name"] == "thread_name" for e in names)
        # series flatten to counter samples
        assert any(
            e["ph"] == "C" and e["name"] == "cpu" and e["args"]["value"] == 50.0
            for e in events
        )

    def test_driver_rank_lands_on_pid_zero(self):
        j = Journal(events=[{"ph": "i", "ts": 0.0, "name": "d", "tid": "Main",
                             "rank": -1}])
        events = to_chrome_trace(j)["traceEvents"]
        labels = [e for e in events if e.get("name") == "process_name"]
        assert labels[0]["args"]["name"] == "driver"

    def test_export_writes_valid_json(self, tmp_path):
        src = str(tmp_path / "j.jsonl")
        dst = str(tmp_path / "trace.json")
        write_journal(src, meta={"job": "t"}, events=_sample_events())
        export_chrome(read_journal(src), dst)
        with open(dst, encoding="utf-8") as f:
            data = json.load(f)
        assert isinstance(data["traceEvents"], list)
        assert data["otherData"]["job"] == "t"
