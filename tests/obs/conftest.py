import pytest


@pytest.fixture(params=["threads", "processes"])
def launcher(request):
    return request.param
