"""Metrics registry and windowed sampler determinism tests."""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    WindowedSampler,
)


class TestPrimitives:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_and_callback(self):
        g = Gauge("g")
        g.set(2.5)
        assert g.value == 2.5
        g = Gauge("g2", fn=lambda: 7)
        assert g.value == 7.0

    def test_histogram_exact_stats_below_capacity(self):
        h = Histogram("h", capacity=1024)
        for v in range(100):
            h.record(float(v))
        assert h.count == 100
        s = h.summary()
        assert s["count"] == 100.0
        assert s["mean"] == 49.5
        assert h.percentile(0.0) == 0.0
        assert h.percentile(100.0) == 99.0

    def test_histogram_decimation_is_deterministic_and_bounded(self):
        a, b = Histogram("a", capacity=64), Histogram("b", capacity=64)
        for v in range(10_000):
            a.record(float(v))
            b.record(float(v))
        assert a.samples == b.samples  # no randomness
        assert len(a.samples) < 64
        assert a.count == 10_000
        assert a.summary()["mean"] == sum(range(10_000)) / 10_000
        # decimated reservoir still spans the distribution
        assert a.percentile(50.0) / 10_000 - 0.5 < 0.1


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_snapshot(self):
        r = MetricsRegistry()
        r.counter("c").inc(3)
        r.gauge("g").set(1.5)
        r.histogram("h").record(9.0)
        snap = r.snapshot()
        assert snap == {"c": 3.0, "g": 1.5, "h.count": 1.0}


class TestWindowedSampler:
    def test_fake_clock_series_is_deterministic(self):
        def run():
            r = MetricsRegistry()
            c = r.counter("records")
            s = WindowedSampler(r, clock=lambda: 0.0, include_process=False)
            for tick in range(5):
                c.inc(10)
                s.sample_once(now=float(tick))
            return s.as_journal_series()

        one, two = run(), run()
        assert one == two
        times, values = one["records"]
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert values == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_epoch_is_first_sample(self):
        r = MetricsRegistry()
        r.counter("c")
        s = WindowedSampler(r, include_process=False)
        s.sample_once(now=100.0)
        s.sample_once(now=100.5)
        times, _ = s.as_journal_series()["c"]
        assert times == [0.0, 0.5]

    def test_process_series_present_when_enabled(self):
        r = MetricsRegistry()
        s = WindowedSampler(r, include_process=True)
        s.sample_once(now=0.0)
        s.sample_once(now=1.0)
        series = s.as_journal_series()
        assert "process.cpu.seconds" in series
        assert "process.rss.bytes" in series
        assert "process.cpu.percent" in series  # needs two samples
        assert len(series["process.cpu.seconds"][0]) == 2

    def test_interval_thread_start_stop(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        s = WindowedSampler(r, interval=0.01, include_process=False)
        s.start()
        s.stop()
        times, values = s.as_journal_series()["c"]
        # one sample at start, one closing sample at stop, maybe more between
        assert len(times) >= 2
        assert all(v == 1.0 for v in values)
