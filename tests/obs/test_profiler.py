"""The sampling profiler: registry, sampler, shards, exporters, flame CLI.

Tentpole invariants:

* samples taken while a registered thread burns inside a function are
  attributed to that thread's rank under its declared phase bucket;
* the registry works with sampling off (live stack dumps for the DUMP
  frame / doctor captures, including transport queue stats);
* worker ``.prof-`` shards round-trip through the merge without being
  picked up by the trace-shard glob;
* a profiled job folds one ``profile`` record per rank into its
  journal on BOTH backends, and ``repro flame`` renders/exports them.
"""

import json
import os
import sys
import threading
import time

import pytest

from repro.core import DataMPIJob, mpidrun
from repro.core.constants import MPI_D_Constants as K
from repro.obs import profiler as profiler_mod
from repro.obs.journal import JournalWriter, merge_shards, read_journal
from repro.obs.profiler import (
    DEFAULT_PHASE,
    StackSampler,
    collapse_stack,
    describe_stack,
    merge_profile_shards,
    to_collapsed,
    to_speedscope,
    write_profile_shard,
)


def _burn_until(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i for i in range(50))


@pytest.fixture
def burning_thread():
    """A live thread spinning inside ``_burn_until``; yields its ident."""
    stop = threading.Event()
    thread = threading.Thread(target=_burn_until, args=(stop,), daemon=True)
    thread.start()
    yield thread.ident
    stop.set()
    thread.join(timeout=5)


# -- stack helpers ----------------------------------------------------------------


class TestStackShapes:
    def test_collapse_is_root_first_and_module_dot_function(self):
        collapsed = collapse_stack(sys._getframe())
        names = collapsed.split(";")
        # leaf-most frame is this very test function
        assert names[-1].endswith("test_profiler.test_collapse_is_root_first_and_module_dot_function")
        assert all("." in name for name in names)

    def test_describe_carries_line_numbers(self):
        described = describe_stack(sys._getframe())
        assert described[-1].startswith("test_profiler.test_describe_carries_line_numbers:")
        assert int(described[-1].rsplit(":", 1)[1]) > 0


# -- the sampler ------------------------------------------------------------------


class TestStackSampler:
    def test_samples_attribute_to_rank_and_phase(self, burning_thread):
        sampler = StackSampler()
        sampler.register_thread(7, ident=burning_thread, phase="merge")
        for _ in range(20):
            sampler.sample_once()
        profile = sampler.collect(7, hz=100.0)
        assert profile["rank"] == 7
        assert profile["hz"] == 100.0
        assert profile["samples"] == 20
        assert set(profile["stacks"]) == {"merge"}
        assert any(
            "_burn_until" in stack for stack in profile["stacks"]["merge"]
        )

    def test_set_phase_rebuckets_subsequent_samples(self, burning_thread):
        sampler = StackSampler()
        sampler.register_thread(3, ident=burning_thread)  # default phase
        sampler.sample_once()
        sampler.set_phase("communicate", ident=burning_thread)
        sampler.sample_once()
        profile = sampler.collect(3)
        assert set(profile["stacks"]) == {DEFAULT_PHASE, "communicate"}

    def test_collect_pops_the_aggregate(self, burning_thread):
        sampler = StackSampler()
        sampler.register_thread(1, ident=burning_thread)
        sampler.sample_once()
        assert sampler.collect(1)["samples"] == 1
        assert sampler.collect(1)["samples"] == 0  # popped

    def test_snapshot_for_is_non_destructive_and_ranked(self, burning_thread):
        sampler = StackSampler()
        sampler.register_thread(4, ident=burning_thread, phase="compute")
        for _ in range(5):
            sampler.sample_once()
        snap = sampler.snapshot_for(4)
        assert snap["samples"] == 5
        assert snap["phases"] == {"compute": 5}
        phase, stack, count = snap["top"][0]
        assert phase == "compute" and count >= 1 and "_burn_until" in stack
        assert sampler.collect(4)["samples"] == 5  # snapshot did not pop
        assert sampler.snapshot_for(4) is None  # nothing left -> no summary

    def test_unregistered_threads_are_invisible(self, burning_thread):
        sampler = StackSampler()
        sampler.register_thread(2, ident=burning_thread)
        sampler.unregister_thread(ident=burning_thread)
        sampler.sample_once()
        assert sampler.collect(2)["samples"] == 0

    def test_acquire_release_refcount(self):
        sampler = StackSampler()
        assert not sampler.running
        sampler.acquire(10.0)
        sampler.acquire(50.0)
        assert sampler.running
        assert sampler.hz == 50.0  # max requested rate wins
        sampler.release()
        assert sampler.running  # one holder left
        sampler.release()
        assert not sampler.running
        sampler.release()  # over-release is a no-op

    def test_background_loop_actually_samples(self, burning_thread):
        sampler = StackSampler()
        sampler.register_thread(9, ident=burning_thread, phase="compute")
        sampler.acquire(200.0)
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if sampler.snapshot_for(9):
                    break
                time.sleep(0.01)
        finally:
            sampler.release()
        profile = sampler.collect(9)
        assert profile["samples"] > 0
        assert sampler.ticks > 0
        assert sampler.sample_cost_seconds > 0.0

    def test_dump_stacks_reports_live_threads_and_queues(self, burning_thread):
        sampler = StackSampler()
        sampler.register_thread(5, epoch=1, ident=burning_thread, phase="merge")
        sampler.register_queue(5, 1, lambda: {"pending": 3, "bytes_in": 64})
        dumps = sampler.dump_stacks()
        assert len(dumps) == 1
        dump = dumps[0]
        assert dump["rank"] == 5 and dump["epoch"] == 1
        assert dump["pid"] == os.getpid()
        assert dump["queue"] == {"pending": 3, "bytes_in": 64}
        (thread,) = dump["threads"]
        assert thread["phase"] == "merge"
        assert any("_burn_until" in frame for frame in thread["stack"])

    def test_dump_works_with_sampling_off(self, burning_thread):
        # the registry is always on: doctor captures must work unprofiled
        sampler = StackSampler()
        sampler.register_thread(0, ident=burning_thread)
        assert not sampler.running
        assert sampler.dump_stacks()[0]["threads"]


# -- shards -----------------------------------------------------------------------


class TestProfileShards:
    def test_round_trip_and_cleanup(self, tmp_path):
        journal = str(tmp_path / "job.trace.jsonl")
        shard = f"{journal}.a1.prof-g1.jsonl"
        write_profile_shard(shard, {"rank": 0, "epoch": 0, "samples": 2,
                                    "hz": 50.0, "stacks": {"compute": {"a.b": 2}}})
        write_profile_shard(shard, {"rank": 1, "epoch": 0, "samples": 1,
                                    "hz": 50.0, "stacks": {"merge": {"c.d": 1}}})
        with open(shard, "a", encoding="utf-8") as fh:
            fh.write('{"torn')  # crashed-worker tail must be tolerated
        profiles = merge_profile_shards(journal)
        assert [p["rank"] for p in profiles] == [0, 1]
        assert not os.path.exists(shard)  # consumed

    def test_prof_shards_do_not_feed_the_trace_glob(self, tmp_path):
        journal = str(tmp_path / "job.trace.jsonl")
        write_profile_shard(f"{journal}.a1.prof-g1.jsonl",
                            {"rank": 0, "stacks": {}})
        assert merge_shards(journal) == []  # trace merge must not eat it
        assert merge_profile_shards(journal)  # still there for the profiler


# -- exporters --------------------------------------------------------------------


PROFILES = [
    {"rank": 0, "epoch": 0, "hz": 50.0, "samples": 3,
     "stacks": {"compute": {"engine.run;app.o_fn": 2},
                "communicate": {"engine.run;plane.wait_complete": 1}}},
    {"rank": 1, "epoch": 2, "hz": 50.0, "samples": 1,
     "stacks": {"merge": {"engine.run;sorter.merge": 1}}},
]


class TestExporters:
    def test_collapsed_lines_carry_rank_phase_and_count(self):
        text = to_collapsed(PROFILES)
        lines = text.strip().splitlines()
        assert "rank0;communicate;engine.run;plane.wait_complete 1" in lines
        assert "rank0;compute;engine.run;app.o_fn 2" in lines
        # a respawned incarnation keeps its epoch in the prefix
        assert "rank1e2;merge;engine.run;sorter.merge 1" in lines

    def test_speedscope_document_shape(self):
        doc = to_speedscope(PROFILES, name="wc")
        assert doc["$schema"].endswith("file-format-schema.json")
        assert len(doc["profiles"]) == 2
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled"
        assert len(prof["samples"]) == len(prof["weights"])
        # weights are seconds: count / hz
        assert sum(prof["weights"]) == pytest.approx(3 / 50.0)
        nframes = len(doc["shared"]["frames"])
        for sample in prof["samples"]:
            assert all(0 <= idx < nframes for idx in sample)


# -- a profiled job end-to-end ----------------------------------------------------


def _busy(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i for i in range(100))


class TestProfiledJob:
    def test_profiles_land_in_the_journal(self, tmp_path, launcher):
        journal_path = str(tmp_path / "prof.trace.jsonl")

        def o_fn(ctx):
            _busy(0.3)
            for i in range(ctx.rank, 60, ctx.o_size):
                ctx.send(f"w{i % 7}", 1)

        def a_fn(ctx):
            list(ctx.recv_iter())
            _busy(0.3)

        job = DataMPIJob(
            name="prof-wc", o_fn=o_fn, a_fn=a_fn, o_tasks=2, a_tasks=2,
            conf={
                K.LAUNCHER: launcher,
                K.TRACE_ENABLED: True,
                K.TRACE_PATH: journal_path,
                K.PROFILE_ENABLED: True,
                K.PROFILE_HZ: 200.0,
            },
        )
        result = mpidrun(job, nprocs=2, timeout=120.0, raise_on_error=True)
        assert result.success
        journal = read_journal(journal_path)
        ranks = {p["rank"] for p in journal.profiles}
        assert ranks == {0, 1}
        assert all(p["samples"] > 0 for p in journal.profiles)
        assert all(p["hz"] == 200.0 for p in journal.profiles)
        # the deliberate busy work is attributed to engine phases
        all_phases = set()
        for profile in journal.profiles:
            all_phases.update(profile["stacks"])
        assert all_phases & {"compute", "merge"}
        # no stray shard files survive the merge
        assert not [
            name for name in os.listdir(tmp_path) if ".prof-" in name
        ]


# -- repro flame ------------------------------------------------------------------


@pytest.fixture
def profiled_journal(tmp_path):
    path = str(tmp_path / "flame.trace.jsonl")
    with JournalWriter(path) as writer:
        writer.write_meta(job="wc", nprocs=2, mode="mapreduce")
        for profile in PROFILES:
            writer.write_profile(profile)
        writer.write_summary({"workers": []})
    return path


class TestFlameCli:
    def test_flame_summarizes_and_exports(self, profiled_journal, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "wc.collapsed")
        scope = str(tmp_path / "wc.speedscope.json")
        code = main(["flame", profiled_journal, "--out", out,
                     "--speedscope", scope])
        assert code == 0
        printed = capsys.readouterr().out
        assert "rank 0: 3 samples @ 50 Hz" in printed
        assert "rank 1 (epoch 2)" in printed
        with open(out, encoding="utf-8") as f:
            lines = f.read().strip().splitlines()
        assert "rank0;compute;engine.run;app.o_fn 2" in lines
        with open(scope, encoding="utf-8") as f:
            doc = json.load(f)
        assert doc["name"] == "wc"
        assert len(doc["profiles"]) == 2

    def test_flame_rank_and_phase_filters(self, profiled_journal, capsys):
        from repro.cli import main

        assert main(["flame", profiled_journal, "--rank", "0"]) == 0
        printed = capsys.readouterr().out
        assert "rank 0" in printed and "rank 1" not in printed
        assert main(["flame", profiled_journal, "--phase", "merge"]) == 0
        printed = capsys.readouterr().out
        assert "sorter.merge" in printed and "app.o_fn" not in printed

    def test_flame_fails_cleanly_without_profiles(self, tmp_path, capsys):
        from repro.cli import main

        empty = str(tmp_path / "empty.trace.jsonl")
        with JournalWriter(empty) as writer:
            writer.write_meta(job="wc", nprocs=1, mode="common")
        assert main(["flame", empty]) == 2
        assert "no matching profiles" in capsys.readouterr().err
        assert main(["flame", str(tmp_path / "missing.jsonl")]) == 2


# -- launch flag ------------------------------------------------------------------


class TestProfileFlag:
    def test_profile_flag_sets_the_conf(self):
        from repro.cli import _extract_obs_flags

        rest, conf, _ = _extract_obs_flags(["--profile=25", "-O", "2"])
        assert rest == ["-O", "2"]
        assert conf[K.PROFILE_ENABLED] is True
        assert conf[K.PROFILE_HZ] == 25.0

    def test_bare_profile_flag_uses_the_default_rate(self):
        from repro.cli import _extract_obs_flags

        _, conf, _ = _extract_obs_flags(["--profile"])
        assert conf[K.PROFILE_ENABLED] is True
        assert K.PROFILE_HZ not in conf

    def test_bad_profile_rate_is_rejected(self):
        from repro.cli import _extract_obs_flags
        from repro.common.errors import DataMPIError

        with pytest.raises(DataMPIError):
            _extract_obs_flags(["--profile=fast"])
