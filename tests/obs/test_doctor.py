"""The repro doctor: stall signatures, automatic captures, the CLI.

Acceptance invariants (both rank backends):

* a deliberately skewed WordCount — every record routed to one hot
  partition — produces a doctor.json whose TOP finding names the
  straggler rank and attributes >= 50% of its samples to the merge
  phase;
* an injected stall (a severed worker) trips the frozen-phase-clock
  signature and automatically captures all-rank stacks containing the
  wedged shuffle-wait frame;
* the telemetry endpoint file disappears on every mpidrun exit path,
  including a raising job (the stale-endpoint regression).
"""

import importlib
import json
import os
import threading
import time

import pytest

from repro.core import mapreduce_job, mpidrun
from repro.core.constants import MPI_D_Constants as K
from repro.mpi import FaultInjector
from repro.obs.doctor import Doctor, DoctorConfig, render_report
from repro.obs.telemetry import TelemetryHub, build_snapshot

from tests.core.helpers import (
    FileCollector,
    expected_wordcount,
    wordcount_pieces,
)

_mpidrun_mod = importlib.import_module("repro.core.mpidrun")


def _snap(rank, epoch=0, seq=0, wall=1.0, bytes_sent=0, pending=0, **over):
    snap = build_snapshot(
        rank=rank, epoch=epoch, seq=seq,
        phases={"compute": wall},
        shuffle={"bytes_sent": bytes_sent, "records_received": 0,
                 "replays_dropped": 0, "duplicates_dropped": 0},
        queue={"pending": pending, "bytes_in": 0},
        tasks={"o": 0, "a": 0},
    )
    snap.update(over)
    return snap


@pytest.fixture
def captured_hub(monkeypatch):
    """Capture the driver-side hub that mpidrun wires up internally."""
    captured = {}
    orig = _mpidrun_mod._TelemetrySession.attach

    def attach(self, runtime):
        captured["hub"] = self.hub
        orig(self, runtime)

    monkeypatch.setattr(_mpidrun_mod._TelemetrySession, "attach", attach)
    return captured


# -- signatures, one by one -------------------------------------------------------


class TestStallSignature:
    def make(self, stall_seconds=5.0):
        hub = TelemetryHub()
        now = [0.0]
        doctor = Doctor(
            hub, DoctorConfig(stall_seconds=stall_seconds),
            clock=lambda: now[0],
        )
        return hub, doctor, now

    def test_frozen_phase_clock_with_live_snapshots_is_a_stall(self):
        hub, doctor, now = self.make(stall_seconds=5.0)
        hub.ingest(_snap(0, wall=1.0))
        assert doctor.evaluate() == []  # first sighting just records progress
        now[0] = 10.0
        hub.ingest(_snap(0, seq=1, wall=1.0))  # fresh snapshot, same wall
        (finding,) = doctor.evaluate()
        assert finding["kind"] == "stall"
        assert finding["rank"] == 0
        assert "phase clock frozen for 10.0s" in finding["summary"]

    def test_progress_clears_the_stall(self):
        hub, doctor, now = self.make(stall_seconds=5.0)
        hub.ingest(_snap(0, wall=1.0))
        doctor.evaluate()
        now[0] = 10.0
        hub.ingest(_snap(0, seq=1, wall=1.0))
        assert doctor.evaluate()
        hub.ingest(_snap(0, seq=2, wall=2.0))  # the wait returned
        assert doctor.evaluate() == []

    def test_aged_out_rank_is_silent_not_stalled(self):
        hub, doctor, now = self.make(stall_seconds=5.0)
        stale = _snap(0, wall=1.0)
        stale["ts"] = time.time() - 30  # last heard half a minute ago
        hub.ingest(stale)
        doctor.evaluate()
        now[0] = 10.0
        (finding,) = doctor.evaluate()
        assert finding["kind"] == "silent"
        assert "stopped reporting" in finding["summary"]

    def test_done_ranks_never_stall(self):
        hub, doctor, now = self.make(stall_seconds=5.0)
        hub.ingest(_snap(0, wall=1.0))
        doctor.evaluate()
        hub.mark_done(0)
        now[0] = 60.0
        assert doctor.evaluate() == []


class TestStragglerSignature:
    def test_profile_attribution_names_the_hot_frame(self):
        hub = TelemetryHub()
        hub.ingest(_snap(0, wall=1.0, bytes_sent=100))
        hub.ingest(_snap(1, wall=1.0, bytes_sent=100))
        slow = _snap(2, wall=8.0, bytes_sent=800)
        slow["profile"] = {
            "samples": 100,
            "phases": {"merge": 82, "communicate": 18},
            "top": [["merge", "engine.run;sorter.merge", 60],
                    ["communicate", "engine.run;plane.wait", 18]],
        }
        hub.ingest(slow)
        doctor = Doctor(hub, DoctorConfig(straggler_threshold=2.0))
        findings = doctor.evaluate()
        assert findings[0]["kind"] == "straggler"  # outranks the skew hint
        assert findings[0]["rank"] == 2
        assert "82% of samples in sorter.merge under merge" in findings[0]["summary"]
        assert "straggler score 8.0x" in findings[0]["summary"]
        assert "shuffle skew 8.0x" in findings[0]["summary"]
        details = findings[0]["details"]
        assert details["source"] == "profile"
        assert details["phase"] == "merge" and details["phase_pct"] == 82.0
        # the skew hint rides along lower in the ranking
        assert {f["kind"] for f in findings} >= {"straggler", "shuffle-skew"}

    def test_phase_clock_fallback_without_a_profile(self):
        hub = TelemetryHub()
        hub.ingest(_snap(0, wall=1.0))
        hub.ingest(_snap(1, wall=1.0))
        hub.ingest(_snap(2, wall=9.0))  # no profile summary attached
        doctor = Doctor(hub, DoctorConfig(straggler_threshold=2.0))
        findings = [f for f in doctor.evaluate() if f["kind"] == "straggler"]
        assert findings[0]["details"]["source"] == "phases"
        assert findings[0]["details"]["phase"] == "compute"
        assert "% of wall time in compute" in findings[0]["summary"]

    def test_below_threshold_is_quiet(self):
        hub = TelemetryHub()
        hub.ingest(_snap(0, wall=1.0))
        hub.ingest(_snap(1, wall=1.5))
        doctor = Doctor(hub, DoctorConfig(straggler_threshold=2.0))
        assert [f for f in doctor.evaluate() if f["kind"] == "straggler"] == []


class TestQueueAndChurnSignatures:
    def test_queue_growth(self):
        hub = TelemetryHub()
        hub.ingest(_snap(0, pending=50))
        doctor = Doctor(hub, DoctorConfig(queue_depth=10))
        findings = [f for f in doctor.evaluate() if f["kind"] == "queue-growth"]
        assert findings and findings[0]["rank"] == 0
        assert "50 envelopes pending" in findings[0]["summary"]

    def test_redelivery_churn_fires_on_deltas_only(self):
        class _ScriptedHub:
            runtime = None

            def __init__(self):
                self.recovery = {"respawns": 1, "redelivered_frames": 40}

            def per_rank(self):
                return []

            def rollups(self):
                return {"recovery": dict(self.recovery)}

            def latest(self):
                return {}

        hub = _ScriptedHub()
        doctor = Doctor(hub, DoctorConfig())
        (finding,) = doctor.evaluate()
        assert finding["kind"] == "redelivery-churn"
        assert "respawns +1" in finding["summary"]
        assert doctor.evaluate() == []  # counters flat -> churn over


# -- captures ---------------------------------------------------------------------


class TestCapture:
    def test_capture_ingests_local_dumps(self):
        class _Runtime:
            def request_stack_dump(self):
                return [{"rank": 3, "epoch": 0, "pid": os.getpid(),
                         "ts": time.time(),
                         "threads": [{"name": "engine-3", "ident": 1,
                                      "phase": "communicate",
                                      "stack": ["shuffle.wait_complete:178"]}]}]

        hub = TelemetryHub()
        hub.bind_runtime(_Runtime())
        doctor = Doctor(hub, DoctorConfig(capture_grace=0.0))
        record = doctor.capture("unit test")
        assert record["reason"] == "unit test"
        assert [d["rank"] for d in record["dumps"]] == [3]
        report = doctor.report()
        assert report["captures"][-1]["dumps"][0]["rank"] == 3
        rendered = render_report(report)
        assert "shuffle.wait_complete:178" in rendered

    def test_report_write_is_valid_json(self, tmp_path):
        doctor = Doctor(TelemetryHub(), DoctorConfig(), job="wc")
        doctor.evaluate()
        path = doctor.write_report(str(tmp_path / "doctor.json"))
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        assert doc["job"] == "wc"
        assert doc["evaluations"] == 1
        assert doc["thresholds"]["stall_seconds"] == DoctorConfig().stall_seconds
        assert "no findings: all ranks healthy" in render_report(doc)


# -- acceptance: skewed WordCount names the straggler -----------------------------


def _hot_partitioner(key, value, num_partitions):
    return 0  # every record lands on one partition: deliberate skew


def _hot_reducer(word, counts, emit):
    deadline = time.perf_counter() + 0.004
    while time.perf_counter() < deadline:
        pass  # the hot frame the profiler must attribute
    emit(word, sum(counts))


SKEW_TEXTS = [f"w{i:03d} x{i:03d}" for i in range(150)]  # 300 distinct keys


class TestDoctorEndToEnd:
    def test_skewed_wordcount_names_the_straggler(
        self, tmp_path, launcher, captured_hub
    ):
        doctor_path = str(tmp_path / "doctor.json")
        provider, mapper, _ = wordcount_pieces(SKEW_TEXTS)
        out = FileCollector(tmp_path / "out")
        job = mapreduce_job(
            "skew-wc", provider, mapper, _hot_reducer, out,
            o_tasks=3, a_tasks=3, partitioner=_hot_partitioner,
            conf={
                K.LAUNCHER: launcher,
                K.TELEMETRY_ENABLED: True,
                K.TELEMETRY_INTERVAL_SECONDS: 0.05,
                K.DOCTOR_ENABLED: True,
                K.DOCTOR_PATH: doctor_path,
                K.DOCTOR_INTERVAL_SECONDS: 0.1,
                K.PROFILE_ENABLED: True,
                K.PROFILE_HZ: 200.0,
            },
        )
        result = mpidrun(job, nprocs=3, timeout=120.0, raise_on_error=True)
        assert result.success
        assert out.merged() == expected_wordcount(SKEW_TEXTS)

        # the hot partition made exactly one rank do all the merging
        rows = captured_hub["hub"].per_rank()
        expected_rank = max(rows, key=lambda r: r["wall_s"])["rank"]

        with open(doctor_path, encoding="utf-8") as f:
            report = json.load(f)
        top = report["findings"][0]
        assert top["kind"] == "straggler"
        assert top["rank"] == expected_rank
        assert top["details"]["source"] == "profile"
        assert top["details"]["phase"] == "merge"
        assert top["details"]["phase_pct"] >= 50.0
        # the same report rides the JobResult
        assert result.doctor["findings"][0]["kind"] == "straggler"
        assert result.doctor_path == doctor_path

    def test_injected_stall_triggers_stack_capture(
        self, tmp_path, launcher
    ):
        doctor_path = str(tmp_path / "stall.doctor.json")
        injector = FaultInjector()
        injector.sever(2)  # worker 1: globals are driver=0, workers=1..n
        provider, mapper, reducer = wordcount_pieces(
            [f"s{i % 5} t{i % 3}" for i in range(40)]
        )
        job = mapreduce_job(
            "stall-wc", provider, mapper, reducer,
            FileCollector(tmp_path / "out"), o_tasks=2, a_tasks=2,
            conf={
                K.LAUNCHER: launcher,
                K.TELEMETRY_ENABLED: True,
                K.TELEMETRY_INTERVAL_SECONDS: 0.05,
                K.DOCTOR_ENABLED: True,
                K.DOCTOR_PATH: doctor_path,
                K.DOCTOR_INTERVAL_SECONDS: 0.1,
                K.DOCTOR_STALL_SECONDS: 1.0,
                K.PLANE_TIMEOUT_SECONDS: 10.0,
                # keep the heartbeat detector out of the way: the doctor
                # must see the wedge, not a declared-dead worker
                K.HEARTBEAT_DEADLINE_SECONDS: 120.0,
            },
        )
        result = mpidrun(
            job, nprocs=2, timeout=120.0, fault_injector=injector,
            raise_on_error=False,
        )
        assert not result.success

        with open(doctor_path, encoding="utf-8") as f:
            report = json.load(f)
        assert {f["kind"] for f in report["findings"]} & {"stall", "silent"}
        captures = report["captures"]
        assert captures, "the stall never triggered an automatic capture"
        assert captures[0]["reason"] == "stall detected"
        # the capture holds the wedged rank's live stack: parked inside
        # the shuffle wait, in the communicate phase
        wedged = [
            thread
            for capture in captures
            for dump in capture["dumps"]
            for thread in dump.get("threads", [])
            if any("wait_complete" in frame for frame in thread["stack"])
        ]
        assert wedged, "no capture contains the wedged shuffle-wait frame"
        assert any(t["phase"] == "communicate" for t in wedged)


# -- the endpoint file dies with the job (all exit paths) -------------------------


def _raise_o(ctx):
    raise RuntimeError("boom")


def _noop_a(ctx):
    list(ctx.recv_iter())


class TestEndpointCleanup:
    def test_raising_job_leaves_no_endpoint_file(self, tmp_path, launcher):
        from repro.core import DataMPIJob

        endpoint = str(tmp_path / "job.endpoint")
        job = DataMPIJob(
            name="boom", o_fn=_raise_o, a_fn=_noop_a, o_tasks=2, a_tasks=2,
            conf={
                K.LAUNCHER: launcher,
                K.TELEMETRY_ENABLED: True,
                K.TELEMETRY_ENDPOINT_FILE: endpoint,
            },
        )
        result = mpidrun(job, nprocs=2, timeout=120.0, raise_on_error=False)
        assert not result.success
        assert not os.path.exists(endpoint)

    def test_raise_on_error_path_also_cleans_up(self, tmp_path, launcher):
        from repro.common.errors import JobFailedError
        from repro.core import DataMPIJob

        endpoint = str(tmp_path / "job.endpoint")
        job = DataMPIJob(
            name="boom", o_fn=_raise_o, a_fn=_noop_a, o_tasks=2, a_tasks=2,
            conf={
                K.LAUNCHER: launcher,
                K.TELEMETRY_ENABLED: True,
                K.TELEMETRY_ENDPOINT_FILE: endpoint,
            },
        )
        with pytest.raises(JobFailedError):
            mpidrun(job, nprocs=2, timeout=120.0, raise_on_error=True)
        assert not os.path.exists(endpoint)

    def test_close_unlinks_even_when_server_stop_raises(self, tmp_path):
        from repro.common.config import Configuration
        from repro.core import DataMPIJob

        endpoint = str(tmp_path / "job.endpoint")
        job = DataMPIJob(
            name="wc", o_fn=_noop_a, a_fn=_noop_a, o_tasks=1, a_tasks=1,
        )
        conf = Configuration({
            K.TELEMETRY_ENABLED: True,
            K.TELEMETRY_ENDPOINT_FILE: endpoint,
        })
        session = _mpidrun_mod._TelemetrySession(job, conf)
        assert os.path.exists(endpoint)

        def exploding_stop():
            raise RuntimeError("stop failed")

        session.server.stop, orig_stop = exploding_stop, session.server.stop
        try:
            session.close()  # must swallow the stop failure...
        finally:
            orig_stop()
        assert not os.path.exists(endpoint)  # ...and still unlink


# -- repro doctor (the CLI) -------------------------------------------------------


@pytest.fixture
def served_doctor(tmp_path):
    """A live endpoint whose RPC target includes the doctor handlers."""
    from repro.rpc.server import SocketRpcServer

    hub = TelemetryHub(job="wc")
    hub.ingest(_snap(0, wall=1.0))
    hub.ingest(_snap(1, wall=1.0))
    hub.ingest(_snap(2, wall=9.0))
    doctor = Doctor(hub, DoctorConfig(capture_grace=0.0), job="wc")
    doctor.evaluate()
    server = SocketRpcServer(
        {**hub.rpc_target(), **doctor.rpc_target()},
        num_handlers=2, name="test-doctor",
    )
    server.start()
    endpoint = tmp_path / "job.endpoint"
    address = server.address
    endpoint.write_text(json.dumps({
        "address": list(address) if isinstance(address, tuple) else address,
        "job": "wc", "pid": os.getpid(),
    }))
    yield str(endpoint), doctor
    server.stop()


class TestDoctorCli:
    def test_doctor_renders_a_live_report(self, served_doctor, capsys):
        from repro.cli import main

        endpoint, _ = served_doctor
        assert main(["doctor", endpoint]) == 0
        out = capsys.readouterr().out
        assert "doctor report — job wc" in out
        assert "[straggler]" in out

    def test_doctor_capture_flag_triggers_a_capture(self, served_doctor, capsys):
        from repro.cli import main

        endpoint, doctor = served_doctor
        assert main(["doctor", endpoint, "--capture", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["captures"] and doc["captures"][-1]["reason"] == "rpc request"

    def test_doctor_reads_a_written_report(self, tmp_path, capsys):
        from repro.cli import main

        doctor = Doctor(TelemetryHub(), DoctorConfig(), job="wc")
        doctor.evaluate()
        path = doctor.write_report(str(tmp_path / "doctor.json"))
        assert main(["doctor", path]) == 0
        assert "doctor report — job wc" in capsys.readouterr().out
        out_path = str(tmp_path / "copy.json")
        assert main(["doctor", path, "--out", out_path]) == 0
        with open(out_path, encoding="utf-8") as f:
            assert json.load(f)["job"] == "wc"

    def test_doctor_fails_cleanly_without_a_target(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["doctor", str(tmp_path / "missing.endpoint")]) == 2
        assert "no such endpoint file or socket" in capsys.readouterr().err

    def test_doctor_explains_a_doctorless_job(self, tmp_path, capsys):
        from repro.cli import main
        from repro.rpc.server import SocketRpcServer

        hub = TelemetryHub(job="wc")
        server = SocketRpcServer(hub.rpc_target(), num_handlers=2,
                                 name="test-no-doctor")
        server.start()
        endpoint = tmp_path / "job.endpoint"
        address = server.address
        endpoint.write_text(json.dumps({
            "address": list(address) if isinstance(address, tuple) else address,
            "job": "wc", "pid": os.getpid(),
        }))
        try:
            assert main(["doctor", str(endpoint)]) == 2
            assert "no diagnosis engine" in capsys.readouterr().err
        finally:
            server.stop()


class TestDoctorFlag:
    def test_doctor_flag_sets_the_conf(self):
        from repro.cli import _extract_obs_flags

        rest, conf, _ = _extract_obs_flags(["--doctor=/tmp/d.json", "-O", "2"])
        assert rest == ["-O", "2"]
        assert conf[K.DOCTOR_ENABLED] is True
        assert conf[K.DOCTOR_PATH] == "/tmp/d.json"

    def test_bare_doctor_flag_enables_with_default_path(self):
        from repro.cli import _extract_obs_flags

        _, conf, _ = _extract_obs_flags(["--doctor"])
        assert conf[K.DOCTOR_ENABLED] is True
        assert K.DOCTOR_PATH not in conf
