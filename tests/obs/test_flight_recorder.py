"""End-to-end flight recorder tests: traced jobs, the journal they leave,
the inspector's report, and the ``repro trace`` CLI."""

import json

import pytest

from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.constants import MPI_D_Constants as K
from repro.obs.inspect import (
    COVERAGE_PHASES,
    coverage,
    failure_timeline,
    format_report,
    phase_table,
    summarize_journal,
    top_tasks,
)
from repro.obs.journal import read_journal
from repro.obs.tracer import TRACER


def _job(name="traced", conf=None):
    def o_fn(ctx):
        for i in range(200):
            ctx.send(f"k{i % 20:03d}", 1)

    def a_fn(ctx):
        for _ in ctx.recv_iter():
            pass

    return DataMPIJob(
        name, o_fn, a_fn, o_tasks=2, a_tasks=2, mode=Mode.MAPREDUCE,
        conf=conf,
    )


@pytest.fixture()
def traced_result(tmp_path):
    path = str(tmp_path / "job.trace.jsonl")
    conf = {K.TRACE_ENABLED: True, K.TRACE_PATH: path,
            K.TRACE_METRICS_INTERVAL_SECONDS: 0.02}
    result = mpidrun(_job(conf=conf), nprocs=2, raise_on_error=True)
    assert TRACER.enabled is False  # always returned to the cheap state
    return result, path


class TestTracedRun:
    def test_result_carries_trace_path(self, traced_result):
        result, path = traced_result
        assert result.success
        assert result.trace_path == path

    def test_journal_has_all_record_types(self, traced_result):
        _, path = traced_result
        j = read_journal(path)
        assert j.meta["job"] == "traced"
        assert j.meta["nprocs"] == 2
        assert j.spans, "expected span events"
        assert j.summary["success"] is True
        assert "process.cpu.seconds" in j.series

    def test_task_spans_cover_every_attempt(self, traced_result):
        result, path = traced_result
        j = read_journal(path)
        task_spans = [e for e in j.spans if e.get("cat") == "task"]
        assert len(task_spans) == len(result.metrics.tasks) == 4

    def test_phase_coverage_meets_the_bar(self, traced_result):
        _, path = traced_result
        j = read_journal(path)
        assert coverage(j) >= 0.95
        phases = phase_table(j)
        assert set(phases) & set(COVERAGE_PHASES)

    def test_worker_summary_per_rank(self, traced_result):
        _, path = traced_result
        workers = read_journal(path).summary["workers"]
        assert [w["rank"] for w in workers] == [0, 1]
        for w in workers:
            assert w["wall_seconds"] > 0
            assert w["phase_times"]

    def test_untraced_run_leaves_tracer_cold_and_no_path(self):
        result = mpidrun(_job("cold"), nprocs=2, raise_on_error=True)
        assert result.success
        assert result.trace_path == ""
        assert TRACER.enabled is False
        # phase accounting is always on, tracing or not
        assert result.metrics.phase_times
        assert len(result.metrics.tasks) == 4


class TestTaskMetricsTable:
    def test_per_task_rows(self):
        result = mpidrun(_job("table"), nprocs=2, raise_on_error=True)
        rows = result.task_metrics
        assert len(rows) == 4
        kinds = sorted(t.kind for t in rows)
        assert kinds == ["A", "A", "O", "O"]
        for t in rows:
            assert t.worker in (0, 1)
            assert t.duration > 0
        o_emitted = sum(
            t.records_emitted for t in rows if t.kind == "O"
        )
        assert o_emitted == 400
        d = rows[0].as_dict()
        assert {"task_id", "kind", "worker", "duration"} <= set(d)


class TestInspector:
    def test_summary_and_report(self, traced_result):
        _, path = traced_result
        s = summarize_journal(read_journal(path), n_tasks=3)
        assert s["job"] == "traced"
        assert s["wall_seconds"] > 0
        assert len(s["top_tasks"]) == 3
        assert s["top_tasks"][0]["duration"] >= s["top_tasks"][-1]["duration"]
        report = format_report(s)
        assert "phase times" in report
        assert "coverage" in report

    def test_failure_timeline_from_traced_crash(self, tmp_path):
        path = str(tmp_path / "crash.trace.jsonl")

        def bad_o(ctx):
            raise RuntimeError("injected")

        job = DataMPIJob(
            "crash", bad_o, lambda ctx: list(ctx.recv_iter()),
            o_tasks=1, a_tasks=1, mode=Mode.MAPREDUCE,
            conf={K.TRACE_ENABLED: True, K.TRACE_PATH: path},
        )
        result = mpidrun(job, nprocs=1)
        assert not result.success
        j = read_journal(path)
        timeline = failure_timeline(j)
        assert timeline, "expected failure instants/records"
        assert any(f["cat"] == "failure" for f in timeline)
        assert j.summary["success"] is False


class TestTraceCli:
    def test_report_and_chrome_export(self, traced_result, tmp_path, capsys):
        from repro.cli import trace_main

        _, path = traced_result
        out = str(tmp_path / "trace.json")
        rc = trace_main([path, "--top", "2", "--out", out,
                         "--check-coverage", "95"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "phase times" in printed
        assert "coverage check passed" in printed
        with open(out, encoding="utf-8") as f:
            chrome = json.load(f)
        assert chrome["traceEvents"]

    def test_json_output(self, traced_result, capsys):
        from repro.cli import trace_main

        _, path = traced_result
        assert trace_main([path, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["job"] == "traced"
        assert summary["coverage"] >= 0.95

    def test_coverage_gate_fails(self, tmp_path, capsys):
        from repro.cli import trace_main
        from repro.obs.journal import write_journal

        path = str(tmp_path / "low.trace.jsonl")
        write_journal(
            path, meta={"job": "low"},
            events=[{"ph": "i", "ts": 0.0, "name": "e", "tid": "t",
                     "rank": 0}],
            summary={"workers": [{"rank": 0, "wall_seconds": 10.0,
                                  "phase_times": {"compute": 1.0}}]},
        )
        assert trace_main([path, "--check-coverage", "95"]) == 1

    def test_missing_journal(self, tmp_path, capsys):
        from repro.cli import trace_main

        assert trace_main([str(tmp_path / "nope.jsonl")]) == 2

    def test_launcher_flags(self, tmp_path, capsys):
        from repro.cli import main

        journal = str(tmp_path / "wc.trace.jsonl")
        metrics = str(tmp_path / "wc.metrics.json")
        rc = main([
            f"--trace={journal}", "--metrics-json", metrics,
            "-O", "2", "-A", "2", "-M", "mapreduce",
            "-jar", "demos.jar", "WordCount", "50",
        ])
        assert rc == 0
        assert read_journal(journal).spans
        with open(metrics, encoding="utf-8") as f:
            payload = json.load(f)
        assert payload["success"] is True
        assert payload["trace_path"] == journal
        assert payload["tasks"]
        assert payload["phase_times"]
