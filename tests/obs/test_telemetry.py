"""The live telemetry plane: snapshots, hub rollups, scraping, flows.

Covers the tentpole invariants:

* per-rank snapshots ship while the job runs and a concurrent client
  can scrape Prometheus text / per-rank tables over RPC mid-run;
* the hub keys series by ``(rank, epoch)`` so a respawned rank's
  reborn incarnation never clobbers its predecessor's history;
* shuffle send/recv spans carry a deterministic causal pair that the
  Chrome exporter turns into cross-rank flow arrows;
* ``repro top`` renders the hub over the endpoint file.
"""

import importlib
import json
import os
import threading
import time

import pytest

from repro.core import DataMPIJob, mapreduce_job, mpidrun
from repro.core.constants import MPI_D_Constants as K, SHUFFLE_TAG
from repro.mpi import FaultInjector
from repro.obs.journal import Journal, merge_shards, read_journal, to_chrome_trace
from repro.obs.inspect import format_report, summarize_journal
from repro.obs.metrics import _process_rss_bytes
from repro.obs.telemetry import COVERAGE_PHASES, TelemetryHub, build_snapshot
from repro.obs.tracer import flow_id

from tests.core.helpers import FileCollector, expected_wordcount, wordcount_pieces

_mpidrun_mod = importlib.import_module("repro.core.mpidrun")


# -- flow ids ---------------------------------------------------------------------


class TestFlowId:
    def test_deterministic_across_processes(self):
        # blake2b, not hash(): the sender and receiver run in different
        # processes with different PYTHONHASHSEEDs and must still agree
        assert flow_id("fwd:0>1", 3, 7) == flow_id("fwd:0>1", 3, 7)

    def test_fits_a_signed_wire_header_field(self):
        for seq in range(64):
            assert 0 <= flow_id("fwd:0>0", 1, seq) < 1 << 63

    def test_domains_and_channels_do_not_collide(self):
        base = flow_id("fwd:0>1", 3, 7)
        assert base != flow_id("fwd:0>1", 3, 7, domain=1)  # span vs flow
        assert base != flow_id("fwd:0>2", 3, 7)  # different receiver
        assert base != flow_id("fwd:0>1", 2, 7)  # different origin
        assert base != flow_id("fwd:0>1", 3, 8)  # different batch


# -- the RSS gauge fix ------------------------------------------------------------


class TestProcessRss:
    def test_reports_current_rss_not_the_high_water_mark(self):
        rss = _process_rss_bytes()
        assert rss > 0
        if os.path.exists("/proc/self/statm"):
            with open("/proc/self/statm", "rb") as f:
                pages = int(f.read().split()[1])
            statm = pages * os.sysconf("SC_PAGE_SIZE")
            # the gauge must track /proc (current), allowing for the
            # allocation churn between the two reads
            assert abs(rss - statm) / statm < 0.5


# -- snapshots --------------------------------------------------------------------


class TestBuildSnapshot:
    def test_snapshot_shape(self):
        snap = build_snapshot(
            rank=2, epoch=1, seq=5, phases={"compute": 0.5},
            shuffle={"bytes_sent": 10}, queue={"pending": 1, "bytes_in": 64},
            tasks={"o": 3, "a": 1},
        )
        assert snap["rank"] == 2
        assert snap["epoch"] == 1
        assert snap["seq"] == 5
        assert snap["pid"] == os.getpid()
        assert snap["phases"] == {"compute": 0.5}
        assert snap["process"]["rss_bytes"] > 0
        assert snap["process"]["cpu_seconds"] >= 0


def _snap(rank, epoch=0, seq=0, wall=1.0, bytes_sent=0, **over):
    snap = build_snapshot(
        rank=rank, epoch=epoch, seq=seq,
        phases={"compute": wall},
        shuffle={"bytes_sent": bytes_sent, "records_received": 0,
                 "replays_dropped": 0, "duplicates_dropped": 0},
        queue={"pending": 0, "bytes_in": 0},
        tasks={"o": 0, "a": 0},
    )
    snap.update(over)
    return snap


# -- the hub ----------------------------------------------------------------------


class TestTelemetryHub:
    def test_series_keyed_by_rank_and_epoch(self):
        hub = TelemetryHub()
        hub.ingest(_snap(0, epoch=0, seq=0))
        hub.ingest(_snap(0, epoch=0, seq=1))
        hub.ingest(_snap(0, epoch=1, seq=0))  # reborn incarnation
        assert set(hub.series_keys()) == {(0, 0), (0, 1)}
        # the predecessor's history survives the respawn
        assert len(hub.series(0, epoch=0)) == 2
        assert len(hub.series(0, epoch=1)) == 1

    def test_latest_prefers_the_highest_epoch(self):
        hub = TelemetryHub()
        hub.ingest(_snap(0, epoch=0, seq=9))
        hub.ingest(_snap(0, epoch=1, seq=0))
        latest = hub.latest()
        assert latest[0]["epoch"] == 1

    def test_ring_is_bounded(self):
        hub = TelemetryHub(ring=4)
        for seq in range(32):
            hub.ingest(_snap(1, seq=seq))
        series = hub.series(1)
        assert len(series) == 4
        assert series[-1]["seq"] == 31  # keeps the newest

    def test_malformed_snapshots_are_dropped_not_fatal(self):
        hub = TelemetryHub()
        hub.ingest(None)
        hub.ingest(b"garbage")
        hub.ingest({"no_rank": True})
        assert hub.series_keys() == []
        assert hub.snapshots_ingested == 0

    def test_rollups_quantiles_and_scores(self):
        hub = TelemetryHub()
        hub.expect(4)
        for rank, wall in enumerate([1.0, 1.0, 1.0, 3.0]):
            hub.ingest(_snap(rank, wall=wall, bytes_sent=100 * (rank + 1)))
        hub.mark_done(0)
        rollups = hub.rollups()
        assert rollups["ranks_expected"] == 4
        assert rollups["ranks_reporting"] == 4
        assert rollups["ranks_done"] == 1
        compute = rollups["phases"]["compute"]
        assert compute["p50"] == pytest.approx(1.0)
        assert compute["max"] == pytest.approx(3.0)
        # slowest rank took 3x the median wall -> straggler score 3
        assert rollups["straggler_score"] == pytest.approx(3.0)
        # 400 bytes vs median 250 -> skew 1.6
        assert rollups["shuffle_skew"] == pytest.approx(1.6)

    def test_prometheus_text_exposition(self):
        hub = TelemetryHub()
        hub.expect(2)
        hub.ingest(_snap(0, wall=0.5, bytes_sent=128))
        hub.ingest(_snap(1, epoch=1, wall=0.7))
        text = hub.prometheus_text()
        assert text.endswith("\n")
        for family in (
            "datampi_phase_seconds",
            "datampi_phase_quantile_seconds",
            "datampi_shuffle_bytes_sent_total",
            "datampi_queue_pending",
            "datampi_process_rss_bytes",
            "datampi_telemetry_snapshots_total",
            "datampi_straggler_score",
            "datampi_shuffle_skew",
            "datampi_recovery_total",
            "datampi_ranks_reporting",
        ):
            assert f"# TYPE {family}" in text, family
        assert 'datampi_shuffle_bytes_sent_total{rank="0"} 128' in text
        assert 'rank="1",epoch="1"' in text  # reborn label visible

    def test_rpc_target_exposes_the_scrape_methods(self):
        hub = TelemetryHub()
        hub.ingest(_snap(0))
        target = hub.rpc_target()
        assert "# HELP" in target["telemetry_scrape"]()
        assert target["telemetry_ranks"]()[0]["rank"] == 0
        assert target["telemetry_rollups"]()["ranks_reporting"] == 1


# -- live shipping ----------------------------------------------------------------


def _wordcount_job(name, conf, texts, out, o_tasks=4, a_tasks=2):
    provider, mapper, reducer = wordcount_pieces(texts)
    return mapreduce_job(
        name, provider, mapper, reducer, out, o_tasks=o_tasks,
        a_tasks=a_tasks, conf=conf,
    )


@pytest.fixture
def captured_hub(monkeypatch):
    """Capture the driver-side hub that mpidrun wires up internally."""
    captured = {}
    orig = _mpidrun_mod._TelemetrySession.attach

    def attach(self, runtime):
        captured["hub"] = self.hub
        orig(self, runtime)

    monkeypatch.setattr(_mpidrun_mod._TelemetrySession, "attach", attach)
    return captured


TEXTS = [f"tele w{i % 7} w{(i * 3) % 5} live" for i in range(40)]


class TestLiveTelemetry:
    def test_every_rank_ships_snapshots(self, tmp_path, launcher, captured_hub):
        out = FileCollector(tmp_path / "out")
        conf = {
            K.LAUNCHER: launcher,
            K.TELEMETRY_ENABLED: True,
            K.TELEMETRY_INTERVAL_SECONDS: 0.05,
        }
        result = mpidrun(
            _wordcount_job("tele-wc", conf, TEXTS, out), nprocs=2,
            timeout=120.0, raise_on_error=True,
        )
        assert result.success
        assert out.merged() == expected_wordcount(TEXTS)
        hub = captured_hub["hub"]
        latest = hub.latest()
        assert set(latest) == {0, 1}
        rollups = hub.rollups()
        assert rollups["ranks_reporting"] == 2
        assert rollups["ranks_done"] == 2
        assert "# HELP" in hub.prometheus_text()

    def test_concurrent_scrape_mid_run_on_process_backend(self, tmp_path):
        from repro.rpc import SocketRpcClient

        endpoint_file = str(tmp_path / "job.endpoint")
        scrapes = []

        def scraper():
            deadline = time.monotonic() + 60
            while not os.path.exists(endpoint_file):
                if time.monotonic() > deadline:
                    return
                time.sleep(0.02)
            with open(endpoint_file, encoding="utf-8") as f:
                doc = json.load(f)
            address = doc["address"]
            if isinstance(address, list):
                address = tuple(address)
            client = SocketRpcClient(address, timeout=15.0)
            try:
                while True:
                    try:
                        scrapes.append(
                            (client.call("telemetry_scrape"),
                             client.call("telemetry_rollups"))
                        )
                    except Exception:
                        return  # job finished, endpoint gone
                    time.sleep(0.05)
            finally:
                client.close()

        def slow_o(ctx):
            for i in range(ctx.rank, 80, ctx.o_size):
                ctx.send(f"w{i % 9}", 1)
                time.sleep(0.005)  # keep the job alive long enough to scrape

        def a_fn(ctx):
            list(ctx.recv_iter())

        thread = threading.Thread(target=scraper)
        thread.start()
        job = DataMPIJob(
            name="scrape-wc", o_fn=slow_o, a_fn=a_fn, o_tasks=4, a_tasks=2,
            conf={
                K.LAUNCHER: "processes",
                K.TELEMETRY_ENABLED: True,
                K.TELEMETRY_INTERVAL_SECONDS: 0.05,
                K.TELEMETRY_ENDPOINT_FILE: endpoint_file,
            },
        )
        result = mpidrun(job, nprocs=2, timeout=120.0, raise_on_error=True)
        thread.join(timeout=60)
        assert result.success
        assert scrapes, "no scrape landed while the job ran"
        text, rollups = scrapes[-1]
        assert "# TYPE datampi_phase_seconds gauge" in text
        assert rollups["ranks_reporting"] >= 1
        # the endpoint file is torn down with the job
        assert not os.path.exists(endpoint_file)

    def test_respawned_rank_does_not_clobber_predecessor(
        self, tmp_path, captured_hub
    ):
        injector = FaultInjector()
        rule = injector.kill_rank(tag=SHUFFLE_TAG, skip_first=3, max_matches=1)
        out = FileCollector(tmp_path / "out")
        conf = {
            K.SHUFFLE_BATCH_BYTES: 64,
            K.LAUNCHER: "processes",
            K.RANK_MAX_RESPAWNS: 2,
            K.PLANE_TIMEOUT_SECONDS: 60.0,
            K.HEARTBEAT_DEADLINE_SECONDS: 120.0,
            K.TELEMETRY_ENABLED: True,
            K.TELEMETRY_INTERVAL_SECONDS: 0.02,
        }
        result = mpidrun(
            _wordcount_job("tele-respawn", conf, TEXTS, out), nprocs=2,
            timeout=120.0, fault_injector=injector, raise_on_error=True,
        )
        assert result.success
        assert rule.applied == 1
        assert result.metrics.respawns >= 1
        assert out.merged() == expected_wordcount(TEXTS)
        hub = captured_hub["hub"]
        keys = hub.series_keys()
        epochs = {}
        for rank, epoch in keys:
            epochs.setdefault(rank, set()).add(epoch)
        reborn = [rank for rank, eps in epochs.items() if len(eps) > 1]
        assert reborn, f"no rank reported from two incarnations: {keys}"
        rank = reborn[0]
        # both lives kept their own series; latest() follows the new one
        assert len(hub.series(rank, epoch=0)) >= 1
        assert len(hub.series(rank, epoch=1)) >= 1
        assert hub.latest()[rank]["epoch"] == 1
        assert hub.rollups()["recovery"]["respawns"] >= 1


# -- trace shards and causal flows ------------------------------------------------


class TestTraceShardsAndFlows:
    def test_merge_keeps_both_incarnations_shards(self, tmp_path):
        # respawned workers write shard-g<gid>e<epoch>.jsonl next to the
        # journal; the merge must collect both lives, not let the reborn
        # shard shadow its predecessor
        journal = tmp_path / "wc.trace.jsonl"
        first = tmp_path / "wc.trace.jsonl.a0.shard-g1.jsonl"
        reborn = tmp_path / "wc.trace.jsonl.a0.shard-g1e1.jsonl"
        first.write_text(json.dumps(
            {"ph": "i", "name": "life-0", "ts": 1.0, "rank": 1}) + "\n")
        reborn.write_text(json.dumps(
            {"ph": "i", "name": "life-1", "ts": 2.0, "rank": 1}) + "\n")
        events = merge_shards(str(journal), cleanup=False)
        assert {e["name"] for e in events} == {"life-0", "life-1"}

    def test_chrome_trace_links_sender_and_receiver_spans(
        self, tmp_path, launcher
    ):
        path = str(tmp_path / "flow.trace.jsonl")

        def o_fn(ctx):
            for i in range(ctx.rank, 60, ctx.o_size):
                ctx.send(f"k{i % 7}", 1)

        def a_fn(ctx):
            list(ctx.recv_iter())

        job = DataMPIJob(
            name="flow", o_fn=o_fn, a_fn=a_fn, o_tasks=2, a_tasks=2,
            conf={K.LAUNCHER: launcher, K.TRACE_ENABLED: True,
                  K.TRACE_PATH: path},
        )
        result = mpidrun(job, nprocs=2, timeout=120.0, raise_on_error=True)
        trace = to_chrome_trace(read_journal(result.trace_path))
        starts = [e for e in trace["traceEvents"] if e.get("ph") == "s"]
        finishes = [e for e in trace["traceEvents"] if e.get("ph") == "f"]
        assert starts and finishes
        linked = {e["id"] for e in starts} & {e["id"] for e in finishes}
        assert linked, "no send/recv flow pair shares an id"
        for event in finishes:
            assert event["bp"] == "e"  # bind to the enclosing recv span
        # at least one arrow crosses ranks (different chrome pids)
        start_pids = {e["id"]: e["pid"] for e in starts}
        assert any(
            start_pids.get(e["id"]) not in (None, e["pid"]) for e in finishes
        )


# -- recovery counters in repro trace ---------------------------------------------


class TestTraceRecoverySummary:
    def _journal(self, recovery):
        return Journal(
            meta={"job": "wc"},
            events=[
                {"ph": "i", "name": "recovery.respawn", "cat": "recovery",
                 "ts": 1.0, "rank": -1, "args": {"gid": 1}},
            ],
            summary={"wall_seconds": 2.0, "nprocs": 2, "restarts": 0,
                     "recovery": recovery},
        )

    def test_summary_carries_the_recovery_counters(self):
        journal = self._journal(
            {"respawns": 1, "redelivered_frames": 3,
             "stale_frames_dropped": 2, "replays_dropped": 1}
        )
        summary = summarize_journal(journal)
        assert summary["recovery"]["respawns"] == 1
        assert summary["recovery"]["redelivered_frames"] == 3
        # respawn instants now ride the failure timeline
        assert any(f["cat"] == "recovery" for f in summary["failures"])
        report = format_report(summary)
        assert "rank recovery:" in report
        assert "respawns=1" in report
        assert "recovery.respawn" in report

    def test_clean_runs_stay_quiet(self):
        journal = self._journal({})
        journal.events = []
        summary = summarize_journal(journal)
        assert summary["recovery"]["respawns"] == 0
        assert "rank recovery:" not in format_report(summary)


# -- repro top --------------------------------------------------------------------


class TestReproTop:
    @pytest.fixture
    def served_hub(self, tmp_path):
        from repro.rpc.server import SocketRpcServer

        hub = TelemetryHub()
        hub.expect(2)
        hub.ingest(_snap(0, wall=0.5, bytes_sent=100))
        hub.ingest(_snap(1, wall=0.6, bytes_sent=200))
        hub.mark_done(1)
        server = SocketRpcServer(hub.rpc_target(), num_handlers=2,
                                 name="test-telemetry")
        server.start()
        endpoint = tmp_path / "job.endpoint"
        address = server.address
        endpoint.write_text(json.dumps({
            "address": list(address) if isinstance(address, tuple) else address,
            "job": "wc", "pid": os.getpid(),
        }))
        yield str(endpoint)
        server.stop()

    def test_top_once_renders_the_per_rank_table(self, served_hub, capsys):
        from repro.cli import main

        assert main(["top", served_hub, "--once"]) == 0
        out = capsys.readouterr().out
        assert "ranks 2/2 reporting" in out
        assert "done=1" in out
        for line in out.splitlines():
            if line.strip().startswith("0 "):
                break
        assert " 0 " in out and " 1 " in out  # both rank rows

    def test_top_prom_emits_the_exposition(self, served_hub, capsys):
        from repro.cli import main

        assert main(["top", served_hub, "--prom", "--once"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE datampi_phase_seconds gauge" in out

    def test_top_json_is_machine_readable(self, served_hub, capsys):
        from repro.cli import main

        assert main(["top", served_hub, "--once", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {row["rank"] for row in doc["ranks"]} == {0, 1}
        assert doc["rollups"]["ranks_reporting"] == 2

    def test_top_fails_cleanly_without_an_endpoint(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["top", str(tmp_path / "missing.endpoint"), "--once"]) == 2


# -- launch flag ------------------------------------------------------------------


class TestTelemetryFlag:
    def test_telemetry_flag_sets_the_conf(self):
        from repro.cli import _extract_obs_flags

        rest, conf, _ = _extract_obs_flags(
            ["--telemetry=/tmp/ep.json", "-O", "2"])
        assert rest == ["-O", "2"]
        assert conf[K.TELEMETRY_ENABLED] is True
        assert conf[K.TELEMETRY_ENDPOINT_FILE] == "/tmp/ep.json"

    def test_bare_telemetry_flag_enables_without_endpoint(self):
        from repro.cli import _extract_obs_flags

        _, conf, _ = _extract_obs_flags(["--telemetry"])
        assert conf[K.TELEMETRY_ENABLED] is True
        assert K.TELEMETRY_ENDPOINT_FILE not in conf


# -- exposition edge cases --------------------------------------------------------

_EXPOSITION_LINE = __import__("re").compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$"
)


class TestPrometheusEdgeCases:
    """Exposition format 0.0.4: escaping, empty hubs, NaN/inf guards."""

    def test_label_values_are_escaped(self):
        hub = TelemetryHub(job='we"ird\\job\nname')
        text = hub.prometheus_text()
        assert 'datampi_job_info{job="we\\"ird\\\\job\\nname"} 1' in text
        assert "\n\n" not in text.strip()  # the raw newline did not leak

    def test_phase_label_escaping(self):
        hub = TelemetryHub()
        hub.ingest(_snap(0, phases={'ph"ase\\x\n': 1.0}))
        text = hub.prometheus_text()
        line = next(
            l for l in text.splitlines() if l.startswith("datampi_phase_seconds")
        )
        assert 'phase="ph\\"ase\\\\x\\n"' in line

    def test_empty_hub_still_emits_a_parsable_exposition(self):
        text = TelemetryHub().prometheus_text()
        assert "# HELP datampi_job_info" in text
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert _EXPOSITION_LINE.match(line), f"malformed line: {line!r}"

    def test_nan_and_inf_render_as_prometheus_spellings(self):
        hub = TelemetryHub()
        snap = _snap(0, phases={"compute": float("nan")})
        snap["process"] = {"cpu_seconds": float("inf"),
                           "rss_bytes": float("-inf")}
        hub.ingest(snap)
        text = hub.prometheus_text()
        phase_line = next(
            l for l in text.splitlines()
            if l.startswith("datampi_phase_seconds")
        )
        assert phase_line.endswith(" NaN")
        cpu_line = next(
            l for l in text.splitlines()
            if l.startswith("datampi_process_cpu_seconds_total")
        )
        assert cpu_line.endswith(" +Inf")
        rss_line = next(
            l for l in text.splitlines()
            if l.startswith("datampi_process_rss_bytes")
        )
        assert rss_line.endswith(" -Inf")
        # every non-comment line still parses
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert _EXPOSITION_LINE.match(line), f"malformed line: {line!r}"

    def test_nan_counters_fall_back_to_zero_integers(self):
        hub = TelemetryHub()
        snap = _snap(0)
        snap["shuffle"] = {"bytes_sent": float("nan"),
                           "records_received": "not-a-number"}
        snap["queue"] = {"pending": float("inf"), "bytes_in": None}
        hub.ingest(snap)
        text = hub.prometheus_text()
        for name in ("datampi_shuffle_bytes_sent_total",
                     "datampi_shuffle_records_received_total",
                     "datampi_queue_pending", "datampi_queue_bytes"):
            line = next(l for l in text.splitlines() if l.startswith(name))
            assert line.endswith(" 0"), line  # counters stay integral
        row = hub.per_rank()[0]
        assert row["bytes_sent"] == 0 and row["pending"] == 0

    def test_weird_rank_table_values_do_not_break_top(self):
        from repro.cli import _format_top_table

        hub = TelemetryHub()
        snap = _snap(3)
        snap["shuffle"] = {"bytes_sent": float("nan"), "records_received": 0}
        hub.ingest(snap)
        rendered = _format_top_table(hub.per_rank(), hub.rollups())
        assert "   3 " in rendered
