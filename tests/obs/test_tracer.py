"""Tracer unit tests: nesting, thread attribution, and the disabled fast
path (which must not allocate)."""

import sys
import threading

import pytest

from repro.obs.tracer import TRACER, Tracer, _NULL_SPAN


@pytest.fixture()
def tracer():
    t = Tracer()
    t.enable(job="test")
    yield t
    t.disable()


class TestSpans:
    def test_span_records_complete_event(self, tracer):
        with tracer.span("outer", cat="test", args={"x": 1}):
            pass
        (event,) = tracer.drain()
        assert event["ph"] == "X"
        assert event["name"] == "outer"
        assert event["cat"] == "test"
        assert event["args"] == {"x": 1}
        assert event["dur"] >= 0.0

    def test_nested_spans_nest_in_time(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        events = {e["name"]: e for e in tracer.drain()}
        outer, inner = events["outer"], events["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9

    def test_span_set_attaches_args_mid_span(self, tracer):
        with tracer.span("s") as span:
            span.set("records", 7)
        (event,) = tracer.drain()
        assert event["args"] == {"records": 7}

    def test_instant_counter_complete(self, tracer):
        tracer.instant("boom", cat="failure", args={"worker": 2})
        tracer.counter("depth", 3, cat="q")
        tracer.complete("pre", tracer.clock() - 0.5, 0.25, cat="io")
        events = {e["name"]: e for e in tracer.drain()}
        assert events["boom"]["ph"] == "i"
        assert events["depth"]["ph"] == "C"
        assert events["depth"]["args"] == {"value": 3}
        assert events["pre"]["ph"] == "X"
        assert events["pre"]["dur"] == 0.25

    def test_drain_is_time_sorted_across_threads(self, tracer):
        def work(rank):
            tracer.bind(rank)
            with tracer.span(f"w{rank}"):
                tracer.instant(f"i{rank}")

        threads = [
            threading.Thread(target=work, args=(r,)) for r in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = tracer.drain()
        assert len(events) == 8
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
        # every event carries the rank its thread bound
        for e in events:
            assert e["rank"] == int(e["name"][1:])

    def test_enable_clears_previous_buffers(self, tracer):
        tracer.instant("old")
        tracer.enable(job="again")
        tracer.instant("new")
        names = [e["name"] for e in tracer.drain()]
        assert names == ["new"]

    def test_rebind_after_enable_generation(self, tracer):
        tracer.bind(3)
        tracer.instant("a")
        tracer.enable(job="again")
        # stale thread-local buffer must re-register, losing the old rank
        tracer.instant("b")
        (event,) = tracer.drain()
        assert event["rank"] == -1


class TestDisabledFastPath:
    def test_span_returns_shared_null_singleton(self):
        t = Tracer()
        assert t.span("x") is _NULL_SPAN
        assert t.span("y", cat="c") is _NULL_SPAN
        with t.span("z") as s:
            assert s.set("k", 1) is s

    def test_disabled_calls_do_not_allocate(self):
        t = Tracer()
        # warm up attribute caches and any lazy interning
        for _ in range(8):
            t.span("warm")
            t.instant("warm")
            t.counter("warm", 1)
            t.complete("warm", 0.0, 0.0)
        before = sys.getallocatedblocks()
        for _ in range(1000):
            t.span("hot")
            t.instant("hot")
            t.counter("hot", 1)
            t.complete("hot", 0.0, 0.0)
        grown = sys.getallocatedblocks() - before
        # zero allocations per call: any small residue is interpreter noise
        assert grown < 50, f"disabled tracer allocated {grown} blocks"

    def test_disabled_records_nothing(self):
        t = Tracer()
        t.instant("x")
        t.counter("y", 1)
        t.complete("z", 0.0, 1.0)
        with t.span("s"):
            pass
        t.enable()
        assert t.drain() == []
        t.disable()


class TestGlobalTracer:
    def test_global_tracer_disabled_by_default(self):
        assert TRACER.enabled is False
