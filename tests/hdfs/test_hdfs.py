"""Tests for the mini-HDFS substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import HDFSError
from repro.hdfs import MiniDFSCluster
from repro.hdfs.namenode import NameNode


@pytest.fixture()
def cluster():
    return MiniDFSCluster(num_nodes=4, block_size=100, replication=2)


class TestReadWrite:
    def test_roundtrip_small(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/a", b"hello world")
        assert dfs.read_file("/a") == b"hello world"

    def test_roundtrip_multiblock(self, cluster):
        dfs = cluster.client(1)
        payload = bytes(range(256)) * 10  # 2560 B -> 26 blocks of 100
        dfs.write_file("/big", payload)
        assert dfs.read_file("/big") == payload
        assert len(cluster.namenode.get_block_locations("/big")) == 26

    def test_block_sizes(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/f", b"x" * 250)
        sizes = [b.size for b in cluster.namenode.get_block_locations("/f")]
        assert sizes == [100, 100, 50]

    def test_empty_file(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/empty", b"")
        assert dfs.read_file("/empty") == b""
        assert dfs.file_size("/empty") == 0

    def test_streaming_write(self, cluster):
        dfs = cluster.client(0)
        with dfs.create("/stream") as out:
            for i in range(10):
                out.write(bytes([i]) * 37)
        assert dfs.read_file("/stream") == b"".join(bytes([i]) * 37 for i in range(10))

    def test_write_after_close_raises(self, cluster):
        dfs = cluster.client(0)
        stream = dfs.create("/f")
        stream.close()
        with pytest.raises(HDFSError):
            stream.write(b"more")

    def test_read_subset_of_blocks(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/f", b"A" * 100 + b"B" * 100 + b"C" * 100)
        assert dfs.read_blocks("/f", [0, 2]) == b"A" * 100 + b"C" * 100

    @settings(max_examples=25, deadline=None)
    @given(payload=st.binary(max_size=1000))
    def test_roundtrip_property(self, payload):
        dfs = MiniDFSCluster(num_nodes=3, block_size=64).client(0)
        dfs.write_file("/p", payload)
        assert dfs.read_file("/p") == payload


class TestPlacementAndLocality:
    def test_writer_local_first_replica(self, cluster):
        dfs = cluster.client(2)
        dfs.write_file("/local", b"z" * 300)
        for block in cluster.namenode.get_block_locations("/local"):
            assert block.locations[0] == 2

    def test_replication_factor(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/r", b"z" * 100)
        block = cluster.namenode.get_block_locations("/r")[0]
        assert len(block.locations) == 2
        assert len(set(block.locations)) == 2

    def test_replication_capped_by_cluster_size(self):
        cluster = MiniDFSCluster(num_nodes=2, block_size=10, replication=5)
        dfs = cluster.client(0)
        dfs.write_file("/f", b"ab")
        assert len(cluster.namenode.get_block_locations("/f")[0].locations) == 2

    def test_local_read_preference(self, cluster):
        writer = cluster.client(3)
        writer.write_file("/pref", b"q" * 100)
        local_reader = cluster.client(3)
        local_reader.read_file("/pref")
        assert local_reader.local_reads == 1 and local_reader.remote_reads == 0
        # a client on a node without a replica must read remotely
        block = cluster.namenode.get_block_locations("/pref")[0]
        outsider = next(n for n in range(4) if n not in block.locations)
        remote_reader = cluster.client(outsider)
        remote_reader.read_file("/pref")
        assert remote_reader.remote_reads == 1

    def test_off_cluster_client(self, cluster):
        dfs = cluster.client(None)
        dfs.write_file("/off", b"x" * 100)
        dfs.read_file("/off")
        assert dfs.remote_reads == 1

    def test_placement_spreads_over_nodes(self):
        cluster = MiniDFSCluster(num_nodes=8, block_size=10, replication=2)
        dfs = cluster.client(0)
        for i in range(40):
            dfs.write_file(f"/f{i}", b"0123456789")
        counts = cluster.namenode.block_distribution()
        # node 0 holds every first replica; others share the seconds
        assert counts[0] == 40
        assert sum(counts[n] for n in range(1, 8)) == 40
        assert max(counts[n] for n in range(1, 8)) < 20  # not all on one node

    def test_locality_map(self, cluster):
        dfs = cluster.client(1)
        dfs.write_file("/lm", b"z" * 250)
        lm = cluster.locality_map("/lm")
        assert [i for i, _ in lm] == [0, 1, 2]
        assert all(1 in nodes for _, nodes in lm)


class TestNamespace:
    def test_exists_and_delete(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/d", b"x" * 150)
        assert dfs.exists("/d")
        stored_before = cluster.total_stored_bytes()
        dfs.delete("/d")
        assert not dfs.exists("/d")
        assert cluster.total_stored_bytes() < stored_before

    def test_create_existing_raises(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/dup", b"1")
        with pytest.raises(HDFSError):
            dfs.create("/dup")

    def test_overwrite_allowed(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/ow", b"old")
        dfs.write_file("/ow", b"new", overwrite=True)
        assert dfs.read_file("/ow") == b"new"

    def test_rename(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/src", b"payload")
        dfs.rename("/src", "/dst")
        assert not dfs.exists("/src")
        assert dfs.read_file("/dst") == b"payload"

    def test_rename_to_existing_raises(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/a1", b"1")
        dfs.write_file("/a2", b"2")
        with pytest.raises(HDFSError):
            dfs.rename("/a1", "/a2")

    def test_listdir_prefix_semantics(self, cluster):
        dfs = cluster.client(0)
        for path in ["/job/out/part-0", "/job/out/part-1", "/job/other", "/jobx"]:
            dfs.write_file(path, b"d")
        assert dfs.listdir("/job/out") == ["/job/out/part-0", "/job/out/part-1"]
        assert dfs.listdir("/job") == [
            "/job/other",
            "/job/out/part-0",
            "/job/out/part-1",
        ]
        # /jobx must not match prefix /job
        assert "/jobx" not in dfs.listdir("/job")

    def test_read_missing_raises(self, cluster):
        with pytest.raises(HDFSError):
            cluster.client(0).read_file("/nothing")

    def test_namenode_validation(self):
        with pytest.raises(HDFSError):
            NameNode(num_datanodes=0, block_size=10)
        with pytest.raises(HDFSError):
            NameNode(num_datanodes=1, block_size=10, replication=0)

    def test_total_bytes(self, cluster):
        dfs = cluster.client(0)
        dfs.write_file("/t/a", b"x" * 30)
        dfs.write_file("/t/b", b"x" * 70)
        assert cluster.namenode.total_bytes("/t/") == 100
