"""Tests for the mini-S4 streaming substrate."""

import threading

import pytest

from repro.s4 import Event, ProcessingElement, S4App


class CollectPE(ProcessingElement):
    """Records every event it sees (per key instance)."""

    seen: dict = {}
    lock = threading.Lock()

    def on_event(self, event):
        with CollectPE.lock:
            CollectPE.seen.setdefault(self.key, []).append(event.value)


@pytest.fixture(autouse=True)
def _reset_collect_pe():
    CollectPE.seen = {}
    yield


class TestRouting:
    def test_keyed_instances(self):
        app = S4App(num_nodes=2)
        app.subscribe("s", CollectPE)
        for i in range(10):
            app.inject("s", f"k{i % 3}", i)
        app.shutdown()
        assert set(CollectPE.seen) == {"k0", "k1", "k2"}
        assert CollectPE.seen["k0"] == [0, 3, 6, 9]

    def test_same_key_same_instance(self):
        app = S4App(num_nodes=4)
        app.subscribe("s", CollectPE)
        for _ in range(20):
            app.inject("s", "hot", 1)
        app.shutdown()
        instances = [pe for pe in app.all_instances() if pe.key == "hot"]
        assert len(instances) == 1
        assert instances[0].events_seen == 20

    def test_unsubscribed_stream_dropped(self):
        app = S4App(num_nodes=1)
        app.subscribe("s", CollectPE)
        app.inject("other", "k", 1)
        app.inject("s", "k", 2)
        app.shutdown()
        assert CollectPE.seen == {"k": [2]}
        assert app.events_injected == 1  # the drop is not counted as injected

    def test_per_key_order_preserved(self):
        app = S4App(num_nodes=3)
        app.subscribe("s", CollectPE)
        for i in range(100):
            app.inject("s", "ordered", i)
        app.shutdown()
        assert CollectPE.seen["ordered"] == list(range(100))


class TestCascading:
    def test_pe_emits_downstream(self):
        class ForwarderPE(ProcessingElement):
            def on_event(self, event):
                self.emit("out", "sink", event.value * 2)

        app = S4App(num_nodes=2)
        app.subscribe("in", ForwarderPE)
        app.subscribe("out", CollectPE)
        for i in range(5):
            app.inject("in", f"k{i}", i)
        app.shutdown()
        assert sorted(CollectPE.seen["sink"]) == [0, 2, 4, 6, 8]

    def test_shutdown_waits_for_cascade(self):
        """Quiescence: no downstream event may be lost at shutdown."""

        class SlowForwarder(ProcessingElement):
            def on_event(self, event):
                import time

                time.sleep(0.002)
                self.emit("out", "sink", event.value)

        app = S4App(num_nodes=2)
        app.subscribe("in", SlowForwarder)
        app.subscribe("out", CollectPE)
        for i in range(30):
            app.inject("in", f"k{i % 5}", i)
        app.shutdown()
        assert len(CollectPE.seen["sink"]) == 30

    def test_on_shutdown_called(self):
        flags = []

        class FinalPE(ProcessingElement):
            def on_event(self, event):
                pass

            def on_shutdown(self):
                flags.append(self.key)

        app = S4App(num_nodes=2)
        app.subscribe("s", FinalPE)
        app.inject("s", "a", 1)
        app.inject("s", "b", 1)
        app.shutdown()
        assert sorted(flags) == ["a", "b"]


class TestAccounting:
    def test_total_processed(self):
        app = S4App(num_nodes=2)
        app.subscribe("s", CollectPE)
        for i in range(25):
            app.inject("s", i, i)
        app.shutdown()
        assert app.total_processed() == 25

    def test_latency_observer(self):
        latencies = []
        app = S4App(num_nodes=1)
        app.on_latency(latencies.append)
        app.subscribe("s", CollectPE)
        for i in range(10):
            app.inject("s", "k", i)
        app.shutdown()
        assert len(latencies) == 10
        assert all(lat >= 0 for lat in latencies)

    def test_unattached_pe_emit_raises(self):
        pe = CollectPE("k")
        with pytest.raises(RuntimeError):
            pe.emit("s", "k", 1)

    def test_base_on_event_abstract(self):
        with pytest.raises(NotImplementedError):
            ProcessingElement("k").on_event(Event("s", "k", 1))
