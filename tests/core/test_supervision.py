"""Supervised execution: auto checkpoint-resume, heartbeat detection,
structured failure causes (tentpole of the robustness PR).

One ``mpidrun`` call must ride out an injected crash (restart + reload),
a severed worker must be blamed by name within the heartbeat deadline,
and every failure path must produce a precise structured record instead
of a hang or a bare timeout.

Every test here runs on both rank backends (the ``launcher`` fixture):
supervision must behave identically whether ranks are threads or OS
processes behind the socket router.
"""

import time

import pytest

from repro.core import DataMPIJob, Mode, mapreduce_job, mpidrun
from repro.core.constants import CONTROL_TAG, MPI_D_Constants as K
from repro.core.engine import WorkerEngine
from repro.mpi import FaultInjector

from tests.core.helpers import (
    Collector,
    FileCollector,
    expected_wordcount,
    wordcount_pieces,
)

TEXTS = [f"alpha w{i % 7} w{(i * 3) % 5} omega" for i in range(40)]
O_TASKS, A_TASKS, NPROCS = 4, 2, 2


def _combiner(word, counts):
    yield sum(counts)


def make_job(out, ft_dir, conf=None, launcher="threads"):
    provider, mapper, reducer = wordcount_pieces(TEXTS)
    base = {
        K.LAUNCHER: launcher,
        K.FT_ENABLED: True,
        K.FT_DIR: str(ft_dir),
        K.JOB_ID: "sup-wc",
        K.FT_INTERVAL_RECORDS: 10,
        K.SPILL_COMPRESS: True,
        K.MEMORY_CACHE_BYTES: 1024,  # force (compressed) spills
        K.RESTART_BACKOFF_SECONDS: 0.01,
    }
    base.update(conf or {})
    return mapreduce_job(
        "sup-wc", provider, mapper, reducer, out,
        o_tasks=O_TASKS, a_tasks=A_TASKS, conf=base, combiner=_combiner,
    )


class TestAutoResume:
    def test_single_call_rides_out_injected_crash(self, tmp_path, launcher):
        expected = expected_wordcount(TEXTS)
        out = FileCollector(tmp_path / "out")
        result = mpidrun(
            make_job(out, tmp_path, launcher=launcher, conf={
                K.JOB_MAX_RESTARTS: 2,
                K.INJECT_CRASH_AFTER_RECORDS: 12,
                K.INJECT_CRASH_TASK: 1,
            }),
            nprocs=NPROCS,
        )
        assert result.success
        assert result.restarts >= 1
        assert result.metrics.restarts == result.restarts
        assert result.metrics.reloaded_records > 0
        assert out.merged() == expected
        # the crash that was survived is still on the record, attributed
        # to its task and attempt
        task_failures = [r for r in result.failures if r.kind == "task"]
        assert task_failures and task_failures[0].attempt == 1
        assert task_failures[0].task_id == 1
        assert "injected crash" in task_failures[0].error

    def test_no_restart_budget_reports_structured_cause(self, tmp_path, launcher):
        result = mpidrun(
            make_job(Collector(), tmp_path, launcher=launcher, conf={
                K.INJECT_CRASH_AFTER_RECORDS: 12,
                K.INJECT_CRASH_TASK: 1,
            }),
            nprocs=NPROCS,
        )
        assert not result.success
        assert result.restarts == 0
        primary = result.failures[0]
        assert primary.kind == "task"
        assert primary.phase == "O"
        assert primary.task_id == 1
        assert primary.worker >= 0
        assert primary.attempt == 1
        assert primary.traceback
        assert "injected crash" in result.error

    def test_task_max_attempts_stops_the_retry_loop(self, tmp_path, launcher):
        result = mpidrun(
            make_job(Collector(), tmp_path, launcher=launcher, conf={
                K.JOB_MAX_RESTARTS: 5,
                K.TASK_MAX_ATTEMPTS: 2,
                K.INJECT_CRASH_AFTER_RECORDS: 12,
                K.INJECT_CRASH_TASK: 1,
                K.INJECT_CRASH_ATTEMPT: -1,  # deterministic bug: every attempt
            }),
            nprocs=NPROCS,
        )
        assert not result.success
        assert result.restarts == 1  # gave up well before the 5-restart budget
        assert "mpi.d.task.max.attempts=2" in result.error
        attempts = sorted(
            r.attempt for r in result.failures if r.kind == "task"
        )
        assert attempts == [1, 2]


class TestHeartbeatDetection:
    def test_severed_worker_blamed_by_name_within_deadline(self, tmp_path, launcher):
        injector = FaultInjector()
        injector.sever(2)  # worker 1: globals are driver=0, workers=1..n
        out = Collector()
        start = time.monotonic()
        result = mpidrun(
            make_job(out, tmp_path, launcher=launcher, conf={
                K.HEARTBEAT_DEADLINE_SECONDS: 1.0,
                K.HEARTBEAT_INTERVAL_SECONDS: 0.05,
                K.PLANE_TIMEOUT_SECONDS: 30.0,
            }),
            nprocs=NPROCS,
            timeout=120.0,
            fault_injector=injector,
        )
        elapsed = time.monotonic() - start
        assert not result.success
        assert elapsed < 30.0  # detected at the deadline, not a hung timeout
        hb = [r for r in result.failures if r.kind == "heartbeat"]
        assert hb and hb[0].worker == 1
        assert "worker 1" in result.error
        assert "deadline" in result.error

    def test_deadline_zero_disables_detection(self, tmp_path, launcher):
        # a healthy job under heartbeats: detection must not misfire even
        # while enabled, and disabling it changes nothing for clean runs
        for deadline in (0, 2.0):
            out = FileCollector(tmp_path / f"out{deadline}")
            result = mpidrun(
                make_job(out, tmp_path / f"d{deadline}", launcher=launcher, conf={
                    K.HEARTBEAT_DEADLINE_SECONDS: deadline,
                    K.HEARTBEAT_INTERVAL_SECONDS: 0.05,
                }),
                nprocs=NPROCS,
                raise_on_error=True,
            )
            assert result.success
            assert out.merged() == expected_wordcount(TEXTS)


class TestDriverRobustness:
    def test_unknown_control_message_aborts_instead_of_hanging(
        self, tmp_path, monkeypatch, launcher
    ):
        # on the process backend the monkeypatched class is inherited by
        # the forked workers, so the bogus report fires there too
        def bogus_report(self):
            self.parent.send(("bogus", self.rank), dest=0, tag=CONTROL_TAG)

        monkeypatch.setattr(WorkerEngine, "_report", bogus_report)
        start = time.monotonic()
        result = mpidrun(make_job(Collector(), tmp_path, launcher=launcher),
                         nprocs=NPROCS, timeout=120.0)
        assert time.monotonic() - start < 60.0
        assert not result.success
        assert "unknown control message" in result.error


class TestStreamingRoundFailures:
    def _streaming_job(self, a_fn, launcher, conf=None):
        def o_fn(ctx):
            for i in range(20):
                ctx.send(f"k{i % 3}", i)

        base = {K.PLANE_TIMEOUT_SECONDS: 1.0, K.LAUNCHER: launcher}
        base.update(conf or {})
        return DataMPIJob(
            "stream-fail", o_fn, a_fn, o_tasks=1, a_tasks=1,
            mode=Mode.STREAMING, conf=base,
        )

    def test_stuck_a_task_raises_descriptive_timeout(self, tmp_path, launcher):
        def stuck_a(ctx):
            for _ in ctx.recv_iter():
                pass
            time.sleep(60)  # never finishes within the plane budget

        start = time.monotonic()
        result = mpidrun(self._streaming_job(stuck_a, launcher), nprocs=1,
                         timeout=120.0)
        assert time.monotonic() - start < 60.0
        assert not result.success
        assert "still running" in result.error
        assert "plane timeout" in result.error

    def test_consumer_error_outranks_stuck_siblings(self, tmp_path, launcher):
        def failing_a(ctx):
            raise ValueError("consumer exploded")

        result = mpidrun(self._streaming_job(failing_a, launcher), nprocs=1,
                         timeout=120.0)
        assert not result.success
        task_failures = [r for r in result.failures if r.kind == "task"]
        assert task_failures and task_failures[0].phase == "A"
        assert "consumer exploded" in task_failures[0].error
