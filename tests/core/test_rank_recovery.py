"""Surgical rank recovery: respawn-and-replay one dead rank in place.

The process backend must survive a SIGKILL'd worker without restarting
the whole job: the router fences the dead incarnation behind a rank
epoch, the driver forks a replacement, the scheduler replays only that
rank's tasks, and the redelivery buffer re-feeds the shuffle batches the
first life took to the grave.  Peer ranks block on their planes and
resume; job output is byte-identical to an unfaulted run.  When the
respawn budget is spent or the redelivery buffer overflowed, the death
degrades gracefully to the classic whole-job restart.
"""

import random

from repro.core import DataMPIJob, Mode, mapreduce_job, mpidrun
from repro.core.checkpoint import read_rank_manifest, write_rank_manifest
from repro.core.constants import MPI_D_Constants as K, SHUFFLE_TAG
from repro.core.mpidrun import restart_delay
from repro.mpi import FaultInjector
from repro.mpi.runtime import ProcessRuntime
from repro.mpi.socket_transport import _RedeliveryBuffer
from repro.net import wire

from tests.core.helpers import FileCollector, expected_wordcount, wordcount_pieces

TEXTS = [f"w{i % 7} w{(i * 3) % 5} kill recover" for i in range(40)]
NPROCS = 2


def recovery_conf(**extra):
    conf = {
        K.SHUFFLE_BATCH_BYTES: 64,  # many small envelopes per channel
        K.LAUNCHER: "processes",
        K.RANK_MAX_RESPAWNS: 2,
        K.PLANE_TIMEOUT_SECONDS: 60.0,
        K.HEARTBEAT_DEADLINE_SECONDS: 120.0,
    }
    conf.update(extra)
    return conf


def run_wordcount(tmp_path, subdir, conf, injector=None, **kwargs):
    provider, mapper, reducer = wordcount_pieces(TEXTS)
    out = FileCollector(tmp_path / subdir)
    job = mapreduce_job(
        "recovery-wc", provider, mapper, reducer, out,
        o_tasks=4, a_tasks=2, conf=conf,
    )
    result = mpidrun(job, nprocs=NPROCS, timeout=120.0,
                     fault_injector=injector, **kwargs)
    return result, out


# -- the tentpole: SIGKILL mid-shuffle, no whole-job restart -----------------------


class TestSurgicalRecovery:
    def test_killed_rank_respawns_without_job_restart(self, tmp_path):
        injector = FaultInjector()
        rule = injector.kill_rank(tag=SHUFFLE_TAG, skip_first=3, max_matches=1)
        result, out = run_wordcount(
            tmp_path, "out", recovery_conf(), injector=injector,
        )
        assert result.success
        assert rule.applied == 1  # the SIGKILL really fired
        assert result.restarts == 0  # the job itself never restarted
        assert result.metrics.respawns >= 1  # exactly the dead rank came back
        assert out.merged() == expected_wordcount(TEXTS)

    def test_faulted_output_is_byte_identical_to_clean_run(self, tmp_path):
        clean_result, clean = run_wordcount(
            tmp_path, "clean", recovery_conf(), raise_on_error=True,
        )
        injector = FaultInjector()
        injector.kill_rank(tag=SHUFFLE_TAG, skip_first=3, max_matches=1)
        faulted_result, faulted = run_wordcount(
            tmp_path, "faulted", recovery_conf(), injector=injector,
        )
        assert clean_result.success and faulted_result.success
        assert clean_result.metrics.respawns == 0
        assert faulted_result.metrics.respawns >= 1
        assert faulted.by_task() == clean.by_task()  # per-task, not just merged

    def test_recovery_writes_a_rank_manifest_with_ft_on(self, tmp_path):
        injector = FaultInjector()
        injector.kill_rank(tag=SHUFFLE_TAG, skip_first=3, max_matches=1)
        conf = recovery_conf(**{
            K.FT_ENABLED: True,
            K.FT_DIR: str(tmp_path / "ft"),
            K.JOB_ID: "recovery-wc",
            K.FT_INTERVAL_RECORDS: 10,
        })
        result, out = run_wordcount(tmp_path, "out", conf, injector=injector)
        assert result.success
        assert result.restarts == 0
        assert out.merged() == expected_wordcount(TEXTS)
        manifests = [
            read_rank_manifest(str(tmp_path / "ft"), "recovery-wc", worker)
            for worker in range(NPROCS)
        ]
        recovered = [m for m in manifests if m]
        assert len(recovered) == 1  # exactly one rank died and came back
        assert recovered[0]["respawns"] == 1
        assert recovered[0]["epoch"] == 1

    def test_killed_rank_mid_iteration_replays_its_rounds(self, tmp_path):
        def build(out, conf):
            def o_fn(ctx):
                if ctx.round == 0:
                    ctx.send(ctx.rank % ctx.a_size, 1.0)
                else:
                    total = sum(v for _, v in ctx.recv_iter())
                    ctx.send(ctx.rank % ctx.a_size, total + 1.0)

            def a_fn(ctx):
                total = sum(v for _, v in ctx.recv_iter())
                if ctx.round < 2:
                    ctx.send(ctx.rank % ctx.o_size, total)
                else:
                    out(ctx.rank, "total", total)

            return DataMPIJob("iter-kill", o_fn, a_fn, o_tasks=2, a_tasks=2,
                              mode=Mode.ITERATION, rounds=3, conf=conf)

        clean = FileCollector(tmp_path / "clean")
        assert mpidrun(build(clean, recovery_conf()), nprocs=NPROCS,
                       timeout=120.0, raise_on_error=True).success
        injector = FaultInjector()
        injector.kill_rank(tag=SHUFFLE_TAG, skip_first=2, max_matches=1)
        faulted = FileCollector(tmp_path / "faulted")
        result = mpidrun(build(faulted, recovery_conf()), nprocs=NPROCS,
                         timeout=120.0, fault_injector=injector)
        assert result.success
        assert result.restarts == 0
        assert result.metrics.respawns >= 1
        assert faulted.by_task() == clean.by_task()

    def test_killed_rank_mid_stream_loses_no_records(self, tmp_path):
        def build(out, conf):
            def o_fn(ctx):
                for i in range(60):
                    ctx.send(i % 2, (ctx.rank * 1000 + i, 1))

            def a_fn(ctx):
                keys = tuple(sorted(k for k, _ in ctx.recv_iter()))
                out(ctx.rank, "keys", keys)

            return DataMPIJob("stream-kill", o_fn, a_fn, o_tasks=2, a_tasks=2,
                              mode=Mode.STREAMING, conf=conf)

        conf = recovery_conf(**{K.SPL_PARTITION_BYTES: 64})
        clean = FileCollector(tmp_path / "clean")
        assert mpidrun(build(clean, conf), nprocs=NPROCS, timeout=120.0,
                       raise_on_error=True).success
        injector = FaultInjector()
        injector.kill_rank(tag=SHUFFLE_TAG, skip_first=2, max_matches=1)
        faulted = FileCollector(tmp_path / "faulted")
        result = mpidrun(build(faulted, conf), nprocs=NPROCS, timeout=120.0,
                         fault_injector=injector)
        assert result.success
        assert result.restarts == 0
        assert result.metrics.respawns >= 1
        assert faulted.by_task() == clean.by_task()


class TestGracefulDegradation:
    def test_redelivery_overflow_degrades_to_whole_job_restart(self, tmp_path):
        # a 256-byte buffer overflows before the kill lands, so the rank
        # is not surgically recoverable: the death must degrade to the
        # classic supervised restart and still produce correct output
        injector = FaultInjector()
        injector.kill_rank(tag=SHUFFLE_TAG, skip_first=6, max_matches=1)
        conf = recovery_conf(**{
            K.RANK_REDELIVERY_BYTES: 256,
            K.FT_ENABLED: True,
            K.FT_DIR: str(tmp_path / "ft"),
            K.JOB_ID: "recovery-wc",
            K.JOB_MAX_RESTARTS: 2,
            K.RESTART_BACKOFF_SECONDS: 0.01,
        })
        result, out = run_wordcount(tmp_path, "out", conf, injector=injector)
        assert result.success
        assert result.restarts >= 1
        assert result.metrics.respawns == 0
        assert any(f.kind == "respawn" for f in result.failures)
        assert out.merged() == expected_wordcount(TEXTS)

    def test_respawn_budget_gates_eligibility(self):
        runtime = ProcessRuntime()
        try:
            transport = runtime._transport
            transport.configure_recovery(max_respawns=1, redelivery_bytes=1 << 20)
            transport.watch_world((1, 2), world_context=4)
            assert transport.recovery_eligible(1)
            epoch, _pid = transport.begin_respawn(1)
            assert epoch == 1
            # budget spent: no second surgical respawn for rank 1
            assert not transport.recovery_eligible(1)
            assert not transport.begin_recovery(1)
            assert runtime.respawn_rank(1) is None
            # rank 2 is untouched and still has its full budget
            assert transport.recovery_eligible(2)
        finally:
            runtime._transport.shutdown()

    def test_recovery_is_off_by_default(self):
        runtime = ProcessRuntime()
        try:
            assert not runtime.rank_recovery_enabled
            assert not runtime._transport.recovery_eligible(1)
        finally:
            runtime._transport.shutdown()


# -- epoch fencing at the router --------------------------------------------------


class TestEpochFencing:
    @staticmethod
    def _envelope_body(origin, dest, epoch, obj=("k", 1)):
        payload, _flags = wire.encode_payload(obj)
        frame = wire.pack_envelope_frame(
            context=4, source=origin, tag=SHUFFLE_TAG, origin=origin,
            dest=dest, nbytes=len(payload), payload=payload, epoch=epoch,
        )
        return frame[5:]  # strip length prefix + kind byte

    def test_stale_epoch_frames_are_dropped_at_the_router(self):
        runtime = ProcessRuntime()
        try:
            transport = runtime._transport
            transport.configure_recovery(max_respawns=2, redelivery_bytes=1 << 20)
            transport.watch_world((1, 2), world_context=4)
            mailbox = transport.register(0)  # driver-hosted destination
            transport.begin_respawn(1)  # rank 1 now lives at epoch 1
            # a zombie of epoch 0 gets one last frame out: fenced
            transport._on_envelope(self._envelope_body(origin=1, dest=0, epoch=0))
            assert transport.stale_frames_dropped == 1
            assert mailbox.pending_count() == 0
            # the reincarnation's own traffic passes
            transport._on_envelope(self._envelope_body(origin=1, dest=0, epoch=1))
            assert transport.stale_frames_dropped == 1
            assert mailbox.pending_count() == 1
            # an unfenced peer at epoch 0 is untouched
            transport._on_envelope(self._envelope_body(origin=2, dest=0, epoch=0))
            assert transport.stale_frames_dropped == 1
            assert mailbox.pending_count() == 2
        finally:
            runtime._transport.shutdown()

    def test_epoch_survives_the_wire_header(self):
        body = self._envelope_body(origin=3, dest=1, epoch=7)
        (_ctx, _src, _tag, origin, dest, epoch, _trace, _parent, _n, _flags,
         _payload) = (
            wire.unpack_envelope_frame(body)
        )
        assert (origin, dest, epoch) == (3, 1, 7)


# -- the redelivery buffer --------------------------------------------------------


class TestRedeliveryBuffer:
    def test_frames_kept_in_order_and_released_per_plane(self):
        buf = _RedeliveryBuffer(cap=1 << 20)
        buf.append("fwd:0", b"a" * 10)
        buf.append(None, b"b" * 10)  # barrier traffic: held until BYE
        buf.append("fwd:0", b"c" * 10)
        buf.append("fwd:1", b"d" * 10)
        assert buf.frames() == [b"a" * 10, b"b" * 10, b"c" * 10, b"d" * 10]
        assert buf.release_plane("fwd:0") == 2
        assert buf.frames() == [b"b" * 10, b"d" * 10]
        assert buf.nbytes == 20
        assert not buf.overflowed

    def test_overflow_evicts_oldest_and_latches(self):
        buf = _RedeliveryBuffer(cap=25)
        buf.append("p", b"x" * 10)
        buf.append("p", b"y" * 10)
        assert not buf.overflowed
        buf.append("p", b"z" * 10)  # 30 > 25: oldest evicted
        assert buf.overflowed  # the rank is no longer replayable
        assert buf.frames() == [b"y" * 10, b"z" * 10]
        assert buf.nbytes == 20

    def test_clear_resets_bytes_but_not_the_overflow_latch(self):
        buf = _RedeliveryBuffer(cap=5)
        buf.append("p", b"frame-too-big")
        assert buf.overflowed
        buf.clear()
        assert buf.frames() == []
        assert buf.nbytes == 0
        assert buf.overflowed  # a lossy history cannot be un-lost


# -- satellite: rank-scoped checkpoint manifests ----------------------------------


class TestRankManifest:
    def test_round_trip_and_respawn_accounting(self, tmp_path):
        path = write_rank_manifest(
            str(tmp_path), "job-1", worker=3,
            payload={"gid": 4, "epoch": 1, "tasks_requeued": 2},
        )
        manifest = read_rank_manifest(str(tmp_path), "job-1", worker=3)
        assert path.endswith(".json")
        assert manifest["worker"] == 3
        assert manifest["gid"] == 4
        assert manifest["respawns"] == 1
        write_rank_manifest(str(tmp_path), "job-1", worker=3,
                            payload={"gid": 4, "epoch": 2})
        again = read_rank_manifest(str(tmp_path), "job-1", worker=3)
        assert again["respawns"] == 2  # accumulates across incarnations
        assert again["epoch"] == 2

    def test_missing_manifest_reads_as_empty(self, tmp_path):
        assert read_rank_manifest(str(tmp_path), "nope", worker=0) == {}


# -- satellite: seeded jitter on the restart backoff ------------------------------


class TestRestartDelay:
    def test_no_jitter_is_pure_exponential_and_capped(self):
        assert restart_delay(1, 2.0) == 2.0
        assert restart_delay(2, 2.0) == 4.0
        assert restart_delay(3, 2.0) == 5.0  # _MAX_BACKOFF ceiling
        assert restart_delay(10, 2.0) == 5.0

    def test_jitter_stays_inside_the_band(self):
        rng = random.Random(42)
        for attempt in range(1, 6):
            base = restart_delay(attempt, 1.0)
            for _ in range(50):
                delay = restart_delay(attempt, 1.0, jitter=0.25, rng=rng)
                assert 0.75 * base <= delay <= 1.25 * base

    def test_seeded_rng_makes_the_schedule_deterministic(self):
        a = [restart_delay(i, 0.5, jitter=0.5, rng=random.Random(7))
             for i in range(1, 5)]
        b = [restart_delay(i, 0.5, jitter=0.5, rng=random.Random(7))
             for i in range(1, 5)]
        assert a == b
        c = [restart_delay(i, 0.5, jitter=0.5, rng=random.Random(8))
             for i in range(1, 5)]
        assert a != c
