"""Engine edge cases: degenerate geometries, empty data, misuse errors."""

import threading

import pytest

from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.constants import MPI_D_Constants as K


def collect_all(sink, lock):
    def a_fn(ctx):
        got = list(ctx.recv_iter())
        with lock:
            sink[ctx.rank] = got

    return a_fn


class TestEmptyAndDegenerate:
    def test_o_tasks_emit_nothing(self):
        sink, lock = {}, threading.Lock()
        job = DataMPIJob(
            "empty", lambda ctx: None, collect_all(sink, lock), 3, 2,
            mode=Mode.MAPREDUCE,
        )
        result = mpidrun(job, nprocs=2, raise_on_error=True)
        assert result.success
        assert sink == {0: [], 1: []}
        assert result.metrics.records_sent == 0

    def test_single_everything(self):
        sink, lock = {}, threading.Lock()
        job = DataMPIJob(
            "one", lambda ctx: ctx.send("k", "v"), collect_all(sink, lock),
            1, 1, mode=Mode.MAPREDUCE,
        )
        assert mpidrun(job, nprocs=1, raise_on_error=True).success
        assert sink == {0: [("k", "v")]}

    def test_more_processes_than_tasks(self):
        sink, lock = {}, threading.Lock()
        job = DataMPIJob(
            "wide", lambda ctx: ctx.send(ctx.rank, None),
            collect_all(sink, lock), 2, 2, mode=Mode.MAPREDUCE,
        )
        result = mpidrun(job, nprocs=6, raise_on_error=True)
        assert result.success
        assert sum(len(v) for v in sink.values()) == 2

    def test_one_hot_partition(self):
        """Every record to one A task; others still terminate cleanly."""
        sink, lock = {}, threading.Lock()

        def o_fn(ctx):
            for i in range(50):
                ctx.send(0, i)  # int key 0 -> partition 0 always

        job = DataMPIJob(
            "skew", o_fn, collect_all(sink, lock), 2, 4, mode=Mode.MAPREDUCE,
            partitioner=lambda k, v, n: 0,
        )
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        assert len(sink[0]) == 100
        assert sink[1] == sink[2] == sink[3] == []

    def test_large_values_cross_flush_threshold(self):
        sink, lock = {}, threading.Lock()

        def o_fn(ctx):
            ctx.send("big", "x" * 500_000)  # single value >> SPL threshold

        job = DataMPIJob(
            "big", o_fn, collect_all(sink, lock), 1, 1, mode=Mode.MAPREDUCE,
        )
        assert mpidrun(job, nprocs=1, raise_on_error=True).success
        assert len(sink[0][0][1]) == 500_000

    def test_unicode_and_binary_keys(self):
        sink, lock = {}, threading.Lock()

        def o_fn(ctx):
            ctx.send("clé-日本語", 1)
            ctx.send("ascii", 2)

        job = DataMPIJob(
            "uni", o_fn, collect_all(sink, lock), 1, 1, mode=Mode.MAPREDUCE,
        )
        assert mpidrun(job, nprocs=1, raise_on_error=True).success
        assert dict(sink[0]) == {"clé-日本語": 1, "ascii": 2}


class TestMisuseErrors:
    def test_a_task_send_in_mapreduce_rejected(self):
        """One-way communication: A tasks cannot Send in MapReduce mode."""

        def a_fn(ctx):
            list(ctx.recv_iter())
            ctx.send("illegal", 1)

        job = DataMPIJob(
            "oneway", lambda ctx: ctx.send("k", 1), a_fn, 1, 1,
            mode=Mode.MAPREDUCE,
        )
        result = mpidrun(job, nprocs=1)
        assert not result.success
        assert "cannot Send" in result.error

    def test_o_task_recv_in_mapreduce_rejected(self):
        def o_fn(ctx):
            ctx.recv()

        job = DataMPIJob(
            "norecv", o_fn, lambda ctx: list(ctx.recv_iter()), 1, 1,
            mode=Mode.MAPREDUCE,
        )
        result = mpidrun(job, nprocs=1)
        assert not result.success
        assert "nothing to Recv" in result.error

    def test_user_exception_in_a_task_fails_job(self):
        def a_fn(ctx):
            raise ValueError("user a-side bug")

        job = DataMPIJob(
            "abug", lambda ctx: ctx.send(1, 1), a_fn, 1, 1, mode=Mode.MAPREDUCE,
        )
        result = mpidrun(job, nprocs=1)
        assert not result.success and "user a-side bug" in result.error

    def test_raise_on_error_propagates(self):
        from repro.common.errors import DataMPIError

        job = DataMPIJob(
            "raise", lambda ctx: ctx.send("k", 1),
            lambda ctx: (_ for _ in ()).throw(DataMPIError("boom")),
            1, 1, mode=Mode.MAPREDUCE,
        )
        with pytest.raises(Exception, match="boom"):
            mpidrun(job, nprocs=1, raise_on_error=True)


class TestConfPlumbing:
    def test_pickle_serializer_via_conf(self):
        sink, lock = {}, threading.Lock()

        def o_fn(ctx):
            ctx.send("obj", {"nested": {1, 2, 3}})  # set: needs pickle-ish

        job = DataMPIJob(
            "pickle", o_fn, collect_all(sink, lock), 1, 1, mode=Mode.MAPREDUCE,
            conf={K.SERIALIZER: "pickle", K.CACHE_FRACTION: 0.0,
                  K.SPL_PARTITION_BYTES: 16},  # force the spill/serde path
        )
        assert mpidrun(job, nprocs=1, raise_on_error=True).success
        assert sink[0] == [("obj", {"nested": {1, 2, 3}})]

    def test_key_class_enforced(self):
        sink, lock = {}, threading.Lock()

        def o_fn(ctx):
            ctx.send("17", "2.5")  # strings coerced per the conf classes

        job = DataMPIJob(
            "typed", o_fn, collect_all(sink, lock), 1, 1, mode=Mode.MAPREDUCE,
            conf={K.KEY_CLASS: "java.lang.Integer",
                  K.VALUE_CLASS: "java.lang.Double"},
        )
        assert mpidrun(job, nprocs=1, raise_on_error=True).success
        assert sink[0] == [(17, 2.5)]

    def test_uncoercible_key_fails(self):
        job = DataMPIJob(
            "badtype", lambda ctx: ctx.send(["list"], 1),
            lambda ctx: list(ctx.recv_iter()), 1, 1, mode=Mode.MAPREDUCE,
            conf={K.KEY_CLASS: "java.lang.Integer"},
        )
        result = mpidrun(job, nprocs=1)
        assert not result.success
        assert "cannot be coerced" in result.error

    def test_unknown_serializer_fails_cleanly(self):
        job = DataMPIJob(
            "badser", lambda ctx: None, lambda ctx: list(ctx.recv_iter()),
            1, 1, mode=Mode.MAPREDUCE, conf={K.SERIALIZER: "capnproto"},
        )
        result = mpidrun(job, nprocs=1)
        assert not result.success

    def test_wall_duration_recorded(self):
        job = DataMPIJob(
            "timed", lambda ctx: ctx.send(1, 1),
            lambda ctx: list(ctx.recv_iter()), 1, 1, mode=Mode.MAPREDUCE,
        )
        result = mpidrun(job, nprocs=1, raise_on_error=True)
        assert result.metrics.duration > 0


class TestSpillCompression:
    def test_compressed_spills_smaller_same_output(self):
        import threading

        def run(compress):
            sink, lock = {}, threading.Lock()

            def o_fn(ctx):
                for i in range(200):
                    ctx.send(i % 10, "payload-" * 8)

            def a_fn(ctx):
                got = list(ctx.recv_iter())
                with lock:
                    sink[ctx.rank] = got

            job = DataMPIJob(
                "comp", o_fn, a_fn, 2, 2, mode=Mode.MAPREDUCE,
                conf={K.CACHE_FRACTION: 0.0, K.SPL_PARTITION_BYTES: 128,
                      K.SPILL_COMPRESS: compress},
            )
            result = mpidrun(job, nprocs=2, raise_on_error=True)
            return result, sink

        plain_result, plain_sink = run(False)
        comp_result, comp_sink = run(True)
        assert comp_result.metrics.spilled_bytes < plain_result.metrics.spilled_bytes
        # identical results per task (multiset + key order)
        from collections import Counter

        for task_id in plain_sink:
            assert Counter(plain_sink[task_id]) == Counter(comp_sink[task_id])

    def test_runstore_compression_roundtrip(self, tmp_path):
        from repro.core.sorter import RunStore
        from repro.serde.comparators import default_compare
        from repro.serde.serialization import WritableSerializer

        store = RunStore(
            default_compare, WritableSerializer(), str(tmp_path),
            memory_budget=0, compress_spills=True,
        )
        run_data = sorted((f"key{i:03d}", "v" * 50) for i in range(100))
        store.add_run(list(run_data))
        assert store.disk_runs and store.disk_runs[0].compressed
        assert list(store) == run_data
        # compressed on-disk footprint beats the serialized size
        assert store.spilled_bytes < 100 * 55


class TestDiversifiedTopologies:
    def test_sparse_bipartite_graph(self):
        """§II-A Diversified: Dryad/S4-style *sparse* bipartite graphs —
        each O task talks to a small subset of A tasks.  The library must
        route exactly those edges and nothing else."""
        import threading

        sink, lock = {}, threading.Lock()
        edges = {0: [0, 1], 1: [2], 2: [3, 4], 3: [4]}  # O rank -> A tasks

        def o_fn(ctx):
            for dest in edges[ctx.rank]:
                ctx.send((dest, ctx.rank), f"edge-{ctx.rank}->{dest}")

        def a_fn(ctx):
            got = list(ctx.recv_iter())
            with lock:
                sink[ctx.rank] = got

        job = DataMPIJob(
            "sparse", o_fn, collect_all(sink, lock), 4, 5,
            mode=Mode.MAPREDUCE,
            partitioner=lambda key, v, n: key[0],  # key carries the A task
        )
        assert mpidrun(job, nprocs=3, raise_on_error=True).success
        senders_by_a = {
            a: sorted(key[1] for key, _ in got) for a, got in sink.items()
        }
        assert senders_by_a == {0: [0], 1: [0], 2: [1], 3: [2], 4: [2, 3]}

    def test_complete_bipartite_graph(self):
        """The MapReduce extreme: every O task reaches every A task."""
        import threading

        sink, lock = {}, threading.Lock()

        def o_fn(ctx):
            for a in range(ctx.a_size):
                ctx.send(a, ctx.rank)

        job = DataMPIJob(
            "dense", o_fn, collect_all(sink, lock), 3, 3, mode=Mode.MAPREDUCE,
            partitioner=lambda key, v, n: key % n,
        )
        assert mpidrun(job, nprocs=3, raise_on_error=True).success
        for a, got in sink.items():
            assert sorted(v for _, v in got) == [0, 1, 2]
