"""Tests for the mpidrun console launcher."""

import pytest

from repro.cli import APPLICATIONS, main


class TestCli:
    def test_sort(self, capsys):
        assert main(["-O", "3", "-A", "2", "-M", "common",
                     "-jar", "demos.jar", "Sort", "60"]) == 0
        out = capsys.readouterr().out
        assert "sorted 60 keys" in out
        assert "success=True" in out
        assert "A-locality=100%" in out

    def test_wordcount(self, capsys):
        assert main(["-O", "2", "-A", "2", "-M", "mapreduce",
                     "-jar", "demos.jar", "WordCount", "40"]) == 0
        out = capsys.readouterr().out
        assert "distinct" in out

    def test_topk_streaming(self, capsys):
        assert main(["-O", "2", "-A", "2", "-M", "streaming",
                     "-jar", "demos.jar", "TopK", "500", "3"]) == 0
        out = capsys.readouterr().out
        assert "top-3 of 500" in out

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "mpidrun" in out and "Sort" in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 0
        assert "classnames" in capsys.readouterr().out

    def test_unknown_classname(self, capsys):
        assert main(["-O", "1", "-A", "1", "-jar", "x.jar", "Missing"]) == 2
        assert "unknown classname" in capsys.readouterr().err

    def test_bad_flags(self, capsys):
        assert main(["-O", "1"]) == 2  # missing -A
        assert "mpidrun:" in capsys.readouterr().err

    def test_registry_mirrors_paper_programs(self):
        assert {"Sort", "WordCount", "TopK"} <= set(APPLICATIONS)

    @pytest.mark.parametrize("launcher", ["threads", "processes"])
    def test_launcher_flag_selects_the_backend(self, capsys, launcher):
        assert main([f"--launcher={launcher}", "-O", "3", "-A", "2",
                     "-M", "mapreduce", "-jar", "demos.jar",
                     "WordCount", "40"]) == 0
        out = capsys.readouterr().out
        assert "distinct" in out and "success=True" in out

    def test_launcher_flag_rejects_unknown_backend(self, capsys):
        assert main(["--launcher=fibers", "-O", "2", "-A", "2",
                     "-M", "common", "-jar", "demos.jar", "Sort", "20"]) != 0
