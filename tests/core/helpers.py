"""Shared helpers for end-to-end DataMPI engine tests."""

from __future__ import annotations

import os
import pickle
import threading
from collections import defaultdict
from typing import Any


class Collector:
    """Thread-safe output sink keyed by A-task rank."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.by_task: dict[int, list[tuple[Any, Any]]] = defaultdict(list)

    def __call__(self, rank: int, key: Any, value: Any) -> None:
        with self._lock:
            self.by_task[rank].append((key, value))

    def merged(self) -> dict[Any, Any]:
        out: dict[Any, Any] = {}
        for pairs in self.by_task.values():
            out.update(pairs)
        return out

    def all_pairs(self) -> list[tuple[Any, Any]]:
        return [kv for pairs in self.by_task.values() for kv in pairs]


class FileCollector:
    """Output sink that survives a process boundary.

    With ``mpi.d.launcher=processes`` A tasks run in worker processes, so
    an in-memory :class:`Collector` in the driver never sees their
    output.  This sink appends each pair to a per-task pickle stream
    under ``directory``; the driver reads the files after the job.  Works
    identically on the thread backend, so tests parametrized over
    launchers use it for both.
    """

    def __init__(self, directory) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, rank: int) -> str:
        return os.path.join(self.directory, f"part-{rank:05d}.pkl")

    def __call__(self, rank: int, key: Any, value: Any) -> None:
        # append-mode open per record: atomic enough for one writer per
        # task file, and robust to abrupt worker death mid-job
        with open(self._path(rank), "ab") as f:
            pickle.dump((key, value), f)

    def by_task(self) -> dict[int, list[tuple[Any, Any]]]:
        out: dict[int, list[tuple[Any, Any]]] = defaultdict(list)
        for name in sorted(os.listdir(self.directory)):
            if not name.startswith("part-"):
                continue
            rank = int(name[len("part-"):].split(".")[0])
            with open(os.path.join(self.directory, name), "rb") as f:
                while True:
                    try:
                        out[rank].append(pickle.load(f))
                    except EOFError:
                        break
        return dict(out)

    def merged(self) -> dict[Any, Any]:
        out: dict[Any, Any] = {}
        for pairs in self.by_task().values():
            out.update(pairs)
        return out

    def all_pairs(self) -> list[tuple[Any, Any]]:
        return [kv for pairs in self.by_task().values() for kv in pairs]


def int_range_input(n: int):
    """Input provider: task rank r of size s yields (i, i) for i = r, r+s, ..."""

    def provider(rank: int, size: int):
        for i in range(rank, n, size):
            yield (i, i)

    return provider


def wordcount_pieces(texts: list[str]):
    """(input_provider, mapper, reducer) for a classic word count."""

    def provider(rank: int, size: int):
        for i, line in enumerate(texts):
            if i % size == rank:
                yield (i, line)

    def mapper(_key, line, emit):
        for word in line.split():
            emit(word, 1)

    def reducer(word, counts, emit):
        emit(word, sum(counts))

    return provider, mapper, reducer


def expected_wordcount(texts: list[str]) -> dict[str, int]:
    from collections import Counter

    counter: Counter = Counter()
    for line in texts:
        counter.update(line.split())
    return dict(counter)
