"""Shared helpers for end-to-end DataMPI engine tests."""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Any


class Collector:
    """Thread-safe output sink keyed by A-task rank."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.by_task: dict[int, list[tuple[Any, Any]]] = defaultdict(list)

    def __call__(self, rank: int, key: Any, value: Any) -> None:
        with self._lock:
            self.by_task[rank].append((key, value))

    def merged(self) -> dict[Any, Any]:
        out: dict[Any, Any] = {}
        for pairs in self.by_task.values():
            out.update(pairs)
        return out

    def all_pairs(self) -> list[tuple[Any, Any]]:
        return [kv for pairs in self.by_task.values() for kv in pairs]


def int_range_input(n: int):
    """Input provider: task rank r of size s yields (i, i) for i = r, r+s, ..."""

    def provider(rank: int, size: int):
        for i in range(rank, n, size):
            yield (i, i)

    return provider


def wordcount_pieces(texts: list[str]):
    """(input_provider, mapper, reducer) for a classic word count."""

    def provider(rank: int, size: int):
        for i, line in enumerate(texts):
            if i % size == rank:
                yield (i, line)

    def mapper(_key, line, emit):
        for word in line.split():
            emit(word, 1)

    def reducer(word, counts, emit):
        emit(word, sum(counts))

    return provider, mapper, reducer


def expected_wordcount(texts: list[str]) -> dict[str, int]:
    from collections import Counter

    counter: Counter = Counter()
    for line in texts:
        counter.update(line.split())
    return dict(counter)
