"""Shared fixtures: backend parametrization for integration tests.

Tests taking the ``launcher`` fixture run once per rank substrate —
``threads`` (in-process, zero-copy) and ``processes`` (one OS process
per rank over the socket router).  The contract under test is that the
engine, supervision and chaos machinery behave identically on both.
"""

import pytest


@pytest.fixture(params=["threads", "processes"])
def launcher(request):
    return request.param
