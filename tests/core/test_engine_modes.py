"""End-to-end tests of Common, Iteration and Streaming modes."""

import threading
import time

from repro.core import DataMPIJob, Mode, MPI_D, common_job, mpidrun


class TestCommonMode:
    def test_listing1_sort(self):
        """The paper's Listing 1: parallel sort via the MPI_D API."""
        outputs = {}
        lock = threading.Lock()

        def o_fn(ctx):
            MPI_D.Init(None, MPI_D.Mode.COMMON, dict(ctx.conf))
            rank = MPI_D.Comm_rank(MPI_D.COMM_BIPARTITE_O)
            size = MPI_D.Comm_size(MPI_D.COMM_BIPARTITE_O)
            assert MPI_D.COMM_BIPARTITE_A is None  # dichotomic
            for i in range(rank, 40, size):
                MPI_D.Send(f"key-{i:03d}", "")
            MPI_D.Finalize()

        def a_fn(ctx):
            MPI_D.Init()
            rank = MPI_D.Comm_rank(MPI_D.COMM_BIPARTITE_A)
            assert MPI_D.COMM_BIPARTITE_O is None
            got = []
            kv = MPI_D.Recv()
            while kv is not None:
                got.append(kv[0])
                kv = MPI_D.Recv()
            with lock:
                outputs[rank] = got
            MPI_D.Finalize()

        job = common_job("sort", o_fn, a_fn, o_tasks=4, a_tasks=2)
        assert mpidrun(job, nprocs=4, raise_on_error=True).success
        all_keys = []
        for rank in sorted(outputs):
            assert outputs[rank] == sorted(outputs[rank])  # per-partition order
            all_keys.extend(outputs[rank])
        assert sorted(all_keys) == [f"key-{i:03d}" for i in range(40)]

    def test_comm_sizes_report_task_counts(self):
        sizes = {}

        def o_fn(ctx):
            sizes.setdefault("O", set()).add(
                (MPI_D.Comm_rank(MPI_D.COMM_BIPARTITE_O),
                 MPI_D.Comm_size(MPI_D.COMM_BIPARTITE_O))
            )

        def a_fn(ctx):
            sizes.setdefault("A", set()).add(
                (MPI_D.Comm_rank(MPI_D.COMM_BIPARTITE_A),
                 MPI_D.Comm_size(MPI_D.COMM_BIPARTITE_A))
            )
            list(ctx.recv_iter())

        job = common_job("naming", o_fn, a_fn, o_tasks=5, a_tasks=3)
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        assert sizes["O"] == {(r, 5) for r in range(5)}
        assert sizes["A"] == {(r, 3) for r in range(3)}


class TestIterationMode:
    def test_three_round_accumulation(self):
        """Each round A sums what O sent and feeds it back."""
        final = {}
        lock = threading.Lock()

        def o_fn(ctx):
            if ctx.round == 0:
                ctx.send(ctx.rank % ctx.a_size, 1.0)
            else:
                total = sum(v for _, v in ctx.recv_iter())
                ctx.send(ctx.rank % ctx.a_size, total + 1.0)

        def a_fn(ctx):
            total = sum(v for _, v in ctx.recv_iter())
            if ctx.round < 2:
                # send back to the O tasks (bidirectional plane)
                ctx.send(ctx.rank % ctx.o_size, total)
            else:
                with lock:
                    final[ctx.rank] = total

        job = DataMPIJob(
            "iter", o_fn, a_fn, o_tasks=2, a_tasks=2, mode=Mode.ITERATION, rounds=3
        )
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        # 2 O tasks send 1.0 each -> A totals 1.0; feedback adds 1 per round
        assert sum(final.values()) == 2 * 3.0

    def test_process_local_state_survives_rounds(self):
        """A tasks stash into ctx.state; next round's O task reads it."""
        observations = []
        lock = threading.Lock()

        def o_fn(ctx):
            if ctx.round > 0:
                with lock:
                    observations.append(ctx.state.get(("acc", ctx.rank)))
                list(ctx.recv_iter())
            ctx.send(ctx.rank, ctx.round)

        def a_fn(ctx):
            values = [v for _, v in ctx.recv_iter()]
            ctx.state[("acc", ctx.rank)] = sum(values)
            if ctx.round < 1:
                ctx.send(ctx.rank, 0)

        job = DataMPIJob(
            "state", o_fn, a_fn, o_tasks=2, a_tasks=2, mode=Mode.ITERATION, rounds=2
        )
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        # round-1 O tasks observed round-0 A state (same process, same rank pin)
        assert observations == [0, 0]

    def test_iteration_o_tasks_pinned_per_round(self):
        """O task t must always run on process t % nprocs (state locality)."""
        placements = []
        lock = threading.Lock()

        def o_fn(ctx):
            if ctx.round > 0:
                list(ctx.recv_iter())
            with lock:
                placements.append((ctx.round, ctx.rank, threading.get_ident()))
            ctx.send(ctx.rank % ctx.a_size, 1)

        def a_fn(ctx):
            list(ctx.recv_iter())
            if ctx.round < 2:
                ctx.send(ctx.rank % ctx.o_size, 1)

        job = DataMPIJob(
            "pin", o_fn, a_fn, o_tasks=3, a_tasks=2, mode=Mode.ITERATION, rounds=3
        )
        assert mpidrun(job, nprocs=3, raise_on_error=True).success
        by_task = {}
        for _round, rank, thread in placements:
            by_task.setdefault(rank, set()).add(thread)
        # each O task stayed on one worker thread across all rounds
        assert all(len(threads) == 1 for threads in by_task.values())


class TestStreamingMode:
    def test_records_delivered_before_o_phase_ends(self):
        """The pipelined feature: A sees data while O is still producing."""
        first_recv_time = {}
        o_end_time = {}
        lock = threading.Lock()

        def o_fn(ctx):
            for i in range(40):
                ctx.send(i % 2, ("payload", time.perf_counter()))
                time.sleep(0.005)  # a slow stream
            with lock:
                o_end_time[ctx.rank] = time.perf_counter()

        def a_fn(ctx):
            kv = ctx.recv()
            with lock:
                first_recv_time[ctx.rank] = time.perf_counter()
            count = 1
            while kv is not None:
                kv = ctx.recv()
                count = count + 1 if kv is not None else count
            assert count == 40

        from repro.core.constants import MPI_D_Constants as K

        job = DataMPIJob(
            "stream",
            o_fn,
            a_fn,
            o_tasks=2,
            a_tasks=2,
            mode=Mode.STREAMING,
            # tiny flush threshold: every couple of records ships immediately,
            # so delivery genuinely overlaps production
            conf={K.SPL_PARTITION_BYTES: 64},
        )
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        assert min(first_recv_time.values()) < min(o_end_time.values())

    def test_unsorted_arrival_order_preserved_per_sender(self):
        received = {}

        def o_fn(ctx):
            for i in range(30):
                ctx.send(0, (ctx.rank, i))

        def a_fn(ctx):
            received[ctx.rank] = [v for _, v in ctx.recv_iter()]

        job = DataMPIJob("order", o_fn, a_fn, 1, 1, mode=Mode.STREAMING)
        assert mpidrun(job, nprocs=1, raise_on_error=True).success
        # one sender, one receiver: per-sender FIFO must hold
        assert received[0] == [(0, i) for i in range(30)]

    def test_streaming_counts_complete(self):
        total = {"n": 0}
        lock = threading.Lock()

        def o_fn(ctx):
            for i in range(100):
                ctx.send(i % 5, i)

        def a_fn(ctx):
            n = sum(1 for _ in ctx.recv_iter())
            with lock:
                total["n"] += n

        job = DataMPIJob("cnt", o_fn, a_fn, o_tasks=3, a_tasks=5, mode=Mode.STREAMING)
        result = mpidrun(job, nprocs=3, raise_on_error=True)
        assert result.success
        assert total["n"] == 300
