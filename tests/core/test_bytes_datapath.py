"""Bytes-first datapath: record batches end-to-end, pickle off the hot loop.

The contract under test: after the sender-side buffer seals a block into
a :class:`~repro.serde.batch.RecordBatch`, no hop — coalescing, wire,
spill, merge — re-encodes a record.  Objects materialize only at the
user-function boundary (or never, for raw-byte consumers).
"""

import json
import os
import pickle
import threading

import pytest

from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.buffers import Block, ReceivePartitionList, SendPartitionList
from repro.core.constants import MPI_D_Constants as K
from repro.core.sorter import RunStore
from repro.net import wire
from repro.serde.batch import RecordBatch, batch_from_pairs
from repro.serde.comparators import bytes_compare, default_compare
from repro.serde.serialization import get_serializer

from tests.core.helpers import FileCollector
from tests.serde.test_batch import CountingSerializer

SER = get_serializer("writable")


class TestSplSealsBatches:
    def test_seal_produces_record_batch(self):
        spl = SendPartitionList(
            num_partitions=1, flush_bytes=1 << 20, cmp=default_compare,
            serializer=SER,
        )
        for i in range(10):
            spl.add(0, f"k{i}", i)
        [block] = spl.flush_all()
        assert isinstance(block.records, RecordBatch)
        assert block.is_batch and block.count == 10
        assert block.nbytes == len(block.records.data)
        assert block.sorted

    def test_seal_serializes_each_record_exactly_once(self):
        counting = CountingSerializer()
        spl = SendPartitionList(
            num_partitions=1, flush_bytes=1 << 20, cmp=default_compare,
            serializer=counting,
        )
        for i in range(30):
            spl.add(0, f"k{i}", i)
        spl.flush_all()
        assert counting.serialized == 60  # one per key + one per value
        assert counting.deserialized == 0

    def test_raw_seal_keeps_application_bytes(self):
        spl = SendPartitionList(
            num_partitions=1, flush_bytes=1 << 20, cmp=bytes_compare,
            serializer=SER, raw=True,
        )
        spl.add(0, b"bb", b"2")
        spl.add(0, b"aa", b"1")
        [block] = spl.flush_all()
        assert block.records.raw
        # raw layout: vint(2) 'aa' vint(1) '1' vint(2) 'bb' vint(1) '2'
        assert bytes(block.records.data) == b"\x02aa\x011\x02bb\x012"

    def test_legacy_spl_still_ships_tuples(self):
        spl = SendPartitionList(
            num_partitions=1, flush_bytes=1 << 20, cmp=default_compare
        )
        spl.add(0, "a", 1)
        [block] = spl.flush_all()
        assert isinstance(block.records, tuple)
        assert not block.is_batch


class TestRplBatchPath:
    def _rpl(self, tmp_path, serializer=None, budget=1 << 20):
        store = RunStore(
            default_compare, serializer or SER, str(tmp_path), budget
        )
        return ReceivePartitionList(0, default_compare, store, 64)

    def test_batches_merge_without_decoding_values(self, tmp_path):
        counting = CountingSerializer()
        rpl = self._rpl(tmp_path, serializer=counting)
        for base in (0, 10):
            pairs = sorted((f"k{base + i:02d}", base + i) for i in range(10))
            batch = batch_from_pairs(pairs, SER)
            rpl.add_block(Block(0, batch, len(batch.data), sorted=True))
        rpl.store.compact(1)
        # compaction ordered 20 records by key; no value ever materialized
        assert counting.deserialized == 20
        assert counting.serialized == 0
        assert [k for k, _ in rpl.merged()] == [f"k{i:02d}" for i in range(20)]

    def test_merged_batch_fast_path_and_fallbacks(self, tmp_path):
        rpl = self._rpl(tmp_path)
        batch = batch_from_pairs([(b"a", b"1")], None, raw=True)
        rpl.add_block(Block(0, batch, len(batch.data), sorted=True))
        merged = rpl.merged_batch()
        assert merged is not None and merged.raw
        # an object-tuple block in the mix disables the batch fast path
        rpl2 = self._rpl(tmp_path)
        rpl2.add_block(Block(0, ((b"a", b"1"),), 10, sorted=True))
        assert rpl2.merged_batch() is None

    def test_spilled_store_declines_merged_batch(self, tmp_path):
        rpl = self._rpl(tmp_path, budget=0)  # everything spills
        batch = batch_from_pairs([(f"k{i}", i) for i in range(5)], SER)
        rpl.add_block(Block(0, batch, len(batch.data), sorted=True))
        assert rpl.merged_batch() is None
        assert [k for k, _ in rpl.merged()] == [f"k{i}" for i in range(5)]


class TestWireCodec:
    def _message(self, raw=False):
        if raw:
            batch = batch_from_pairs([(b"aa", b"11")], None, raw=True)
        else:
            batch = batch_from_pairs([("a", 1)], SER)
        block = Block(3, batch, len(batch.data), sorted=True)
        return ("batch", "fwd:0", (7, 2, [block], True))

    def test_batch_message_skips_pickle(self):
        body, flags = wire.encode_payload(self._message())
        assert flags == wire.FLAG_BATCH
        kind, plane_id, (seq, origin, blocks, eos) = wire.decode_payload(
            body, flags
        )
        assert (kind, plane_id, seq, origin, eos) == ("batch", "fwd:0", 7, 2, True)
        [block] = blocks
        assert block.partition_id == 3 and block.sorted
        assert list(block.records.iter_pairs(SER)) == [("a", 1)]

    def test_raw_flag_roundtrips(self):
        body, flags = wire.encode_payload(self._message(raw=True))
        _, _, (_, _, [block], _) = wire.decode_payload(body, flags)
        assert block.records.raw
        assert list(block.records.iter_pairs(SER)) == [(b"aa", b"11")]

    def test_decoded_batch_is_zero_copy_view(self):
        body, flags = wire.encode_payload(self._message(raw=True))
        _, _, (_, _, [block], _) = wire.decode_payload(body, flags)
        assert isinstance(block.records.data, memoryview)

    def test_non_batch_payload_falls_back_to_pickle(self):
        payload = ("task", 42)
        body, flags = wire.encode_payload(payload)
        assert flags == 0
        assert wire.decode_payload(body, flags) == payload

    def test_object_tuple_blocks_fall_back_to_pickle(self):
        block = Block(0, (("a", 1),), 10, sorted=True)
        _, flags = wire.encode_payload(("batch", "fwd:0", (0, 0, [block], False)))
        assert flags == 0


def _no_pickle_dumps(*args, **kwargs):
    raise AssertionError("pickle.dumps reached the shuffle hot loop")


class TestEndToEndNoPickle:
    def test_threads_shuffle_never_pickles(self, tmp_path, monkeypatch):
        """SPL -> coalescing -> RPL -> merge -> recv with pickle disabled."""
        outdir = str(tmp_path)

        def o_fn(ctx):
            for i in range(ctx.rank, 200, ctx.o_size):
                ctx.send(f"key-{i % 17:02d}", i)

        def a_fn(ctx):
            got = [k for k, _ in ctx.recv_iter()]
            with open(os.path.join(outdir, f"a{ctx.rank}.json"), "w") as f:
                json.dump(got, f)

        job = DataMPIJob(
            "no-pickle", o_fn, a_fn, 2, 2, mode=Mode.MAPREDUCE,
            conf={K.SPL_PARTITION_BYTES: 256},
        )
        monkeypatch.setattr(pickle, "dumps", _no_pickle_dumps)
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        got = []
        for name in sorted(os.listdir(outdir)):
            with open(os.path.join(outdir, name)) as f:
                got.extend(json.load(f))
        assert sorted(got) == sorted(f"key-{i % 17:02d}" for i in range(200))

    def test_process_backend_wire_never_pickles_batches(self, tmp_path):
        """The FLAG_BATCH codec must carry all shuffle data on the wire."""
        out = FileCollector(tmp_path / "out")

        class BatchRejectingSerde:
            """WIRE_SERDE stand-in: control traffic only, never batches."""

            def dumps(self, obj):
                if (
                    isinstance(obj, tuple)
                    and len(obj) == 3
                    and obj[0] == "batch"
                ):
                    raise AssertionError(
                        "shuffle batch message reached the pickle wire path"
                    )
                return wire.PickleSerializer().dumps(obj)

            def loads(self, data):
                return wire.PickleSerializer().loads(data)

        original = wire.WIRE_SERDE
        wire.WIRE_SERDE = BatchRejectingSerde()  # inherited by fork
        try:

            def o_fn(ctx):
                for i in range(ctx.rank, 80, ctx.o_size):
                    ctx.send(f"k{i % 11:02d}", i)

            def a_fn(ctx):
                for key, value in ctx.recv_iter():
                    out(ctx.rank, key, value)

            job = DataMPIJob(
                "wire-no-pickle", o_fn, a_fn, 2, 2, mode=Mode.MAPREDUCE,
                conf={K.LAUNCHER: "processes", K.SPL_PARTITION_BYTES: 256},
            )
            assert mpidrun(job, nprocs=2, raise_on_error=True).success
        finally:
            wire.WIRE_SERDE = original
        keys = [k for k, _ in out.all_pairs()]
        assert sorted(keys) == sorted(f"k{i % 11:02d}" for i in range(80))


class TestOversizedAndEmpty:
    def test_single_record_larger_than_batch_cap(self, tmp_path):
        """One record beyond mpi.d.shuffle.batch.bytes still transmits."""
        outdir = str(tmp_path)
        big = "x" * 32_768

        def o_fn(ctx):
            ctx.send("big", big)
            ctx.send("small", "y")

        def a_fn(ctx):
            got = dict(ctx.recv_iter())
            with open(os.path.join(outdir, f"a{ctx.rank}.json"), "w") as f:
                json.dump(got, f)

        job = DataMPIJob(
            "oversize", o_fn, a_fn, 1, 1, mode=Mode.MAPREDUCE,
            conf={K.SHUFFLE_BATCH_BYTES: 64, K.SPL_PARTITION_BYTES: 64},
        )
        assert mpidrun(job, nprocs=1, raise_on_error=True).success
        with open(os.path.join(outdir, "a0.json")) as f:
            got = json.load(f)
        assert got == {"big": big, "small": "y"}

    def test_partition_with_no_records(self, tmp_path):
        """A tasks owning empty partitions see clean end-of-stream."""
        outdir = str(tmp_path)

        def o_fn(ctx):
            ctx.send("only", 1)  # single key: most partitions stay empty

        def a_fn(ctx):
            got = list(ctx.recv_iter())
            with open(os.path.join(outdir, f"a{ctx.rank}.json"), "w") as f:
                json.dump(len(got), f)

        job = DataMPIJob(
            "empty-parts", o_fn, a_fn, 1, 4, mode=Mode.MAPREDUCE, conf={}
        )
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        counts = []
        for name in sorted(os.listdir(outdir)):
            with open(os.path.join(outdir, name)) as f:
                counts.append(json.load(f))
        assert sum(counts) == 1


class TestRecvBatch:
    def test_raw_job_consumes_merged_batch(self, tmp_path):
        """The TeraSort shape: raw bytes in, one contiguous batch out."""
        outdir = str(tmp_path)
        used_batch = []

        def o_fn(ctx):
            for i in range(ctx.rank, 100, ctx.o_size):
                ctx.send(b"%04d" % (i * 7919 % 100), b"v" * 10)

        def a_fn(ctx):
            batch = ctx.recv_batch()
            used_batch.append(batch is not None)
            keys = [bytes(k) for k, _ in batch.iter_views()]
            with open(os.path.join(outdir, f"a{ctx.rank}.txt"), "w") as f:
                f.write("\n".join(k.decode() for k in keys))

        job = DataMPIJob(
            "raw-batch", o_fn, a_fn, 2, 2, mode=Mode.MAPREDUCE,
            conf={K.SHUFFLE_RAW: True},
            comparator=bytes_compare,
        )
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        assert used_batch and all(used_batch)
        keys = []
        for name in sorted(os.listdir(outdir)):
            with open(os.path.join(outdir, name)) as f:
                part = f.read().split("\n")
            assert part == sorted(part)  # each partition key-sorted
            keys.extend(part)
        assert sorted(keys) == sorted("%04d" % (i * 7919 % 100) for i in range(100))

    def test_recv_batch_returns_none_after_recv(self, tmp_path):
        saw = []

        def o_fn(ctx):
            ctx.send(b"k", b"v")

        def a_fn(ctx):
            first = ctx.recv()
            saw.append((first, ctx.recv_batch()))

        job = DataMPIJob(
            "batch-after-recv", o_fn, a_fn, 1, 1, mode=Mode.MAPREDUCE,
            conf={K.SHUFFLE_RAW: True}, comparator=bytes_compare,
        )
        assert mpidrun(job, nprocs=1, raise_on_error=True).success
        [(first, batch)] = saw
        assert first == (b"k", b"v")
        assert batch is None
