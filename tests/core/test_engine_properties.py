"""Property-based end-to-end tests: the bipartite exchange as an oracle.

For arbitrary record multisets, task/process geometries and modes, one
invariant must hold: the multiset of (key, value) pairs received across
all A tasks equals the multiset emitted by all O tasks, with each pair
landing exactly at the partitioner-designated task, in sorted order when
the mode sorts.  hypothesis drives the geometry and the data.
"""

import threading
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.constants import MPI_D_Constants as K
from repro.core.partition import hash_partitioner

keys = st.one_of(
    st.integers(-50, 50),
    st.text(alphabet="abcdefg", min_size=0, max_size=6),
)
values = st.one_of(st.integers(), st.text(max_size=8), st.none())
records = st.lists(st.tuples(keys, values), min_size=0, max_size=60)
geometry = st.tuples(
    st.integers(1, 4),  # o_tasks
    st.integers(1, 5),  # a_tasks
    st.integers(1, 3),  # nprocs
)


def run_exchange(data, o_tasks, a_tasks, nprocs, mode, conf=None):
    received: dict[int, list] = {}
    lock = threading.Lock()

    def o_fn(ctx):
        for index in range(ctx.rank, len(data), ctx.o_size):
            ctx.send(*data[index])

    def a_fn(ctx):
        got = list(ctx.recv_iter())
        with lock:
            received[ctx.rank] = got

    job = DataMPIJob(
        "prop", o_fn, a_fn, o_tasks, a_tasks, mode=mode, conf=conf or {}
    )
    assert mpidrun(job, nprocs=nprocs, raise_on_error=True).success
    return received


class TestExchangeProperties:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(data=records, geom=geometry)
    def test_mapreduce_exchange_oracle(self, data, geom):
        o_tasks, a_tasks, nprocs = geom
        received = run_exchange(data, o_tasks, a_tasks, nprocs, Mode.MAPREDUCE)
        # 1. nothing lost, nothing duplicated (multiset equality)
        flat = [kv for got in received.values() for kv in got]
        assert Counter(map(repr, flat)) == Counter(map(repr, data))
        # 2. routing: every pair sits at its partitioner-designated task
        for task_id, got in received.items():
            for key, value in got:
                assert hash_partitioner(key, value, a_tasks) == task_id
        # 3. each partition arrives key-sorted (MapReduce mode sorts)
        from repro.serde.comparators import default_compare, sort_key

        order = sort_key(default_compare)
        for got in received.values():
            ks = [k for k, _ in got]
            assert ks == sorted(ks, key=order)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(data=records, geom=geometry)
    def test_streaming_exchange_oracle(self, data, geom):
        o_tasks, a_tasks, nprocs = geom
        received = run_exchange(
            data, o_tasks, a_tasks, nprocs, Mode.STREAMING,
            conf={K.SPL_PARTITION_BYTES: 64},
        )
        flat = [kv for got in received.values() for kv in got]
        assert Counter(map(repr, flat)) == Counter(map(repr, data))
        for task_id, got in received.items():
            for key, value in got:
                assert hash_partitioner(key, value, a_tasks) == task_id

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        data=st.lists(st.tuples(st.integers(0, 30), st.integers()), max_size=40),
        tiny_flush=st.integers(16, 256),
    )
    def test_flush_threshold_never_changes_results(self, data, tiny_flush):
        """Buffering granularity is invisible to applications.

        Equal keys from *different* senders race, so value order within a
        key is not part of the contract — compare per-task multisets and
        key order, like MapReduce itself guarantees.
        """
        small = run_exchange(
            data, 2, 3, 2, Mode.MAPREDUCE, conf={K.SPL_PARTITION_BYTES: tiny_flush}
        )
        large = run_exchange(
            data, 2, 3, 2, Mode.MAPREDUCE,
            conf={K.SPL_PARTITION_BYTES: 1 << 20},
        )
        assert set(small) == set(large)
        for task_id in small:
            assert Counter(small[task_id]) == Counter(large[task_id])
            assert [k for k, _ in small[task_id]] == [
                k for k, _ in large[task_id]
            ]

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.lists(st.tuples(st.integers(0, 9), st.integers()), max_size=40))
    def test_spilling_never_changes_results(self, data):
        """cache_fraction=0 (all spilled to disk) is semantics-neutral.

        Value order *within* one key may differ (spill runs merge after
        in-memory runs, and MapReduce guarantees no value order), so the
        comparison is per-task multisets plus key order.
        """
        cached = run_exchange(data, 2, 2, 2, Mode.MAPREDUCE)
        spilled = run_exchange(
            data, 2, 2, 2, Mode.MAPREDUCE,
            conf={K.CACHE_FRACTION: 0.0, K.SPL_PARTITION_BYTES: 64},
        )
        assert set(cached) == set(spilled)
        for task_id in cached:
            assert Counter(cached[task_id]) == Counter(spilled[task_id])
            assert [k for k, _ in cached[task_id]] == [
                k for k, _ in spilled[task_id]
            ]
