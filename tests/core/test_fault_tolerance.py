"""Fault-tolerance flows: checkpoint-enabled jobs, crash, restart (§IV-E)."""

import pytest

from repro.core import mapreduce_job, mpidrun
from repro.core.constants import MPI_D_Constants as K

from tests.core.helpers import Collector, int_range_input

N = 200
O_TASKS, A_TASKS, NPROCS = 4, 2, 2


def _mapper(k, v, emit):
    emit(str(v % 13), v)


def _reducer(k, values, emit):
    emit(k, sum(values))


def make_job(out, ft_dir, crash_after=-1, crash_task=1, interval=10, ft=True):
    conf = {
        K.FT_ENABLED: ft,
        K.FT_DIR: str(ft_dir),
        K.JOB_ID: "ft-job",
        K.FT_INTERVAL_RECORDS: interval,
        K.INJECT_CRASH_AFTER_RECORDS: crash_after,
        K.INJECT_CRASH_TASK: crash_task,
    }
    return mapreduce_job(
        "ftwc",
        int_range_input(N),
        _mapper,
        _reducer,
        out,
        o_tasks=O_TASKS,
        a_tasks=A_TASKS,
        conf=conf if ft else {},
    )


def reference_output(tmp_path):
    out = Collector()
    assert mpidrun(make_job(out, tmp_path / "noft", ft=False), nprocs=NPROCS,
                   raise_on_error=True).success
    return out.merged()


class TestCheckpointedExecution:
    def test_ft_run_matches_plain_run(self, tmp_path):
        expected = reference_output(tmp_path)
        out = Collector()
        result = mpidrun(make_job(out, tmp_path), nprocs=NPROCS, raise_on_error=True)
        assert result.success
        assert out.merged() == expected
        assert result.metrics.checkpointed_records > 0

    def test_all_emitted_records_checkpointed(self, tmp_path):
        out = Collector()
        result = mpidrun(make_job(out, tmp_path), nprocs=NPROCS, raise_on_error=True)
        # each input record emits exactly one pair; close() flushes tails
        assert result.metrics.checkpointed_records == N


class TestCrashAndRecover:
    def test_crash_reported_as_failure(self, tmp_path):
        out = Collector()
        result = mpidrun(make_job(out, tmp_path, crash_after=15), nprocs=NPROCS)
        assert not result.success
        assert "injected crash" in result.error

    def test_restart_produces_identical_output(self, tmp_path):
        expected = reference_output(tmp_path)
        crashed = Collector()
        first = mpidrun(make_job(crashed, tmp_path, crash_after=15), nprocs=NPROCS)
        assert not first.success
        recovered = Collector()
        second = mpidrun(make_job(recovered, tmp_path), nprocs=NPROCS,
                         raise_on_error=True)
        assert second.success
        assert recovered.merged() == expected

    def test_restart_reloads_persisted_records(self, tmp_path):
        first = mpidrun(make_job(Collector(), tmp_path, crash_after=25),
                        nprocs=NPROCS)
        assert not first.success
        out = Collector()
        second = mpidrun(make_job(out, tmp_path), nprocs=NPROCS,
                         raise_on_error=True)
        # the crashed task had persisted at least two complete rounds
        assert second.metrics.reloaded_records >= 20
        # reloaded records are skipped, never double-sent
        assert out.merged() == reference_output(tmp_path)

    def test_more_checkpoints_more_reload(self, tmp_path):
        """Reload volume grows with how much was persisted (Figure 13a).

        Only the crashed task's persisted rounds are deterministic (other
        tasks race with the abort), so the assertion looks at that task's
        checkpoint files directly.
        """
        from repro.core.checkpoint import CheckpointManager
        from repro.serde.serialization import WritableSerializer

        def crash_then_count(subdir, crash_after):
            mpidrun(
                make_job(Collector(), tmp_path / subdir, crash_after=crash_after),
                nprocs=NPROCS,
            )
            mgr = CheckpointManager(
                str(tmp_path / subdir), "ft-job", WritableSerializer(), 10
            )
            return mgr.reader(1).record_count()

        early = crash_then_count("early", 12)
        late = crash_then_count("late", 45)
        assert early == 10  # one complete round of 10
        assert late == 40  # four complete rounds
        # and the restart actually reloads at least that much
        out = Collector()
        result = mpidrun(
            make_job(out, tmp_path / "late"), nprocs=NPROCS, raise_on_error=True
        )
        assert result.metrics.reloaded_records >= 40

    def test_double_crash_then_recover(self, tmp_path):
        expected = reference_output(tmp_path)
        assert not mpidrun(
            make_job(Collector(), tmp_path, crash_after=12), nprocs=NPROCS
        ).success
        assert not mpidrun(
            make_job(Collector(), tmp_path, crash_after=30), nprocs=NPROCS
        ).success
        out = Collector()
        final = mpidrun(make_job(out, tmp_path), nprocs=NPROCS, raise_on_error=True)
        assert final.success
        assert out.merged() == expected

    def test_checkpoint_interval_one_persists_everything_before_crash(self, tmp_path):
        crash_at = 17
        mpidrun(
            make_job(Collector(), tmp_path, crash_after=crash_at, interval=1),
            nprocs=NPROCS,
        )
        from repro.core.checkpoint import CheckpointManager
        from repro.serde.serialization import WritableSerializer

        mgr = CheckpointManager(str(tmp_path), "ft-job", WritableSerializer(), 1)
        persisted = mgr.reader(1).record_count()
        assert persisted == crash_at

    def test_ft_rejected_for_iteration_jobs(self, tmp_path):
        from repro.core import DataMPIJob, Mode

        job = DataMPIJob(
            "bad-ft",
            lambda ctx: None,
            lambda ctx: list(ctx.recv_iter()),
            1,
            1,
            mode=Mode.ITERATION,
            conf={K.FT_ENABLED: True, K.FT_DIR: str(tmp_path)},
        )
        result = mpidrun(job, nprocs=1)
        assert not result.success
        assert "checkpoint" in result.error.lower()
