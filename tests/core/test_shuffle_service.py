"""Unit tests for the shuffle service and planes (below the engine)."""

import tempfile

import pytest

from repro.common.errors import DataMPIError
from repro.core.buffers import Block
from repro.core.partition import PartitionWindow
from repro.core.shuffle import PlaneConfig, ShufflePlane, ShuffleService
from repro.mpi import run_world
from repro.serde.comparators import default_compare
from repro.serde.serialization import WritableSerializer


def make_config(num_partitions=4, num_processes=2, cmp=default_compare,
                pipelined=False, budget=1 << 30):
    return PlaneConfig(
        num_partitions=num_partitions,
        window=PartitionWindow(num_partitions, num_processes),
        cmp=cmp,
        serializer=WritableSerializer(),
        spill_dir=tempfile.mkdtemp(prefix="shuffle-test-"),
        memory_budget=budget,
        merge_threshold_blocks=4,
        pipelined=pipelined,
    )


def block(partition, records, sorted_=True):
    return Block(partition, tuple(records), 10 * len(records), sorted=sorted_)


class TestShufflePlane:
    def test_owned_partitions_follow_window(self):
        plane = ShufflePlane("p", 0, make_config(5, 2))
        assert set(plane.rpls) == {0, 2, 4}
        plane1 = ShufflePlane("p", 1, make_config(5, 2))
        assert set(plane1.rpls) == {1, 3}

    def test_foreign_partition_rejected(self):
        plane = ShufflePlane("p", 0, make_config(4, 2))
        with pytest.raises(DataMPIError, match="Partition Window"):
            plane.add_block(block(1, [("a", 1)]))  # partition 1 owned by rank 1

    def test_completion_requires_all_eos(self):
        plane = ShufflePlane("p", 0, make_config(2, 2))
        plane.add_eos()
        assert not plane.complete.is_set()
        plane.add_eos()
        assert plane.complete.is_set()

    def test_extra_eos_rejected(self):
        plane = ShufflePlane("p", 0, make_config(2, 1))
        plane.add_eos()
        with pytest.raises(DataMPIError, match="extra EOS"):
            plane.add_eos()

    def test_read_before_complete_rejected(self):
        plane = ShufflePlane("p", 0, make_config(2, 1))
        with pytest.raises(DataMPIError, match="before EOS"):
            plane.merged_iter(0)

    def test_merged_iterator_sorted(self):
        plane = ShufflePlane("p", 0, make_config(2, 1))
        plane.add_block(block(0, [("b", 1), ("d", 1)]))
        plane.add_block(block(0, [("a", 2), ("c", 2)]))
        plane.add_eos()
        assert [k for k, _ in plane.merged_iter(0)] == ["a", "b", "c", "d"]

    def test_stats(self):
        plane = ShufflePlane("p", 0, make_config(2, 1))
        plane.add_block(block(0, [("a", 1), ("b", 1)]))
        assert plane.records_received() == 2
        assert plane.blocks_received() == 1

    def test_streaming_queue_delivery(self):
        plane = ShufflePlane("p", 0, make_config(2, 1, pipelined=True))
        plane.add_block(block(0, [("x", 1)], sorted_=False))
        it = plane.stream_iter(0)
        assert next(it) == ("x", 1)
        plane.add_eos()
        assert list(it) == []


class TestShuffleServiceOverMPI:
    def test_blocks_route_to_owners(self):
        def main(comm):
            service = ShuffleService(comm, lambda pid: make_config(4, comm.size))
            # every rank emits one block per partition
            for partition in range(4):
                service.send_block(
                    "fwd:0", block(partition, [(f"r{comm.rank}", partition)])
                )
            service.send_eos("fwd:0")
            plane = service.plane("fwd:0")
            plane.wait_complete(30)
            owned = {p: list(plane.merged_iter(p)) for p in plane.rpls}
            service.shutdown()
            return owned

        results = run_world(2, main)
        # rank 0 owns partitions 0 and 2; rank 1 owns 1 and 3
        assert set(results[0]) == {0, 2}
        assert set(results[1]) == {1, 3}
        for owned in results:
            for partition, records in owned.items():
                assert sorted(v for _, v in records) == [partition, partition]

    def test_stats_account_traffic(self):
        def main(comm):
            service = ShuffleService(comm, lambda pid: make_config(2, comm.size))
            if comm.rank == 0:
                for _ in range(5):
                    service.send_block("fwd:0", block(1, [("k", 1)]))
            service.send_eos("fwd:0")
            service.plane("fwd:0").wait_complete(30)
            service.drain_sends()
            stats = service.stats()
            service.shutdown()
            return stats

        results = run_world(2, main)
        assert results[0]["blocks_sent"] == 5
        assert results[1]["records_received"] == 5

    def test_multiple_planes_isolated(self):
        def main(comm):
            service = ShuffleService(comm, lambda pid: make_config(1, comm.size))
            service.send_block("fwd:0", block(0, [("first", 0)]))
            service.send_block("bwd:0", block(0, [("second", 0)]))
            service.send_eos("fwd:0")
            service.send_eos("bwd:0")
            fwd, bwd = service.plane("fwd:0"), service.plane("bwd:0")
            fwd.wait_complete(30)
            bwd.wait_complete(30)
            out = (
                [k for k, _ in fwd.merged_iter(0)],
                [k for k, _ in bwd.merged_iter(0)],
            )
            service.shutdown()
            return out

        # bwd planes use a window over o_tasks; with 1 partition + 1 process
        # both land on rank 0
        results = run_world(1, main)
        assert results[0] == (["first"], ["second"])
