"""Tests for the key-value library-level checkpoint (§IV-E)."""

import os

import pytest

from repro.common.errors import CheckpointError
from repro.core.checkpoint import (
    CheckpointManager,
    CheckpointReader,
    CheckpointWriter,
)
from repro.serde.serialization import WritableSerializer


@pytest.fixture()
def serializer():
    return WritableSerializer()


class TestWriterReader:
    def test_rounds_written_at_interval(self, tmp_path, serializer):
        writer = CheckpointWriter(str(tmp_path), "o0", serializer, interval_records=3)
        for i in range(7):
            writer.add(f"k{i}", i)
        # 7 records, interval 3 -> rounds 0 and 1 on disk, 1 buffered
        reader = CheckpointReader(str(tmp_path), "o0", serializer)
        assert reader.complete_rounds() == [0, 1]
        assert reader.record_count() == 6
        writer.close()
        assert reader.complete_rounds() == [0, 1, 2]
        assert reader.record_count() == 7

    def test_replay_preserves_order(self, tmp_path, serializer):
        writer = CheckpointWriter(str(tmp_path), "o1", serializer, 2)
        pairs = [(f"key{i}", [i, i * 2]) for i in range(6)]
        for k, v in pairs:
            writer.add(k, v)
        writer.close()
        reader = CheckpointReader(str(tmp_path), "o1", serializer)
        assert list(reader.replay()) == pairs

    def test_tasks_do_not_interfere(self, tmp_path, serializer):
        w0 = CheckpointWriter(str(tmp_path), "o0", serializer, 1)
        w1 = CheckpointWriter(str(tmp_path), "o1", serializer, 1)
        w0.add("a", 0)
        w1.add("b", 1)
        assert list(CheckpointReader(str(tmp_path), "o0", serializer).replay()) == [
            ("a", 0)
        ]
        assert list(CheckpointReader(str(tmp_path), "o1", serializer).replay()) == [
            ("b", 1)
        ]

    def test_partial_tmp_file_ignored(self, tmp_path, serializer):
        """A crash mid-write leaves only a .tmp file — never a visible round."""
        writer = CheckpointWriter(str(tmp_path), "o0", serializer, 1)
        writer.add("ok", 1)
        # simulate a torn write of the next round
        (tmp_path / "cp_o0_000001.ckpt.tmp").write_bytes(b"garbage")
        reader = CheckpointReader(str(tmp_path), "o0", serializer)
        assert reader.complete_rounds() == [0]
        assert list(reader.replay()) == [("ok", 1)]

    def test_start_round_continues_numbering(self, tmp_path, serializer):
        w = CheckpointWriter(str(tmp_path), "o0", serializer, 1)
        w.add("a", 1)
        reader = CheckpointReader(str(tmp_path), "o0", serializer)
        resumed = CheckpointWriter(
            str(tmp_path), "o0", serializer, 1, start_round=reader.max_round()
        )
        resumed.add("b", 2)
        assert list(reader.replay()) == [("a", 1), ("b", 2)]

    def test_empty_reader(self, tmp_path, serializer):
        reader = CheckpointReader(str(tmp_path / "nowhere"), "o9", serializer)
        assert reader.complete_rounds() == []
        assert reader.max_round() == 0
        assert list(reader.replay()) == []

    def test_interval_validated(self, tmp_path, serializer):
        with pytest.raises(CheckpointError):
            CheckpointWriter(str(tmp_path), "o0", serializer, interval_records=0)

    def test_close_without_records_writes_nothing(self, tmp_path, serializer):
        writer = CheckpointWriter(str(tmp_path), "o0", serializer, 5)
        writer.close()
        assert CheckpointReader(str(tmp_path), "o0", serializer).max_round() == 0


class TestIntegrityAndQuarantine:
    def _write_rounds(self, tmp_path, serializer, n_rounds, per_round=2):
        writer = CheckpointWriter(str(tmp_path), "o0", serializer, per_round)
        for i in range(n_rounds * per_round):
            writer.add(f"k{i}", i)
        return CheckpointReader(str(tmp_path), "o0", serializer)

    def _corrupt(self, tmp_path, round_no):
        path = tmp_path / f"cp_o0_{round_no:06d}.ckpt"
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip payload bits; the stored CRC no longer matches
        path.write_bytes(bytes(data))

    def test_corrupt_round_quarantined_with_successors(self, tmp_path, serializer):
        reader = self._write_rounds(tmp_path, serializer, 3)
        self._corrupt(tmp_path, 1)
        # replay needs a contiguous prefix: round 2 is unreachable once
        # round 1 is gone, so both leave the namespace
        assert reader.complete_rounds() == [0]
        assert list(reader.replay()) == [("k0", 0), ("k1", 1)]
        assert reader.record_count() == 2
        assert (tmp_path / "cp_o0_000001.ckpt.bad").exists()
        assert (tmp_path / "cp_o0_000002.ckpt.bad").exists()
        assert not (tmp_path / "cp_o0_000001.ckpt").exists()

    def test_resumed_writer_overwrites_quarantined_round(self, tmp_path, serializer):
        reader = self._write_rounds(tmp_path, serializer, 2)
        self._corrupt(tmp_path, 1)
        assert reader.max_round() == 1  # resume from the verified prefix
        resumed = CheckpointWriter(
            str(tmp_path), "o0", serializer, 2, start_round=reader.max_round()
        )
        resumed.add("new", 10)
        resumed.close()
        assert list(reader.replay()) == [("k0", 0), ("k1", 1), ("new", 10)]

    def test_truncated_file_quarantined(self, tmp_path, serializer):
        reader = self._write_rounds(tmp_path, serializer, 1)
        path = tmp_path / "cp_o0_000000.ckpt"
        path.write_bytes(path.read_bytes()[:3])  # not even a whole CRC
        assert reader.complete_rounds() == []
        assert reader.max_round() == 0
        assert (tmp_path / "cp_o0_000000.ckpt.bad").exists()

    def test_intact_rounds_survive_verification(self, tmp_path, serializer):
        reader = self._write_rounds(tmp_path, serializer, 3)
        assert reader.complete_rounds() == [0, 1, 2]
        assert reader.record_count() == 6
        assert not list(tmp_path.glob("*.bad"))

    def test_clear_removes_quarantined_files(self, tmp_path, serializer):
        mgr = CheckpointManager(str(tmp_path), "jobQ", serializer, 1)
        mgr.writer(0).add("k", 1)
        bad = os.path.join(mgr.directory, "cp_o0_000000.ckpt")
        data = bytearray(open(bad, "rb").read())
        data[-1] ^= 0xFF
        open(bad, "wb").write(bytes(data))
        assert mgr.reader(0).record_count() == 0  # quarantines
        mgr.clear()
        assert not os.path.isdir(mgr.directory)


class TestManager:
    def test_global_max_round(self, tmp_path, serializer):
        mgr = CheckpointManager(str(tmp_path), "job1", serializer, 2)
        w0 = mgr.writer(0)
        for i in range(6):
            w0.add(i, i)  # 3 rounds
        w1 = mgr.writer(1)
        w1.add("x", 1)  # 0 complete rounds (buffered)
        assert mgr.global_max_round(num_o_tasks=2) == 3
        assert mgr.total_persisted(2) == 6

    def test_jobs_isolated(self, tmp_path, serializer):
        a = CheckpointManager(str(tmp_path), "jobA", serializer, 1)
        b = CheckpointManager(str(tmp_path), "jobB", serializer, 1)
        a.writer(0).add("k", 1)
        assert b.reader(0).record_count() == 0

    def test_clear(self, tmp_path, serializer):
        mgr = CheckpointManager(str(tmp_path), "gone", serializer, 1)
        mgr.writer(0).add("k", 1)
        assert mgr.reader(0).record_count() == 1
        mgr.clear()
        assert mgr.reader(0).record_count() == 0
        assert not os.path.isdir(mgr.directory)

    def test_clear_missing_dir_is_noop(self, tmp_path, serializer):
        CheckpointManager(str(tmp_path), "never", serializer, 1).clear()
