"""Cross-backend engine coverage: the four modes, shuffle correctness
and the flight recorder must produce identical results whether ranks
are threads (``LocalTransport``) or OS processes behind the socket
router (``mpi.d.launcher=processes``).

Outputs go through files (``FileCollector`` or plain per-rank files):
in-process closures are invisible across the fork boundary, and a sink
that works for both backends is exactly what real jobs need.
"""

import glob
import json
import os

from repro.core import DataMPIJob, Mode, common_job, mapreduce_job, mpidrun
from repro.core.constants import MPI_D_Constants as K

from tests.core.helpers import (
    FileCollector,
    expected_wordcount,
    wordcount_pieces,
)

TEXTS = [f"beta w{i % 9} w{(i * 5) % 7} gamma" for i in range(60)]


def _wc_job(out, launcher, extra=None):
    provider, mapper, reducer = wordcount_pieces(TEXTS)
    conf = {K.LAUNCHER: launcher, K.SHUFFLE_BATCH_BYTES: 256}
    conf.update(extra or {})
    return mapreduce_job(
        "backends-wc", provider, mapper, reducer, out,
        o_tasks=4, a_tasks=3, conf=conf,
    )


class TestMapReduceParity:
    def test_both_backends_produce_identical_output(self, tmp_path):
        merged = {}
        for launcher in ("threads", "processes"):
            out = FileCollector(tmp_path / launcher)
            result = mpidrun(_wc_job(out, launcher), nprocs=4,
                             raise_on_error=True)
            assert result.success
            merged[launcher] = out.merged()
        assert merged["threads"] == merged["processes"] == expected_wordcount(TEXTS)

    def test_partitioning_is_identical_across_backends(self, tmp_path):
        # not just the union: every key must land on the same A task
        per_task = {}
        for launcher in ("threads", "processes"):
            out = FileCollector(tmp_path / launcher)
            mpidrun(_wc_job(out, launcher), nprocs=4, raise_on_error=True)
            per_task[launcher] = {
                rank: sorted(pairs)
                for rank, pairs in out.by_task().items()
            }
        assert per_task["threads"] == per_task["processes"]


class TestModesOnProcesses:
    """Common / Iteration / Streaming semantics on the process backend."""

    def test_common_mode_partition_sort(self, tmp_path, launcher):
        outdir = str(tmp_path / "got")
        os.makedirs(outdir, exist_ok=True)

        def o_fn(ctx):
            for i in range(ctx.rank, 40, ctx.o_size):
                ctx.send(f"key-{i:03d}", "")

        def a_fn(ctx):
            got = [k for k, _ in ctx.recv_iter()]
            with open(os.path.join(outdir, f"a{ctx.rank}.json"), "w") as f:
                json.dump(got, f)

        job = common_job("sort", o_fn, a_fn, o_tasks=4, a_tasks=2,
                         conf={K.LAUNCHER: launcher})
        assert mpidrun(job, nprocs=4, raise_on_error=True).success
        all_keys = []
        for name in sorted(os.listdir(outdir)):
            with open(os.path.join(outdir, name)) as f:
                got = json.load(f)
            assert got == sorted(got)  # per-partition order (Common sorts)
            all_keys.extend(got)
        assert sorted(all_keys) == [f"key-{i:03d}" for i in range(40)]

    def test_iteration_mode_accumulates_across_rounds(self, tmp_path, launcher):
        outdir = str(tmp_path / "final")
        os.makedirs(outdir, exist_ok=True)

        def o_fn(ctx):
            if ctx.round == 0:
                ctx.send(ctx.rank % ctx.a_size, 1.0)
            else:
                total = sum(v for _, v in ctx.recv_iter())
                ctx.send(ctx.rank % ctx.a_size, total + 1.0)

        def a_fn(ctx):
            total = sum(v for _, v in ctx.recv_iter())
            if ctx.round < 2:
                ctx.send(ctx.rank % ctx.o_size, total)
            else:
                with open(os.path.join(outdir, f"a{ctx.rank}.json"), "w") as f:
                    json.dump(total, f)

        job = DataMPIJob(
            "iter", o_fn, a_fn, o_tasks=2, a_tasks=2, mode=Mode.ITERATION,
            rounds=3, conf={K.LAUNCHER: launcher},
        )
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        totals = []
        for name in sorted(os.listdir(outdir)):
            with open(os.path.join(outdir, name)) as f:
                totals.append(json.load(f))
        assert sum(totals) == 2 * 3.0  # 1 per O task, +1 feedback per round

    def test_streaming_mode_counts_complete(self, tmp_path, launcher):
        outdir = str(tmp_path / "counts")
        os.makedirs(outdir, exist_ok=True)

        def o_fn(ctx):
            for i in range(100):
                ctx.send(i % 5, i)

        def a_fn(ctx):
            n = sum(1 for _ in ctx.recv_iter())
            with open(os.path.join(outdir, f"a{ctx.rank}.json"), "w") as f:
                json.dump(n, f)

        job = DataMPIJob("cnt", o_fn, a_fn, o_tasks=3, a_tasks=5,
                         mode=Mode.STREAMING, conf={K.LAUNCHER: launcher})
        assert mpidrun(job, nprocs=3, raise_on_error=True).success
        total = 0
        for name in os.listdir(outdir):
            with open(os.path.join(outdir, name)) as f:
                total += json.load(f)
        assert total == 300


class TestTraceShardMerging:
    def test_worker_process_events_land_in_the_driver_journal(self, tmp_path):
        from repro.obs.journal import read_journal

        journal_path = str(tmp_path / "job.trace.jsonl")
        out = FileCollector(tmp_path / "out")
        result = mpidrun(
            _wc_job(out, "processes", extra={K.TRACE_PATH: journal_path}),
            nprocs=4, raise_on_error=True,
        )
        assert result.success
        journal = read_journal(journal_path)
        # task spans execute inside worker processes; their presence in the
        # driver's journal proves the shard files were merged
        task_spans = [e for e in journal.spans if e.get("cat") == "task"]
        # every O and A task ran in some worker process
        assert len(task_spans) == 4 + 3
        assert len({e["rank"] for e in task_spans}) > 1  # from several workers
        # shards are consumed, not left behind
        assert glob.glob(f"{journal_path}.a*.shard-*.jsonl") == []
