"""Table I / Table II specification conformance of the MPI_D API."""

import pytest

from repro.common.errors import DataMPIError, MPI_D_Exception
from repro.core import MPI_D, Mode, MPI_D_Constants
from repro.core.context import BipartiteComm


class TestSurface:
    """The API surface the paper specifies must exist with these names."""

    def test_table_i_functions_exist(self):
        for name in ("Init", "Finalize", "Comm_rank", "Comm_size", "Send", "Recv"):
            assert callable(getattr(MPI_D, name))

    def test_builtin_communicator_attributes_exist(self):
        # outside a task both are None (no context on this thread)
        assert MPI_D.COMM_BIPARTITE_O is None
        assert MPI_D.COMM_BIPARTITE_A is None

    def test_four_modes_defined(self):
        assert {m.name for m in MPI_D.Mode} == {
            "COMMON",
            "MAPREDUCE",
            "ITERATION",
            "STREAMING",
        }

    def test_reserved_keys_exist(self):
        assert MPI_D_Constants.KEY_CLASS
        assert MPI_D_Constants.VALUE_CLASS
        assert MPI_D.Constants is MPI_D_Constants

    def test_exception_alias(self):
        # Listing 1 catches MPI_D_Exception
        assert issubclass(MPI_D_Exception, Exception)
        assert MPI_D_Exception is DataMPIError


class TestOutsideTaskErrors:
    """API calls outside a launched task fail loudly, not silently."""

    def test_send_outside_task(self):
        with pytest.raises(MPI_D_Exception, match="no DataMPI task context"):
            MPI_D.Send("k", "v")

    def test_recv_outside_task(self):
        with pytest.raises(MPI_D_Exception):
            MPI_D.Recv()

    def test_init_outside_task(self):
        with pytest.raises(MPI_D_Exception):
            MPI_D.Init(None, Mode.COMMON, {})

    def test_rank_of_null_comm(self):
        with pytest.raises(MPI_D_Exception):
            MPI_D.Comm_rank(None)
        with pytest.raises(MPI_D_Exception):
            MPI_D.Comm_size(None)


class TestBipartiteComm:
    def test_rank_and_size(self):
        comm = BipartiteComm("O", rank=3, size=8)
        assert MPI_D.Comm_rank(comm) == 3
        assert MPI_D.Comm_size(comm) == 8

    def test_frozen(self):
        comm = BipartiteComm("A", 0, 2)
        with pytest.raises(AttributeError):
            comm.rank = 5


class TestInsideTaskSemantics:
    """Init/Finalize lifecycle rules, checked end to end."""

    def _run(self, o_fn, a_fn=None):
        from repro.core import common_job, mpidrun

        a_fn = a_fn or (lambda ctx: list(ctx.recv_iter()))
        job = common_job("spec", o_fn, a_fn, o_tasks=1, a_tasks=1)
        return mpidrun(job, nprocs=1)

    def test_double_init_rejected(self):
        def o_fn(ctx):
            MPI_D.Init()
            MPI_D.Init()

        result = self._run(o_fn)
        assert not result.success and "twice" in result.error

    def test_finalize_without_init_rejected(self):
        def o_fn(ctx):
            MPI_D.Finalize()

        result = self._run(o_fn)
        assert not result.success

    def test_dichotomy_inside_tasks(self):
        observed = {}

        def o_fn(ctx):
            observed["O"] = (
                MPI_D.COMM_BIPARTITE_O is not None,
                MPI_D.COMM_BIPARTITE_A is None,
            )

        def a_fn(ctx):
            observed["A"] = (
                MPI_D.COMM_BIPARTITE_A is not None,
                MPI_D.COMM_BIPARTITE_O is None,
            )
            list(ctx.recv_iter())

        assert self._run(o_fn, a_fn).success
        assert observed == {"O": (True, True), "A": (True, True)}

    def test_send_recv_have_no_destination_parameters(self):
        """The dynamic feature: interfaces carry no rank arguments."""
        import inspect

        send_params = list(inspect.signature(MPI_D.Send).parameters)
        assert send_params == ["key", "value"]
        recv_params = list(inspect.signature(MPI_D.Recv).parameters)
        assert recv_params == []
