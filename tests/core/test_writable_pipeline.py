"""Writable-typed pipelines: Hadoop-style typed keys end to end.

The paper's Java binding "can support the serialization mechanisms of
both Java (Serializable and primitives) and Hadoop (Writable)" (§III-B).
These tests push Writable keys/values through the full engine — typing,
partitioning, sorting, spilling — and through the serde spill path.
"""

import threading

import pytest

from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.constants import MPI_D_Constants as K
from repro.serde.writable import IntWritable, LongWritable, Text


def run_job(o_fn, conf=None, o_tasks=2, a_tasks=2, nprocs=2):
    sink, lock = {}, threading.Lock()

    def a_fn(ctx):
        got = list(ctx.recv_iter())
        with lock:
            sink[ctx.rank] = got

    job = DataMPIJob(
        "writable", o_fn, a_fn, o_tasks, a_tasks, mode=Mode.MAPREDUCE,
        conf=conf or {},
    )
    assert mpidrun(job, nprocs=nprocs, raise_on_error=True).success
    return sink


class TestWritableKeys:
    def test_text_keys_sort_and_route(self):
        def o_fn(ctx):
            for word in ["pear", "apple", "fig", "date"]:
                ctx.send(Text(word), IntWritable(ctx.rank))

        sink = run_job(o_fn)
        all_keys = [k for got in sink.values() for k, _ in got]
        assert len(all_keys) == 8  # 2 O tasks x 4 words
        for got in sink.values():
            keys = [k for k, _ in got]
            assert keys == sorted(keys)  # Text is orderable through the sort
            assert all(isinstance(k, Text) for k in keys)

    def test_same_text_key_same_partition(self):
        def o_fn(ctx):
            ctx.send(Text("hot"), ctx.rank)

        sink = run_job(o_fn, o_tasks=4, a_tasks=3, nprocs=3)
        non_empty = [rank for rank, got in sink.items() if got]
        assert len(non_empty) == 1  # deterministic Writable hashing
        assert len(sink[non_empty[0]]) == 4

    def test_key_class_coerces_raw_strings_to_text(self):
        conf = {K.KEY_CLASS: "org.apache.hadoop.io.Text"}

        def o_fn(ctx):
            ctx.send("plain string", 1)  # engine wraps it in Text

        sink = run_job(o_fn, conf=conf, o_tasks=1, a_tasks=1, nprocs=1)
        (key, value), = sink[0][:1]
        assert isinstance(key, Text)
        assert key.get() == "plain string"

    def test_longwritable_values_spill_roundtrip(self):
        """Writables survive the serialize-to-disk spill path."""
        conf = {K.CACHE_FRACTION: 0.0, K.SPL_PARTITION_BYTES: 64}

        def o_fn(ctx):
            for i in range(40):
                ctx.send(IntWritable(i), LongWritable(i * 2**33))

        sink = run_job(o_fn, conf=conf, o_tasks=1, a_tasks=2, nprocs=2)
        pairs = [kv for got in sink.values() for kv in got]
        assert len(pairs) == 40
        for key, value in pairs:
            assert isinstance(key, IntWritable)
            assert isinstance(value, LongWritable)
            assert value.get() == key.get() * 2**33

    def test_mixed_text_and_primitive_values(self):
        def o_fn(ctx):
            ctx.send(Text("a"), "primitive-str")
            ctx.send(Text("b"), IntWritable(9))

        sink = run_job(o_fn, o_tasks=1, a_tasks=1, nprocs=1)
        values = dict((k.get(), v) for k, v in sink[0])
        assert values == {"a": "primitive-str", "b": IntWritable(9)}
