"""Tests for partitioners and the Partition Window (Figure 6 cases)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import DataMPIError
from repro.core.partition import (
    PartitionWindow,
    hash_partitioner,
    range_partitioner,
    validate_destination,
)
from repro.serde.writable import Text


class TestHashPartitioner:
    def test_deterministic(self):
        assert hash_partitioner("key", None, 7) == hash_partitioner("key", None, 7)

    def test_in_range(self):
        for key in ["a", b"b", 3, 4.5, ("t", 1), None.__class__]:
            assert 0 <= hash_partitioner(key, None, 5) < 5

    @given(st.text(max_size=30), st.integers(min_value=1, max_value=64))
    def test_in_range_property(self, key, n):
        assert 0 <= hash_partitioner(key, None, n) < n

    def test_spreads_keys(self):
        dests = {hash_partitioner(f"key-{i}", None, 8) for i in range(200)}
        assert len(dests) == 8  # all partitions get traffic

    def test_str_and_bytes_agree(self):
        # a str key and its utf-8 bytes must land identically so mixed
        # pipelines (HDFS bytes vs decoded strings) partition consistently
        assert hash_partitioner("word", None, 13) == hash_partitioner(
            b"word", None, 13
        )

    def test_writable_keys_supported(self):
        d = hash_partitioner(Text("x"), None, 4)
        assert 0 <= d < 4
        assert d == hash_partitioner(Text("x"), None, 4)

    def test_int_keys_identity_like(self):
        assert hash_partitioner(10, None, 4) == 10 % 4

    def test_bool_is_stable(self):
        assert hash_partitioner(True, None, 2) == 1


class TestRangePartitioner:
    def test_three_way_split(self):
        part = range_partitioner(["g", "p"])
        assert part("a", None, 3) == 0
        assert part("g", None, 3) == 0  # <= boundary goes left
        assert part("h", None, 3) == 1
        assert part("z", None, 3) == 2

    def test_boundary_count_validated(self):
        part = range_partitioner(["m"])
        with pytest.raises(DataMPIError):
            part("a", None, 3)

    @given(st.lists(st.integers(), min_size=10, max_size=50))
    def test_respects_total_order(self, keys):
        """Keys in lower partitions never exceed keys in higher ones."""
        cuts = [0, 100]
        part = range_partitioner(cuts)
        buckets = {0: [], 1: [], 2: []}
        for k in keys:
            buckets[part(k, None, 3)].append(k)
        if buckets[0] and buckets[1]:
            assert max(buckets[0]) <= min(buckets[1])
        if buckets[1] and buckets[2]:
            assert max(buckets[1]) <= min(buckets[2])

    def test_validate_destination(self):
        assert validate_destination(2, 3) == 2
        with pytest.raises(DataMPIError):
            validate_destination(3, 3)
        with pytest.raises(DataMPIError):
            validate_destination(-1, 3)


class TestPartitionWindow:
    """The three Figure 6 cases."""

    def test_numo_greater_than_numa(self):
        # 5 processes, 3 A partitions: only processes 0..2 receive data
        window = PartitionWindow(num_partitions=3, num_processes=5)
        assert [window.owner(p) for p in range(3)] == [0, 1, 2]
        assert window.owned_by(3) == [] and window.owned_by(4) == []
        assert window.busy_processes() == 3

    def test_numo_equals_numa(self):
        window = PartitionWindow(num_partitions=4, num_processes=4)
        assert [window.owner(p) for p in range(4)] == [0, 1, 2, 3]
        assert all(window.owned_by(p) == [p] for p in range(4))

    def test_numo_less_than_numa(self):
        # 2 processes, 5 A partitions: waves on each process
        window = PartitionWindow(num_partitions=5, num_processes=2)
        assert window.owned_by(0) == [0, 2, 4]
        assert window.owned_by(1) == [1, 3]

    def test_ownership_is_a_partition_of_tasks(self):
        window = PartitionWindow(num_partitions=11, num_processes=3)
        seen = sorted(t for p in range(3) for t in window.owned_by(p))
        assert seen == list(range(11))

    def test_owner_consistent_with_owned_by(self):
        window = PartitionWindow(num_partitions=9, num_processes=4)
        for p in range(9):
            assert p in window.owned_by(window.owner(p))

    def test_out_of_range_partition(self):
        window = PartitionWindow(3, 2)
        with pytest.raises(DataMPIError):
            window.owner(3)

    def test_degenerate_rejected(self):
        with pytest.raises(DataMPIError):
            PartitionWindow(0, 1)
        with pytest.raises(DataMPIError):
            PartitionWindow(1, 0)
