"""Tests for SPL/RPL buffer management and the sorter/run store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffers import Block, ReceivePartitionList, SendPartitionList
from repro.core.sorter import (
    RunStore,
    combine_run,
    group_by_key,
    merge_runs,
    sort_block,
    spill_run,
)
from repro.serde.comparators import default_compare
from repro.serde.serialization import WritableSerializer


class TestSortBlock:
    def test_sorts_by_key(self):
        records = [("b", 1), ("a", 2), ("c", 3)]
        assert sort_block(records) == [("a", 2), ("b", 1), ("c", 3)]

    def test_stable_for_equal_keys(self):
        records = [("k", 1), ("k", 2), ("k", 3)]
        assert sort_block(records) == records

    @given(st.lists(st.tuples(st.integers(), st.integers()), max_size=50))
    def test_matches_sorted(self, records):
        assert [k for k, _ in sort_block(records)] == sorted(k for k, _ in records)


class TestMergeRuns:
    def test_merges_in_order(self):
        r1 = [("a", 1), ("c", 1)]
        r2 = [("b", 2), ("d", 2)]
        assert [k for k, _ in merge_runs([r1, r2])] == ["a", "b", "c", "d"]

    def test_empty_runs_skipped(self):
        assert list(merge_runs([[], [("a", 1)], []])) == [("a", 1)]

    def test_no_runs(self):
        assert list(merge_runs([])) == []

    def test_ties_break_by_run_index(self):
        r1 = [("k", "first")]
        r2 = [("k", "second")]
        assert [v for _, v in merge_runs([r1, r2])] == ["first", "second"]

    @settings(max_examples=50)
    @given(
        st.lists(
            st.lists(st.tuples(st.integers(-50, 50), st.integers()), max_size=20),
            max_size=6,
        )
    )
    def test_merge_equals_global_sort(self, runs):
        sorted_runs = [sort_block(r) for r in runs]
        merged = [k for k, _ in merge_runs(sorted_runs)]
        flat = sorted(k for r in runs for k, _ in r)
        assert merged == flat

    def test_lazy(self):
        def gen():
            yield ("a", 1)
            raise AssertionError("must not be pulled past first record")

        it = merge_runs([gen()])
        assert next(it) == ("a", 1)


class TestGroupCombine:
    def test_group_by_key(self):
        stream = [("a", 1), ("a", 2), ("b", 3)]
        assert list(group_by_key(stream)) == [("a", [1, 2]), ("b", [3])]

    def test_group_empty(self):
        assert list(group_by_key([])) == []

    def test_single_group(self):
        assert list(group_by_key([("x", 1)])) == [("x", [1])]

    def test_combine_run_sums(self):
        run = [("a", 1), ("a", 2), ("b", 5)]
        combined = combine_run(run, lambda k, vs: [sum(vs)])
        assert combined == [("a", 3), ("b", 5)]

    def test_combiner_may_emit_multiple(self):
        run = [("a", 1), ("a", 2)]
        combined = combine_run(run, lambda k, vs: [min(vs), max(vs)])
        assert combined == [("a", 1), ("a", 2)]


class TestRunStore:
    def make_store(self, budget, tmp_path, cmp=default_compare):
        return RunStore(cmp, WritableSerializer(), str(tmp_path), budget)

    def test_all_in_memory_under_budget(self, tmp_path):
        store = self.make_store(10**9, tmp_path)
        store.add_run([("a", 1), ("c", 1)])
        store.add_run([("b", 2)])
        assert [k for k, _ in store] == ["a", "b", "c"]
        assert not store.disk_runs

    def test_spills_over_budget(self, tmp_path):
        store = self.make_store(budget=50, tmp_path=tmp_path)
        for i in range(10):
            store.add_run(sorted((f"k{i}-{j}", "v" * 10) for j in range(5)))
        assert store.disk_runs  # something spilled
        assert store.spilled_bytes > 0
        keys = [k for k, _ in store]
        assert keys == sorted(keys)
        assert len(keys) == 50

    def test_zero_budget_spills_everything(self, tmp_path):
        store = self.make_store(budget=0, tmp_path=tmp_path)
        store.add_run([("b", 1)])
        store.add_run([("a", 2)])
        assert not store.memory_runs
        assert [k for k, _ in store] == ["a", "b"]

    def test_unsorted_mode_concatenates(self, tmp_path):
        store = self.make_store(10**9, tmp_path, cmp=None)
        store.add_run([("z", 1)])
        store.add_run([("a", 2)])
        assert [k for k, _ in store] == ["z", "a"]

    def test_compact_collapses_runs(self, tmp_path):
        store = self.make_store(10**9, tmp_path)
        for i in range(10):
            store.add_run([(f"k{i}", i)])
        store.compact(max_runs=3)
        assert len(store.memory_runs) == 1
        assert store.total_records == 10

    def test_cleanup_removes_spills(self, tmp_path):
        import os

        store = self.make_store(budget=0, tmp_path=tmp_path)
        store.add_run([("a", 1)])
        paths = [s.path for s in store.disk_runs]
        store.cleanup()
        assert all(not os.path.exists(p) for p in paths)

    def test_spill_roundtrip(self, tmp_path):
        records = [("key", [1, 2]), ("other", "value")]
        spill = spill_run(records, WritableSerializer(), str(tmp_path), "t")
        assert list(spill) == records
        spill.delete()


class TestSendPartitionList:
    def test_seals_on_threshold(self):
        spl = SendPartitionList(num_partitions=2, flush_bytes=40, cmp=None)
        blocks = []
        for i in range(10):
            block = spl.add(0, f"key{i}", "v" * 10)
            if block:
                blocks.append(block)
        assert blocks, "threshold never triggered"
        assert all(b.partition_id == 0 for b in blocks)

    def test_flush_all_covers_leftovers(self):
        spl = SendPartitionList(2, flush_bytes=10**9, cmp=None)
        spl.add(0, "a", 1)
        spl.add(1, "b", 2)
        blocks = spl.flush_all()
        assert {b.partition_id for b in blocks} == {0, 1}
        assert spl.records_out == 2

    def test_sorted_blocks_when_cmp(self):
        spl = SendPartitionList(1, flush_bytes=10**9, cmp=default_compare)
        for k in ["c", "a", "b"]:
            spl.add(0, k, None)
        (block,) = spl.flush_all()
        assert [k for k, _ in block.records] == ["a", "b", "c"]
        assert block.sorted

    def test_combiner_shrinks_blocks(self):
        spl = SendPartitionList(
            1,
            flush_bytes=10**9,
            cmp=default_compare,
            combiner=lambda k, vs: [sum(vs)],
        )
        for _ in range(5):
            spl.add(0, "w", 1)
        (block,) = spl.flush_all()
        assert block.records == (("w", 5),)
        assert spl.combined_away == 4

    def test_counters(self):
        spl = SendPartitionList(2, flush_bytes=10**9, cmp=None)
        spl.add(0, "a", 1)
        assert spl.records_in == 1
        spl.flush_all()
        assert spl.records_out == 1
        assert spl.bytes_out > 0


class TestReceivePartitionList:
    def _store(self, tmp_path, cmp=default_compare):
        return RunStore(cmp, WritableSerializer(), str(tmp_path), 10**9)

    def test_accumulates_and_merges(self, tmp_path):
        rpl = ReceivePartitionList(0, default_compare, self._store(tmp_path), 8)
        rpl.add_block(Block(0, (("b", 1),), 10, sorted=True))
        rpl.add_block(Block(0, (("a", 2),), 10, sorted=True))
        assert [k for k, _ in rpl.merged()] == ["a", "b"]
        assert rpl.blocks_received == 2
        assert rpl.records_received == 2

    def test_unsorted_blocks_sorted_on_arrival(self, tmp_path):
        rpl = ReceivePartitionList(0, default_compare, self._store(tmp_path), 8)
        rpl.add_block(Block(0, (("z", 1), ("a", 2)), 10, sorted=False))
        assert [k for k, _ in rpl.merged()] == ["a", "z"]

    def test_background_merge_triggered(self, tmp_path):
        store = self._store(tmp_path)
        rpl = ReceivePartitionList(0, default_compare, store, merge_threshold_blocks=3)
        for i in range(10):
            rpl.add_block(Block(0, ((f"k{i}", i),), 5, sorted=True))
        # compaction keeps the run count at/below the threshold
        assert len(store.memory_runs) <= 3


class TestSinglePassAccounting:
    """The spill/seal paths must size each record exactly once."""

    def _counting_kv_bytes(self, monkeypatch):
        import repro.common.records as records

        calls = [0]
        real = records.kv_bytes

        def counting(key, value):
            calls[0] += 1
            return real(key, value)

        # kv_run_bytes resolves kv_bytes through the module global, so
        # patching the records module counts every per-record sizing
        monkeypatch.setattr(records, "kv_bytes", counting)
        return calls

    def test_kv_bytes_once_per_record_despite_spills(self, tmp_path, monkeypatch):
        calls = self._counting_kv_bytes(monkeypatch)
        store = RunStore(
            default_compare, WritableSerializer(), str(tmp_path), memory_budget=64
        )
        total = 0
        for i in range(20):
            run = sorted((f"key{i}-{j}", "v" * 8) for j in range(10))
            store.add_run(run)
            total += len(run)
        assert store.disk_runs, "budget never forced a spill"
        # spilling and compaction reuse the cached sizes — no re-scan
        store.compact(max_runs=1)
        assert calls[0] == total

    def test_presized_runs_never_rescanned(self, tmp_path, monkeypatch):
        calls = self._counting_kv_bytes(monkeypatch)
        store = RunStore(
            default_compare, WritableSerializer(), str(tmp_path), memory_budget=0
        )
        store.add_run([("a", 1)], nbytes=25)
        store.add_run([("b", 2)], nbytes=25)
        assert calls[0] == 0  # sealed blocks carry their size already

    def test_spill_picks_largest_by_bytes(self, tmp_path):
        store = RunStore(
            default_compare, WritableSerializer(), str(tmp_path),
            memory_budget=1200,
        )
        many_tiny = sorted((f"k{j}", "") for j in range(50))  # ~550 bytes total
        store.add_run(many_tiny)
        store.add_run([("huge", "x" * 2000)])
        assert len(store.disk_runs) == 1
        # the single huge-payload record frees the most budget per write;
        # a largest-by-count pick would have evicted the 50 tiny records
        assert store.disk_runs[0].count == 1
        assert len(store.memory_runs[0]) == 50

    def test_seal_reuses_partition_running_total(self, monkeypatch):
        import repro.core.buffers as buffers

        kv_calls = [0]
        run_calls = [0]
        real_kv = buffers.kv_bytes

        def counting_kv(key, value):
            kv_calls[0] += 1
            return real_kv(key, value)

        def counting_run(records):
            run_calls[0] += 1
            return sum(real_kv(k, v) for k, v in records)

        # buffers binds both names at import time; patch its namespace
        monkeypatch.setattr(buffers, "kv_bytes", counting_kv)
        monkeypatch.setattr(buffers, "kv_run_bytes", counting_run)

        spl = SendPartitionList(1, flush_bytes=10**9, cmp=default_compare)
        for i in range(10):
            spl.add(0, f"k{i}", i)
        (block_,) = spl.flush_all()
        assert len(block_.records) == 10
        assert kv_calls[0] == 10  # once per record, in add()
        assert run_calls[0] == 0  # sealing reuses the running total

    def test_seal_recounts_only_after_combiner(self, monkeypatch):
        import repro.core.buffers as buffers

        run_calls = [0]
        real = buffers.kv_run_bytes

        def counting_run(records):
            run_calls[0] += 1
            return real(records)

        monkeypatch.setattr(buffers, "kv_run_bytes", counting_run)
        spl = SendPartitionList(
            1, flush_bytes=10**9, cmp=default_compare,
            combiner=lambda k, vs: [sum(vs)],
        )
        for _ in range(5):
            spl.add(0, "w", 1)
        (block_,) = spl.flush_all()
        assert block_.records == (("w", 5),)
        assert run_calls[0] == 1  # combiner rewrote payloads: one re-count
        assert block_.nbytes == real(block_.records)
