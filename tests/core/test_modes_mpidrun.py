"""Tests for mode profiles and the mpidrun launcher surface."""

import pytest

from repro.common.errors import DataMPIError
from repro.core.constants import Mode, MPI_D_Constants as K
from repro.core.job import DataMPIJob
from repro.core.modes import (
    mode_is_bidirectional,
    mode_is_pipelined,
    mode_sorts,
    profile_for,
)
from repro.core.mpidrun import default_process_count, parse_mpidrun_command


def _noop(ctx):
    pass


class TestProfiles:
    def test_mapreduce_sorts_one_way(self):
        conf = profile_for(Mode.MAPREDUCE)
        assert mode_sorts(conf)
        assert not mode_is_bidirectional(conf)
        assert not mode_is_pipelined(conf)

    def test_streaming_pipelined_unsorted(self):
        conf = profile_for(Mode.STREAMING)
        assert not mode_sorts(conf)
        assert mode_is_pipelined(conf)

    def test_iteration_bidirectional(self):
        conf = profile_for(Mode.ITERATION)
        assert mode_is_bidirectional(conf)
        assert not mode_sorts(conf)

    def test_common_sorts(self):
        assert mode_sorts(profile_for(Mode.COMMON))

    def test_user_conf_overrides_profile(self):
        conf = profile_for(Mode.STREAMING, {K.SORT: True})
        assert mode_sorts(conf)

    def test_shared_defaults_present(self):
        conf = profile_for(Mode.MAPREDUCE)
        assert conf.get_str(K.SERIALIZER) == "writable"
        assert conf.get_bytes(K.SPL_PARTITION_BYTES) > 0
        assert conf.get_bool(K.FT_ENABLED) is False

    def test_streaming_uses_small_flush(self):
        streaming = profile_for(Mode.STREAMING).get_bytes(K.SPL_PARTITION_BYTES)
        mapreduce = profile_for(Mode.MAPREDUCE).get_bytes(K.SPL_PARTITION_BYTES)
        assert streaming < mapreduce


class TestJobValidation:
    def test_task_counts(self):
        with pytest.raises(DataMPIError):
            DataMPIJob("j", _noop, _noop, o_tasks=0, a_tasks=1).validate()
        with pytest.raises(DataMPIError):
            DataMPIJob("j", _noop, _noop, o_tasks=1, a_tasks=0).validate()

    def test_rounds_require_iteration(self):
        job = DataMPIJob("j", _noop, _noop, 1, 1, mode=Mode.MAPREDUCE, rounds=3)
        with pytest.raises(DataMPIError):
            job.validate()
        DataMPIJob("j", _noop, _noop, 1, 1, mode=Mode.ITERATION, rounds=3).validate()

    def test_default_process_count(self):
        job = DataMPIJob("j", _noop, _noop, o_tasks=4, a_tasks=2)
        assert default_process_count(job) == 4
        wide = DataMPIJob("j", _noop, _noop, o_tasks=100, a_tasks=2)
        assert default_process_count(wide) == 8  # capped


class TestMpidrunCli:
    def test_paper_command_shape(self):
        opts = parse_mpidrun_command(
            "mpidrun -f hostfile -O 4 -A 2 -M mapreduce -jar app.jar Sort in out"
        )
        assert opts["hostfile"] == "hostfile"
        assert opts["o_tasks"] == 4 and opts["a_tasks"] == 2
        assert opts["mode"] is Mode.MAPREDUCE
        assert opts["jar"] == "app.jar"
        assert opts["classname"] == "Sort"
        assert opts["params"] == ["in", "out"]

    def test_all_modes_parse(self):
        for mode in Mode:
            opts = parse_mpidrun_command(f"mpidrun -O 1 -A 1 -M {mode.value}")
            assert opts["mode"] is mode

    def test_missing_task_counts(self):
        with pytest.raises(DataMPIError):
            parse_mpidrun_command("mpidrun -f hosts")

    def test_unknown_flag(self):
        with pytest.raises(DataMPIError):
            parse_mpidrun_command("mpidrun -O 1 -A 1 -Z whatever")

    def test_unknown_mode(self):
        with pytest.raises(DataMPIError):
            parse_mpidrun_command("mpidrun -O 1 -A 1 -M quantum")

    def test_must_start_with_mpidrun(self):
        with pytest.raises(DataMPIError):
            parse_mpidrun_command("hadoop jar x.jar")
