"""Transport chaos: the FaultInjector vs. the shuffle pipeline.

Dropped, delayed, duplicated and truncated envelopes must never corrupt
shuffle results — benign faults are absorbed transparently (duplicate
dedup by sequence number, FIFO-preserving delay), destructive faults are
detected (sequence gaps, truncation markers) and, with fault tolerance
on, healed by a supervised restart.

Every mpidrun test here runs on both rank backends (the ``launcher``
fixture).  On the process backend the injector lives at the driver-side
router — the assertions on counts, events and rule hits read the same
canonical injector either way.
"""

import time

from repro.core import mapreduce_job, mpidrun
from repro.core.constants import MPI_D_Constants as K, SHUFFLE_TAG
from repro.mpi import FaultInjector

from tests.core.helpers import FileCollector, expected_wordcount, wordcount_pieces

TEXTS = [f"w{i % 7} w{(i * 3) % 5} chaos common" for i in range(40)]
O_TASKS, A_TASKS, NPROCS = 4, 2, 2


def make_job(out, conf=None, launcher="threads"):
    provider, mapper, reducer = wordcount_pieces(TEXTS)
    # many small envelopes per channel
    base = {K.SHUFFLE_BATCH_BYTES: 64, K.LAUNCHER: launcher}
    base.update(conf or {})
    return mapreduce_job(
        "chaos-wc", provider, mapper, reducer, out,
        o_tasks=O_TASKS, a_tasks=A_TASKS, conf=base,
    )


def ft_conf(tmp_path, **extra):
    conf = {
        K.FT_ENABLED: True,
        K.FT_DIR: str(tmp_path),
        K.JOB_ID: "chaos-wc",
        K.FT_INTERVAL_RECORDS: 10,
        K.JOB_MAX_RESTARTS: 2,
        K.RESTART_BACKOFF_SECONDS: 0.01,
        K.PLANE_TIMEOUT_SECONDS: 5.0,
    }
    conf.update(extra)
    return conf


class TestBenignFaults:
    def test_duplicated_envelopes_never_double_count(self, tmp_path, launcher):
        injector = FaultInjector()
        injector.duplicate(tag=SHUFFLE_TAG)  # every shuffle envelope, twice
        out = FileCollector(tmp_path / "out")
        result = mpidrun(make_job(out, launcher=launcher), nprocs=NPROCS,
                         raise_on_error=True, fault_injector=injector)
        assert result.success
        assert injector.counts["duplicate"] > 0
        assert out.merged() == expected_wordcount(TEXTS)

    def test_delayed_envelopes_preserve_order_and_results(self, tmp_path, launcher):
        injector = FaultInjector()
        injector.delay(0.01, tag=SHUFFLE_TAG, max_matches=8)
        out = FileCollector(tmp_path / "out")
        result = mpidrun(make_job(out, launcher=launcher), nprocs=NPROCS,
                         raise_on_error=True, fault_injector=injector)
        assert result.success
        assert injector.counts["delay"] == 8
        assert out.merged() == expected_wordcount(TEXTS)


class TestDestructiveFaults:
    def test_dropped_envelope_detected_and_healed_by_restart(self, tmp_path, launcher):
        injector = FaultInjector()
        injector.drop(tag=SHUFFLE_TAG, max_matches=1)  # transient loss
        out = FileCollector(tmp_path / "out")
        start = time.monotonic()
        result = mpidrun(make_job(out, ft_conf(tmp_path), launcher=launcher),
                         nprocs=NPROCS, timeout=120.0, fault_injector=injector)
        assert time.monotonic() - start < 60.0
        assert result.success
        assert result.restarts == 1
        assert injector.counts["drop"] == 1
        assert out.merged() == expected_wordcount(TEXTS)
        assert result.failures  # the lost envelope left a structured trace

    def test_truncated_envelope_detected_and_healed_by_restart(self, tmp_path, launcher):
        injector = FaultInjector()
        injector.truncate(tag=SHUFFLE_TAG, skip_first=3, max_matches=1)
        out = FileCollector(tmp_path / "out")
        result = mpidrun(make_job(out, ft_conf(tmp_path), launcher=launcher),
                         nprocs=NPROCS, timeout=120.0, fault_injector=injector)
        assert result.success
        assert result.restarts == 1
        assert injector.counts["truncate"] == 1
        assert out.merged() == expected_wordcount(TEXTS)
        assert any("truncated" in r.error.lower() for r in result.failures)


class TestInjectorMechanics:
    def test_rules_are_deterministic_and_audited(self, tmp_path, launcher):
        injector = FaultInjector()
        rule = injector.drop(tag=SHUFFLE_TAG, skip_first=2, max_matches=1)
        out = FileCollector(tmp_path / "out")
        result = mpidrun(
            make_job(out, ft_conf(tmp_path, **{K.JOB_MAX_RESTARTS: 1}),
                     launcher=launcher),
            nprocs=NPROCS, timeout=120.0, fault_injector=injector,
        )
        assert result.success
        assert rule.applied == 1  # exactly one envelope was eaten
        assert rule.hits >= 3  # the two skipped ones still counted as hits
        drops = [e for e in injector.events if e[0] == "drop"]
        assert len(drops) == 1
        assert drops[0][4] == SHUFFLE_TAG  # audited with its tag

    def test_sever_and_restore(self):
        injector = FaultInjector()
        injector.sever(1, 2)
        assert injector.severed == frozenset({1, 2})
        injector.restore(2)
        assert injector.severed == frozenset({1})
