"""End-to-end MapReduce-mode jobs on the DataMPI engine."""

import pytest

from repro.core import Mode, mapreduce_job, mpidrun
from repro.core.constants import MPI_D_Constants as K
from repro.serde.comparators import reverse, default_compare

from tests.core.helpers import (
    Collector,
    expected_wordcount,
    int_range_input,
    wordcount_pieces,
)

TEXTS = [
    "the quick brown fox jumps over the lazy dog",
    "the dog barks at the fox",
    "quick quick slow",
    "a b c d e f g",
    "the end",
]


def run_wordcount(o_tasks, a_tasks, nprocs, conf=None, combiner=None):
    provider, mapper, reducer = wordcount_pieces(TEXTS)
    out = Collector()
    job = mapreduce_job(
        "wc",
        provider,
        mapper,
        reducer,
        out,
        o_tasks=o_tasks,
        a_tasks=a_tasks,
        conf=conf,
        combiner=combiner,
    )
    result = mpidrun(job, nprocs=nprocs, raise_on_error=True)
    return result, out


class TestWordCountShapes:
    """The same job across every process/task geometry of Figure 6."""

    @pytest.mark.parametrize(
        "o_tasks,a_tasks,nprocs",
        [
            (3, 2, 3),  # NUMO > NUMA
            (2, 2, 2),  # NUMO = NUMA
            (2, 5, 2),  # NUMO < NUMA (A waves)
            (5, 3, 2),  # multiwave O and A
            (1, 1, 1),  # degenerate
            (4, 4, 6),  # more processes than either side
        ],
    )
    def test_counts_correct(self, o_tasks, a_tasks, nprocs):
        result, out = run_wordcount(o_tasks, a_tasks, nprocs)
        assert result.success
        assert out.merged() == expected_wordcount(TEXTS)

    def test_every_a_task_is_data_local(self):
        result, _ = run_wordcount(4, 3, 2)
        assert result.a_data_locality == 1.0

    def test_task_counts_reported(self):
        result, _ = run_wordcount(4, 3, 2)
        assert result.metrics.o_tasks_run == 4
        assert result.metrics.a_tasks_run == 3

    def test_no_duplicate_outputs_across_a_tasks(self):
        _, out = run_wordcount(3, 4, 3)
        words = [k for k, _ in out.all_pairs()]
        assert len(words) == len(set(words))


class TestSortedExchange:
    def test_a_side_sees_keys_in_order(self):
        """MapReduce mode must deliver each partition key-sorted."""
        from repro.core import DataMPIJob

        seen = {}

        def o_fn(ctx):
            import random

            rng = random.Random(ctx.rank)
            for _ in range(50):
                ctx.send(rng.randint(0, 999), None)

        def a_fn(ctx):
            keys = [k for k, _ in ctx.recv_iter()]
            seen[ctx.rank] = keys

        job = DataMPIJob("sorted", o_fn, a_fn, 3, 2, mode=Mode.MAPREDUCE)
        assert mpidrun(job, nprocs=3, raise_on_error=True).success
        total = 0
        for keys in seen.values():
            assert keys == sorted(keys)
            total += len(keys)
        assert total == 150

    def test_custom_comparator_reverses_order(self):
        from repro.core import DataMPIJob

        seen = {}

        def o_fn(ctx):
            for i in range(20):
                ctx.send(i, None)

        def a_fn(ctx):
            seen[ctx.rank] = [k for k, _ in ctx.recv_iter()]

        job = DataMPIJob(
            "rev",
            o_fn,
            a_fn,
            2,
            2,
            mode=Mode.MAPREDUCE,
            comparator=reverse(default_compare),
        )
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        for keys in seen.values():
            assert keys == sorted(keys, reverse=True)


class TestTableIIUserFunctions:
    def test_custom_partitioner_controls_destination(self):
        from repro.core import DataMPIJob

        seen = {}

        def odd_even(key, value, n):
            return key % n

        def o_fn(ctx):
            for i in range(30):
                ctx.send(i, None)

        def a_fn(ctx):
            seen[ctx.rank] = sorted(k for k, _ in ctx.recv_iter())

        job = DataMPIJob(
            "part", o_fn, a_fn, 2, 2, mode=Mode.MAPREDUCE, partitioner=odd_even
        )
        assert mpidrun(job, nprocs=2, raise_on_error=True).success
        # both O tasks emit range(30), so every key arrives twice
        assert seen[0] == sorted([i for i in range(30) if i % 2 == 0] * 2)
        assert seen[1] == sorted([i for i in range(30) if i % 2 == 1] * 2)

    def test_bad_partitioner_fails_job(self):
        from repro.core import DataMPIJob

        def bad(key, value, n):
            return n + 5

        job = DataMPIJob(
            "bad",
            lambda ctx: ctx.send("k", 1),
            lambda ctx: None,
            1,
            1,
            mode=Mode.MAPREDUCE,
            partitioner=bad,
        )
        result = mpidrun(job, nprocs=1)
        assert not result.success
        assert "partitioner" in result.error

    def test_combiner_reduces_shuffled_records(self):
        texts = ["word " * 200]  # heavy duplication: combiner should help

        def provider(rank, size):
            if rank == 0:
                yield (0, texts[0])

        def mapper(_k, line, emit):
            for w in line.split():
                emit(w, 1)

        def reducer(k, vs, emit):
            emit(k, sum(vs))

        def run(combiner):
            out = Collector()
            job = mapreduce_job(
                "comb",
                provider,
                mapper,
                reducer,
                out,
                o_tasks=1,
                a_tasks=1,
                combiner=combiner,
                conf={K.SPL_PARTITION_BYTES: 256},  # force many flushes
            )
            return mpidrun(job, nprocs=1, raise_on_error=True), out

        plain, out_plain = run(None)
        combined, out_combined = run(lambda k, vs: [sum(vs)])
        assert out_plain.merged() == out_combined.merged() == {"word": 200}
        assert combined.metrics.records_sent < plain.metrics.records_sent
        assert combined.metrics.combined_away > 0


class TestLargerPipelines:
    def test_many_records_through_small_buffers(self):
        """Small SPL blocks force the full pipeline: seal/send/merge."""
        n = 2000
        out = Collector()

        def mapper(k, v, emit):
            emit(v % 50, 1)

        def reducer(k, vs, emit):
            emit(k, sum(vs))

        job = mapreduce_job(
            "dense",
            int_range_input(n),
            mapper,
            reducer,
            out,
            o_tasks=4,
            a_tasks=3,
            conf={K.SPL_PARTITION_BYTES: 128},
        )
        result = mpidrun(job, nprocs=4, raise_on_error=True)
        assert result.success
        assert result.metrics.blocks_sent > 10  # pipeline actually streamed
        merged = out.merged()
        assert sum(merged.values()) == n
        assert merged == {k: 40 for k in range(50)}

    def test_spill_to_disk_with_tiny_cache(self):
        """Zero cache fraction spills everything yet output is identical."""
        n = 800
        out = Collector()

        def mapper(k, v, emit):
            emit(v % 10, v)

        def reducer(k, vs, emit):
            emit(k, sum(vs))

        job = mapreduce_job(
            "spill",
            int_range_input(n),
            mapper,
            reducer,
            out,
            o_tasks=2,
            a_tasks=2,
            conf={K.CACHE_FRACTION: 0.0, K.SPL_PARTITION_BYTES: 256},
        )
        result = mpidrun(job, nprocs=2, raise_on_error=True)
        assert result.metrics.spilled_bytes > 0
        expected = {k: sum(v for v in range(n) if v % 10 == k) for k in range(10)}
        assert out.merged() == expected
