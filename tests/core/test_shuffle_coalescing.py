"""Sender-side block coalescing: batching, EOS folding, exact stats.

The deterministic tests use a stub world whose first ``send`` parks on a
gate; while the sender thread is stuck there the send queue backs up, so
we control exactly which items coalesce into which envelope.
"""

import tempfile
import threading

from repro.core.buffers import Block
from repro.core.constants import SHUFFLE_TAG
from repro.core.partition import PartitionWindow
from repro.core.shuffle import PlaneConfig, ShufflePlane, ShuffleService
from repro.mpi import run_world
from repro.serde.comparators import default_compare
from repro.serde.serialization import WritableSerializer


def _config(num_partitions=1, num_processes=1, pipelined=False):
    return PlaneConfig(
        num_partitions=num_partitions,
        window=PartitionWindow(num_partitions, num_processes),
        cmp=default_compare,
        serializer=WritableSerializer(),
        spill_dir=tempfile.mkdtemp(prefix="coalesce-test-"),
        memory_budget=1 << 30,
        merge_threshold_blocks=4,
        pipelined=pipelined,
    )


def block(partition, records):
    return Block(partition, tuple(records), 10 * len(records), sorted=True)


class _GatedWorld:
    """Intracomm stand-in: the first ``send`` parks until the gate opens,
    so everything enqueued meanwhile coalesces deterministically."""

    def __init__(self):
        self.rank = 0
        self.size = 1
        self.envelopes = []
        self.in_send = threading.Event()
        self.gate = threading.Event()

    def send(self, obj, dest, tag=0):
        self.in_send.set()
        assert self.gate.wait(10), "test gate never released"
        self.envelopes.append((obj, dest))

    def recv(self, source=None, tag=None):
        threading.Event().wait()  # parks the receiver thread (daemon)


def _gated_service(batch_bytes):
    world = _GatedWorld()
    service = ShuffleService(world, lambda pid: _config(), batch_bytes=batch_bytes)
    # primer: one block the sender flushes immediately (queue runs dry),
    # sticking it in world.send until the gate opens
    service.send_block("pl", block(0, [("primer", 0)]))
    assert world.in_send.wait(10), "sender never reached send()"
    return world, service


class TestCoalescing:
    def test_backlog_coalesces_into_one_envelope_with_eos_folded(self):
        world, service = _gated_service(batch_bytes=1 << 20)
        for i in range(5):
            service.send_block("pl", block(0, [(f"k{i}", i)]))
        service.send_eos("pl")
        world.gate.set()
        service.drain_sends()

        assert len(world.envelopes) == 2  # primer + one coalesced batch
        (kind, plane_id, (seq, origin, blocks, eos)), dest = world.envelopes[1]
        assert (kind, plane_id, dest) == ("batch", "pl", 0)
        assert (seq, origin) == (1, 0)  # second envelope from rank 0
        assert len(blocks) == 5
        assert eos is True  # EOS rode along, no extra message

    def test_batch_bytes_cap_splits_envelopes(self):
        # blocks are 10 "bytes" each; a 25-byte cap flushes after 3
        world, service = _gated_service(batch_bytes=25)
        for i in range(5):
            service.send_block("pl", block(0, [(f"k{i}", i)]))
        service.send_eos("pl")
        world.gate.set()
        service.drain_sends()

        payloads = [env for env, _ in world.envelopes]
        sizes = [len(blocks) for _, _, (_, _, blocks, _) in payloads]
        assert sizes == [1, 3, 2]  # primer, capped batch, remainder+eos
        assert [eos for _, _, (*_, eos) in payloads] == [False, False, True]
        # consecutive sequence numbers per (plane, dest) channel
        assert [seq for _, _, (seq, *_) in payloads] == [0, 1, 2]

    def test_stats_stay_record_accurate_under_batching(self):
        world, service = _gated_service(batch_bytes=25)
        for i in range(5):
            service.send_block("pl", block(0, [(f"k{i}", i)]))
        service.send_eos("pl")
        world.gate.set()
        service.drain_sends()

        stats = service.stats()
        assert stats["blocks_sent"] == 6  # primer + 5, independent of batching
        assert stats["bytes_sent"] == 60
        assert stats["envelopes_sent"] == 3
        assert stats["envelopes_sent"] < stats["blocks_sent"]

    def test_separate_destinations_never_share_a_batch(self):
        world = _GatedWorld()
        world.size = 2
        service = ShuffleService(
            world, lambda pid: _config(num_partitions=2, num_processes=2),
            batch_bytes=1 << 20,
        )
        service.send_block("pl", block(0, [("mine", 0)]))  # dest 0
        assert world.in_send.wait(10)
        service.send_block("pl", block(0, [("mine2", 0)]))   # dest 0
        service.send_block("pl", block(1, [("theirs", 1)]))  # dest 1
        world.gate.set()
        service.drain_sends()

        by_dest = {}
        for (kind, _, (_, _, blocks, _)), dest in world.envelopes:
            by_dest.setdefault(dest, []).extend(b.partition_id for b in blocks)
        assert by_dest[0] == [0, 0]
        assert by_dest[1] == [1]


class TestCoalescingOverMPI:
    def test_stats_record_accurate_end_to_end(self):
        def main(comm):
            service = ShuffleService(
                comm, lambda pid: _config(2, comm.size)
            )
            nbytes_total = 0
            if comm.rank == 0:
                for i in range(60):
                    b = block(1, [(f"k{i}", i)])
                    nbytes_total += b.nbytes
                    service.send_block("fwd:0", b)
            service.send_eos("fwd:0")
            service.plane("fwd:0").wait_complete(30)
            service.drain_sends()
            stats = service.stats()
            service.shutdown()
            return stats, nbytes_total

        results = run_world(2, main)
        stats0, nbytes0 = results[0]
        assert stats0["blocks_sent"] == 60
        assert stats0["bytes_sent"] == nbytes0
        assert 1 <= stats0["envelopes_sent"] <= 62  # 60 blocks + 2 eos worst case
        assert results[1][0]["records_received"] == 60

    def test_legacy_single_block_wire_format_still_understood(self):
        def main(comm):
            service = ShuffleService(comm, lambda pid: _config(1, comm.size))
            plane = service.plane("fwd:0")
            comm.send(("block", "fwd:0", block(0, [("a", 1)])),
                      dest=0, tag=SHUFFLE_TAG)
            comm.send(("eos", "fwd:0", None), dest=0, tag=SHUFFLE_TAG)
            plane.wait_complete(30)
            out = [k for k, _ in plane.merged_iter(0)]
            service.shutdown()
            return out

        assert run_world(1, main)[0] == ["a"]


class TestStreamingBlockGranularity:
    def test_stream_queue_carries_whole_blocks_in_order(self):
        plane = ShufflePlane("p", 0, _config(pipelined=True))
        plane.add_block(block(0, [("a", 1), ("b", 2)]))
        plane.add_block(block(0, [("c", 3)]))
        plane.add_block(block(0, [("d", 4), ("e", 5)]))
        # one queue op per block, not one per record
        assert plane.streams[0].qsize() == 3
        plane.add_eos()
        assert list(plane.stream_iter(0)) == [
            ("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5)
        ]

    def test_stream_iter_yields_before_completion(self):
        plane = ShufflePlane("p", 0, _config(num_processes=1, pipelined=True))
        plane.add_block(block(0, [("x", 1)]))
        it = plane.stream_iter(0)
        assert next(it) == ("x", 1)  # no EOS yet
        plane.add_eos()
        assert list(it) == []
