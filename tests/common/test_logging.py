"""Tests for the component logging helpers."""

import logging

from repro.common.logging import _apply_env, get_logger, set_level


class TestGetLogger:
    def test_namespacing(self):
        assert get_logger("core.engine").name == "repro.core.engine"
        assert get_logger("repro.mpi").name == "repro.mpi"

    def test_silent_by_default(self):
        logger = get_logger("test.silent")
        assert not logger.isEnabledFor(logging.DEBUG)

    def test_set_level_programmatic(self):
        set_level("debug", "repro.test.loud")
        assert get_logger("test.loud").isEnabledFor(logging.DEBUG)
        set_level("warning", "repro.test.loud")

    def test_env_spec_bare_level(self):
        _apply_env("info")
        assert get_logger("anything").isEnabledFor(logging.INFO)
        set_level("warning")  # restore

    def test_env_spec_per_component(self):
        _apply_env("repro.test.x=debug, repro.test.y=error")
        assert get_logger("test.x").isEnabledFor(logging.DEBUG)
        assert not get_logger("test.y").isEnabledFor(logging.WARNING)

    def test_env_spec_garbage_ignored(self):
        _apply_env("repro.test.z=notalevel,,")  # must not raise
        _apply_env("")

    def _capture(self, component):
        """Attach a list-collecting handler (the stream handler caches the
        original stderr, so capsys cannot observe it)."""
        records = []

        class ListHandler(logging.Handler):
            def emit(self, record):
                records.append(record.getMessage())

        handler = ListHandler()
        get_logger(component).addHandler(handler)
        return records, handler

    def test_records_reach_handler(self):
        records, handler = self._capture("test.cap")
        set_level("debug", "repro.test.cap")
        try:
            get_logger("test.cap").debug("traced %d", 42)
            assert "traced 42" in records
        finally:
            set_level("warning", "repro.test.cap")
            get_logger("test.cap").removeHandler(handler)

    def test_engine_emits_debug_trace(self):
        from repro.core import DataMPIJob, Mode, mpidrun

        records, handler = self._capture("core.engine")
        set_level("debug", "repro.core.engine")
        try:
            job = DataMPIJob(
                "traced", lambda ctx: ctx.send("k", 1),
                lambda ctx: list(ctx.recv_iter()), 1, 1, mode=Mode.MAPREDUCE,
            )
            assert mpidrun(job, nprocs=1, raise_on_error=True).success
            text = "\n".join(records)
            assert "start O task 0" in text
            assert "end A task 0" in text
        finally:
            set_level("warning", "repro.core.engine")
            get_logger("core.engine").removeHandler(handler)


class TestTraceLevelAndReentrancy:
    def test_trace_level_registered_below_debug(self):
        from repro.common.logging import TRACE

        assert TRACE < logging.DEBUG
        assert logging.getLevelName(TRACE) == "TRACE"

    def test_env_spec_trace_alias(self):
        from repro.common.logging import TRACE

        _apply_env("repro.test.tr=trace")
        assert get_logger("test.tr").isEnabledFor(TRACE)
        set_level("warning", "repro.test.tr")

    def test_set_level_trace(self):
        from repro.common.logging import TRACE

        set_level("trace", "repro.test.tr2")
        assert get_logger("test.tr2").isEnabledFor(TRACE)
        set_level("warning", "repro.test.tr2")

    def test_set_level_unknown_raises(self):
        import pytest

        with pytest.raises(ValueError):
            set_level("notalevel")

    def test_configuration_is_reentrant(self):
        root = logging.getLogger("repro")

        def ours():
            return [
                h for h in root.handlers
                if getattr(h, "_repro_handler", False)
            ]

        get_logger("test.reenter")
        assert len(ours()) == 1
        # repeated in-process launches must not stack handlers
        get_logger("test.reenter.again")
        assert len(ours()) == 1
        # an external teardown strips the handler; the next logger call
        # restores exactly one
        for handler in ours():
            root.removeHandler(handler)
        assert not ours()
        get_logger("test.reenter.restored")
        assert len(ours()) == 1
