"""Tests for key-value records and statistics helpers."""

import pytest

from repro.common.records import KeyValue, iter_kv, kv_bytes
from repro.common.stats import (
    TimeSeries,
    histogram,
    improvement_pct,
    percentile,
    speedup,
    summarize,
)


class TestKeyValue:
    def test_tuple_behaviour(self):
        kv = KeyValue("k", 1)
        key, value = kv
        assert key == "k" and value == 1
        assert kv == ("k", 1)

    def test_iter_kv(self):
        pairs = list(iter_kv([("a", 1), ("b", 2)]))
        assert all(isinstance(p, KeyValue) for p in pairs)
        assert pairs[1].key == "b"

    def test_repr_is_compact(self):
        assert repr(KeyValue("a", 1)) == "KV('a', 1)"


class TestKvBytes:
    def test_strings_use_length(self):
        assert kv_bytes("ab", "xyz") == (2 + 4) + (3 + 4)

    def test_bytes_use_length(self):
        assert kv_bytes(b"0123456789", b"x" * 90) == 14 + 94

    def test_numbers_fixed_cost(self):
        assert kv_bytes(1, 2.0) == 16

    def test_none_and_containers(self):
        assert kv_bytes(None, [1, 2]) == 1 + (4 + 16)

    def test_monotone_in_payload(self):
        assert kv_bytes("k", "v" * 100) > kv_bytes("k", "v")


class TestImprovement:
    def test_paper_headline_number(self):
        # Hadoop 475 s vs DataMPI 312 s -> ~34% improvement (paper Fig 9)
        assert improvement_pct(475, 312) == pytest.approx(34.3, abs=0.1)

    def test_speedup(self):
        assert speedup(475, 312) == pytest.approx(1.522, abs=0.01)

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            improvement_pct(0, 1)
        with pytest.raises(ValueError):
            speedup(1, 0)


class TestHistogramPercentile:
    def test_percentile(self):
        assert percentile(list(range(101)), 95) == pytest.approx(95)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_histogram_ratios_sum_to_one(self):
        data = [0.5, 1.5, 1.6, 2.5, 3.1]
        bins = histogram(data, edges=[0, 1, 2, 3, 4])
        assert sum(ratio for _, _, ratio in bins) == pytest.approx(1.0)
        assert bins[1][2] == pytest.approx(2 / 5)


class TestTimeSeries:
    def test_append_and_mean(self):
        ts = TimeSeries("cpu")
        for t, v in [(0, 10), (1, 20), (2, 30)]:
            ts.add(t, v)
        assert len(ts) == 3
        assert ts.mean() == pytest.approx(20)

    def test_windowed_mean(self):
        ts = TimeSeries()
        for t in range(10):
            ts.add(t, 100 if t < 5 else 0)
        assert ts.mean(0, 4) == pytest.approx(100)
        assert ts.mean(5, 9) == pytest.approx(0)

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.add(1.0, 0)
        with pytest.raises(ValueError):
            ts.add(0.5, 0)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().mean()

    def test_integral(self):
        ts = TimeSeries()
        ts.add(0, 10)
        ts.add(2, 10)
        ts.add(4, 0)
        assert ts.integral() == pytest.approx(10 * 2 + 10 * 2)

    def test_max(self):
        ts = TimeSeries()
        ts.add(0, 1)
        ts.add(1, 5)
        assert ts.max() == 5


def test_summarize():
    summary = summarize([1, 2, 3, 4, 5])
    assert summary["min"] == 1 and summary["max"] == 5
    assert summary["mean"] == pytest.approx(3)
    with pytest.raises(ValueError):
        summarize([])
