"""Tests for byte/time unit helpers."""

import pytest

from repro.common import units


class TestParseBytes:
    def test_plain_int_passthrough(self):
        assert units.parse_bytes(1234) == 1234

    def test_float_rounds_down(self):
        assert units.parse_bytes(10.9) == 10

    def test_bare_number_string(self):
        assert units.parse_bytes("4096") == 4096

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1KB", units.KiB),
            ("1kb", units.KiB),
            ("256MB", 256 * units.MiB),
            ("256 MB", 256 * units.MiB),
            ("1.5GiB", int(1.5 * units.GiB)),
            ("2g", 2 * units.GiB),
            ("1TB", units.TiB),
            ("7b", 7),
        ],
    )
    def test_suffixes(self, text, expected):
        assert units.parse_bytes(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            units.parse_bytes("a lot")

    def test_rejects_unknown_suffix(self):
        with pytest.raises(ValueError):
            units.parse_bytes("12 parsecs")


class TestFormatBytes:
    def test_binary_units(self):
        assert units.format_bytes(units.MiB) == "1.00 MiB"
        assert units.format_bytes(512) == "512 B"

    def test_decimal_units(self):
        assert units.format_bytes(2 * units.GB, decimal=True) == "2.00 GB"

    def test_roundtrip_magnitude(self):
        text = units.format_bytes(168 * units.GiB)
        assert text == "168.00 GiB"


class TestFormatDuration:
    def test_microseconds(self):
        assert units.format_duration(5e-6) == "5.0 us"

    def test_milliseconds(self):
        assert units.format_duration(0.0123) == "12.30 ms"

    def test_seconds(self):
        assert units.format_duration(31.25) == "31.2 s"

    def test_minutes(self):
        assert units.format_duration(312) == "5m12.0s"

    def test_hours(self):
        assert units.format_duration(3 * 3600 + 62) == "3h01m"

    def test_negative(self):
        assert units.format_duration(-10).startswith("-")


def test_gbps_conversion():
    # a 16 Gbps InfiniBand link moves 2e9 bytes/s
    assert units.gbps_to_bytes_per_sec(16) == pytest.approx(2e9)
