"""Tests for the layered Configuration object."""

import pytest

from repro.common import Configuration
from repro.common.errors import ConfigurationError


class TestBasics:
    def test_get_set(self):
        conf = Configuration({"a": 1})
        assert conf["a"] == 1
        conf.set("b", 2)
        assert conf["b"] == 2

    def test_get_with_default(self):
        conf = Configuration()
        assert conf.get("missing", 42) == 42
        assert conf.get("missing") is None

    def test_require_raises(self):
        with pytest.raises(ConfigurationError):
            Configuration().require("nope")

    def test_mapping_protocol(self):
        conf = Configuration({"x": 1, "y": 2})
        assert set(conf) == {"x", "y"}
        assert len(conf) == 2
        assert "x" in conf
        assert dict(conf) == {"x": 1, "y": 2}

    def test_update_chains(self):
        conf = Configuration().update({"a": 1}).set("b", 2)
        assert conf.flat() == {"a": 1, "b": 2}


class TestLayering:
    def test_child_overrides_parent(self):
        base = Configuration({"mode": "common", "sort": True})
        child = base.child({"sort": False})
        assert child["sort"] is False
        assert child["mode"] == "common"

    def test_writes_stay_in_child(self):
        base = Configuration({"k": 1})
        child = base.child()
        child.set("k", 2)
        assert base["k"] == 1
        assert child["k"] == 2

    def test_iteration_dedups_layers(self):
        base = Configuration({"a": 1, "b": 2})
        child = base.child({"b": 3})
        assert sorted(child) == ["a", "b"]
        assert child.flat() == {"a": 1, "b": 3}

    def test_three_layers(self):
        grandparent = Configuration({"a": "g"})
        parent = grandparent.child({"b": "p"})
        child = parent.child({"c": "c"})
        assert child["a"] == "g" and child["b"] == "p" and child["c"] == "c"


class TestTypedGetters:
    def test_int_coercion(self):
        assert Configuration({"n": "5"}).get_int("n") == 5

    def test_float(self):
        assert Configuration({"f": "2.5"}).get_float("f") == 2.5

    @pytest.mark.parametrize("raw", [True, "true", "YES", "on", "1"])
    def test_bool_truthy(self, raw):
        assert Configuration({"b": raw}).get_bool("b") is True

    @pytest.mark.parametrize("raw", [False, "false", "No", "off", "0"])
    def test_bool_falsy(self, raw):
        assert Configuration({"b": raw}).get_bool("b") is False

    def test_bool_garbage_raises(self):
        with pytest.raises(ConfigurationError):
            Configuration({"b": "maybe"}).get_bool("b")

    def test_bytes_suffix(self):
        assert Configuration({"s": "64MB"}).get_bytes("s") == 64 * 2**20

    def test_missing_without_default_raises(self):
        with pytest.raises(ConfigurationError):
            Configuration().get_int("n")

    def test_missing_with_default(self):
        assert Configuration().get_int("n", 7) == 7
        assert Configuration().get_bytes("s", "1KB") == 1024
