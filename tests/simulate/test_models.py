"""Invariant tests on the framework models (structure, not calibration)."""

import pytest

from repro.common.units import MiB
from repro.simulate.cluster import TESTBED_A, SimCluster
from repro.simulate.datampi_model import DataMPISimParams, simulate_datampi_job
from repro.simulate.hadoop_model import HadoopSimParams, simulate_hadoop_job
from repro.simulate.profiles import TERASORT, WORDCOUNT

GB = 1e9
SMALL = 8 * GB  # keep model tests fast


def small_spec():
    return TESTBED_A.with_slaves(4)


def run_hadoop(data=SMALL, profile=TERASORT, **kw):
    spec = small_spec()
    defaults = dict(num_reduces=spec.num_slaves * spec.reduce_slots, name="t")
    defaults.update(kw)
    return simulate_hadoop_job(
        SimCluster(spec),
        HadoopSimParams(profile, data, spec.default_block_size, **defaults),
    )


def run_datampi(data=SMALL, profile=TERASORT, **kw):
    spec = small_spec()
    defaults = dict(num_a_tasks=spec.num_slaves * spec.reduce_slots, name="t")
    defaults.update(kw)
    return simulate_datampi_job(
        SimCluster(spec),
        DataMPISimParams(profile, data, spec.default_block_size, **defaults),
    )


class TestHadoopModelStructure:
    def test_phases_ordered(self):
        report = run_hadoop()
        map_start, map_end = report.phases["map"]
        red_start, red_end = report.phases["reduce"]
        assert map_start < map_end
        assert red_start < red_end
        assert red_end <= report.duration
        # slow-start: reducers launch during the map phase...
        assert red_start < map_end
        # ...but cannot finish before it (two-phase proxy shuffle)
        assert red_end > map_end

    def test_progress_curves_monotone_and_complete(self):
        report = run_hadoop()
        for name in ("map", "reduce"):
            series = report.progress[name]
            assert series.values == sorted(series.values)
            assert series.values[-1] == pytest.approx(1.0)

    def test_disk_traffic_includes_map_output(self):
        report = run_hadoop()
        # Hadoop writes intermediate to disk: writes >= input bytes
        total_written = report.disk_write.integral() * 4  # per-node avg * nodes
        assert total_written > SMALL * 0.9

    def test_more_data_takes_longer(self):
        assert run_hadoop(data=12 * GB).duration > run_hadoop(data=6 * GB).duration

    def test_wordcount_shuffles_less_than_terasort(self):
        ts = run_hadoop(profile=TERASORT)
        wc = run_hadoop(profile=WORDCOUNT)
        assert wc.net.integral() < 0.3 * ts.net.integral()

    def test_deterministic(self):
        assert run_hadoop().duration == run_hadoop().duration


class TestDataMPIModelStructure:
    def test_phases_strictly_sequential(self):
        report = run_datampi()
        o_start, o_end = report.phases["O"]
        a_start, a_end = report.phases["A"]
        assert o_start < o_end <= a_start < a_end

    def test_progress_complete(self):
        report = run_datampi()
        for name in ("O", "A"):
            assert report.progress[name].values[-1] == pytest.approx(1.0)

    def test_no_intermediate_disk_write_by_default(self):
        """DataMPI caches intermediate data in memory (§IV-C)."""
        report = run_datampi()
        written = report.disk_write.integral() * 4
        # only the final output is written (~= input size for terasort)
        assert written < SMALL * 1.25

    def test_zero_cache_spills_everything(self):
        spilled = run_datampi(cache_fraction=0.0)
        cached = run_datampi(cache_fraction=1.0)
        assert spilled.disk_write.integral() > 1.6 * cached.disk_write.integral()
        # ...but the prefetch overlap keeps the slowdown moderate (Fig 12)
        assert spilled.duration < 1.6 * cached.duration

    def test_ft_adds_checkpoint_writes_and_time(self):
        base = run_datampi()
        with_ft = run_datampi(ft_enabled=True)
        assert with_ft.duration > base.duration
        assert with_ft.disk_write.integral() > base.disk_write.integral()

    def test_resident_input_skips_disk_reads(self):
        fresh = run_datampi()
        resident = run_datampi(resident_input=True)
        assert resident.disk_read.integral() < 0.05 * fresh.disk_read.integral()
        assert resident.duration < fresh.duration

    def test_faster_than_hadoop_at_every_size(self):
        for data in (4 * GB, 8 * GB, 16 * GB):
            assert run_datampi(data=data).duration < run_hadoop(data=data).duration

    def test_memory_peak_below_capacity(self):
        report = run_datampi()
        assert report.mem.max() < TESTBED_A.node.ram_bytes
