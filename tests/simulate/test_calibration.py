"""Calibration: the headline 168 GB TeraSort numbers vs the paper (§V-C/D).

These tests pin the simulator to the paper's measured values with
explicit tolerances, so any model change that breaks the reproduction
fails loudly.  Paper values:

* Hadoop 475 s vs DataMPI 312 s (Fig 9) — 34.3% improvement;
* Hadoop map-phase disk read 38.9 MB/s, DataMPI O-phase 65.8 MB/s
  (Fig 11b, 69% higher);
* network: DataMPI 74.3 MB/s vs Hadoop 50.6 MB/s (Fig 11c);
* memory: DataMPI 26.6 GB vs Hadoop 29.3 GB average (Fig 11d).
"""

import pytest

from repro.simulate.figures import GB, active_mean, fig9_progress


@pytest.fixture(scope="module")
def headline():
    return fig9_progress(168 * GB)


class TestHeadlineDurations:
    def test_hadoop_total(self, headline):
        assert headline["Hadoop"].duration == pytest.approx(475, rel=0.20)

    def test_datampi_total(self, headline):
        assert headline["DataMPI"].duration == pytest.approx(312, rel=0.15)

    def test_improvement_band(self, headline):
        h = headline["Hadoop"].duration
        d = headline["DataMPI"].duration
        improvement = (h - d) / h * 100
        # the paper reports 32-41% across sizes, 34.3% at 168 GB
        assert 30 < improvement < 44

    def test_both_phases_improve(self, headline):
        """§V-C: DataMPI improves both the O (map) and A (reduce) phases."""
        h, d = headline["Hadoop"], headline["DataMPI"]
        assert d.phase_duration("O") < h.phase_duration("map")
        h_reduce_after_map = h.duration - h.phases["map"][1]
        d_a = d.phase_duration("A")
        assert d_a < h.phase_duration("reduce")
        assert d_a < h_reduce_after_map * 2  # sanity on the comparison


class TestFig11ResourceProfile:
    def test_disk_read_rates(self, headline):
        h_rate = headline["Hadoop"].mean_disk_read_rate("map") / 1e6
        d_rate = headline["DataMPI"].mean_disk_read_rate("O") / 1e6
        assert h_rate == pytest.approx(38.9, rel=0.15)
        assert d_rate == pytest.approx(65.8, rel=0.15)
        # "69% higher" read throughput for DataMPI
        assert 1.4 < d_rate / h_rate < 2.1

    def test_datampi_writes_less_to_disk(self, headline):
        """§V-D: DataMPI writes near half of Hadoop (no map-output spill)."""
        h_written = headline["Hadoop"].disk_write.integral()
        d_written = headline["DataMPI"].disk_write.integral()
        assert d_written < 0.65 * h_written

    def test_network_rates(self, headline):
        h_net = active_mean(headline["Hadoop"].net) / 1e6
        d_net = active_mean(headline["DataMPI"].net) / 1e6
        assert h_net == pytest.approx(50.6, rel=0.25)
        assert d_net == pytest.approx(74.3, rel=0.25)

    def test_datampi_network_concentrated_in_o_phase(self, headline):
        """Fig 11c: DataMPI communication mainly occurs in the O phase."""
        d = headline["DataMPI"]
        o_net = d.net.mean(*d.phases["O"])
        a_net = d.net.mean(*d.phases["A"])
        assert o_net > 5 * max(a_net, 1.0)

    def test_memory_footprints(self, headline):
        h_mem = headline["Hadoop"].mem.max() / 1e9
        d_mem = headline["DataMPI"].mem.max() / 1e9
        assert h_mem == pytest.approx(29.3, rel=0.15)
        assert d_mem == pytest.approx(26.6, rel=0.15)
        # "data caching and in-memory shuffle do not make extra memory
        # overhead compared with Hadoop"
        assert d_mem < h_mem

    def test_datampi_cpu_higher_early_lower_late(self, headline):
        """Fig 11a: DataMPI's early CPU is higher (overlapped pipeline)."""
        h, d = headline["Hadoop"], headline["DataMPI"]
        early = (0, 60)
        assert d.cpu_util.mean(*early) > h.cpu_util.mean(*early)


class TestFig9ProgressCurves:
    def test_progress_reaches_100(self, headline):
        for report, phases in (
            (headline["Hadoop"], ("map", "reduce")),
            (headline["DataMPI"], ("O", "A")),
        ):
            for phase in phases:
                assert report.progress[phase].values[-1] == pytest.approx(1.0)

    def test_datampi_o_completes_before_hadoop_map(self, headline):
        h_map_end = headline["Hadoop"].phases["map"][1]
        d_o_end = headline["DataMPI"].phases["O"][1]
        assert d_o_end < h_map_end
