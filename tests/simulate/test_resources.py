"""Tests for simulated devices, disks, cores and memory."""

import pytest

from repro.common.errors import SimulationError
from repro.common.units import MiB
from repro.simulate.cluster import TESTBED_A, TESTBED_B, SharedDisk, SimCluster
from repro.simulate.engine import Simulator
from repro.simulate.resources import Cores, Device, MemoryGauge


class TestDevice:
    def test_single_transfer_time(self):
        sim = Simulator()
        nic = Device(sim, rate=100.0)

        def proc():
            yield nic.transfer(250.0)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(2.5)

    def test_fifo_serialization(self):
        sim = Simulator()
        nic = Device(sim, rate=100.0)
        finishes = []

        def proc(tag, nbytes):
            yield nic.transfer(nbytes)
            finishes.append((tag, sim.now))

        sim.process(proc("first", 100))
        sim.process(proc("second", 100))
        sim.run()
        assert finishes == [("first", pytest.approx(1.0)), ("second", pytest.approx(2.0))]

    def test_counters(self):
        sim = Simulator()
        nic = Device(sim, rate=50.0)

        def proc():
            yield nic.transfer(100)

        sim.process(proc())
        sim.run()
        assert nic.bytes_transferred == 100
        assert nic.busy_time == pytest.approx(2.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(SimulationError):
            Device(Simulator(), rate=0)


class TestSharedDisk:
    def _disk(self, sim):
        return SharedDisk(sim, TESTBED_A.node)

    def test_sequential_stream_full_rate(self):
        sim = Simulator()
        disk = self._disk(sim)

        def proc():
            yield disk.read(110e6)  # exactly 1 second of sequential IO
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(1.0, rel=0.01)

    def test_interleaved_streams_pay_seeks(self):
        def run(n_streams):
            sim = Simulator()
            disk = self._disk(sim)

            def proc():
                yield disk.read(110e6 / n_streams)

            for _ in range(n_streams):
                sim.process(proc())
            sim.run()
            return sim.now

        solo = run(1)
        eight = run(8)
        # same total bytes, but 8 interleaved streams pay stream-switch seeks
        assert eight > solo * 1.05

    def test_read_write_accounted_separately(self):
        sim = Simulator()
        disk = self._disk(sim)

        def proc():
            yield disk.read(1 * MiB)
            yield disk.write(2 * MiB)

        sim.process(proc())
        sim.run()
        assert disk.bytes_read == 1 * MiB
        assert disk.bytes_written == 2 * MiB

    def test_zero_transfer_completes_instantly(self):
        sim = Simulator()
        disk = self._disk(sim)
        event = disk.read(0)
        assert event.triggered

    def test_round_robin_fairness(self):
        """Two equal streams finish near-together, not strictly serially."""
        sim = Simulator()
        disk = self._disk(sim)
        finishes = {}

        def proc(tag):
            yield disk.read(64 * MiB)
            finishes[tag] = sim.now

        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        assert abs(finishes["a"] - finishes["b"]) < 0.2 * max(finishes.values())


class TestCores:
    def test_parallel_up_to_capacity(self):
        sim = Simulator()
        cpu = Cores(sim, 2)

        def proc():
            yield cpu.compute(1.0)

        for _ in range(2):
            sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_queueing_beyond_capacity(self):
        sim = Simulator()
        cpu = Cores(sim, 2)

        def proc():
            yield cpu.compute(1.0)

        for _ in range(5):
            sim.process(proc())
        sim.run()
        assert sim.now == pytest.approx(3.0)  # ceil(5/2) waves
        assert cpu.core_seconds == pytest.approx(5.0)

    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            Cores(Simulator(), 0)


class TestMemoryGauge:
    def test_allocate_release_peak(self):
        mem = MemoryGauge(100.0)
        mem.allocate(60)
        mem.allocate(30)
        assert mem.used == 90 and mem.peak == 90
        mem.release(50)
        assert mem.used == 40
        assert mem.peak == 90  # peak is sticky
        assert mem.available == 60

    def test_release_never_negative(self):
        mem = MemoryGauge(10.0)
        mem.release(5)
        assert mem.used == 0


class TestClusterSpecs:
    def test_testbed_a_matches_paper(self):
        assert TESTBED_A.num_slaves == 16  # 17 nodes = 1 master + 16 slaves
        assert TESTBED_A.node.cores == 16  # dual octa-core
        assert TESTBED_A.node.ram_bytes == 64 * 2**30
        assert TESTBED_A.map_slots == 4 and TESTBED_A.reduce_slots == 4  # §V-B
        assert TESTBED_A.default_block_size == 256 * 2**20  # §V-B tuning

    def test_testbed_b_matches_paper(self):
        assert TESTBED_B.num_slaves == 64
        assert TESTBED_B.node.cores == 8  # dual quad-core
        assert TESTBED_B.node.ram_bytes == 12 * 2**30
        assert TESTBED_B.map_slots == 2 and TESTBED_B.reduce_slots == 2  # §V-G
        assert TESTBED_B.default_block_size == 128 * 2**20

    def test_with_slaves(self):
        spec = TESTBED_B.with_slaves(32)
        assert spec.num_slaves == 32
        assert spec.node == TESTBED_B.node

    def test_cluster_counters_start_zero(self):
        cluster = SimCluster(TESTBED_A.with_slaves(2))
        assert cluster.total_disk_read() == 0
        assert cluster.total_net_bytes() == 0
        assert cluster.total_cores() == 32
