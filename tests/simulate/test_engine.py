"""Tests for the discrete-event simulation core."""

import pytest

from repro.common.errors import SimulationError
from repro.simulate.engine import Simulator


class TestClockAndTimeouts:
    def test_virtual_time_advances(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 5.0
        assert sim.now == 5.0

    def test_zero_delay(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0.0)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []

        def waiter(delay, tag):
            yield sim.timeout(delay)
            log.append((sim.now, tag))

        for delay, tag in [(3, "c"), (1, "a"), (2, "b")]:
            sim.process(waiter(delay, tag))
        sim.run()
        assert log == [(1, "a"), (2, "b"), (3, "c")]

    def test_fifo_tie_break_at_same_time(self):
        sim = Simulator()
        log = []

        def proc(tag):
            yield sim.timeout(1.0)
            log.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []

        def proc():
            yield sim.timeout(10.0)
            fired.append(True)

        sim.process(proc())
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert not fired
        sim.run()  # finish the rest
        assert fired


class TestProcessesAndEvents:
    def test_process_chain(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2.0)
            return 42

        def parent():
            value = yield sim.process(child())
            return value + 1

        p = sim.process(parent())
        sim.run()
        assert p.value == 43

    def test_manual_event(self):
        sim = Simulator()
        gate = sim.event()
        order = []

        def waiter():
            value = yield gate
            order.append(("woke", value, sim.now))

        def trigger():
            yield sim.timeout(3.0)
            gate.succeed("payload")

        sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert order == [("woke", "payload", 3.0)]

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed()
        with pytest.raises(SimulationError):
            gate.succeed()

    def test_waiting_on_triggered_event_returns_immediately(self):
        sim = Simulator()
        gate = sim.event()
        gate.succeed("early")

        def proc():
            value = yield gate
            return value

        p = sim.process(proc())
        sim.run()
        assert p.value == "early"

    def test_all_of(self):
        sim = Simulator()

        def worker(delay):
            yield sim.timeout(delay)
            return delay

        def main():
            procs = [sim.process(worker(d)) for d in (5, 1, 3)]
            yield sim.all_of(procs)
            return sim.now

        p = sim.process(main())
        sim.run()
        assert p.value == 5.0

    def test_all_of_empty(self):
        sim = Simulator()

        def main():
            yield sim.all_of([])
            return "instant"

        p = sim.process(main())
        sim.run()
        assert p.value == "instant"

    def test_bad_yield_raises(self):
        sim = Simulator()

        def proc():
            yield 42  # not an Event

        sim.process(proc())
        with pytest.raises(SimulationError, match="expected an Event"):
            sim.run()

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            while True:
                yield sim.timeout(0.001)

        sim.process(forever())
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run(max_steps=1000)


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def build():
            sim = Simulator()
            trace = []

            def proc(tag, delay):
                for i in range(5):
                    yield sim.timeout(delay)
                    trace.append((round(sim.now, 9), tag, i))

            for tag, delay in [("x", 0.7), ("y", 1.1), ("z", 0.3)]:
                sim.process(proc(tag, delay))
            sim.run()
            return trace

        assert build() == build()
