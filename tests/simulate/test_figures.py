"""Shape tests for the remaining evaluation figures (8, 10, 12, 13, 14).

Each asserts the paper's qualitative claim — who wins, roughly by what
factor, where the optimum sits — on reduced sweeps so the suite stays
fast; the full sweeps live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.simulate.figures import (
    GB,
    fig8a_block_size_sweep,
    fig8b_task_sweep,
    fig10a_terasort_sweep,
    fig10b_iteration,
    fig10c_topk,
    fig12_spill_sweep,
    fig13_recovery,
    fig13a_ft_efficiency,
    fig14a_strong_scale,
    fig14b_weak_scale,
    wordcount_comparison,
)


class TestFig8Tuning:
    def test_block_size_peak_at_256(self):
        sweep = fig8a_block_size_sweep(
            data_bytes=48 * GB, block_sizes_mb=(64, 256, 1024)
        )
        for framework in ("Hadoop", "DataMPI"):
            at = {mb: sweep[mb][framework] for mb in sweep}
            assert at[256] > at[64]
            assert at[256] > at[1024]

    def test_task_count_four_beats_two_and_eight_for_hadoop(self):
        sweep = fig8b_task_sweep(tasks_per_node=(2, 4, 8))
        hadoop = {k: sweep[k]["Hadoop"] for k in sweep}
        assert hadoop[4] > hadoop[2]
        assert hadoop[4] > hadoop[8]

    def test_task_count_datampi_saturates_after_four(self):
        sweep = fig8b_task_sweep(tasks_per_node=(2, 4, 8))
        datampi = {k: sweep[k]["DataMPI"] for k in sweep}
        assert datampi[4] > datampi[2]
        # beyond 4 the gain collapses (memory pressure starts spilling)
        gain_24 = datampi[4] - datampi[2]
        gain_48 = datampi[8] - datampi[4]
        assert gain_48 < 0.5 * gain_24


class TestFig10aTeraSortSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return fig10a_terasort_sweep(sizes_gb=(48, 120, 192))

    def test_improvement_band_at_every_size(self, sweep):
        """Paper: DataMPI gains 32-41% from 48 GB to 192 GB."""
        for gb, row in sweep.items():
            improvement = (row["Hadoop"] - row["DataMPI"]) / row["Hadoop"] * 100
            assert 28 < improvement < 45, f"{gb} GB: {improvement:.1f}%"

    def test_times_grow_with_data(self, sweep):
        for framework in ("Hadoop", "DataMPI"):
            times = [sweep[gb][framework] for gb in sorted(sweep)]
            assert times == sorted(times)

    def test_wordcount_improvement(self):
        wc = wordcount_comparison(48 * GB)
        improvement = (wc["Hadoop"] - wc["DataMPI"]) / wc["Hadoop"] * 100
        assert 22 < improvement < 40  # paper: 31%


class TestFig10bIteration:
    @pytest.fixture(scope="class")
    def rounds(self):
        return fig10b_iteration(data_bytes=20 * GB, rounds=3)

    @pytest.mark.parametrize("workload", ["PageRank", "K-means"])
    def test_average_improvement(self, rounds, workload):
        h = rounds[workload]["Hadoop"]
        d = rounds[workload]["DataMPI"]
        improvement = (h.mean_round - d.mean_round) / h.mean_round * 100
        assert 28 < improvement < 55  # paper: 41% / 40%

    @pytest.mark.parametrize("workload", ["PageRank", "K-means"])
    def test_datampi_later_rounds_faster_than_first(self, rounds, workload):
        """Round 0 loads from HDFS; later rounds run on resident state."""
        times = rounds[workload]["DataMPI"].round_times
        assert all(t < times[0] for t in times[1:])

    @pytest.mark.parametrize("workload", ["PageRank", "K-means"])
    def test_hadoop_rounds_flat(self, rounds, workload):
        """Every Hadoop round re-reads everything: no round is cheaper."""
        times = rounds[workload]["Hadoop"].round_times
        assert max(times) - min(times) < 0.05 * max(times)


class TestFig10cTopK:
    @pytest.fixture(scope="class")
    def latencies(self):
        return fig10c_topk(duration=60.0)

    def test_latency_bands(self, latencies):
        """Paper: DataMPI 0.5-4 s, S4 1.5-12 s."""
        d = latencies["DataMPI"]
        s = latencies["S4"]
        assert 0.3 < d["min"] < 1.0 and d["max"] < 5.0
        assert 1.0 < s["min"] < 2.5 and 6.0 < s["max"] < 14.0

    def test_datampi_stochastically_faster(self, latencies):
        assert latencies["DataMPI"]["median"] < latencies["S4"]["median"]
        d_vals = latencies["DataMPI"]["latencies"]
        s_vals = latencies["S4"]["latencies"]
        assert np.percentile(d_vals, 95) < np.percentile(s_vals, 50) * 2

    def test_distribution_sums_to_one(self, latencies):
        for system in ("DataMPI", "S4"):
            ratios = [r for _, _, r in latencies[system]["distribution"]]
            assert sum(ratios) == pytest.approx(1.0, abs=0.02)


class TestFig12Spill:
    @pytest.fixture(scope="class")
    def sweep(self):
        return fig12_spill_sweep(data_bytes=96 * GB, fractions=(0.0, 0.5, 1.0))

    def test_more_cache_less_time(self, sweep):
        assert sweep[1.0] <= sweep[0.5] <= sweep[0.0]

    def test_zero_cache_degrades_moderately(self, sweep):
        """Paper: up to ~9% degradation from full to zero caching; the
        simulated penalty stays under 40% (prefetch hides most of it)."""
        degradation = (sweep[0.0] - sweep[1.0]) / sweep[1.0] * 100
        assert 0 < degradation < 40

    def test_zero_cache_still_beats_hadoop(self):
        from repro.simulate.cluster import TESTBED_A, SimCluster
        from repro.simulate.hadoop_model import HadoopSimParams, simulate_hadoop_job
        from repro.simulate.profiles import TERASORT

        sweep = fig12_spill_sweep(data_bytes=96 * GB, fractions=(0.0,))
        hadoop = simulate_hadoop_job(
            SimCluster(TESTBED_A),
            HadoopSimParams(TERASORT, 96 * GB, TESTBED_A.default_block_size, 64),
            profile_resources=False,
        )
        assert sweep[0.0] < hadoop.duration


class TestFig13FaultTolerance:
    @pytest.fixture(scope="class")
    def efficiency(self):
        return fig13a_ft_efficiency()

    def test_checkpoint_overhead_moderate(self, efficiency):
        """Paper: ~12% loss with checkpointing enabled."""
        loss = (efficiency["DataMPI-FT"] - efficiency["DataMPI"]) / efficiency[
            "DataMPI"
        ] * 100
        assert 5 < loss < 25

    def test_ft_still_beats_hadoop(self, efficiency):
        """Paper: checkpoint-enabled DataMPI still 21% faster than Hadoop."""
        improvement = (efficiency["Hadoop"] - efficiency["DataMPI-FT"]) / efficiency[
            "Hadoop"
        ] * 100
        assert improvement > 15

    def test_restart_under_three_seconds(self):
        assert fig13_recovery(0.5).job_restart < 3.0

    def test_reload_proportional_to_checkpoint_size(self):
        reloads = [fig13_recovery(f).checkpoint_reload for f in (0.2, 0.6, 1.0)]
        assert reloads[0] < reloads[1] < reloads[2]
        assert reloads[2] / reloads[0] == pytest.approx(5.0, rel=0.05)

    def test_total_has_slight_augment_with_more_checkpoints(self):
        totals = [fig13_recovery(f).total for f in (0.2, 0.6, 1.0)]
        assert totals == sorted(totals)
        # "a slight augment": well under 50% growth across the sweep
        assert totals[-1] < 1.5 * totals[0]


class TestFig14Scalability:
    @pytest.fixture(scope="class")
    def strong(self):
        return fig14a_strong_scale(data_bytes=128 * GB, node_counts=(16, 64))

    @pytest.fixture(scope="class")
    def weak(self):
        return fig14b_weak_scale(node_counts=(16, 64))

    def test_strong_scale_speedup(self, strong):
        """4x nodes shrink both frameworks' times substantially."""
        for framework in ("Hadoop", "DataMPI"):
            assert strong[64][framework] < 0.4 * strong[16][framework]

    def test_strong_scale_improvement_band(self, strong):
        for n, row in strong.items():
            improvement = (row["Hadoop"] - row["DataMPI"]) / row["Hadoop"] * 100
            assert 25 < improvement < 48, f"{n} nodes: {improvement:.1f}%"

    def test_weak_scale_datampi_flat(self, weak):
        """Linear scalability: constant time per fixed per-task data."""
        times = [weak[n]["DataMPI"] for n in sorted(weak)]
        assert max(times) / min(times) < 1.15

    def test_weak_scale_improvement(self, weak):
        for n, row in weak.items():
            improvement = (row["Hadoop"] - row["DataMPI"]) / row["Hadoop"] * 100
            assert 20 < improvement < 48, f"{n} nodes: {improvement:.1f}%"
