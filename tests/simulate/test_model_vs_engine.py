"""Cross-validation: the DES models vs the *functional* engines.

The simulator's credibility rests on its structural ratios (bytes
shuffled per input byte, spill volumes, locality) matching what the real
mini-engines do.  These tests run the functional engines on small data
and check the invariants the DES hard-codes as profile constants.
"""

import pytest

from repro.hadoop import MiniHadoopCluster
from repro.hdfs import MiniDFSCluster
from repro.simulate.profiles import TERASORT, WORDCOUNT
from repro.workloads import (
    generate_text,
    teragen_to_dfs,
    terasort_datampi,
    terasort_hadoop,
    wordcount_datampi,
    wordcount_hadoop,
)
from repro.workloads.teragen import RECORD_LEN
from repro.workloads.wordcount import write_text_to_dfs


class TestTeraSortRatios:
    """TERASORT profile: map_output_ratio=1.0, reduce_output_ratio=1.0."""

    N = 1200

    @pytest.fixture(scope="class")
    def cluster(self):
        cluster = MiniDFSCluster(num_nodes=4, block_size=100 * RECORD_LEN)
        teragen_to_dfs(cluster.client(0), "/x/in", self.N)
        return cluster

    def test_hadoop_shuffle_equals_input(self, cluster):
        hadoop = MiniHadoopCluster(cluster)
        result = terasort_hadoop(hadoop, "/x/in", "/x/h", num_reduces=3)
        input_bytes = self.N * RECORD_LEN
        # kv_bytes adds 4 B of length accounting per field (8/record)
        accounted = result.counters.reduce_shuffle_bytes
        assert accounted == pytest.approx(input_bytes * 1.08, rel=0.05)

    def test_hadoop_identity_record_conservation(self, cluster):
        hadoop = MiniHadoopCluster(cluster)
        result = terasort_hadoop(hadoop, "/x/in", "/x/h2", num_reduces=3)
        c = result.counters
        assert c.map_input_records == self.N
        assert c.map_output_records == self.N  # identity map
        assert c.reduce_input_records == self.N
        assert c.reduce_output_records == self.N  # identity reduce

    def test_datampi_output_equals_input_bytes(self, cluster):
        terasort_datampi(cluster, "/x/in", "/x/d", o_tasks=4, a_tasks=3,
                         nprocs=4)
        dfs = cluster.client(None)
        out_bytes = sum(dfs.file_size(p) for p in dfs.listdir("/x/d"))
        assert out_bytes == self.N * RECORD_LEN  # reduce_output_ratio = 1.0

    def test_profile_constants_match(self):
        assert TERASORT.map_output_ratio == 1.0
        assert TERASORT.reduce_output_ratio == 1.0


def _wordcount_shuffle_ratio(block_size: int, num_lines: int = 1000) -> float:
    """Hadoop shuffle bytes per input byte at a given split granularity."""
    lines = generate_text(num_lines, words_per_line=12)
    cluster = MiniDFSCluster(num_nodes=3, block_size=block_size)
    write_text_to_dfs(cluster.client(0), "/w/in", lines)
    input_bytes = cluster.client(None).file_size("/w/in")
    hadoop = MiniHadoopCluster(cluster)
    result, _ = wordcount_hadoop(hadoop, "/w/in", "/w/h", num_reduces=2)
    return result.counters.reduce_shuffle_bytes / input_bytes


class TestWordCountRatios:
    """WORDCOUNT profile: combine collapses the shuffle to a few percent.

    The collapse is per split (the combiner only sees one map's output),
    so the ratio shrinks as splits grow; the DES profile's 0.05 models
    the paper's 256 MB splits over a bounded vocabulary.
    """

    def test_combining_improves_with_split_size(self):
        small_splits = _wordcount_shuffle_ratio(block_size=2048)
        big_splits = _wordcount_shuffle_ratio(block_size=128 * 1024)
        assert big_splits < 0.5 * small_splits

    def test_large_split_ratio_approaches_profile(self):
        ratio = _wordcount_shuffle_ratio(block_size=128 * 1024)
        # one big split: distinct-words x entry-size over the input
        assert ratio < 3 * WORDCOUNT.map_output_ratio

    def test_datampi_combiner_collapse(self):
        lines = generate_text(1000, words_per_line=12)
        cluster = MiniDFSCluster(num_nodes=3, block_size=128 * 1024)
        write_text_to_dfs(cluster.client(0), "/w/in", lines)
        result, _ = wordcount_datampi(cluster, "/w/in", o_tasks=2, a_tasks=2,
                                      nprocs=2)
        total_words = result.metrics.records_sent + result.metrics.combined_away
        # most emissions never cross the wire
        assert result.metrics.combined_away > 0.8 * total_words

    def test_wordcount_shuffles_far_less_than_terasort(self):
        """The relative claim behind 'WordCount has smaller data movement'
        (§V-C) holds in the functional engines, not just the profiles."""
        wc_ratio = _wordcount_shuffle_ratio(block_size=128 * 1024)
        ts_cluster = MiniDFSCluster(num_nodes=3, block_size=100 * RECORD_LEN)
        teragen_to_dfs(ts_cluster.client(0), "/t/in", 600)
        ts_result = terasort_hadoop(
            MiniHadoopCluster(ts_cluster), "/t/in", "/t/h", 2
        )
        ts_ratio = ts_result.counters.reduce_shuffle_bytes / (600 * RECORD_LEN)
        assert wc_ratio < 0.3 * ts_ratio
