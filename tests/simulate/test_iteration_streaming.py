"""Unit tests for the iteration and streaming models, and the profiler."""

import numpy as np
import pytest

from repro.simulate.cluster import TESTBED_A
from repro.simulate.iteration_model import (
    iteration_comparison,
    simulate_iteration_datampi,
    simulate_iteration_hadoop,
)
from repro.simulate.profiles import KMEANS, PAGERANK
from repro.simulate.streaming_model import (
    DATAMPI_MODEL,
    S4_MODEL,
    latency_distribution,
    simulate_stream_latencies,
)

GB = 1e9


class TestIterationModel:
    @pytest.fixture(scope="class")
    def pagerank(self):
        return iteration_comparison(TESTBED_A, PAGERANK, 10 * GB, rounds=4)

    def test_round_counts(self, pagerank):
        assert len(pagerank["Hadoop"].round_times) == 4
        assert len(pagerank["DataMPI"].round_times) == 4

    def test_hadoop_rounds_identical(self, pagerank):
        times = pagerank["Hadoop"].round_times
        assert max(times) - min(times) < 1e-6  # same job every round

    def test_datampi_first_round_pays_the_load(self, pagerank):
        times = pagerank["DataMPI"].round_times
        assert times[0] > times[1]
        # middle rounds are identical (resident state, same work)
        assert abs(times[1] - times[2]) < 1e-6

    def test_totals_and_means(self, pagerank):
        result = pagerank["DataMPI"]
        assert result.total == pytest.approx(sum(result.round_times))
        assert result.mean_round == pytest.approx(result.total / 4)

    def test_kmeans_gap_larger_than_pagerank(self):
        """K-means (compact resident arrays) saves more per round than
        PageRank (object-graph traversal each round)."""
        pr = iteration_comparison(TESTBED_A, PAGERANK, 10 * GB, 3)
        km = iteration_comparison(TESTBED_A, KMEANS, 10 * GB, 3)

        def later_round_ratio(pair):
            return pair["DataMPI"].round_times[1] / pair["Hadoop"].round_times[1]

        assert later_round_ratio(km) < later_round_ratio(pr)

    def test_more_rounds_widen_datampi_advantage(self):
        short = iteration_comparison(TESTBED_A, KMEANS, 10 * GB, 2)
        long = iteration_comparison(TESTBED_A, KMEANS, 10 * GB, 6)

        def improvement(pair):
            h, d = pair["Hadoop"].total, pair["DataMPI"].total
            return (h - d) / h

        assert improvement(long) > improvement(short)


class TestStreamingModel:
    def test_deterministic_given_seed(self):
        a = simulate_stream_latencies(S4_MODEL, duration=20, seed=1)
        b = simulate_stream_latencies(S4_MODEL, duration=20, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_latencies(self):
        a = simulate_stream_latencies(S4_MODEL, duration=20, seed=1)
        b = simulate_stream_latencies(S4_MODEL, duration=20, seed=2)
        assert not np.array_equal(a, b)

    def test_event_count_matches_rate_and_duration(self):
        latencies = simulate_stream_latencies(
            DATAMPI_MODEL, rate_per_sec=500, duration=10
        )
        assert len(latencies) == 5000

    def test_all_latencies_positive(self):
        latencies = simulate_stream_latencies(DATAMPI_MODEL, duration=30)
        assert (latencies > 0).all()

    def test_queue_is_stable(self):
        """Effective capacity exceeds the arrival rate: latencies must not
        grow over the run (no unbounded backlog)."""
        latencies = simulate_stream_latencies(S4_MODEL, duration=120)
        first_half = latencies[: len(latencies) // 2]
        second_half = latencies[len(latencies) // 2 :]
        assert np.median(second_half) < 2 * np.median(first_half)

    def test_gc_pauses_create_the_tail(self):
        from dataclasses import replace

        no_gc = replace(S4_MODEL, gc_duration=0.0)
        with_gc = S4_MODEL
        quiet = simulate_stream_latencies(no_gc, duration=60)
        noisy = simulate_stream_latencies(with_gc, duration=60)
        assert noisy.max() > quiet.max() + 1.0

    def test_distribution_buckets(self):
        latencies = simulate_stream_latencies(DATAMPI_MODEL, duration=30)
        buckets = latency_distribution(latencies)
        assert len(buckets) == 12
        assert sum(r for _, _, r in buckets) == pytest.approx(1.0, abs=0.02)
