"""Tests for the functional RPC engines."""

import threading

import pytest

from repro.common.errors import RPCError
from repro.rpc.client import (
    DataMPIRpcClient,
    HadoopRpcClient,
    RpcProxy,
    SocketRpcClient,
)
from repro.rpc.protocol import RpcCall, RpcResponse, decode_message, encode_message
from repro.rpc.server import DataMPIRpcServer, HadoopRpcServer, SocketRpcServer
from repro.mpi import run_world


class Calculator:
    """Sample RPC target."""

    def add(self, a, b):
        return a + b

    def echo(self, obj):
        return obj

    def fail(self):
        raise ValueError("intentional")

    def _secret(self):
        return "hidden"


class TestProtocolFraming:
    def test_call_roundtrip(self):
        call = RpcCall(7, "add", (1, 2.5, "x", [1, 2]))
        back = decode_message(encode_message(call))
        assert back == call

    def test_response_roundtrip_ok(self):
        resp = RpcResponse(9, True, {"r": [1, 2]})
        assert decode_message(encode_message(resp)) == resp

    def test_response_roundtrip_error(self):
        resp = RpcResponse(9, False, error="ValueError: bad")
        back = decode_message(encode_message(resp))
        with pytest.raises(RPCError, match="bad"):
            back.unwrap()

    def test_corrupt_frame(self):
        with pytest.raises(RPCError):
            decode_message(b"\x07\x00")


class TestHadoopRpc:
    @pytest.fixture()
    def server(self):
        server = HadoopRpcServer(Calculator(), num_handlers=2).start()
        yield server
        server.stop()

    def test_basic_call(self, server):
        client = HadoopRpcClient(server)
        assert client.call("add", 2, 3) == 5
        client.close()

    def test_proxy_sugar(self, server):
        proxy = RpcProxy(HadoopRpcClient(server))
        assert proxy.add(10, 20) == 30
        assert proxy.echo(["deep", {"k": 1}]) == ["deep", {"k": 1}]

    def test_handler_exception_propagates(self, server):
        client = HadoopRpcClient(server)
        with pytest.raises(RPCError, match="intentional"):
            client.call("fail")

    def test_unknown_method(self, server):
        client = HadoopRpcClient(server)
        with pytest.raises(RPCError, match="no such RPC method"):
            client.call("nonexistent")

    def test_private_methods_hidden(self, server):
        client = HadoopRpcClient(server)
        with pytest.raises(RPCError):
            client.call("_secret")

    def test_concurrent_clients(self, server):
        results = {}

        def worker(i):
            client = HadoopRpcClient(server)
            results[i] = client.call("add", i, i)
            client.close()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {i: 2 * i for i in range(8)}

    def test_concurrent_calls_one_client(self, server):
        client = HadoopRpcClient(server)
        results = {}

        def worker(i):
            results[i] = client.call("echo", i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {i: i for i in range(10)}

    def test_dict_target(self):
        server = HadoopRpcServer({"double": lambda x: 2 * x}).start()
        try:
            assert HadoopRpcClient(server).call("double", 21) == 42
        finally:
            server.stop()

    def test_connect_after_stop_raises(self):
        server = HadoopRpcServer(Calculator()).start()
        server.stop()
        with pytest.raises(RPCError):
            server.connect()


class TestSocketRpc:
    """The Hadoop server shape over the shared repro.net.wire loops."""

    @pytest.fixture()
    def server(self):
        server = SocketRpcServer(Calculator(), num_handlers=2).start()
        yield server
        server.stop()

    def test_basic_call(self, server):
        client = SocketRpcClient(server.address)
        try:
            assert client.call("add", 2, 3) == 5
            assert server.calls_served == 1
        finally:
            client.close()

    def test_proxy_sugar(self, server):
        client = SocketRpcClient(server.address)
        try:
            proxy = RpcProxy(client)
            assert proxy.add(10, 20) == 30
            assert proxy.echo(["deep", {"k": 1}]) == ["deep", {"k": 1}]
        finally:
            client.close()

    def test_handler_exception_propagates(self, server):
        client = SocketRpcClient(server.address)
        try:
            with pytest.raises(RPCError, match="intentional"):
                client.call("fail")
        finally:
            client.close()

    def test_unknown_method(self, server):
        client = SocketRpcClient(server.address)
        try:
            with pytest.raises(RPCError, match="no such RPC method"):
                client.call("nonexistent")
        finally:
            client.close()

    def test_concurrent_clients(self, server):
        results = {}

        def worker(i):
            client = SocketRpcClient(server.address)
            try:
                results[i] = client.call("add", i, i)
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == {i: 2 * i for i in range(8)}

    def test_concurrent_calls_one_client(self, server):
        # the handler pool can reply out of order; the client's reader
        # thread must route each response back to the right caller
        client = SocketRpcClient(server.address)
        results = {}

        def worker(i):
            results[i] = client.call("echo", i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        client.close()
        assert results == {i: i for i in range(10)}

    def test_call_after_close_raises(self, server):
        client = SocketRpcClient(server.address)
        client.close()
        with pytest.raises(RPCError, match="closed"):
            client.call("add", 1, 1)

    def test_dict_target(self):
        server = SocketRpcServer({"double": lambda x: 2 * x}).start()
        client = SocketRpcClient(server.address)
        try:
            assert client.call("double", 21) == 42
        finally:
            client.close()
            server.stop()


class TestDataMPIRpc:
    def test_rpc_over_intracomm(self):
        def main(comm):
            if comm.rank == 0:
                server = DataMPIRpcServer(comm, Calculator())
                return server.serve_forever()
            client = DataMPIRpcClient(comm, server_rank=0)
            total = sum(client.call("add", comm.rank, i) for i in range(5))
            # coordinate shutdown between the clients only: rank 0 is busy
            # serving and cannot join a collective
            if comm.rank == 2:
                comm.send(None, dest=1, tag=555)
            else:
                comm.recv(source=2, tag=555)
                client.shutdown_server()
            return total

        results = run_world(3, main)
        assert results[0] == 10  # calls served: 2 clients x 5 calls
        assert results[1] == 5 * 1 + sum(range(5))
        assert results[2] == 5 * 2 + sum(range(5))

    def test_rpc_over_intercomm(self):
        """mpidrun-style: parent serves control RPC to spawned workers."""

        def worker(comm):
            parent = comm.Get_parent()
            client = DataMPIRpcClient(parent, server_rank=0)
            task = client.call("get_task", comm.rank)
            return task

        def main(comm):
            inter = comm.spawn(worker, nprocs=3)
            server = DataMPIRpcServer(inter, {"get_task": lambda r: f"task-{r}"})
            served = 0
            while served < 3:
                # serve exactly 3 calls then stop
                from repro.mpi.datatypes import ANY_SOURCE, Status
                from repro.rpc.protocol import decode_message, encode_message
                from repro.rpc.server import RPC_REQUEST_TAG, _response_tag

                status = Status()
                frame = inter.recv(ANY_SOURCE, RPC_REQUEST_TAG, status=status)
                call = decode_message(frame)
                resp = server.registry.invoke(call)
                inter.send(
                    encode_message(resp), dest=status.source,
                    tag=_response_tag(call.call_id),
                )
                served += 1
            return served

        results = run_world(1, main)
        assert results == [3]

    def test_error_propagates_over_mpi(self):
        def main(comm):
            if comm.rank == 0:
                DataMPIRpcServer(comm, Calculator()).serve_forever()
                return None
            client = DataMPIRpcClient(comm, server_rank=0)
            try:
                client.call("fail")
            except RPCError as exc:
                result = str(exc)
            client.shutdown_server()
            return result

        assert "intentional" in run_world(2, main)[1]
