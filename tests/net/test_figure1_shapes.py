"""Figure 1 reproduction shape checks.

These assert the *claims* the paper makes about its Figure 1, not exact
values: MPI-based systems drive >2x Jetty's bandwidth on IB and 10GigE,
DataMPI sits slightly below MVAPICH2 (JVM overhead), and DataMPI RPC
beats Hadoop RPC by amounts that grow with fabric speed.
"""

import pytest

from repro.net.bandwidth import (
    BandwidthBenchmark,
    peak_bandwidth,
    summarize_figure_1a,
)
from repro.net.fabric import FABRICS, GIGE1, GIGE10, IB_16G
from repro.net.latency import (
    DataMPIRpcModel,
    HadoopRpcModel,
    max_improvement,
    rpc_latency_comparison,
    summarize_figure_1b,
)
from repro.net.protocol import DataMPIStack, JettyHTTPStack, NativeMPIStack


class TestFigure1aBandwidth:
    @pytest.fixture(scope="class")
    def result(self):
        return BandwidthBenchmark().run()

    def test_mpi_more_than_twice_jetty_on_fast_fabrics(self, result):
        for fabric in ("10GigE", "IB (16Gbps)"):
            assert result[fabric]["DataMPI"] > 2 * result[fabric]["Hadoop Jetty"]
            assert result[fabric]["MVAPICH2"] > 2 * result[fabric]["Hadoop Jetty"]

    def test_datampi_slightly_below_mvapich2(self, result):
        """JVM binding overhead: lower, but within ~25% (paper: 'slightly')."""
        for fabric in FABRICS:
            d, m = result[fabric]["DataMPI"], result[fabric]["MVAPICH2"]
            assert d < m
            assert d > 0.75 * m

    def test_jetty_less_efficient_even_on_1gige(self, result):
        row = result["1GigE"]
        assert row["DataMPI"] > row["Hadoop Jetty"]
        # but the gap is small: the wire, not software, is the bottleneck
        assert row["DataMPI"] < 1.4 * row["Hadoop Jetty"]

    def test_absolute_magnitudes_sane(self, result):
        assert 90 < result["1GigE"]["MVAPICH2"] < 118
        assert 900 < result["10GigE"]["MVAPICH2"] < 1175
        assert 1300 < result["IB (16Gbps)"]["MVAPICH2"] < 1950

    def test_bandwidth_never_exceeds_link(self, result):
        for fabric_name, row in result.items():
            link_mb = FABRICS[fabric_name].link_rate / 1e6
            for mb in row.values():
                assert mb <= link_mb

    def test_peak_over_grid_beats_single_point(self):
        from repro.net.bandwidth import achieved_bandwidth

        peak = peak_bandwidth(JettyHTTPStack, GIGE10)
        single = achieved_bandwidth(JettyHTTPStack, GIGE10, 16 * 2**20, 4096)
        assert peak >= single

    def test_summary_text_contains_all_systems(self):
        text = summarize_figure_1a()
        for name in ("Hadoop Jetty", "DataMPI", "MVAPICH2", "1GigE"):
            assert name in text


class TestFigure1bRpcLatency:
    def test_datampi_beats_hadoop_everywhere(self):
        for fabric in FABRICS.values():
            for payload in (1, 64, 1024, 4096):
                assert DataMPIRpcModel.latency(payload, fabric) < HadoopRpcModel.latency(
                    payload, fabric
                )

    def test_improvement_bands(self):
        """Paper: up to 18% on 1GigE, 32% on 10GigE, 55% on IB."""
        assert 10 < max_improvement(GIGE1) < 28
        assert 20 < max_improvement(GIGE10) < 40
        assert 45 < max_improvement(IB_16G) < 65

    def test_improvement_grows_with_fabric_speed(self):
        assert (
            max_improvement(GIGE1)
            < max_improvement(GIGE10)
            < max_improvement(IB_16G)
        )

    def test_latency_monotone_in_payload(self):
        curves = rpc_latency_comparison(GIGE1)
        for _, points in curves.items():
            latencies = [lat for _, lat in points]
            assert latencies == sorted(latencies)

    def test_latency_magnitudes(self):
        # Hadoop RPC small-payload latency is O(100 us), not ms or ns
        base = HadoopRpcModel.latency(1, GIGE1)
        assert 100e-6 < base < 500e-6

    def test_payload_range_matches_paper(self):
        from repro.net.latency import PAYLOAD_SIZES

        assert PAYLOAD_SIZES[0] == 1
        assert PAYLOAD_SIZES[-1] == 4096

    def test_summary_text(self):
        text = summarize_figure_1b()
        assert "1GigE" in text and "max improvement" in text
