"""Tests for fabric descriptors and protocol stack cost models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.units import KiB, MiB
from repro.net.fabric import FABRICS, GIGE1, GIGE10, IB_16G
from repro.net.protocol import (
    PROTOCOLS,
    DataMPIStack,
    JettyHTTPStack,
    NativeMPIStack,
)


class TestFabric:
    def test_link_rates(self):
        assert GIGE1.link_rate == pytest.approx(125e6)
        assert GIGE10.link_rate == pytest.approx(1250e6)
        assert IB_16G.link_rate == pytest.approx(2000e6)

    def test_goodput_below_link_rate(self):
        for fabric in FABRICS.values():
            assert fabric.tcp_goodput < fabric.link_rate

    def test_only_ib_has_rdma(self):
        assert IB_16G.has_rdma
        assert not GIGE1.has_rdma
        assert not GIGE10.has_rdma

    def test_rdma_faster_than_ipoib(self):
        assert IB_16G.rdma_latency < IB_16G.base_latency
        assert IB_16G.rdma_goodput > IB_16G.tcp_goodput

    def test_latency_ordering(self):
        assert GIGE10.base_latency < GIGE1.base_latency


class TestProtocolStacks:
    def test_transfer_time_zero(self):
        assert NativeMPIStack.transfer_time(0, 1024, GIGE1) == 0.0

    def test_transfer_time_monotone_in_total(self):
        t1 = JettyHTTPStack.transfer_time(1 * MiB, 64 * KiB, GIGE1)
        t2 = JettyHTTPStack.transfer_time(2 * MiB, 64 * KiB, GIGE1)
        assert t2 > t1

    def test_small_packets_slower(self):
        # fixed per-chunk costs dominate at tiny packets
        slow = JettyHTTPStack.throughput(16 * MiB, 4 * KiB, GIGE10)
        fast = JettyHTTPStack.throughput(16 * MiB, 1 * MiB, GIGE10)
        assert fast > slow

    def test_partial_last_chunk_counted(self):
        t_exact = NativeMPIStack.transfer_time(2 * KiB, 1 * KiB, GIGE1)
        t_ragged = NativeMPIStack.transfer_time(2 * KiB + 1, 1 * KiB, GIGE1)
        assert t_ragged > t_exact

    def test_chunk_larger_than_total_clamped(self):
        t = NativeMPIStack.transfer_time(1 * KiB, 1 * MiB, GIGE1)
        assert t == pytest.approx(NativeMPIStack.chunk_time(1 * KiB, GIGE1))

    def test_mpi_uses_rdma_on_ib(self):
        assert NativeMPIStack.wire_rate(IB_16G) == IB_16G.rdma_goodput
        assert JettyHTTPStack.wire_rate(IB_16G) == IB_16G.tcp_goodput

    @given(
        total=st.integers(min_value=1, max_value=64 * MiB),
        chunk=st.integers(min_value=1, max_value=4 * MiB),
    )
    def test_throughput_positive_and_bounded(self, total, chunk):
        bw = NativeMPIStack.throughput(total, chunk, GIGE10)
        assert 0 < bw <= GIGE10.link_rate

    def test_registry_complete(self):
        assert set(PROTOCOLS) == {"Hadoop Jetty", "DataMPI", "MVAPICH2"}

    def test_stack_ordering_per_byte(self):
        """At large chunks: MVAPICH2 >= DataMPI > Jetty on every fabric."""
        for fabric in FABRICS.values():
            j = JettyHTTPStack.throughput(256 * MiB, 4 * MiB, fabric)
            d = DataMPIStack.throughput(256 * MiB, 4 * MiB, fabric)
            m = NativeMPIStack.throughput(256 * MiB, 4 * MiB, fabric)
            assert m >= d > j
