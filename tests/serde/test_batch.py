"""Tests for the record-batch representation (bytes-first datapath)."""

import pickle

import pytest

from repro.common.errors import SerializationError
from repro.core.sorter import merge_batches, spill_batch
from repro.serde.batch import (
    BatchBuilder,
    RecordBatch,
    batch_from_pairs,
    concat_batches,
    sort_batch,
)
from repro.serde.comparators import bytes_compare, default_compare
from repro.serde.io import DataInput, DataOutput
from repro.serde.serialization import Serializer, get_serializer
from repro.serde.writable import IntWritable, LongWritable, Text


SER = get_serializer("writable")


class CountingSerializer(Serializer):
    """Wraps a serializer and counts every per-value encode/decode."""

    name = "counting"

    def __init__(self, inner=None):
        self.inner = inner or get_serializer("writable")
        self.serialized = 0
        self.deserialized = 0

    def serialize(self, value, out):
        self.serialized += 1
        self.inner.serialize(value, out)

    def deserialize(self, src):
        self.deserialized += 1
        return self.inner.deserialize(src)


class TestRoundTrip:
    def test_serialized_pairs_roundtrip(self):
        pairs = [(f"k{i}", i) for i in range(50)]
        batch = batch_from_pairs(pairs, SER)
        assert len(batch) == 50
        assert list(batch.iter_pairs(SER)) == pairs

    def test_writable_pairs_roundtrip_on_fresh_serializer(self):
        # batches are decoded by a different serializer instance (another
        # worker); writable class ids must be globally stable
        pairs = [(IntWritable(i), LongWritable(i * 2**33)) for i in range(8)]
        batch = batch_from_pairs(pairs, SER)
        fresh = get_serializer("writable")
        assert list(batch.iter_pairs(fresh)) == pairs

    def test_raw_pairs_roundtrip(self):
        pairs = [(b"%03d" % i, b"v" * i) for i in range(40)]
        batch = batch_from_pairs(pairs, None, raw=True)
        assert batch.raw
        assert list(batch.iter_pairs(SER)) == pairs

    def test_raw_rejects_non_bytes(self):
        builder = BatchBuilder(raw=True)
        with pytest.raises(SerializationError, match="bytes-like"):
            builder.add_raw("text", b"v")

    def test_builder_requires_serializer_unless_raw(self):
        with pytest.raises(SerializationError):
            BatchBuilder()

    def test_pickle_roundtrip_off_hot_path(self):
        batch = batch_from_pairs([(b"a", b"b")], None, raw=True)
        clone = pickle.loads(pickle.dumps(batch))
        assert list(clone.iter_pairs(SER)) == [(b"a", b"b")]
        assert clone.raw


class TestEdgeCases:
    def test_empty_batch(self):
        batch = BatchBuilder(SER).seal()
        assert len(batch) == 0
        assert batch.data == b""
        assert list(batch.iter_pairs(SER)) == []
        assert list(batch.iter_views()) == []
        assert list(batch.iter_keyed(SER)) == []

    def test_concat_empty_list(self):
        batch = concat_batches([])
        assert len(batch) == 0

    def test_oversized_fields_use_multibyte_vints(self):
        # field lengths beyond 127 exercise the multi-byte vint framing
        pairs = [(b"k" * 300, b"v" * 70_000)]
        batch = batch_from_pairs(pairs, None, raw=True)
        assert list(batch.iter_pairs(SER)) == pairs
        key, value = next(batch.iter_views())
        assert bytes(key) == pairs[0][0] and len(value) == 70_000

    def test_memoryview_over_bytearray_input(self):
        # a batch may alias a mutable buffer (wire frame body); iteration
        # and spilling must not be broken by the memoryview export
        source = batch_from_pairs([(b"aa", b"1"), (b"bb", b"2")], None, raw=True)
        backing = bytearray(source.data)
        batch = RecordBatch(memoryview(backing), source.count, raw=True)
        assert list(batch.iter_pairs(SER)) == [(b"aa", b"1"), (b"bb", b"2")]
        assert [bytes(k) for k, _ in batch.iter_views()] == [b"aa", b"bb"]

    def test_spill_roundtrip_from_memoryview(self, tmp_path):
        source = batch_from_pairs(
            [(("k%d" % i), i) for i in range(20)], SER
        )
        batch = RecordBatch(memoryview(bytearray(source.data)), 20)
        spill = spill_batch(batch, SER, str(tmp_path), "mv")
        assert list(spill) == [("k%d" % i, i) for i in range(20)]

    def test_concat_mixed_raw_and_serialized_rejected(self):
        raw = batch_from_pairs([(b"a", b"b")], None, raw=True)
        enc = batch_from_pairs([("a", "b")], SER)
        with pytest.raises(SerializationError):
            concat_batches([raw, enc])


class TestSortAndMerge:
    def test_sort_batch_native_bytes(self):
        pairs = [(b"c", b"3"), (b"a", b"1"), (b"b", b"2")]
        batch = sort_batch(
            batch_from_pairs(pairs, None, raw=True), bytes_compare, SER
        )
        assert list(batch.iter_pairs(SER)) == sorted(pairs)

    def test_sort_batch_heterogeneous_keys_falls_back(self):
        # int and str keys: native < raises TypeError; total order applies
        pairs = [("z", 1), (3, 2), ("a", 3), (1, 4)]
        batch = sort_batch(batch_from_pairs(pairs, SER), default_compare, SER)
        keys = [k for k, _ in batch.iter_pairs(SER)]
        assert sorted(map(str, keys)) == sorted(map(str, keys))
        assert len(keys) == 4

    def test_merge_batches_ordered(self):
        b1 = batch_from_pairs([(b"a", b"1"), (b"c", b"3")], None, raw=True)
        b2 = batch_from_pairs([(b"b", b"2"), (b"d", b"4")], None, raw=True)
        merged = merge_batches([b1, b2], bytes_compare, SER)
        assert [k for k, _ in merged.iter_pairs(SER)] == [b"a", b"b", b"c", b"d"]

    def test_merge_batches_unsorted_concats(self):
        b1 = batch_from_pairs([(b"x", b"1")], None, raw=True)
        b2 = batch_from_pairs([(b"a", b"2")], None, raw=True)
        merged = merge_batches([b1, b2], None, SER)
        assert [k for k, _ in merged.iter_pairs(SER)] == [b"x", b"a"]

    def test_iter_records_slices_reassemble(self):
        pairs = [(Text("k%d" % i), i) for i in range(10)]
        batch = batch_from_pairs(pairs, SER)
        rebuilt = BatchBuilder(SER)
        for record in batch.iter_records():
            rebuilt.add_record(record)
        assert list(rebuilt.seal().iter_pairs(SER)) == pairs


class TestSerializeOnce:
    def test_build_serializes_each_field_exactly_once(self):
        counting = CountingSerializer()
        pairs = [("k%d" % i, i) for i in range(25)]
        batch = batch_from_pairs(pairs, counting)
        assert counting.serialized == 50  # one call per key + per value
        assert counting.deserialized == 0

    def test_merge_decodes_keys_only(self):
        counting = CountingSerializer()
        b1 = batch_from_pairs([("a", 1), ("c", 3)], SER)
        b2 = batch_from_pairs([("b", 2)], SER)
        merged = merge_batches([b1, b2], default_compare, counting)
        # ordering needs the 3 keys; the 3 values stay opaque bytes
        assert counting.deserialized == 3
        assert counting.serialized == 0
        assert list(merged.iter_pairs(SER)) == [("a", 1), ("b", 2), ("c", 3)]

    def test_decode_deferred_to_iteration(self):
        counting = CountingSerializer()
        batch = batch_from_pairs([("a", 1), ("b", 2)], SER)
        iterator = batch.iter_pairs(counting)
        assert counting.deserialized == 0  # nothing until consumed
        next(iterator)
        assert counting.deserialized == 2
