"""Tests for the DataOutput/DataInput binary streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.serde.io import ChunkedDataInput, DataInput, DataOutput


class TestFixedWidth:
    def test_int_roundtrip(self):
        out = DataOutput()
        out.write_int(-123456)
        assert DataInput(out.getvalue()).read_int() == -123456

    def test_long_roundtrip(self):
        out = DataOutput()
        out.write_long(2**40)
        assert DataInput(out.getvalue()).read_long() == 2**40

    def test_short_roundtrip(self):
        out = DataOutput()
        out.write_short(-32768)
        assert DataInput(out.getvalue()).read_short() == -32768

    def test_double_roundtrip(self):
        out = DataOutput()
        out.write_double(3.14159)
        assert DataInput(out.getvalue()).read_double() == 3.14159

    def test_float_loses_precision_gracefully(self):
        out = DataOutput()
        out.write_float(1.5)  # representable exactly
        assert DataInput(out.getvalue()).read_float() == 1.5

    def test_boolean(self):
        out = DataOutput()
        out.write_boolean(True)
        out.write_boolean(False)
        src = DataInput(out.getvalue())
        assert src.read_boolean() is True
        assert src.read_boolean() is False

    def test_big_endian_layout(self):
        out = DataOutput()
        out.write_int(1)
        assert out.getvalue() == b"\x00\x00\x00\x01"


class TestVarInts:
    @pytest.mark.parametrize("v", [0, 1, -1, 127, -112, 128, 255, 2**31, -(2**40)])
    def test_vlong_roundtrip(self, v):
        out = DataOutput()
        out.write_vlong(v)
        assert DataInput(out.getvalue()).read_vlong() == v

    def test_small_values_one_byte(self):
        out = DataOutput()
        out.write_vint(100)
        assert len(out) == 1

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_vlong_roundtrip_property(self, v):
        out = DataOutput()
        out.write_vlong(v)
        src = DataInput(out.getvalue())
        assert src.read_vlong() == v
        assert src.at_end()


class TestStringsAndBytes:
    def test_utf_roundtrip(self):
        out = DataOutput()
        out.write_utf("héllo, wörld")
        assert DataInput(out.getvalue()).read_utf() == "héllo, wörld"

    def test_empty_string(self):
        out = DataOutput()
        out.write_utf("")
        assert DataInput(out.getvalue()).read_utf() == ""

    @given(st.text())
    def test_utf_property(self, s):
        out = DataOutput()
        out.write_utf(s)
        assert DataInput(out.getvalue()).read_utf() == s

    def test_bytes_passthrough(self):
        out = DataOutput()
        out.write_bytes(b"abc")
        src = DataInput(out.getvalue())
        assert src.read_bytes(3) == b"abc"


class TestStreamState:
    def test_position_and_remaining(self):
        src = DataInput(b"\x00" * 10)
        assert src.remaining() == 10
        src.read_bytes(4)
        assert src.position == 4
        assert src.remaining() == 6
        assert not src.at_end()

    def test_underflow_raises(self):
        src = DataInput(b"\x00\x01")
        with pytest.raises(SerializationError):
            src.read_int()

    def test_reset_output(self):
        out = DataOutput()
        out.write_int(5)
        out.reset()
        assert len(out) == 0

    def test_mixed_sequence(self):
        out = DataOutput()
        out.write_utf("key")
        out.write_vint(42)
        out.write_double(2.5)
        src = DataInput(out.getvalue())
        assert (src.read_utf(), src.read_vint(), src.read_double()) == (
            "key",
            42,
            2.5,
        )
        assert src.at_end()


def _split(data: bytes, size: int):
    for i in range(0, len(data), size):
        yield data[i : i + size]


class TestChunkedDataInput:
    def test_multibyte_reads_span_chunk_boundaries(self):
        out = DataOutput()
        out.write_int(-123456)
        out.write_long(2**40)
        out.write_utf("héllo")
        payload = out.getvalue()
        # one-byte chunks force every read to cross a boundary
        src = ChunkedDataInput(_split(payload, 1))
        assert src.read_int() == -123456
        assert src.read_long() == 2**40
        assert src.read_utf() == "héllo"

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64, 10_000])
    def test_roundtrip_any_chunking(self, chunk_size):
        out = DataOutput()
        for i in range(50):
            out.write_utf(f"key-{i}")
            out.write_vlong(i * 1_000_003)
        src = ChunkedDataInput(_split(out.getvalue(), chunk_size))
        for i in range(50):
            assert src.read_utf() == f"key-{i}"
            assert src.read_vlong() == i * 1_000_003

    def test_underflow_after_exhaustion_raises(self):
        src = ChunkedDataInput(iter([b"\x00\x01"]))
        assert src.read_bytes(2) == b"\x00\x01"
        with pytest.raises(SerializationError):
            src.read_byte()

    def test_chunks_pulled_lazily(self):
        pulled = []

        def source():
            for i in range(3):
                pulled.append(i)
                yield b"\xab" * 4

        src = ChunkedDataInput(source())
        assert pulled == []  # nothing consumed until bytes are needed
        src.read_bytes(4)
        assert pulled == [0]
        src.read_bytes(5)  # spans into the second and third chunks
        assert pulled == [0, 1, 2]

    @given(st.binary(min_size=0, max_size=400), st.integers(1, 37))
    def test_matches_plain_datainput(self, payload, chunk_size):
        plain = DataInput(payload)
        chunked = ChunkedDataInput(_split(payload, chunk_size))
        assert chunked.read_bytes(len(payload)) == plain.read_bytes(len(payload))
