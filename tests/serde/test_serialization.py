"""Tests for the pluggable serializer backends."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SerializationError
from repro.serde.io import DataInput, DataOutput
from repro.serde.serialization import (
    PickleSerializer,
    WritableSerializer,
    get_serializer,
)
from repro.serde.writable import IntWritable, Text

SAMPLES = [
    None,
    True,
    False,
    0,
    -1,
    2**62,
    3.5,
    "string",
    "ünïcode",
    b"\x00bytes",
    (1, "a", 2.0),
    [1, 2, 3],
    ("nested", (1, [2, {"d": 1}])),
]


@pytest.fixture(params=["writable", "pickle", "java"])
def serializer(request):
    return get_serializer(request.param)


class TestRoundTrip:
    @pytest.mark.parametrize("value", SAMPLES)
    def test_roundtrip(self, serializer, value):
        assert serializer.loads(serializer.dumps(value)) == value

    def test_kv_roundtrip(self, serializer):
        out = DataOutput()
        serializer.serialize_kv("key", [1, 2], out)
        k, v = serializer.deserialize_kv(DataInput(out.getvalue()))
        assert (k, v) == ("key", [1, 2])

    def test_stream_of_values(self, serializer):
        out = DataOutput()
        for value in SAMPLES:
            serializer.serialize(value, out)
        src = DataInput(out.getvalue())
        assert [serializer.deserialize(src) for _ in SAMPLES] == SAMPLES
        assert src.at_end()


simple = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=60),
    st.binary(max_size=60),
)
nested = st.recursive(
    simple,
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children),
    max_leaves=10,
)


class TestPropertyRoundTrip:
    @given(nested)
    def test_writable_backend(self, value):
        s = WritableSerializer()
        assert s.loads(s.dumps(value)) == value

    @given(nested)
    def test_pickle_backend(self, value):
        s = PickleSerializer()
        assert s.loads(s.dumps(value)) == value


class TestWritableBackendSpecifics:
    def test_writable_objects_roundtrip(self):
        s = WritableSerializer()
        blob = s.dumps(Text("abc"))
        assert s.loads(blob) == Text("abc")

    def test_mixed_writable_classes(self):
        s = WritableSerializer()
        out = DataOutput()
        s.serialize(Text("x"), out)
        s.serialize(IntWritable(5), out)
        src = DataInput(out.getvalue())
        assert s.deserialize(src) == Text("x")
        assert s.deserialize(src) == IntWritable(5)

    def test_bool_not_confused_with_int(self):
        s = WritableSerializer()
        assert s.loads(s.dumps(True)) is True
        assert s.loads(s.dumps(1)) == 1
        assert type(s.loads(s.dumps(1))) is int

    def test_fallback_pickles_unknown_types(self):
        s = WritableSerializer()
        value = {"a": {1, 2}}
        assert s.loads(s.dumps(value)) == value

    def test_compactness_vs_pickle(self):
        # the writable wire format should be much tighter for small records
        w, p = WritableSerializer(), PickleSerializer()
        assert len(w.dumps("word")) < len(p.dumps("word"))

    def test_corrupt_tag_raises(self):
        s = WritableSerializer()
        with pytest.raises(SerializationError):
            s.loads(b"\xfe")

    @pytest.mark.parametrize(
        "value",
        [2**63, -(2**63) - 1, 2**200, -(2**200), 127 * 2**64, 2**63 - 1,
         -(2**63)],
    )
    def test_bigint_boundary_roundtrip(self, value):
        """Regression: ints beyond 64 bits used to corrupt through vlong
        (found by the engine exchange property test)."""
        s = WritableSerializer()
        assert s.loads(s.dumps(value)) == value

    @given(st.integers())
    def test_unbounded_int_property(self, value):
        s = WritableSerializer()
        assert s.loads(s.dumps(value)) == value

    def test_vlong_range_guard(self):
        from repro.serde.io import DataOutput

        with pytest.raises(SerializationError):
            DataOutput().write_vlong(2**63)


def test_unknown_backend_raises():
    with pytest.raises(SerializationError):
        get_serializer("capnproto")
