"""Tests for Writable value types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serde.io import DataInput, DataOutput
from repro.serde.writable import (
    BooleanWritable,
    BytesWritable,
    DoubleWritable,
    IntWritable,
    LongWritable,
    NullWritable,
    Text,
    VIntWritable,
)

ALL_SCALARS = [
    (IntWritable, 42),
    (VIntWritable, -7),
    (LongWritable, 2**40),
    (DoubleWritable, 3.25),
    (BooleanWritable, True),
    (Text, "hello"),
    (BytesWritable, b"\x00\x01binary"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("cls,value", ALL_SCALARS)
    def test_roundtrip(self, cls, value):
        out = DataOutput()
        cls(value).write(out)
        back = cls.read(DataInput(out.getvalue()))
        assert back == cls(value)
        assert back.get() == value

    def test_null_writable_is_zero_bytes(self):
        out = DataOutput()
        NullWritable().write(out)
        assert len(out) == 0
        assert NullWritable.read(DataInput(b"")) == NullWritable()

    def test_null_writable_singleton(self):
        assert NullWritable() is NullWritable()

    @given(st.binary(max_size=200))
    def test_bytes_writable_property(self, payload):
        out = DataOutput()
        BytesWritable(payload).write(out)
        assert BytesWritable.read(DataInput(out.getvalue())).get() == payload

    @given(st.text(max_size=100))
    def test_text_property(self, s):
        out = DataOutput()
        Text(s).write(out)
        assert Text.read(DataInput(out.getvalue())).get() == s


class TestOrderingAndHashing:
    def test_int_ordering(self):
        assert IntWritable(1) < IntWritable(2)
        assert IntWritable(2) >= IntWritable(2)

    def test_text_ordering_is_lexicographic(self):
        assert Text("apple") < Text("banana")

    def test_bytes_ordering_unsigned(self):
        assert BytesWritable(b"\x01") < BytesWritable(b"\xff")

    def test_hashable_in_dict(self):
        counts = {Text("a"): 1}
        counts[Text("a")] += 1
        assert counts[Text("a")] == 2

    def test_sortable_list(self):
        keys = [Text("c"), Text("a"), Text("b")]
        assert [k.get() for k in sorted(keys)] == ["a", "b", "c"]

    def test_null_sorts_equal(self):
        assert not (NullWritable() < NullWritable())


class TestSizes:
    def test_serialized_size_int(self):
        assert IntWritable(5).serialized_size() == 4

    def test_serialized_size_vint_small(self):
        assert VIntWritable(5).serialized_size() == 1

    def test_terasort_record_shape(self):
        # 10-byte key / 90-byte value: BytesWritable adds a 4-byte length
        key = BytesWritable(b"k" * 10)
        value = BytesWritable(b"v" * 90)
        assert key.serialized_size() == 14
        assert value.serialized_size() == 94

    def test_set_coerces(self):
        w = IntWritable()
        w.set("17")
        assert w.get() == 17
