"""Tests for comparators and the KEY_CLASS/VALUE_CLASS registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.serde.comparators import (
    ComparableKey,
    bytes_compare,
    default_compare,
    reverse,
    sort_key,
)
from repro.serde.registry import coerce, register_type, resolve_type, type_name
from repro.serde.writable import IntWritable, Text


class TestDefaultCompare:
    def test_numbers(self):
        assert default_compare(1, 2) < 0
        assert default_compare(2, 1) > 0
        assert default_compare(2, 2) == 0

    def test_strings(self):
        assert default_compare("a", "b") < 0

    def test_cross_type_is_total(self):
        # heterogeneous keys get a deterministic order instead of TypeError
        r1 = default_compare(1, "a")
        r2 = default_compare("a", 1)
        assert r1 == -r2 != 0

    @given(st.lists(st.integers(), min_size=2))
    def test_sorted_with_comparator_matches_builtin(self, xs):
        assert sorted(xs, key=sort_key(default_compare)) == sorted(xs)


class TestBytesCompare:
    def test_lexicographic(self):
        assert bytes_compare(b"abc", b"abd") < 0
        assert bytes_compare(b"\xff", b"\x01") > 0
        assert bytes_compare(b"same", b"same") == 0

    def test_prefix_orders_first(self):
        assert bytes_compare(b"ab", b"abc") < 0

    @given(st.lists(st.binary(max_size=12), min_size=2))
    def test_matches_python_bytes_order(self, xs):
        assert sorted(xs, key=sort_key(bytes_compare)) == sorted(xs)


class TestReverseAndComparableKey:
    def test_reverse(self):
        desc = reverse(default_compare)
        assert desc(1, 2) > 0

    def test_comparable_key_heap_ordering(self):
        import heapq

        cmp = default_compare
        heap = [ComparableKey(k, cmp) for k in (3, 1, 2)]
        heapq.heapify(heap)
        assert heapq.heappop(heap).key == 1

    def test_comparable_key_equality(self):
        assert ComparableKey(5, default_compare) == ComparableKey(5, default_compare)


class TestRegistry:
    def test_resolve_java_names(self):
        assert resolve_type("java.lang.String") is str
        assert resolve_type("java.lang.Integer") is int

    def test_resolve_writables(self):
        assert resolve_type("Text") is Text
        assert resolve_type("org.apache.hadoop.io.IntWritable") is IntWritable

    def test_resolve_passthrough(self):
        assert resolve_type(None) is None
        assert resolve_type(str) is str

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_type("com.example.Unknown")

    def test_register_custom(self):
        class MyKey:
            pass

        register_type("tests.MyKey", MyKey)
        assert resolve_type("tests.MyKey") is MyKey
        assert type_name(MyKey) == "tests.MyKey"

    def test_type_name_roundtrip(self):
        assert resolve_type(type_name(Text)) is Text

    def test_coerce(self):
        assert coerce("5", int) == 5
        assert coerce(5, None) == 5
        assert coerce(Text("x"), Text) == Text("x")
