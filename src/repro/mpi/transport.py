"""Message transport: per-rank endpoints with MPI matching semantics.

Each global rank owns an :class:`Endpoint`.  Senders deposit
:class:`Envelope` objects directly into the destination endpoint (eager
protocol); receivers match against ``(context, source, tag)`` with
wildcard support.  Matching preserves MPI's non-overtaking rule: for a
given (source, context, tag) pair, messages are matched in send order,
because both the unexpected-message queue and the scan are FIFO.

A runtime-wide abort flag wakes every blocked receiver so one failing
rank cannot deadlock the world.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable

from repro.common.errors import MPIAbort
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, Status

_seq = itertools.count()


class Envelope:
    """One in-flight message."""

    __slots__ = ("context", "source", "tag", "payload", "nbytes", "seq", "delivered")

    def __init__(
        self, context: int, source: int, tag: int, payload: Any, nbytes: int
    ) -> None:
        self.context = context
        self.source = source
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.seq = next(_seq)
        #: set when a receiver consumes the message (for synchronous sends)
        self.delivered = threading.Event()

    def matches(self, context: int, source: int, tag: int) -> bool:
        return (
            self.context == context
            and (source == ANY_SOURCE or self.source == source)
            and (tag == ANY_TAG or self.tag == tag)
        )

    def status(self) -> Status:
        return Status(self.source, self.tag, self.nbytes)


class AbortFlag:
    """Runtime-wide abort latch shared by every endpoint."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str = ""
        self.errorcode: int = 0

    def is_set(self) -> bool:
        return self._event.is_set()

    def trip(self, reason: str, errorcode: int = 1) -> None:
        if not self._event.is_set():
            self.reason = reason
            self.errorcode = errorcode
            self._event.set()

    def check(self) -> None:
        if self._event.is_set():
            raise MPIAbort(self.errorcode, self.reason)


class Endpoint:
    """Mailbox of one global rank."""

    #: Condition-wait slice; short enough to notice aborts promptly without
    #: a hot loop (aborts also notify the condition directly).
    WAIT_SLICE = 0.1

    def __init__(self, rank: int, abort: AbortFlag) -> None:
        self.rank = rank
        self.abort = abort
        self._lock = threading.Lock()
        self._arrived = threading.Condition(self._lock)
        self._queue: deque[Envelope] = deque()
        # monotonically increasing count of messages ever enqueued; lets
        # waiters detect arrivals without re-scanning spuriously
        self._arrivals = 0

    # -- sender side --------------------------------------------------------
    def deposit(self, envelope: Envelope) -> None:
        """Called by the *sender's* thread to deliver a message."""
        with self._lock:
            self._queue.append(envelope)
            self._arrivals += 1
            self._arrived.notify_all()

    def wake(self) -> None:
        """Wake blocked receivers (used on abort)."""
        with self._lock:
            self._arrived.notify_all()

    # -- receiver side -------------------------------------------------------
    def _find(self, context: int, source: int, tag: int) -> Envelope | None:
        for envelope in self._queue:
            if envelope.matches(context, source, tag):
                return envelope
        return None

    def receive(
        self,
        context: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        cancelled: Callable[[], bool] | None = None,
    ) -> Envelope:
        """Block until a matching message arrives, remove and return it.

        ``timeout`` raises :class:`TimeoutError`; ``cancelled`` is polled so
        higher layers (request cancellation) can back out.
        """
        deadline = None if timeout is None else _now() + timeout
        with self._lock:
            while True:
                self.abort.check()
                if cancelled is not None and cancelled():
                    raise _Cancelled()
                envelope = self._find(context, source, tag)
                if envelope is not None:
                    self._queue.remove(envelope)
                    envelope.delivered.set()
                    return envelope
                wait = Endpoint.WAIT_SLICE
                if deadline is not None:
                    remaining = deadline - _now()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"recv(context={context}, source={source}, tag={tag})"
                            f" timed out on rank {self.rank}"
                        )
                    wait = min(wait, remaining)
                self._arrived.wait(wait)

    def try_receive(
        self, context: int, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Envelope | None:
        """Non-blocking matched receive (returns None when nothing matches)."""
        with self._lock:
            self.abort.check()
            envelope = self._find(context, source, tag)
            if envelope is not None:
                self._queue.remove(envelope)
                envelope.delivered.set()
            return envelope

    def probe(
        self,
        context: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        block: bool = True,
    ) -> Status | None:
        """Peek for a matching message without consuming it."""
        with self._lock:
            while True:
                self.abort.check()
                envelope = self._find(context, source, tag)
                if envelope is not None:
                    return envelope.status()
                if not block:
                    return None
                self._arrived.wait(Endpoint.WAIT_SLICE)

    def pending_count(self) -> int:
        with self._lock:
            return len(self._queue)


class _Cancelled(Exception):
    """Internal: a cancelled request backed out of a blocking receive."""


def _now() -> float:
    import time

    return time.monotonic()
