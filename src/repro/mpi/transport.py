"""Message transport: per-rank endpoints with MPI matching semantics.

Each global rank owns an :class:`Endpoint`.  Senders deposit
:class:`Envelope` objects directly into the destination endpoint (eager
protocol); receivers match against ``(context, source, tag)`` with
wildcard support.

How envelopes *move* between ranks is pluggable.  :class:`Transport` is
the seam: runtimes deposit through it and fetch mailboxes from it, never
touching a peer's :class:`Endpoint` directly.  :class:`LocalTransport`
below is the zero-copy in-process implementation (every rank's mailbox
lives in this interpreter; a deposit is a dict hit + ``deque.append``).
:mod:`repro.mpi.socket_transport` adds the process-per-rank
implementation, where remote deposits are pickled and framed over a
local socket to a driver-side router.  The :class:`Endpoint` matching
engine is shared by both — only delivery differs.

The mailbox is indexed: every distinct ``(context, source, tag)`` triple
gets its own FIFO sub-queue, so the exact-match common case (shuffle
blocks, collective traffic) is an O(1) dict hit + ``popleft`` instead of
a linear scan.  Wildcard receives (``ANY_SOURCE``/``ANY_TAG``) pick the
lowest-``seq`` head across the matching sub-queues, which preserves MPI's
non-overtaking rule between the indexed and wildcard paths: for a given
(source, context, tag) pair messages are matched in send order, and a
wildcard receive sees candidates in the same global arrival order the
old single-FIFO scan did.

Wakeups are targeted: an exact-match waiter sleeps on a per-key
condition that only deposits for that key notify; wildcard waiters share
one condition.  A deposit therefore never wakes receivers blocked on
unrelated (source, tag) pairs — the old single-condition ``notify_all``
thundering herd is gone.

A runtime-wide abort flag wakes every blocked receiver so one failing
rank cannot deadlock the world.

Chaos testing hooks into the deposit path: every endpoint carries an
optional :class:`FaultInjector` that can drop, delay, duplicate, or
truncate matching messages, and can *sever* a global rank entirely (all
its traffic silently vanishes, simulating a dead or partitioned
process).  Faults are deterministic — rules match by count, never by
random draw — so chaos tests are reproducible.
"""

from __future__ import annotations

import itertools
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from time import monotonic as _now
from typing import Any, Callable, Iterable

from repro.common.errors import MPIAbort, MPIError
from repro.common.logging import get_logger
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, Status
from repro.obs.tracer import TRACER as _T

_log = get_logger("mpi.transport")

_seq = itertools.count()


class Envelope:
    """One in-flight message."""

    __slots__ = (
        "context", "source", "tag", "payload", "nbytes", "seq", "delivered",
        "origin", "trace", "parent",
    )

    def __init__(
        self,
        context: int,
        source: int,
        tag: int,
        payload: Any,
        nbytes: int,
        origin: int = -1,
        trace: int = 0,
        parent: int = 0,
    ) -> None:
        self.context = context
        self.source = source
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.seq = next(_seq)
        #: global endpoint rank of the sender (-1 when unknown); ``source``
        #: is the communicator-local rank, this is the runtime-wide identity
        #: used by fault-injection rules and failure diagnostics
        self.origin = origin
        #: causal-tracing pair: flow id linking the sender-side span to
        #: the receiver-side span, and the emitting span's id.  Zero means
        #: untraced; the pair travels in the wire header on the process
        #: backend and on this object on the thread backend.
        self.trace = trace
        self.parent = parent
        #: set when a receiver consumes the message (for synchronous sends)
        self.delivered = threading.Event()

    def restamp(self) -> "Envelope":
        """Re-stamp ``seq`` from the local counter.

        Wire transports call this when an envelope materializes at its
        destination process: ``seq`` orders wildcard matching, and that
        order must reflect *arrival* order in the receiver's interpreter,
        not the send order of some other process's counter.
        """
        self.seq = next(_seq)
        return self

    def matches(self, context: int, source: int, tag: int) -> bool:
        return (
            self.context == context
            and (source == ANY_SOURCE or self.source == source)
            and (tag == ANY_TAG or self.tag == tag)
        )

    def status(self) -> Status:
        return Status(self.source, self.tag, self.nbytes)


class AbortFlag:
    """Runtime-wide abort latch shared by every endpoint."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str = ""
        self.errorcode: int = 0

    def is_set(self) -> bool:
        return self._event.is_set()

    def trip(self, reason: str, errorcode: int = 1) -> None:
        if not self._event.is_set():
            self.reason = reason
            self.errorcode = errorcode
            self._event.set()

    def check(self) -> None:
        if self._event.is_set():
            raise MPIAbort(self.errorcode, self.reason)


class TruncatedPayload:
    """Marker wrapping a payload mangled by a ``truncate`` fault.

    Receivers that unpack structured payloads should treat this as wire
    corruption and fail loudly instead of interpreting garbage.
    """

    __slots__ = ("original",)

    def __init__(self, original: Any) -> None:
        self.original = original

    def __repr__(self) -> str:
        return f"<TruncatedPayload of {type(self.original).__name__}>"


_FAULT_ACTIONS = ("drop", "delay", "duplicate", "truncate", "kill_rank")


@dataclass
class FaultRule:
    """One deterministic fault: a selector plus an action.

    Selector fields that are ``None`` match anything; ``origin``/``dest``
    are *global* endpoint ranks.  ``skip_first`` lets the first N matching
    messages through unharmed, and ``max_matches`` bounds how many
    messages the action is applied to — a rule with ``max_matches=2``
    models a transient fault that heals after two hits.

    ``kill_rank`` rules SIGKILL the OS process hosting ``target`` (or the
    matching envelope's origin rank when ``target`` is ``None``) — a real
    hard kill, not a cooperative sever, so recovery tests exercise the
    actual no-goodbye disconnect path.  Only the process backend can
    honor it (the runtime installs the kill hook); elsewhere it is a
    counted no-op.
    """

    action: str
    tag: int | None = None
    context: int | None = None
    origin: int | None = None
    dest: int | None = None
    #: extra predicate over the envelope (payload inspection etc.)
    match: Callable[[Envelope], bool] | None = None
    skip_first: int = 0
    max_matches: int | None = None
    delay_seconds: float = 0.0
    #: kill_rank only: global rank whose host process is SIGKILLed
    target: int | None = None
    #: messages that matched the selector / had the action applied
    hits: int = 0
    applied: int = 0

    def __post_init__(self) -> None:
        if self.action not in _FAULT_ACTIONS:
            raise MPIError(
                f"unknown fault action {self.action!r}; use one of {_FAULT_ACTIONS}"
            )
        if self.match is not None:
            # Rules must serialize cleanly so chaos configurations can cross
            # a process boundary (and so the process backend's router can
            # replay them); closures and lambdas capture interpreter state
            # that cannot, so reject them at construction time.
            closure = getattr(self.match, "__closure__", None)
            if closure or getattr(self.match, "__name__", "") == "<lambda>":
                raise MPIError(
                    "FaultRule.match must be a module-level function "
                    "(picklable); lambdas and closures are not allowed"
                )

    def selects(self, dest_rank: int, envelope: Envelope) -> bool:
        return (
            (self.tag is None or envelope.tag == self.tag)
            and (self.context is None or envelope.context == self.context)
            and (self.origin is None or envelope.origin == self.origin)
            and (self.dest is None or dest_rank == self.dest)
            and (self.match is None or self.match(envelope))
        )


class FaultInjector:
    """Deterministic transport chaos: drop/delay/duplicate/truncate/sever.

    Installed runtime-wide (``MPIRuntime(fault_injector=...)`` or
    ``mpidrun(..., fault_injector=...)``); every :meth:`Endpoint.deposit`
    consults it before enqueueing.  The first eligible rule wins.  Rule
    hit counters persist across job restarts, so a ``max_matches`` rule
    naturally models a transient fault the retry no longer sees.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.rules: list[FaultRule] = []
        self._severed: set[int] = set()
        self.counts: dict[str, int] = {a: 0 for a in _FAULT_ACTIONS}
        self.counts["sever"] = 0
        #: audit trail: (action, origin, dest, context, tag) per applied fault
        self.events: list[tuple[str, int, int, int, int]] = []
        #: kill hook installed by the process runtime: global rank -> bool
        #: (SIGKILLed the hosting process); per-interpreter, never pickled
        self.kill_callback: Callable[[int], bool] | None = None

    # -- serialization -------------------------------------------------------
    # Injectors must pickle cleanly (rules already enforce closure-free
    # ``match`` predicates) so a chaos configuration can be shipped to
    # another process; the lock is per-interpreter state and is recreated.
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        state["kill_callback"] = None
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.kill_callback = state.get("kill_callback")
        self._lock = threading.Lock()

    # -- configuration ------------------------------------------------------
    def add_rule(self, rule: FaultRule) -> FaultRule:
        with self._lock:
            self.rules.append(rule)
        return rule

    def drop(self, **selector: Any) -> FaultRule:
        return self.add_rule(FaultRule("drop", **selector))

    def delay(self, seconds: float, **selector: Any) -> FaultRule:
        return self.add_rule(FaultRule("delay", delay_seconds=seconds, **selector))

    def duplicate(self, **selector: Any) -> FaultRule:
        return self.add_rule(FaultRule("duplicate", **selector))

    def truncate(self, **selector: Any) -> FaultRule:
        return self.add_rule(FaultRule("truncate", **selector))

    def kill_rank(self, target: int | None = None, **selector: Any) -> FaultRule:
        """SIGKILL the process hosting ``target`` (default: the matching
        envelope's origin) when the selector fires.  Process backend only."""
        return self.add_rule(FaultRule("kill_rank", target=target, **selector))

    def sever(self, *ranks: int) -> None:
        """Cut global rank(s) off: all their traffic, both directions,
        silently disappears (a crashed or partitioned process)."""
        with self._lock:
            self._severed.update(ranks)

    def restore(self, *ranks: int) -> None:
        with self._lock:
            self._severed.difference_update(ranks)

    @property
    def severed(self) -> frozenset[int]:
        with self._lock:
            return frozenset(self._severed)

    # -- the hook -----------------------------------------------------------
    def apply(self, dest_rank: int, envelope: Envelope) -> list[Envelope]:
        """Called by the sender thread; returns the envelopes to deliver
        (empty = dropped).  May sleep for ``delay`` faults."""
        with self._lock:
            if envelope.origin in self._severed or dest_rank in self._severed:
                self.counts["sever"] += 1
                self._record("sever", dest_rank, envelope)
                return []
            rule = None
            for candidate in self.rules:
                if not candidate.selects(dest_rank, envelope):
                    continue
                candidate.hits += 1
                if candidate.hits <= candidate.skip_first:
                    continue
                if (
                    candidate.max_matches is not None
                    and candidate.applied >= candidate.max_matches
                ):
                    continue
                candidate.applied += 1
                rule = candidate
                break
            if rule is not None:
                self.counts[rule.action] += 1
                self._record(rule.action, dest_rank, envelope)
        if rule is None:
            return [envelope]
        if rule.action == "kill_rank":
            # the envelope itself is delivered untouched: the fault is the
            # SIGKILL, fired outside the lock (the hook may log/trace)
            victim = rule.target if rule.target is not None else envelope.origin
            if self.kill_callback is not None:
                self.kill_callback(victim)
            else:
                _log.warning(
                    "kill_rank rule fired for rank %d but no kill hook is "
                    "installed (thread backend?); envelope delivered", victim,
                )
            return [envelope]
        if rule.action == "drop":
            return []
        if rule.action == "delay":
            # sleeping in the depositing thread preserves per-channel FIFO
            # order: delivery is slowed, never reordered
            time.sleep(rule.delay_seconds)
            return [envelope]
        if rule.action == "duplicate":
            copy = Envelope(
                envelope.context,
                envelope.source,
                envelope.tag,
                envelope.payload,
                envelope.nbytes,
                origin=envelope.origin,
            )
            return [envelope, copy]
        # truncate: mangle the payload in place so receivers see corruption
        envelope.payload = TruncatedPayload(envelope.payload)
        envelope.nbytes = max(0, envelope.nbytes // 2)
        return [envelope]

    def _record(self, action: str, dest_rank: int, envelope: Envelope) -> None:
        self.events.append(
            (action, envelope.origin, dest_rank, envelope.context, envelope.tag)
        )
        # chaos firings land on the same timeline as the failures they cause
        if _T.enabled:
            _T.instant(
                f"fault.{action}", cat="fault",
                args={
                    "origin": envelope.origin, "dest": dest_rank,
                    "context": envelope.context, "tag": envelope.tag,
                },
            )


class Endpoint:
    """Mailbox of one global rank.

    All state is guarded by one lock; the sub-queue index maps each
    ``(context, source, tag)`` key to a FIFO deque of envelopes (removed
    from the index when drained, so wildcard scans only visit keys with
    pending traffic).
    """

    #: Condition-wait slice; short enough to notice aborts promptly without
    #: a hot loop (aborts also notify the conditions directly).
    WAIT_SLICE = 0.1

    def __init__(
        self,
        rank: int,
        abort: AbortFlag,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        self.rank = rank
        self.abort = abort
        self.fault_injector = fault_injector
        self._lock = threading.Lock()
        #: exact-match sub-queues: (context, source, tag) -> FIFO of envelopes
        self._queues: dict[tuple[int, int, int], deque[Envelope]] = {}
        #: per-key conditions for blocked exact-match waiters;
        #: value is [condition, waiter_refcount] so idle keys are pruned
        self._key_waiters: dict[tuple[int, int, int], list] = {}
        #: shared condition for wildcard (ANY_SOURCE/ANY_TAG) waiters
        self._wild_cond = threading.Condition(self._lock)
        self._num_wild_waiters = 0
        # monotonically increasing count of messages ever enqueued; lets
        # waiters detect arrivals without re-scanning spuriously
        self._arrivals = 0
        #: currently queued envelopes (O(1) alternative to pending_count)
        self._pending = 0
        #: cumulative payload bytes deposited into this mailbox
        self._bytes_in = 0

    # -- sender side --------------------------------------------------------
    def deposit(self, envelope: Envelope) -> None:
        """Called by the *sender's* thread to deliver a message."""
        if self.fault_injector is not None:
            envelopes = self.fault_injector.apply(self.rank, envelope)
            if not envelopes:
                return
        else:
            envelopes = (envelope,)
        with self._lock:
            for envelope in envelopes:
                key = (envelope.context, envelope.source, envelope.tag)
                q = self._queues.get(key)
                if q is None:
                    self._queues[key] = q = deque()
                q.append(envelope)
                self._arrivals += 1
                self._pending += 1
                self._bytes_in += envelope.nbytes
                entry = self._key_waiters.get(key)
                if entry is not None:
                    entry[0].notify_all()
                if self._num_wild_waiters:
                    self._wild_cond.notify_all()
            if _T.enabled:
                _T.counter(f"transport.r{self.rank}.pending", self._pending)
                _T.counter(f"transport.r{self.rank}.bytes", self._bytes_in)

    def wake(self) -> None:
        """Wake every blocked receiver (used on abort)."""
        with self._lock:
            for entry in self._key_waiters.values():
                entry[0].notify_all()
            self._wild_cond.notify_all()

    # -- matching (all called with the lock held) ----------------------------
    def _match(
        self, context: int, source: int, tag: int, pop: bool
    ) -> Envelope | None:
        """Find (and optionally remove) the first matching envelope."""
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (context, source, tag)
            q = self._queues.get(key)
            if not q:
                return None
            if not pop:
                return q[0]
            envelope = q.popleft()
            self._pending -= 1
            if not q:
                del self._queues[key]
            return envelope
        # wildcard path: the earliest matching message is the lowest-seq
        # head among matching sub-queues (each sub-queue is seq-ordered)
        best_q: deque[Envelope] | None = None
        best: Envelope | None = None
        best_key = None
        for key, q in self._queues.items():
            if key[0] != context:
                continue
            if source != ANY_SOURCE and key[1] != source:
                continue
            if tag != ANY_TAG and key[2] != tag:
                continue
            head = q[0]
            if best is None or head.seq < best.seq:
                best, best_q, best_key = head, q, key
        if best is None or not pop:
            return best
        assert best_q is not None
        best_q.popleft()
        self._pending -= 1
        if not best_q:
            del self._queues[best_key]
        return best

    def _find(self, context: int, source: int, tag: int) -> Envelope | None:
        """Peek at the first matching envelope (kept for introspection)."""
        return self._match(context, source, tag, pop=False)

    # -- waiter bookkeeping (lock held) ---------------------------------------
    def _waiter_for(self, context: int, source: int, tag: int):
        """The condition a blocked receive/probe should sleep on."""
        if source == ANY_SOURCE or tag == ANY_TAG:
            self._num_wild_waiters += 1
            return self._wild_cond, None
        key = (context, source, tag)
        entry = self._key_waiters.get(key)
        if entry is None:
            self._key_waiters[key] = entry = [threading.Condition(self._lock), 0]
        entry[1] += 1
        return entry[0], key

    def _release_waiter(self, key) -> None:
        if key is None:
            self._num_wild_waiters -= 1
            return
        entry = self._key_waiters[key]
        entry[1] -= 1
        if entry[1] == 0:
            del self._key_waiters[key]

    # -- receiver side -------------------------------------------------------
    def receive(
        self,
        context: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        cancelled: Callable[[], bool] | None = None,
    ) -> Envelope:
        """Block until a matching message arrives, remove and return it.

        ``timeout`` raises :class:`TimeoutError`; ``cancelled`` is polled so
        higher layers (request cancellation) can back out.
        """
        deadline = None if timeout is None else _now() + timeout
        with self._lock:
            self.abort.check()
            envelope = self._match(context, source, tag, pop=True)
            if envelope is not None:
                envelope.delivered.set()
                return envelope
            trace_t0 = _T.clock() if _T.enabled else 0.0
            cond, key = self._waiter_for(context, source, tag)
            try:
                while True:
                    self.abort.check()
                    if cancelled is not None and cancelled():
                        raise _Cancelled()
                    envelope = self._match(context, source, tag, pop=True)
                    if envelope is not None:
                        envelope.delivered.set()
                        if _T.enabled:
                            _T.complete(
                                "transport.recv.wait", trace_t0,
                                _T.clock() - trace_t0, cat="transport",
                                args={"source": source, "tag": tag},
                            )
                        return envelope
                    wait = Endpoint.WAIT_SLICE
                    if deadline is not None:
                        remaining = deadline - _now()
                        if remaining <= 0:
                            raise TimeoutError(
                                f"recv(context={context}, source={source}, "
                                f"tag={tag}) timed out on rank {self.rank}"
                            )
                        wait = min(wait, remaining)
                    cond.wait(wait)
            finally:
                self._release_waiter(key)

    def try_receive(
        self, context: int, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Envelope | None:
        """Non-blocking matched receive (returns None when nothing matches)."""
        with self._lock:
            self.abort.check()
            envelope = self._match(context, source, tag, pop=True)
            if envelope is not None:
                envelope.delivered.set()
            return envelope

    def probe(
        self,
        context: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        block: bool = True,
    ) -> Status | None:
        """Peek for a matching message without consuming it."""
        with self._lock:
            self.abort.check()
            envelope = self._match(context, source, tag, pop=False)
            if envelope is not None:
                return envelope.status()
            if not block:
                return None
            cond, key = self._waiter_for(context, source, tag)
            try:
                while True:
                    self.abort.check()
                    envelope = self._match(context, source, tag, pop=False)
                    if envelope is not None:
                        return envelope.status()
                    cond.wait(Endpoint.WAIT_SLICE)
            finally:
                self._release_waiter(key)

    def pending_count(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"pending": self._pending, "bytes_in": self._bytes_in}


class _Cancelled(Exception):
    """Internal: a cancelled request backed out of a blocking receive."""


class Transport(ABC):
    """How envelopes move between global ranks.

    A runtime owns exactly one transport.  Communicators deposit through
    :meth:`deposit` and receive from the mailbox :meth:`mailbox` returns;
    they never reach into a peer's endpoint directly, which is what makes
    the rank substrate (threads vs. processes) swappable underneath them.
    """

    abort_flag: AbortFlag
    fault_injector: FaultInjector | None

    @abstractmethod
    def register(self, gid: int) -> Endpoint:
        """Create (or return) the mailbox for a rank hosted *here*."""

    @abstractmethod
    def deposit(self, dest: int, envelope: Envelope) -> None:
        """Deliver ``envelope`` to global rank ``dest``, wherever it runs."""

    @abstractmethod
    def mailbox(self, gid: int) -> Endpoint:
        """The local mailbox of global rank ``gid`` (receive side)."""

    @abstractmethod
    def local_endpoints(self) -> Iterable[Endpoint]:
        """Every mailbox hosted in this interpreter."""

    def wake_all(self) -> None:
        """Wake every blocked receiver everywhere (abort propagation)."""
        for endpoint in self.local_endpoints():
            endpoint.wake()

    def stats(self) -> dict[int, dict[str, int]]:
        """Per-rank mailbox statistics for the ranks hosted here."""
        return {ep.rank: ep.stats() for ep in self.local_endpoints()}

    def shutdown(self) -> None:
        """Release transport resources (sockets, worker links...)."""


class LocalTransport(Transport):
    """The in-process implementation: every rank's mailbox lives here.

    A deposit is a direct call into the destination endpoint — zero
    copies, no serialization.  Fault injection stays where it always was,
    inside :meth:`Endpoint.deposit` on the sender's thread.
    """

    def __init__(
        self,
        abort_flag: AbortFlag,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        self.abort_flag = abort_flag
        self.fault_injector = fault_injector
        self._lock = threading.Lock()
        self._endpoints: dict[int, Endpoint] = {}

    def register(self, gid: int) -> Endpoint:
        with self._lock:
            endpoint = self._endpoints.get(gid)
            if endpoint is None:
                endpoint = Endpoint(gid, self.abort_flag, self.fault_injector)
                self._endpoints[gid] = endpoint
            return endpoint

    def deposit(self, dest: int, envelope: Envelope) -> None:
        self.mailbox(dest).deposit(envelope)

    def mailbox(self, gid: int) -> Endpoint:
        try:
            return self._endpoints[gid]
        except KeyError:
            raise MPIError(f"no endpoint for global rank {gid}") from None

    def local_endpoints(self) -> Iterable[Endpoint]:
        with self._lock:
            return list(self._endpoints.values())
