"""A from-scratch MPI implementation with pluggable rank backends.

The paper layers DataMPI over a native MPI library (MVAPICH2).  Offline we
have no MPI, so this package implements the MPI subset DataMPI needs, with
mpi4py-compatible naming where practical:

* ranks are launched by a runtime (the ``mpiexec`` analogue) over a
  pluggable :class:`~repro.mpi.transport.Transport`:
  :class:`~repro.mpi.runtime.ThreadRuntime` (the historical
  ``MPIRuntime``) runs thread-per-rank over the zero-copy
  :class:`~repro.mpi.transport.LocalTransport`, while
  :class:`~repro.mpi.runtime.ProcessRuntime` runs spawned worlds as one
  OS process per rank over a socket router
  (:mod:`repro.mpi.socket_transport`) — pick one with
  :func:`~repro.mpi.runtime.create_runtime`
  (``mpi.d.launcher=threads|processes``);
* point-to-point ``send/recv/isend/irecv/probe`` with ``(source, tag,
  communicator)`` matching, ``ANY_SOURCE``/``ANY_TAG`` wildcards and the
  MPI non-overtaking guarantee;
* collectives (barrier, bcast, gather(+v), scatter, allgather, reduce,
  allreduce, alltoall(+v), scan) built over p2p on a reserved context;
* ``Comm.split``/``Comm.dup`` and intercommunicators;
* dynamic process management (``spawn``) used by ``mpidrun`` to launch
  working processes connected to their parent by an intercommunicator
  (paper §IV-B).

Failure of any rank aborts the whole runtime, waking blocked peers with
:class:`~repro.common.errors.MPIAbort` — mirroring a real MPI job kill.
"""

from repro.common.errors import MPIAbort, MPIError
from repro.mpi.comm import Intracomm
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, MAX, MIN, PROD, SUM, Op, Status
from repro.mpi.intercomm import Intercomm
from repro.mpi.request import Request
from repro.mpi.runtime import (
    BaseRuntime,
    MPIRuntime,
    ProcessRuntime,
    ThreadRuntime,
    create_runtime,
    run_world,
)
from repro.mpi.transport import (
    FaultInjector,
    FaultRule,
    LocalTransport,
    Transport,
    TruncatedPayload,
)

__all__ = [
    "BaseRuntime",
    "MPIRuntime",
    "ThreadRuntime",
    "ProcessRuntime",
    "create_runtime",
    "Transport",
    "LocalTransport",
    "run_world",
    "FaultInjector",
    "FaultRule",
    "TruncatedPayload",
    "Intracomm",
    "Intercomm",
    "Request",
    "Status",
    "Op",
    "SUM",
    "MIN",
    "MAX",
    "PROD",
    "ANY_SOURCE",
    "ANY_TAG",
    "MPIError",
    "MPIAbort",
]
