"""Intercommunicators: two disjoint groups exchanging messages.

DataMPI's ``mpidrun`` talks to its working processes over an
intercommunicator (paper §IV-B, Figure 4): the driver is one group, the
workers the other, and the channel carries control-protocol RPC.

The intercomm shares one message context between the two sides — legal
because intercommunicator traffic is always cross-group, so a message's
source rank is unambiguous.  A merge context is reserved at creation so
``merge()`` needs no extra negotiation round.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.common.records import _size_of
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, Status
from repro.mpi.request import RecvRequest, Request
from repro.mpi.transport import Envelope

if TYPE_CHECKING:
    from repro.mpi.comm import Intracomm
    from repro.mpi.runtime import MPIRuntime


class Intercomm:
    """One side of an intercommunicator.

    ``side`` 0 is the spawning/parent group, 1 the spawned/child group;
    it selects the merge ordering (parent ranks first, like
    ``MPI_Intercomm_merge`` with ``high`` on the children).
    """

    def __init__(
        self,
        runtime: "MPIRuntime",
        context: int,
        local_group: tuple[int, ...],
        remote_group: tuple[int, ...],
        rank: int,
        side: int,
        name: str = "intercomm",
    ) -> None:
        self.runtime = runtime
        self.context = context
        self.local_group = local_group
        self.remote_group = remote_group
        self._rank = rank
        self.side = side
        self.name = name

    # -- introspection ------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self.local_group)

    @property
    def remote_size(self) -> int:
        return len(self.remote_group)

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py-compatible
        return self._rank

    def Get_size(self) -> int:  # noqa: N802
        return self.size

    def Get_remote_size(self) -> int:  # noqa: N802
        return self.remote_size

    def __repr__(self) -> str:
        return (
            f"<Intercomm {self.name} side={self.side} rank={self._rank}"
            f" local={self.size} remote={self.remote_size}>"
        )

    def _my_endpoint(self):
        return self.runtime.mailbox(self.local_group[self._rank])

    # -- point-to-point (dest/source are REMOTE ranks) ------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        envelope = Envelope(
            self.context, self._rank, tag, obj, _size_of(obj),
            origin=self.local_group[self._rank],
        )
        self.runtime.deposit(self.remote_group[dest], envelope)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request()

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
        timeout: float | None = None,
    ) -> Any:
        envelope = self._my_endpoint().receive(
            self.context, source, tag, timeout=timeout
        )
        if status is not None:
            st = envelope.status()
            status.source, status.tag, status.count = st.source, st.tag, st.count
        return envelope.payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        return RecvRequest(self._my_endpoint(), self.context, source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        return self._my_endpoint().probe(self.context, source, tag, block=False)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        status = self._my_endpoint().probe(self.context, source, tag, block=True)
        assert status is not None
        return status

    # -- merge ----------------------------------------------------------------
    def merge(self) -> "Intracomm":
        """Merge both groups into one intracommunicator.

        Parent-side (side 0) ranks come first.  The merged contexts were
        reserved when the intercomm was created, so no negotiation is
        needed — every rank computes the same result locally.
        """
        from repro.mpi.comm import Intracomm

        if self.side == 0:
            group = self.local_group + self.remote_group
            rank = self._rank
        else:
            group = self.remote_group + self.local_group
            rank = len(self.remote_group) + self._rank
        return Intracomm(
            self.runtime,
            self.context + 2,
            group,
            rank,
            name=f"{self.name}.merged",
        )
