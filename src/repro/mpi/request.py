"""Non-blocking communication requests.

``isend`` completes immediately under the eager protocol (the payload is
already in the destination mailbox); ``issend`` completes when the
receiver consumes it; ``irecv`` completes when a matching message is
matched.  ``irecv`` is serviced lazily: ``wait``/``test`` perform the
actual matching on the caller's thread, so no progress thread is needed.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Sequence

from repro.mpi.datatypes import Status
from repro.mpi.transport import Endpoint, Envelope


class Request:
    """Base request; already complete (used for eager isend)."""

    def __init__(self, status: Status | None = None) -> None:
        self._status = status or Status()

    def test(self) -> tuple[bool, Any]:
        """(done, payload) without blocking."""
        return True, None

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete, return the received payload (None for sends)."""
        done, payload = self.test()
        assert done
        return payload

    def cancel(self) -> None:
        """Cancel if possible (no-op once complete)."""

    @property
    def status(self) -> Status:
        return self._status


class SendRequest(Request):
    """Synchronous-mode send request: completes when the envelope is consumed."""

    def __init__(self, envelope: Envelope) -> None:
        super().__init__(Status(envelope.source, envelope.tag, envelope.nbytes))
        self._envelope = envelope

    def test(self) -> tuple[bool, Any]:
        return self._envelope.delivered.is_set(), None

    def wait(self, timeout: float | None = None) -> Any:
        if not self._envelope.delivered.wait(timeout):
            raise TimeoutError("issend did not complete in time")
        return None


class RecvRequest(Request):
    """Pending receive, completed lazily by ``wait``/``test``.

    A lock serialises completion so waitall from one thread and test from
    another cannot double-match.
    """

    def __init__(
        self, endpoint: Endpoint, context: int, source: int, tag: int
    ) -> None:
        super().__init__()
        self._endpoint = endpoint
        self._context = context
        self._source = source
        self._tag = tag
        self._lock = threading.Lock()
        self._done = False
        self._payload: Any = None
        self._cancelled = False

    def _complete(self, envelope: Envelope) -> None:
        self._payload = envelope.payload
        self._status = envelope.status()
        self._done = True

    def test(self) -> tuple[bool, Any]:
        with self._lock:
            if self._done:
                return True, self._payload
            if self._cancelled:
                return True, None
            envelope = self._endpoint.try_receive(
                self._context, self._source, self._tag
            )
            if envelope is None:
                return False, None
            self._complete(envelope)
            return True, self._payload

    def wait(self, timeout: float | None = None) -> Any:
        with self._lock:
            if self._done:
                return self._payload
            if self._cancelled:
                return None
            envelope = self._endpoint.receive(
                self._context, self._source, self._tag, timeout=timeout
            )
            self._complete(envelope)
            return self._payload

    def cancel(self) -> None:
        with self._lock:
            if not self._done:
                self._cancelled = True


def waitall(requests: Sequence[Request]) -> list[Any]:
    """Wait for every request; returns payloads in request order."""
    return [req.wait() for req in requests]


def testall(requests: Sequence[Request]) -> tuple[bool, list[Any] | None]:
    """All-done test; payloads only when everything completed."""
    results = []
    for req in requests:
        done, payload = req.test()
        if not done:
            return False, None
        results.append(payload)
    return True, results


def waitany(requests: Sequence[Request]) -> tuple[int, Any]:
    """Poll until some request completes; returns (index, payload).

    MPI's waitany blocks in the library; here we poll with a short sleep,
    which is adequate for the coarse-grained messages DataMPI exchanges.
    """
    poll: Callable[[], tuple[int, Any] | None] = lambda: next(
        (
            (idx, payload)
            for idx, req in enumerate(requests)
            for done, payload in [req.test()]
            if done
        ),
        None,
    )
    while True:
        hit = poll()
        if hit is not None:
            return hit
        time.sleep(0.001)
