"""MPI runtimes: rank launchers over a pluggable transport.

Two rank substrates implement the same contract:

* :class:`ThreadRuntime` (the historical ``MPIRuntime``) plays
  ``mpiexec`` inside one interpreter: one endpoint and one thread per
  rank, messages move through :class:`~repro.mpi.transport.LocalTransport`
  with zero copies.
* :class:`ProcessRuntime` runs *spawned* worlds as one OS process per
  rank (paper §IV-B: mpidrun launches real working processes), connected
  to a driver-side router over local sockets
  (:mod:`repro.mpi.socket_transport`).  The initial world — mpidrun's
  single driver rank — still runs in-process; ``Intracomm.spawn`` is
  what crosses the process boundary.

Pick one with :func:`create_runtime` (``mpi.d.launcher=threads|processes``).

Failure semantics match a batch MPI job on both backends: the first rank
to raise trips a runtime-wide abort, every peer blocked in an MPI call
raises :class:`~repro.common.errors.MPIAbort`, and :meth:`BaseRuntime.run`
re-raises the original error.  Every detected failure — a rank thread
dying, a worker process exiting without a goodbye, an explicit abort, a
rank outliving the runtime timeout — is captured as a structured
:class:`~repro.common.errors.FailureRecord` in
:attr:`BaseRuntime.failure_records` so supervisors can report a precise
cause instead of a bare timeout.
"""

from __future__ import annotations

import threading
import time
import traceback as traceback_mod
from typing import Any, Callable, Sequence

from repro.common.errors import FailureRecord, MPIAbort, MPIError
from repro.mpi.comm import Intracomm
from repro.mpi.intercomm import Intercomm
from repro.mpi.transport import (
    AbortFlag,
    Endpoint,
    Envelope,
    FaultInjector,
    LocalTransport,
    Transport,
)

#: contexts are allocated in blocks of 4:
#: +0 p2p, +1 collective, +2 merged-p2p, +3 merged-collective
_CONTEXT_STRIDE = 4


class _RankThread(threading.Thread):
    """One MPI rank."""

    def __init__(
        self,
        runtime: "BaseRuntime",
        comm: Intracomm,
        fn: Callable[..., Any],
        args: tuple,
        name: str,
    ) -> None:
        super().__init__(name=name, daemon=True)
        self.runtime = runtime
        self.comm = comm
        self.fn = fn
        self.args = args
        self.result: Any = None

    def run(self) -> None:
        try:
            self.result = self.fn(self.comm, *self.args)
        except MPIAbort:
            # a peer failed first; stay quiet, the original error is recorded
            pass
        except BaseException as exc:  # noqa: BLE001 - must catch to abort peers
            self.runtime.record_error(self.comm, exc)


class BaseRuntime:
    """Rank registry, context allocation, abort + failure bookkeeping.

    Subclasses choose the transport (:meth:`_make_transport`) and how
    spawned worlds execute (:meth:`launch_children`)."""

    #: the ``mpi.d.launcher`` value this runtime answers to
    launcher = "abstract"

    def __init__(self, fault_injector: FaultInjector | None = None) -> None:
        self._lock = threading.Lock()
        self._next_global = 0
        self._next_context = 0
        self._threads: list[_RankThread] = []
        self._errors: list[BaseException] = []
        self._failure_records: list[FailureRecord] = []
        self.fault_injector = fault_injector
        self.abort_flag = AbortFlag()
        #: live TelemetryHub bound by mpidrun's telemetry session (None =
        #: telemetry off); the router and the engine ship snapshots here
        self.telemetry_hub = None
        self._transport = self._make_transport()

    def _make_transport(self) -> Transport:
        raise NotImplementedError

    @property
    def transport(self) -> Transport:
        return self._transport

    # -- diagnostics ----------------------------------------------------------
    def request_stack_dump(self) -> list[dict]:
        """Snapshot the live stacks + queue stats of every rank hosted in
        *this* process (on the thread backend: all of them).  Subclasses
        with remote ranks additionally broadcast a DUMP_REQ; those
        replies arrive asynchronously in the telemetry hub."""
        from repro.obs.profiler import PROFILER

        return PROFILER.dump_stacks()

    # -- registry -------------------------------------------------------------
    def mailbox(self, global_rank: int) -> Endpoint:
        """The local mailbox of ``global_rank`` (receive side)."""
        return self._transport.mailbox(global_rank)

    #: historical name; receives and tests go through ``endpoint`` too
    endpoint = mailbox

    def deposit(self, dest: int, envelope: Envelope) -> None:
        """Deliver ``envelope`` to global rank ``dest`` via the transport."""
        self._transport.deposit(dest, envelope)

    def allocate_context(self) -> int:
        """A fresh context block (thread-safe, globally unique)."""
        with self._lock:
            context = self._next_context
            self._next_context += _CONTEXT_STRIDE
            return context

    def _allocate_ranks(self, n: int, register: bool = True) -> tuple[int, ...]:
        with self._lock:
            start = self._next_global
            self._next_global += n
            ids = tuple(range(start, start + n))
        if register:
            for gid in ids:
                self._transport.register(gid)
        return ids

    # -- error handling ----------------------------------------------------------
    def record_error(self, comm: Intracomm, exc: BaseException) -> None:
        """A rank thread died on ``exc``: capture a structured failure
        record (or adopt the records the exception already carries) and
        abort the world with it."""
        carried = getattr(exc, "failures", None)
        if carried:
            records = list(carried)
        else:
            records = [
                FailureRecord(
                    kind="rank",
                    worker=comm.rank,
                    where=comm.name,
                    error=repr(exc),
                    traceback=traceback_mod.format_exc(),
                )
            ]
        with self._lock:
            self._errors.append(exc)
            self._failure_records.extend(records)
        self.abort(f"rank {comm.rank} of {comm.name}: {exc!r}", record=False)

    def record_failure(self, record: FailureRecord) -> None:
        with self._lock:
            self._failure_records.append(record)

    def record_remote_error(
        self, exc: BaseException | None, reason: str
    ) -> None:
        """A rank in another process died; its records are already
        captured.  Adopt the original exception when it survived the wire
        so :meth:`run` re-raises it exactly like a thread-backend failure."""
        if exc is not None:
            with self._lock:
                self._errors.append(exc)
        self.abort(reason, record=False)

    def abort(self, reason: str, errorcode: int = 1, record: bool = True) -> None:
        if record and not self.abort_flag.is_set():
            self.record_failure(FailureRecord(kind="abort", error=reason))
        self.abort_flag.trip(reason, errorcode)
        self._transport.wake_all()

    @property
    def errors(self) -> list[BaseException]:
        return list(self._errors)

    @property
    def failure_records(self) -> list[FailureRecord]:
        with self._lock:
            return list(self._failure_records)

    # -- launching ------------------------------------------------------------
    def _start_world(
        self,
        fn: Callable[..., Any],
        nprocs: int,
        args: tuple,
        name: str,
        parent: tuple[tuple[int, ...], int] | None = None,
    ) -> tuple[tuple[int, ...], int | None, list[_RankThread]]:
        """Create endpoints + threads for an in-process world; returns
        (group, inter_context, threads).  ``parent`` is (parent_group,
        inter_context) when this world is spawned."""
        group = self._allocate_ranks(nprocs)
        world_context = self.allocate_context()
        inter_context = None
        threads = []
        for rank in range(nprocs):
            comm = Intracomm(self, world_context, group, rank, name=name)
            if parent is not None:
                parent_group, inter_context = parent
                comm.parent = Intercomm(
                    self,
                    inter_context,
                    local_group=group,
                    remote_group=parent_group,
                    rank=rank,
                    side=1,
                    name=f"{name}.parent",
                )
            thread = _RankThread(self, comm, fn, args, f"{name}[{rank}]")
            threads.append(thread)
        with self._lock:
            self._threads.extend(threads)
        for thread in threads:
            thread.start()
        return group, inter_context, threads

    def launch_children(
        self,
        fn: Callable[..., Any],
        nprocs: int,
        args: tuple,
        parent_group: tuple[int, ...],
        name: str,
    ) -> tuple[tuple[int, ...], int]:
        """Spawn a child world (used by ``Intracomm.spawn``)."""
        inter_context = self.allocate_context()
        group, _, _ = self._start_world(
            fn, nprocs, args, name, parent=(parent_group, inter_context)
        )
        return group, inter_context

    def _finish_join(self, deadline: float | None, timeout: float | None) -> None:
        """Hook: wait for any non-thread rank carriers (worker processes)."""

    def run(
        self,
        fn: Callable[..., Any],
        nprocs: int,
        args: tuple = (),
        timeout: float | None = 300.0,
        name: str = "world",
    ) -> list[Any]:
        """Run ``fn(comm, *args)`` on ``nprocs`` ranks; return results in
        rank order.  Waits for spawned child worlds too."""
        _, _, world_threads = self._start_world(fn, nprocs, args, name)
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            # join until the thread set is stable (spawn may add threads
            # while we wait)
            joined: set[_RankThread] = set()
            while True:
                with self._lock:
                    pending = [t for t in self._threads if t not in joined]
                if not pending:
                    break
                for thread in pending:
                    remaining = None
                    if deadline is not None:
                        remaining = max(0.0, deadline - time.monotonic())
                    thread.join(remaining)
                    if thread.is_alive():
                        self.record_failure(
                            FailureRecord(
                                kind="timeout",
                                where=thread.name,
                                error=(
                                    f"rank thread {thread.name} still running "
                                    f"after the {timeout}s runtime timeout"
                                ),
                            )
                        )
                        self.abort(
                            f"runtime timeout: {thread.name} still running",
                            errorcode=2,
                            record=False,
                        )
                        thread.join(5.0)
                        if thread.is_alive():
                            raise MPIError(
                                f"rank thread {thread.name} hung past abort"
                            )
                    joined.add(thread)
            self._finish_join(deadline, timeout)
        finally:
            self._transport.shutdown()
        if self._errors:
            raise self._errors[0]
        if self.abort_flag.is_set():
            raise MPIAbort(self.abort_flag.errorcode, self.abort_flag.reason)
        return [t.result for t in world_threads]


class ThreadRuntime(BaseRuntime):
    """Thread-per-rank over the zero-copy in-process transport."""

    launcher = "threads"

    def _make_transport(self) -> Transport:
        return LocalTransport(self.abort_flag, self.fault_injector)


#: historical name — the thread backend was the only runtime before the
#: transport split, and most callers/tests construct it under this name
MPIRuntime = ThreadRuntime


class ProcessRuntime(BaseRuntime):
    """Process-per-rank: spawned worlds fork one OS process per rank.

    The initial world (mpidrun's driver rank) runs in-process and doubles
    as the message router; ``Intracomm.spawn`` forks worker processes
    that connect back over a local socket
    (:class:`repro.mpi.socket_transport.RouterTransport`).  With the
    default ``fork`` start method, job closures (o_fn/a_fn, partitioners)
    are inherited by the children and never pickled; only envelopes
    crossing the wire are.
    """

    launcher = "processes"

    def __init__(
        self,
        fault_injector: FaultInjector | None = None,
        start_method: str = "fork",
        trace_shard_prefix: str | None = None,
    ) -> None:
        self._procs: list[tuple[Any, Any]] = []  # (Process, _WorkerSpec)
        self.start_method = start_method
        #: set by mpidrun when tracing: workers write journal shards here
        self.trace_shard_prefix = trace_shard_prefix
        #: surgical rank recovery (off until ``enable_rank_recovery``)
        self.rank_recovery_enabled = False
        self.respawns = 0
        self._respawn_queue: list[int] = []
        super().__init__(fault_injector)
        if fault_injector is not None:
            # let kill_rank rules SIGKILL the victim's worker process
            fault_injector.kill_callback = self._kill_rank_process

    def _make_transport(self) -> Transport:
        from repro.mpi.socket_transport import RouterTransport

        return RouterTransport(self)

    def request_stack_dump(self) -> list[dict]:
        """Local dumps (the driver hosts no engine ranks) plus a DUMP_REQ
        broadcast; worker replies land in the telemetry hub shortly."""
        local = super().request_stack_dump()
        self._transport.request_stack_dump()
        return local

    # -- surgical rank recovery ----------------------------------------------
    def enable_rank_recovery(
        self, max_respawns: int, redelivery_bytes: int
    ) -> None:
        """Arm rank-level recovery: a worker-process death respawns only
        that rank (up to ``max_respawns`` times per rank) instead of
        aborting the world."""
        self.rank_recovery_enabled = max_respawns > 0
        self._transport.configure_recovery(max_respawns, redelivery_bytes)

    def request_rank_respawn(self, gids: Sequence[int]) -> None:
        """Router callback (reader thread): queue dead ranks for the
        driver loop to respawn."""
        with self._lock:
            for gid in gids:
                if gid not in self._respawn_queue:
                    self._respawn_queue.append(gid)

    def pending_respawns(self) -> list[int]:
        """Drain the queue of ranks awaiting a respawn (driver loop)."""
        with self._lock:
            pending, self._respawn_queue = self._respawn_queue, []
            return pending

    def respawn_rank(self, gid: int) -> int | None:
        """Fork a replacement process for ``gid``; returns the new epoch,
        or ``None`` when the rank is not surgically recoverable (the
        caller degrades to the whole-job restart path)."""
        import dataclasses
        import multiprocessing
        import os
        import signal

        from repro.mpi.socket_transport import _worker_process_main

        transport = self._transport
        if not transport.recovery_eligible(gid):
            return None
        spec = None
        with self._lock:
            for _, candidate in reversed(self._procs):
                if candidate.gid == gid:
                    spec = candidate
                    break
        if spec is None:
            return None
        epoch, old_pid = transport.begin_respawn(gid)
        if old_pid is not None and old_pid != os.getpid():
            # make sure the old incarnation is dead before its successor
            # speaks — its future frames are fenced by epoch regardless
            try:
                os.kill(old_pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        new_spec = dataclasses.replace(
            spec,
            epoch=epoch,
            name=f"{spec.world_name}[{spec.rank}]e{epoch}",
            trace_shard=(
                f"{self.trace_shard_prefix}.shard-g{gid}e{epoch}.jsonl"
                if self.trace_shard_prefix
                else None
            ),
            profile_shard=(
                f"{self.trace_shard_prefix}.prof-g{gid}e{epoch}.jsonl"
                if self.trace_shard_prefix
                else None
            ),
        )
        ctx = multiprocessing.get_context(self.start_method)
        proc = ctx.Process(
            target=_worker_process_main,
            args=(new_spec,),
            name=new_spec.name,
            daemon=True,
        )
        with self._lock:
            self._procs.append((proc, new_spec))
        proc.start()
        self.respawns += 1
        return epoch

    def _kill_rank_process(self, gid: int) -> bool:
        """FaultInjector ``kill_rank`` hook: SIGKILL the process hosting
        global rank ``gid`` (a real, uncooperative death)."""
        import os
        import signal

        pid = self._transport.pid_of(gid)
        if pid is None or pid == os.getpid():
            return False
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return False
        return True

    def launch_children(
        self,
        fn: Callable[..., Any],
        nprocs: int,
        args: tuple,
        parent_group: tuple[int, ...],
        name: str,
    ) -> tuple[tuple[int, ...], int]:
        from repro.mpi import socket_transport

        inter_context = self.allocate_context()
        world_context = self.allocate_context()
        group = self._allocate_ranks(nprocs, register=False)
        self._transport.expect(group)
        launched = socket_transport.launch_worker_processes(
            self,
            fn=fn,
            args=tuple(args),
            group=group,
            world_context=world_context,
            parent_group=tuple(parent_group),
            inter_context=inter_context,
            name=name,
        )
        with self._lock:
            self._procs.extend(launched)
        return group, inter_context

    def _finish_join(self, deadline: float | None, timeout: float | None) -> None:
        """Join worker processes; a straggler past the deadline is a
        structured timeout failure, then terminated."""
        joined: set[int] = set()
        while True:
            with self._lock:
                pending = [
                    (proc, spec)
                    for proc, spec in self._procs
                    if id(proc) not in joined
                ]
            if not pending:
                return
            for proc, spec in pending:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                proc.join(remaining)
                if proc.is_alive():
                    self.record_failure(
                        FailureRecord(
                            kind="timeout",
                            worker=spec.rank,
                            where=spec.name,
                            error=(
                                f"worker process {spec.name} still running "
                                f"after the {timeout}s runtime timeout"
                            ),
                        )
                    )
                    self.abort(
                        f"runtime timeout: {spec.name} still running",
                        errorcode=2,
                        record=False,
                    )
                    proc.join(5.0)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(2.0)
                elif (
                    proc.exitcode not in (0, None)
                    and not self._transport.ever_connected(spec.gid)
                    and not self.abort_flag.is_set()
                ):
                    # died before the handshake: the router never saw it, so
                    # the disconnect path cannot have recorded the loss
                    record = FailureRecord(
                        kind="rank",
                        worker=spec.rank,
                        where=spec.name,
                        error=(
                            f"worker process {spec.name} exited with code "
                            f"{proc.exitcode} before the rank handshake"
                        ),
                    )
                    self.record_failure(record)
                    self.abort(record.error, record=False)
                joined.add(id(proc))


def create_runtime(
    launcher: str = "threads",
    fault_injector: FaultInjector | None = None,
    start_method: str = "fork",
) -> BaseRuntime:
    """The runtime for an ``mpi.d.launcher`` value."""
    normalized = (launcher or "threads").strip().lower()
    if normalized in ("threads", "thread", "local"):
        return ThreadRuntime(fault_injector)
    if normalized in ("processes", "process", "sockets", "socket"):
        return ProcessRuntime(fault_injector, start_method=start_method)
    raise MPIError(
        f"unknown launcher {launcher!r}; use 'threads' or 'processes'"
    )


def run_world(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = 300.0,
) -> list[Any]:
    """Convenience: run one SPMD function on a fresh runtime.

    >>> def main(comm):
    ...     return comm.allreduce(comm.rank, SUM)
    >>> run_world(4, main)
    [6, 6, 6, 6]
    """
    return MPIRuntime().run(fn, nprocs, args=tuple(args), timeout=timeout)


def gather_results(results: Sequence[Any]) -> Any:
    """Collapse identical per-rank results into one value (sanity helper)."""
    first = results[0]
    if all(r == first for r in results):
        return first
    return list(results)
