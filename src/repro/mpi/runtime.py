"""The MPI runtime: thread-per-rank launcher, endpoint registry, abort.

:class:`MPIRuntime` plays ``mpiexec``: it creates one endpoint and one
thread per rank, runs ``main(comm, *args)`` on each, and collects return
values.  Dynamic process management (``Intracomm.spawn``) registers new
endpoints on the fly, which is how ``mpidrun`` launches DataMPI working
processes (paper §IV-B).

Failure semantics match a batch MPI job: the first rank to raise trips a
runtime-wide abort, every peer blocked in an MPI call raises
:class:`~repro.common.errors.MPIAbort`, and :meth:`MPIRuntime.run`
re-raises the original error.

Every detected failure — a rank thread dying on an unhandled exception,
an explicit abort, a rank thread outliving the runtime timeout — is
captured as a structured :class:`~repro.common.errors.FailureRecord`
(rank, world, exception, traceback) in :attr:`MPIRuntime.failure_records`
so supervisors can report a precise cause instead of a bare timeout.
"""

from __future__ import annotations

import threading
import time
import traceback as traceback_mod
from typing import Any, Callable, Sequence

from repro.common.errors import FailureRecord, MPIAbort, MPIError
from repro.mpi.comm import Intracomm
from repro.mpi.intercomm import Intercomm
from repro.mpi.transport import AbortFlag, Endpoint, FaultInjector

#: contexts are allocated in blocks of 4:
#: +0 p2p, +1 collective, +2 merged-p2p, +3 merged-collective
_CONTEXT_STRIDE = 4


class _RankThread(threading.Thread):
    """One MPI rank."""

    def __init__(
        self,
        runtime: "MPIRuntime",
        comm: Intracomm,
        fn: Callable[..., Any],
        args: tuple,
        name: str,
    ) -> None:
        super().__init__(name=name, daemon=True)
        self.runtime = runtime
        self.comm = comm
        self.fn = fn
        self.args = args
        self.result: Any = None

    def run(self) -> None:
        try:
            self.result = self.fn(self.comm, *self.args)
        except MPIAbort:
            # a peer failed first; stay quiet, the original error is recorded
            pass
        except BaseException as exc:  # noqa: BLE001 - must catch to abort peers
            self.runtime.record_error(self.comm, exc)


class MPIRuntime:
    """Endpoint registry + launcher for one MPI 'job'."""

    def __init__(self, fault_injector: FaultInjector | None = None) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[int, Endpoint] = {}
        self._next_global = 0
        self._next_context = 0
        self._threads: list[_RankThread] = []
        self._errors: list[BaseException] = []
        self._failure_records: list[FailureRecord] = []
        self.fault_injector = fault_injector
        self.abort_flag = AbortFlag()

    # -- registry -------------------------------------------------------------
    def endpoint(self, global_rank: int) -> Endpoint:
        try:
            return self._endpoints[global_rank]
        except KeyError:
            raise MPIError(f"unknown global rank {global_rank}") from None

    def allocate_context(self) -> int:
        """A fresh context block (thread-safe, globally unique)."""
        with self._lock:
            context = self._next_context
            self._next_context += _CONTEXT_STRIDE
            return context

    def _allocate_ranks(self, n: int) -> tuple[int, ...]:
        with self._lock:
            start = self._next_global
            self._next_global += n
            ids = tuple(range(start, start + n))
            for gid in ids:
                self._endpoints[gid] = Endpoint(
                    gid, self.abort_flag, self.fault_injector
                )
            return ids

    # -- error handling ----------------------------------------------------------
    def record_error(self, comm: Intracomm, exc: BaseException) -> None:
        """A rank thread died on ``exc``: capture a structured failure
        record (or adopt the records the exception already carries) and
        abort the world with it."""
        carried = getattr(exc, "failures", None)
        if carried:
            records = list(carried)
        else:
            records = [
                FailureRecord(
                    kind="rank",
                    worker=comm.rank,
                    where=comm.name,
                    error=repr(exc),
                    traceback=traceback_mod.format_exc(),
                )
            ]
        with self._lock:
            self._errors.append(exc)
            self._failure_records.extend(records)
        self.abort(f"rank {comm.rank} of {comm.name}: {exc!r}", record=False)

    def record_failure(self, record: FailureRecord) -> None:
        with self._lock:
            self._failure_records.append(record)

    def abort(self, reason: str, errorcode: int = 1, record: bool = True) -> None:
        if record and not self.abort_flag.is_set():
            self.record_failure(FailureRecord(kind="abort", error=reason))
        self.abort_flag.trip(reason, errorcode)
        with self._lock:
            endpoints = list(self._endpoints.values())
        for endpoint in endpoints:
            endpoint.wake()

    @property
    def errors(self) -> list[BaseException]:
        return list(self._errors)

    @property
    def failure_records(self) -> list[FailureRecord]:
        with self._lock:
            return list(self._failure_records)

    # -- launching ------------------------------------------------------------
    def _start_world(
        self,
        fn: Callable[..., Any],
        nprocs: int,
        args: tuple,
        name: str,
        parent: tuple[tuple[int, ...], int] | None = None,
    ) -> tuple[tuple[int, ...], int | None, list[_RankThread]]:
        """Create endpoints + threads for a world; returns (group,
        inter_context, threads).  ``parent`` is (parent_group,
        inter_context) when this world is spawned."""
        group = self._allocate_ranks(nprocs)
        world_context = self.allocate_context()
        inter_context = None
        threads = []
        for rank in range(nprocs):
            comm = Intracomm(self, world_context, group, rank, name=name)
            if parent is not None:
                parent_group, inter_context = parent
                comm.parent = Intercomm(
                    self,
                    inter_context,
                    local_group=group,
                    remote_group=parent_group,
                    rank=rank,
                    side=1,
                    name=f"{name}.parent",
                )
            thread = _RankThread(self, comm, fn, args, f"{name}[{rank}]")
            threads.append(thread)
        with self._lock:
            self._threads.extend(threads)
        for thread in threads:
            thread.start()
        return group, inter_context, threads

    def launch_children(
        self,
        fn: Callable[..., Any],
        nprocs: int,
        args: tuple,
        parent_group: tuple[int, ...],
        name: str,
    ) -> tuple[tuple[int, ...], int]:
        """Spawn a child world (used by ``Intracomm.spawn``)."""
        inter_context = self.allocate_context()
        group, _, _ = self._start_world(
            fn, nprocs, args, name, parent=(parent_group, inter_context)
        )
        return group, inter_context

    def run(
        self,
        fn: Callable[..., Any],
        nprocs: int,
        args: tuple = (),
        timeout: float | None = 300.0,
        name: str = "world",
    ) -> list[Any]:
        """Run ``fn(comm, *args)`` on ``nprocs`` ranks; return results in
        rank order.  Waits for spawned child worlds too."""
        _, _, world_threads = self._start_world(fn, nprocs, args, name)
        deadline = None if timeout is None else time.monotonic() + timeout
        # join until the thread set is stable (spawn may add threads while
        # we wait)
        joined: set[_RankThread] = set()
        while True:
            with self._lock:
                pending = [t for t in self._threads if t not in joined]
            if not pending:
                break
            for thread in pending:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                thread.join(remaining)
                if thread.is_alive():
                    self.record_failure(
                        FailureRecord(
                            kind="timeout",
                            where=thread.name,
                            error=(
                                f"rank thread {thread.name} still running "
                                f"after the {timeout}s runtime timeout"
                            ),
                        )
                    )
                    self.abort(
                        f"runtime timeout: {thread.name} still running",
                        errorcode=2,
                        record=False,
                    )
                    thread.join(5.0)
                    if thread.is_alive():
                        raise MPIError(
                            f"rank thread {thread.name} hung past abort"
                        )
                joined.add(thread)
        if self._errors:
            raise self._errors[0]
        if self.abort_flag.is_set():
            raise MPIAbort(self.abort_flag.errorcode, self.abort_flag.reason)
        return [t.result for t in world_threads]


def run_world(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float | None = 300.0,
) -> list[Any]:
    """Convenience: run one SPMD function on a fresh runtime.

    >>> def main(comm):
    ...     return comm.allreduce(comm.rank, SUM)
    >>> run_world(4, main)
    [6, 6, 6, 6]
    """
    return MPIRuntime().run(fn, nprocs, args=tuple(args), timeout=timeout)


def gather_results(results: Sequence[Any]) -> Any:
    """Collapse identical per-rank results into one value (sanity helper)."""
    first = results[0]
    if all(r == first for r in results):
        return first
    return list(results)
