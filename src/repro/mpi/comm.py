"""Intracommunicators: point-to-point and collective operations.

A :class:`Intracomm` instance is *per rank* (each rank thread holds its
own), carrying the rank's index, the group (tuple of global endpoint
ids) and two context ids: one for user point-to-point traffic, one for
internal/collective traffic.  Collectives agree on tags via a per-comm
sequence number — legal because MPI requires all ranks to issue
collectives on a communicator in the same order.

Collective algorithms follow the classic implementations: binomial-tree
broadcast, linear gather/scatter/reduce (rank-ordered folding keeps
non-commutative ops correct), dissemination barrier, and eager
all-to-all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.common.errors import MPIError
from repro.common.records import _size_of
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, Op, Status
from repro.mpi.request import RecvRequest, Request, SendRequest
from repro.mpi.transport import Envelope
from repro.obs.tracer import TRACER as _T

if TYPE_CHECKING:
    from repro.mpi.intercomm import Intercomm
    from repro.mpi.runtime import MPIRuntime


class Intracomm:
    """An intra-communicator bound to one rank."""

    def __init__(
        self,
        runtime: "MPIRuntime",
        context: int,
        group: tuple[int, ...],
        rank: int,
        name: str = "comm",
    ) -> None:
        self.runtime = runtime
        self.context = context  # p2p context; context+1 is collective space
        self.group = group
        self._rank = rank
        self.name = name
        self._coll_seq = 0
        #: set on spawned worlds: intercomm back to the parent
        self.parent: "Intercomm | None" = None

    # -- introspection ------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self.group)

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py-compatible
        return self._rank

    def Get_size(self) -> int:  # noqa: N802
        return self.size

    def Get_parent(self) -> "Intercomm | None":  # noqa: N802
        return self.parent

    def __repr__(self) -> str:
        return f"<Intracomm {self.name} rank={self._rank}/{self.size}>"

    def _global(self, rank: int) -> int:
        try:
            return self.group[rank]
        except IndexError:
            raise MPIError(
                f"rank {rank} out of range for {self.name} (size {self.size})"
            ) from None

    def _my_endpoint(self):
        # receives always match against *this* rank's mailbox, which is
        # local on every backend; sends go through runtime.deposit so the
        # transport can route them to wherever the destination rank runs
        return self.runtime.mailbox(self.group[self._rank])

    # -- point-to-point -----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Standard-mode send (eager: buffers and returns immediately)."""
        self._deposit(self.context, obj, dest, tag)

    def ssend(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Synchronous send: returns only after the receiver matched it."""
        self.issend(obj, dest, tag).wait()

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; complete immediately under the eager protocol."""
        envelope = self._deposit(self.context, obj, dest, tag)
        return Request(envelope.status())

    def issend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        envelope = self._deposit(self.context, obj, dest, tag)
        return SendRequest(envelope)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
        timeout: float | None = None,
    ) -> Any:
        """Blocking matched receive; returns the payload object."""
        envelope = self._my_endpoint().receive(
            self.context, source, tag, timeout=timeout
        )
        if _T.enabled and envelope.trace:
            # hand the envelope's causal pair to the receiving thread's
            # instrumentation (it pops the pair onto its span args)
            _T.note_recv_flow(envelope.trace, envelope.parent)
        if status is not None:
            st = envelope.status()
            status.source, status.tag, status.count = st.source, st.tag, st.count
        return envelope.payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        return RecvRequest(self._my_endpoint(), self.context, source, tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        status = self._my_endpoint().probe(self.context, source, tag, block=True)
        assert status is not None
        return status

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        return self._my_endpoint().probe(self.context, source, tag, block=False)

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
    ) -> Any:
        self.isend(sendobj, dest, sendtag)
        return self.recv(source, recvtag)

    def abort(self, errorcode: int = 1, reason: str = "MPI_Abort") -> None:
        """Kill the whole runtime; peers blocked in MPI calls raise MPIAbort."""
        self.runtime.abort(reason, errorcode)

    def _deposit(self, context: int, obj: Any, dest: int, tag: int) -> Envelope:
        if tag < 0:
            raise MPIError(f"negative user tag {tag}")
        envelope = Envelope(
            context, self._rank, tag, obj, _size_of(obj),
            origin=self.group[self._rank],
        )
        if _T.enabled:
            flow = _T.take_flow()
            if flow is not None:
                envelope.trace, envelope.parent = flow
        self.runtime.deposit(self._global(dest), envelope)
        return envelope

    # -- internal (collective-context) p2p -----------------------------------
    def _coll_send(self, obj: Any, dest: int, tag: int) -> None:
        envelope = Envelope(
            self.context + 1, self._rank, tag, obj, _size_of(obj),
            origin=self.group[self._rank],
        )
        self.runtime.deposit(self._global(dest), envelope)

    def _coll_recv(self, source: int, tag: int) -> Any:
        return (
            self._my_endpoint().receive(self.context + 1, source, tag).payload
        )

    def _next_coll_tag(self) -> int:
        self._coll_seq += 1
        return self._coll_seq

    # -- collectives ----------------------------------------------------------
    def barrier(self) -> None:
        """Dissemination barrier: ceil(log2(p)) rounds."""
        tag = self._next_coll_tag()
        size, rank = self.size, self._rank
        if size == 1:
            return
        mask = 1
        while mask < size:
            self._coll_send(None, (rank + mask) % size, tag)
            self._coll_recv((rank - mask) % size, tag)
            mask <<= 1

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Binomial-tree broadcast; every rank returns root's object."""
        tag = self._next_coll_tag()
        size, rank = self.size, self._rank
        if size == 1:
            return obj
        relrank = (rank - root) % size
        mask = 1
        while mask < size:
            if relrank & mask:
                src = (relrank - mask + root) % size
                obj = self._coll_recv(src, tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if relrank + mask < size:
                dst = (relrank + mask + root) % size
                self._coll_send(obj, dst, tag)
            mask >>= 1
        return obj

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Linear gather; root returns the rank-ordered list."""
        tag = self._next_coll_tag()
        if self._rank != root:
            self._coll_send(obj, root, tag)
            return None
        result: list[Any] = [None] * self.size
        result[root] = obj
        for src in range(self.size):
            if src != root:
                result[src] = self._coll_recv(src, tag)
        return result

    def scatter(self, objs: Sequence[Any] | None = None, root: int = 0) -> Any:
        """Root distributes ``objs[i]`` to rank i."""
        tag = self._next_coll_tag()
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise MPIError(
                    f"scatter needs exactly {self.size} items at root, got "
                    f"{None if objs is None else len(objs)}"
                )
            for dst in range(self.size):
                if dst != root:
                    self._coll_send(objs[dst], dst, tag)
            return objs[root]
        return self._coll_recv(root, tag)

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: Op, root: int = 0) -> Any | None:
        """Rank-ordered fold at root (correct for non-commutative ops)."""
        values = self.gather(obj, root=root)
        if values is None:
            return None
        return op.reduce_all(values)

    def allreduce(self, obj: Any, op: Op) -> Any:
        reduced = self.reduce(obj, op, root=0)
        return self.bcast(reduced, root=0)

    def scan(self, obj: Any, op: Op) -> Any:
        """Inclusive prefix reduction along rank order."""
        tag = self._next_coll_tag()
        partial = obj
        if self._rank > 0:
            upstream = self._coll_recv(self._rank - 1, tag)
            partial = op(upstream, obj)
        if self._rank + 1 < self.size:
            self._coll_send(partial, self._rank + 1, tag)
        return partial

    def exscan(self, obj: Any, op: Op) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None`` (undefined
        in MPI; None is this library's explicit rendering)."""
        tag = self._next_coll_tag()
        upstream = None
        if self._rank > 0:
            upstream = self._coll_recv(self._rank - 1, tag)
        if self._rank + 1 < self.size:
            downstream = obj if upstream is None else op(upstream, obj)
            self._coll_send(downstream, self._rank + 1, tag)
        return upstream

    def reduce_scatter(self, objs: Sequence[Any], op: Op) -> Any:
        """Element-wise reduce of each rank's vector, then scatter: rank i
        returns ``op``-fold of ``objs[i]`` across all ranks."""
        if len(objs) != self.size:
            raise MPIError(
                f"reduce_scatter needs exactly {self.size} items, got {len(objs)}"
            )
        columns = self.alltoall(list(objs))
        return op.reduce_all(columns)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Each rank sends ``objs[i]`` to rank i; returns the received row.

        This is the "relaxed all-to-all pattern" underpinning the bipartite
        shuffle (paper §IV-D); eager sends make it deadlock-free.
        """
        tag = self._next_coll_tag()
        if len(objs) != self.size:
            raise MPIError(
                f"alltoall needs exactly {self.size} items, got {len(objs)}"
            )
        for dst in range(self.size):
            if dst != self._rank:
                self._coll_send(objs[dst], dst, tag)
        result: list[Any] = [None] * self.size
        result[self._rank] = objs[self._rank]
        for src in range(self.size):
            if src != self._rank:
                result[src] = self._coll_recv(src, tag)
        return result

    # -- communicator management ----------------------------------------------
    def split(self, color: int | None, key: int = 0) -> "Intracomm | None":
        """Partition the communicator by ``color``; order by ``(key, rank)``.

        ``color=None`` mirrors ``MPI_UNDEFINED``: the rank gets no new
        communicator but still participates in the collective exchange.
        """
        tag = self._next_coll_tag()
        info = self.allgather((color, key, self._rank))
        if color is None:
            return None
        members = sorted(
            (k, r) for (c, k, r) in info if c == color
        )  # (key, parent rank) pairs
        parent_ranks = [r for _, r in members]
        new_rank = parent_ranks.index(self._rank)
        leader = parent_ranks[0]
        if self._rank == leader:
            context = self.runtime.allocate_context()
            for member in parent_ranks[1:]:
                self._coll_send(context, member, tag)
        else:
            context = self._coll_recv(leader, tag)
        new_group = tuple(self._global(r) for r in parent_ranks)
        return Intracomm(
            self.runtime,
            context,
            new_group,
            new_rank,
            name=f"{self.name}.split({color})",
        )

    def dup(self) -> "Intracomm":
        new = self.split(color=0, key=self._rank)
        assert new is not None
        new.name = f"{self.name}.dup"
        return new

    def free(self) -> None:
        """Release the communicator (mailboxes are GC'd with the runtime)."""

    # -- dynamic process management ---------------------------------------------
    def spawn(
        self,
        fn: Callable[..., Any],
        nprocs: int,
        args: tuple = (),
        name: str = "spawned",
    ) -> "Intercomm":
        """Collectively spawn ``nprocs`` child ranks running ``fn(child_comm,
        *args)``; returns the parent side of the intercommunicator.

        Mirrors ``MPI_Comm_spawn``: children see their own world communicator
        whose ``parent`` attribute is the child side of the intercomm
        (paper §IV-B: working processes "are also connected with their
        parent, mpidrun, by an intercommunicator").
        """
        from repro.mpi.intercomm import Intercomm

        tag = self._next_coll_tag()
        if self._rank == 0:
            child_group, inter_context = self.runtime.launch_children(
                fn, nprocs, args, parent_group=self.group, name=name
            )
            payload = (child_group, inter_context)
            for dst in range(1, self.size):
                self._coll_send(payload, dst, tag)
        else:
            child_group, inter_context = self._coll_recv(0, tag)
        return Intercomm(
            self.runtime,
            inter_context,
            local_group=self.group,
            remote_group=child_group,
            rank=self._rank,
            side=0,
            name=f"{name}.parent",
        )
