"""MPI constants, Status, and reduction operators."""

from __future__ import annotations

import operator
from functools import reduce as _functools_reduce
from typing import Any, Callable, Sequence

#: Wildcard source for receive matching.
ANY_SOURCE = -1
#: Wildcard tag for receive matching.
ANY_TAG = -1

#: Upper bound for user tags; internal (collective) traffic uses a separate
#: context so the full non-negative tag space belongs to applications.
TAG_UB = 2**30


class Status:
    """Receive status: actual source, tag and payload size."""

    __slots__ = ("source", "tag", "count")

    def __init__(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, count: int = 0):
        self.source = source
        self.tag = tag
        self.count = count

    def Get_source(self) -> int:  # noqa: N802 - mpi4py-compatible name
        return self.source

    def Get_tag(self) -> int:  # noqa: N802
        return self.tag

    def Get_count(self) -> int:  # noqa: N802
        return self.count

    def __repr__(self) -> str:
        return f"Status(source={self.source}, tag={self.tag}, count={self.count})"


class Op:
    """A reduction operator.

    ``commutative`` matters for reduce-tree correctness; non-commutative
    ops are applied strictly in rank order.
    """

    __slots__ = ("fn", "name", "commutative")

    def __init__(
        self, fn: Callable[[Any, Any], Any], name: str, commutative: bool = True
    ):
        self.fn = fn
        self.name = name
        self.commutative = commutative

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def reduce_all(self, values: Sequence[Any]) -> Any:
        """Fold ``values`` left-to-right (rank order)."""
        if not values:
            raise ValueError("cannot reduce zero values")
        return _functools_reduce(self.fn, values)

    def __repr__(self) -> str:
        return f"Op({self.name})"


SUM = Op(operator.add, "SUM")
PROD = Op(operator.mul, "PROD")
MIN = Op(min, "MIN")
MAX = Op(max, "MAX")
LAND = Op(lambda a, b: bool(a) and bool(b), "LAND")
LOR = Op(lambda a, b: bool(a) or bool(b), "LOR")
BAND = Op(operator.and_, "BAND")
BOR = Op(operator.or_, "BOR")


def MINLOC(a: tuple, b: tuple) -> tuple:  # noqa: N802
    """(value, index) pair min — mirrors MPI_MINLOC."""
    return a if a[0] <= b[0] else b


def MAXLOC(a: tuple, b: tuple) -> tuple:  # noqa: N802
    """(value, index) pair max — mirrors MPI_MAXLOC."""
    return a if a[0] >= b[0] else b


MINLOC_OP = Op(MINLOC, "MINLOC")
MAXLOC_OP = Op(MAXLOC, "MAXLOC")
