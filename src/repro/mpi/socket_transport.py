"""Process-per-rank transport: a driver-side router + socket workers.

Topology is a star (paper §IV-B: every working process is connected to
mpidrun): the :class:`ProcessRuntime` hosts a
:class:`RouterTransport` — a :class:`~repro.net.wire.FrameServer` plus a
gid→connection routing table — and every spawned rank runs in its own
OS process holding one :class:`~repro.mpi.transport.Endpoint` and a
single connection back to the router.

Semantics are those of the threaded backend, preserved deliberately:

* **Matching** — the matching engine *is* the same :class:`Endpoint`
  class; only delivery differs.  An envelope is rebuilt in the
  destination process, so its ``seq`` reflects local arrival order and
  wildcard receives see the same ordering rules as in-process mail.
* **Non-overtaking** — frames from one process travel one socket in FIFO
  order and are forwarded by a single reader thread, so messages between
  any (sender, receiver) pair never overtake.
* **Fault injection** — the canonical :class:`FaultInjector` lives in
  the driver process and is applied at the router for every wire hop
  (and by ``RouterTransport.deposit`` for driver-local traffic), so rule
  hit counts and audit events stay observable to the chaos tests exactly
  as on the threaded backend.  When an injector is installed, workers
  route even self-sends through the router so the injector sees the same
  traffic it would see with threads.
* **Abort wakes everyone** — an abort broadcasts ABORT frames to every
  worker (bypassing injection: even a severed rank must unwind) and
  wakes all local endpoints.
* **Failure capture** — a worker that dies sends a FAIL frame with its
  :class:`FailureRecord`\\ s when it can; a connection that drops without
  a BYE is recorded as a rank failure and aborts the world, so a
  SIGKILL'd worker surfaces as structured evidence, not a hang.
* **Surgical rank recovery** — with ``mpi.d.rank.max.respawns > 0`` the
  router does better than aborting: a no-goodbye disconnect marks the
  rank *recovering*, the runtime forks a replacement with an incremented
  **rank epoch**, and the reincarnation's HELLO replays that rank's
  worker-world traffic from a bounded per-rank **redelivery buffer**
  (shuffle batches its first life received but took to the grave).
  Every envelope carries its sender's epoch in the wire header, so a
  zombie — a rank declared dead that is still limping — has its frames
  fenced at the hub (``stale_frames_dropped``) instead of corrupting its
  successor's streams.  Budget exhaustion or buffer overflow degrades to
  the pre-existing whole-job abort/restart path.

Payloads are pickled only at the wire boundary
(:data:`repro.net.wire.WIRE_SERDE`); with the default ``fork`` start
method, job closures reach workers by inheritance, never by pickle.
"""

from __future__ import annotations

import os
import pickle
import queue
import sys
import threading
from dataclasses import dataclass, field
from time import monotonic as _now
from typing import Any, Callable, Iterable

from repro.common.errors import FailureRecord, MPIAbort, MPIError
from repro.common.logging import get_logger
from repro.mpi.transport import (
    AbortFlag,
    Endpoint,
    Envelope,
    Transport,
    TruncatedPayload,
)
from repro.net import wire
from repro.net.wire import FrameConnection, FrameKind
from repro.obs.tracer import TRACER as _T
from repro.serde.io import DataInput

_log = get_logger("mpi.socket_transport")

#: how long a worker waits for a router RPC reply before declaring the
#: driver gone (aborts also break the wait, so this is a last resort)
_RPC_DEADLINE = 120.0


def _encode_envelope(dest: int, envelope: Envelope, epoch: int = 0) -> bytes:
    """Envelope -> wire frame; truncation travels as a header flag.

    Shuffle record-batch payloads take the structured FLAG_BATCH codec
    (sealed batch bytes copied verbatim, zero pickle); everything else is
    pickled at this boundary.  ``epoch`` is the sender's rank epoch — the
    router fences frames whose epoch lags the sender's current
    incarnation (zombie defense).
    """
    payload = envelope.payload
    flags = 0
    if isinstance(payload, TruncatedPayload):
        flags |= wire.FLAG_TRUNCATED
        payload = payload.original
    body, payload_flags = wire.encode_payload(payload)
    return wire.pack_envelope_frame(
        envelope.context,
        envelope.source,
        envelope.tag,
        envelope.origin,
        dest,
        envelope.nbytes,
        body,
        flags | payload_flags,
        epoch=epoch,
        trace=envelope.trace,
        parent=envelope.parent,
    )


def _decode_envelope(
    context: int, source: int, tag: int, origin: int, nbytes: int,
    flags: int, payload_bytes: bytes, trace: int = 0, parent: int = 0,
) -> Envelope:
    """Wire frame -> Envelope, built in the *destination* interpreter so
    ``seq`` reflects local arrival order (wildcard matching)."""
    payload = wire.decode_payload(payload_bytes, flags)
    if flags & wire.FLAG_TRUNCATED:
        payload = TruncatedPayload(payload)
    return Envelope(context, source, tag, payload, nbytes, origin=origin,
                    trace=trace, parent=parent)


class _RedeliveryBuffer:
    """Bounded, in-order store of the worker-world frames forwarded to one
    rank, so a reincarnation can be replayed the shuffle batches (and
    barrier traffic) its first life received but took to the grave.

    Entries are tagged with the shuffle plane id when the frame is a
    FLAG_BATCH record batch (peeked cheaply from the payload header);
    ACK frames from the consumer release a plane's entries.  Untagged
    entries (pickled barrier/collective messages) are held until the
    rank says BYE.  Overflowing the byte cap evicts oldest-first and
    latches ``overflowed`` — the rank is then surgically unrecoverable
    and its death degrades to a whole-job restart.
    """

    __slots__ = ("cap", "nbytes", "entries", "overflowed")

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.nbytes = 0
        #: list of (plane_id | None, frame bytes), forwarding order
        self.entries: list[tuple[str | None, bytes]] = []
        self.overflowed = False

    def append(self, plane: str | None, frame: bytes) -> None:
        self.entries.append((plane, frame))
        self.nbytes += len(frame)
        while self.nbytes > self.cap and self.entries:
            _, evicted = self.entries.pop(0)
            self.nbytes -= len(evicted)
            self.overflowed = True

    def release_plane(self, plane: str) -> int:
        kept: list[tuple[str | None, bytes]] = []
        released = 0
        for entry in self.entries:
            if entry[0] == plane:
                released += 1
                self.nbytes -= len(entry[1])
            else:
                kept.append(entry)
        self.entries = kept
        return released

    def frames(self) -> list[bytes]:
        return [frame for _, frame in self.entries]

    def clear(self) -> None:
        self.entries = []
        self.nbytes = 0


class RouterTransport(Transport):
    """Driver-side star router: local mailboxes + a gid→socket table.

    Ranks of in-process worlds (the mpidrun driver world) get ordinary
    local endpoints; ranks announced via :meth:`expect` live in worker
    processes and are reached through their HELLO'd connection.  Frames
    deposited before a worker's handshake are buffered and flushed, in
    order, when it arrives.

    With rank recovery configured the router additionally keeps, per
    worker gid: its current **epoch** (bumped on every respawn, checked
    against the epoch stamped in each envelope header to fence zombies),
    its OS pid (so the runtime can SIGKILL a hung incarnation before
    forking the next), and a :class:`_RedeliveryBuffer` of worker-world
    frames to replay into the reincarnation.
    """

    def __init__(self, runtime: Any) -> None:
        self._runtime = runtime
        self.abort_flag: AbortFlag = runtime.abort_flag
        self.fault_injector = runtime.fault_injector
        self._lock = threading.Lock()
        #: gids hosted here -> mailbox (injection is applied centrally in
        #: deposit/forwarding, so these endpoints carry no injector)
        self._endpoints: dict[int, Endpoint] = {}
        #: remote gid -> live connection
        self._routes: dict[int, FrameConnection] = {}
        #: connection -> gids it announced
        self._conn_gids: dict[FrameConnection, set[int]] = {}
        #: remote gid -> frames parked until its HELLO
        self._parked: dict[int, list[bytes]] = {}
        self._expected: set[int] = set()
        self._ever_connected: set[int] = set()
        #: gid -> (world-local rank, world name) for failure records
        self._rank_info: dict[int, tuple[int, str]] = {}
        #: connections that ended with BYE or FAIL (EOF is then benign)
        self._closed_clean: set[FrameConnection] = set()
        self._stopping = False
        # -- surgical rank recovery state (inert until configured) ----------
        #: per-rank respawn budget; 0 keeps the legacy die-on-death path
        self._max_respawns = 0
        self._redelivery_cap = 0
        #: gid -> current epoch (respawn count); frames stamped lower are
        #: zombie traffic and are dropped
        self._epochs: dict[int, int] = {}
        #: connection -> the epoch it HELLO'd with
        self._conn_epochs: dict[FrameConnection, int] = {}
        #: gid -> OS pid from its latest HELLO
        self._pids: dict[int, int] = {}
        #: context bases of worker worlds whose traffic is redeliverable
        self._watched_contexts: set[int] = set()
        self._redelivery: dict[int, _RedeliveryBuffer] = {}
        self._recovering: set[int] = set()
        self._respawns: dict[int, int] = {}
        self._recovery_t0: dict[int, float] = {}
        self.stale_frames_dropped = 0
        self.redelivered_frames = 0
        self._server = wire.FrameServer(
            self._handle_frame, self._handle_disconnect, name="mpi-router"
        ).start()

    # -- rank recovery configuration -----------------------------------------
    def configure_recovery(self, max_respawns: int, redelivery_bytes: int) -> None:
        """Arm surgical recovery: each rank may be respawned in place up
        to ``max_respawns`` times, with up to ``redelivery_bytes`` of its
        inbound worker-world traffic buffered for replay."""
        with self._lock:
            self._max_respawns = max(0, int(max_respawns))
            self._redelivery_cap = int(redelivery_bytes)

    def watch_world(self, group: tuple[int, ...], world_context: int) -> None:
        """Start buffering the worker-world traffic of ``group`` (its
        point-to-point and collective context block) for redelivery."""
        with self._lock:
            if self._max_respawns <= 0:
                return
            self._watched_contexts.add(world_context)
            for gid in group:
                self._epochs.setdefault(gid, 0)
                self._redelivery.setdefault(
                    gid, _RedeliveryBuffer(self._redelivery_cap)
                )

    def rank_epoch(self, gid: int) -> int:
        with self._lock:
            return self._epochs.get(gid, 0)

    def pid_of(self, gid: int) -> int | None:
        with self._lock:
            return self._pids.get(gid)

    def respawn_count(self, gid: int) -> int:
        with self._lock:
            return self._respawns.get(gid, 0)

    def recovery_eligible(self, gid: int) -> bool:
        """Can this rank still be respawned in place?"""
        with self._lock:
            return self._eligible_locked(gid)

    def _eligible_locked(self, gid: int) -> bool:
        if self._max_respawns <= 0:
            return False
        buf = self._redelivery.get(gid)
        if buf is None or buf.overflowed:
            return False
        return self._respawns.get(gid, 0) < self._max_respawns

    def begin_recovery(self, gid: int) -> bool:
        """Mark ``gid`` recovering: its parked frames are discarded (they
        would be stale by redelivery time), new worker-world traffic
        accumulates in the redelivery buffer, and anything else bound for
        it is dropped until the reincarnation's HELLO."""
        with self._lock:
            if not self._eligible_locked(gid):
                return False
            if gid not in self._recovering:
                self._recovering.add(gid)
                self._parked.pop(gid, None)
                self._recovery_t0[gid] = _now()
            return True

    def begin_respawn(self, gid: int) -> tuple[int, int | None]:
        """Charge the budget and bump the epoch for a respawn of ``gid``;
        returns ``(new_epoch, old_pid)``.  The caller (ProcessRuntime)
        kills the old pid and forks the replacement."""
        with self._lock:
            if gid not in self._recovering:
                # heartbeat-triggered: the incarnation may still be
                # connected (hung, not dead) — fence and replace it anyway
                self._recovering.add(gid)
                self._parked.pop(gid, None)
                self._recovery_t0.setdefault(gid, _now())
            self._respawns[gid] = self._respawns.get(gid, 0) + 1
            self._epochs[gid] = self._epochs.get(gid, 0) + 1
            # drop the old route: traffic now lands in the redelivery
            # buffer (worker-world) or is discarded (stale control)
            self._routes.pop(gid, None)
            return self._epochs[gid], self._pids.get(gid)

    @property
    def address(self) -> Any:
        return self._server.address

    # -- Transport ----------------------------------------------------------
    def register(self, gid: int) -> Endpoint:
        with self._lock:
            endpoint = self._endpoints.get(gid)
            if endpoint is None:
                endpoint = Endpoint(gid, self.abort_flag, None)
                self._endpoints[gid] = endpoint
            return endpoint

    def mailbox(self, gid: int) -> Endpoint:
        try:
            return self._endpoints[gid]
        except KeyError:
            raise MPIError(
                f"rank {gid} is hosted in a worker process; only its own "
                f"process may receive on its mailbox"
            ) from None

    def local_endpoints(self) -> Iterable[Endpoint]:
        with self._lock:
            return list(self._endpoints.values())

    def deposit(self, dest: int, envelope: Envelope) -> None:
        injector = self.fault_injector
        if injector is None:
            self._route_envelope(dest, envelope)
            return
        for out in injector.apply(dest, envelope):
            self._route_envelope(dest, out)

    def wake_all(self) -> None:
        for endpoint in self.local_endpoints():
            endpoint.wake()
        if self.abort_flag.is_set():
            frame = wire.pack_obj_frame(
                FrameKind.ABORT,
                (self.abort_flag.reason, self.abort_flag.errorcode),
            )
            with self._lock:
                conns = set(self._routes.values())
                # workers that have not handshaken yet get the abort the
                # moment they do (flushed with their parked frames)
                for gid in self._expected - set(self._routes):
                    self._parked.setdefault(gid, []).append(frame)
            for conn in conns:
                conn.try_send(frame)

    def request_stack_dump(self) -> int:
        """Broadcast DUMP_REQ to every connected worker; replies arrive
        asynchronously as DUMP frames and land in the telemetry hub.
        Returns how many workers were asked."""
        frame = wire.pack_frame(FrameKind.DUMP_REQ)
        with self._lock:
            conns = set(self._routes.values())
        for conn in conns:
            conn.try_send(frame)
        return len(conns)

    def shutdown(self) -> None:
        self._stopping = True
        self._server.stop()

    # -- bookkeeping for ProcessRuntime -------------------------------------
    def expect(self, group: tuple[int, ...], name: str = "worker") -> None:
        """Announce gids that will live in worker processes."""
        with self._lock:
            self._expected.update(group)
            for rank, gid in enumerate(group):
                self._rank_info[gid] = (rank, name)

    def ever_connected(self, gid: int) -> bool:
        with self._lock:
            return gid in self._ever_connected

    # -- routing -------------------------------------------------------------
    def _route_envelope(self, dest: int, envelope: Envelope) -> None:
        endpoint = self._endpoints.get(dest)
        if endpoint is not None:
            endpoint.deposit(envelope)
            return
        self._forward(dest, _encode_envelope(dest, envelope))
        # the wire is the eager buffer: the send completes on acceptance
        envelope.delivered.set()

    def _forward(self, dest: int, frame: bytes) -> None:
        """Send (or park) one pre-packed frame; the routing lock orders
        parked flushes against direct sends."""
        with self._lock:
            conn = self._park_or_route_locked(dest, frame)
        if conn is None:
            return
        try:
            conn.send(frame)
        except OSError:
            # receiver is gone; its disconnect handler owns the fallout
            _log.debug("router: dropping frame for dead rank %d", dest)

    def _park_or_route_locked(self, dest: int, frame: bytes) -> FrameConnection | None:
        """Route resolution under the lock: a live connection, or None
        after parking (pre-HELLO) / discarding (mid-recovery — eligible
        worker-world frames already sit in the redelivery buffer, and
        anything else would be stale by redelivery time)."""
        conn = self._routes.get(dest)
        if conn is not None:
            return conn
        if dest not in self._expected:
            raise MPIError(f"no route to global rank {dest}")
        if dest not in self._recovering:
            self._parked.setdefault(dest, []).append(frame)
        return None

    def _context_watched_locked(self, context: int) -> bool:
        return any(
            base <= context < base + 4 for base in self._watched_contexts
        )

    def _buffer_locked(
        self, dest: int, context: int, flags: int, payload: bytes, frame: bytes
    ) -> None:
        """Record a worker-world frame for possible redelivery.  Control
        traffic (intercomm contexts) is deliberately excluded: replaying
        a stale task assignment or report ack into a reincarnated rank
        would corrupt the driver protocol — the control plane instead
        recovers by re-requesting."""
        buf = self._redelivery.get(dest)
        if buf is None or not self._context_watched_locked(context):
            return
        plane: str | None = None
        if flags & wire.FLAG_BATCH:
            try:
                plane = DataInput(payload).read_utf()
            except Exception:  # noqa: BLE001 - peeking must never drop a frame
                plane = None
        buf.append(plane, frame)

    # -- frame handlers (router reader threads) ------------------------------
    def _handle_frame(self, conn: FrameConnection, kind: int, body: bytes) -> None:
        if kind == FrameKind.ENVELOPE:
            self._on_envelope(body)
        elif kind == FrameKind.HELLO:
            obj = wire.unpack_obj(body)
            gid, pid, epoch = obj if len(obj) == 3 else (obj[0], obj[1], 0)
            redelivered = 0
            t0 = None
            with self._lock:
                current = self._epochs.get(gid, 0)
                if epoch < current:
                    # a zombie incarnation reconnecting: never route to it
                    _log.warning(
                        "router: fencing stale HELLO from rank %d "
                        "(epoch %d < %d)", gid, epoch, current,
                    )
                    return
                reborn = gid in self._recovering
                self._routes[gid] = conn
                self._conn_gids.setdefault(conn, set()).add(gid)
                self._conn_epochs[conn] = epoch
                self._ever_connected.add(gid)
                self._pids[gid] = pid
                if reborn:
                    self._recovering.discard(gid)
                    t0 = self._recovery_t0.pop(gid, None)
                    buf = self._redelivery.get(gid)
                    if buf is not None:
                        # replay in original forwarding order; entries stay
                        # buffered until ACK'd (a second death replays again)
                        for frame in buf.frames():
                            conn.try_send(frame)
                            redelivered += 1
                parked = self._parked.pop(gid, [])
                for frame in parked:
                    conn.try_send(frame)
            if reborn:
                self.redelivered_frames += redelivered
                latency = (_now() - t0) if t0 is not None else -1.0
                _T.instant(
                    "recovery.rank.online",
                    cat="recovery",
                    args={
                        "gid": gid, "epoch": epoch, "pid": pid,
                        "redelivered_frames": redelivered,
                        "latency_s": round(latency, 6),
                    },
                )
                _T.counter("recovery.redelivered_frames", redelivered, cat="recovery")
                _log.info(
                    "router: rank %d reborn (pid %d, epoch %d, %d frames "
                    "redelivered, %.3fs offline)",
                    gid, pid, epoch, redelivered, latency,
                )
            else:
                _log.debug("router: rank %d online (pid %d)", gid, pid)
            if self.abort_flag.is_set():
                conn.try_send(
                    wire.pack_obj_frame(
                        FrameKind.ABORT,
                        (self.abort_flag.reason, self.abort_flag.errorcode),
                    )
                )
        elif kind == FrameKind.ACK:
            gid, plane_id = wire.unpack_obj(body)
            with self._lock:
                buf = self._redelivery.get(gid)
                if buf is not None:
                    buf.release_plane(plane_id)
        elif kind == FrameKind.TELEMETRY:
            hub = getattr(self._runtime, "telemetry_hub", None)
            if hub is not None:
                try:
                    hub.ingest(wire.unpack_obj(body))
                except Exception:  # noqa: BLE001 - telemetry never kills routing
                    _log.debug("router: dropped malformed telemetry frame")
        elif kind == FrameKind.DUMP:
            hub = getattr(self._runtime, "telemetry_hub", None)
            if hub is not None:
                try:
                    for dump in wire.unpack_obj(body):
                        hub.ingest_dump(dump)
                except Exception:  # noqa: BLE001 - diagnostics never kill routing
                    _log.debug("router: dropped malformed dump frame")
        elif kind == FrameKind.RPC_REQ:
            req_id, method, params = wire.unpack_obj(body)
            try:
                result = self._dispatch_rpc(method, params)
                reply = (req_id, True, result)
            except Exception as exc:  # noqa: BLE001 - errors travel back
                reply = (req_id, False, repr(exc))
            conn.try_send(wire.pack_obj_frame(FrameKind.RPC_REP, reply))
        elif kind == FrameKind.ABORT_REQ:
            reason, errorcode = wire.unpack_obj(body)
            self._runtime.abort(reason, errorcode)
        elif kind == FrameKind.FAIL:
            records, exc_blob, fatal = wire.unpack_obj(body)
            for record in records:
                self._runtime.record_failure(record)
            if fatal:
                # the failure is accounted for; the coming EOF is not news
                self._closed_clean.add(conn)
                exc: BaseException | None = None
                if exc_blob is not None:
                    try:
                        exc = pickle.loads(exc_blob)
                    except Exception:  # noqa: BLE001 - diagnostics only
                        exc = None
                reason = records[0].error if records else "worker failed"
                self._runtime.record_remote_error(exc, reason)
        elif kind == FrameKind.BYE:
            with self._lock:
                self._closed_clean.add(conn)
                # the rank finished for good: nothing left to redeliver
                for gid in self._conn_gids.get(conn, ()):
                    buf = self._redelivery.get(gid)
                    if buf is not None:
                        buf.clear()
        else:
            _log.warning("router: ignoring unknown frame kind %d", kind)

    def _on_envelope(self, body: bytes) -> None:
        (context, source, tag, origin, dest, epoch, trace, parent, nbytes,
         flags, payload) = wire.unpack_envelope_frame(body)
        current = self._epochs.get(origin)
        if current is not None and epoch < current:
            # a zombie speaking: the rank was declared dead and respawned,
            # but its old incarnation got a frame out first.  Fence it.
            self.stale_frames_dropped += 1
            _T.instant(
                "recovery.stale_frame.dropped",
                cat="recovery",
                args={
                    "origin": origin, "dest": dest, "epoch": epoch,
                    "current": current, "tag": tag,
                },
            )
            _T.counter("recovery.stale_frames_dropped", self.stale_frames_dropped, cat="recovery")
            _log.debug(
                "router: fenced stale frame from rank %d (epoch %d < %d)",
                origin, epoch, current,
            )
            return
        injector = self.fault_injector
        if injector is None:
            self._deliver_raw(
                dest, body, context, source, tag, origin, epoch, nbytes,
                flags, payload, trace=trace, parent=parent,
            )
            return
        # Materialize an Envelope for the injector.  The payload is only
        # unpickled when some rule actually inspects it; otherwise the
        # router stays metadata-only.
        needs_payload = any(rule.match is not None for rule in injector.rules)
        obj: Any = None
        if needs_payload:
            obj = wire.decode_payload(payload, flags)
        envelope = Envelope(context, source, tag, obj, nbytes, origin=origin)
        if flags & wire.FLAG_TRUNCATED:
            envelope.payload = TruncatedPayload(envelope.payload)
        for out in injector.apply(dest, envelope):
            out_flags = flags
            if isinstance(out.payload, TruncatedPayload):
                out_flags |= wire.FLAG_TRUNCATED
            frame = wire.pack_frame(
                FrameKind.ENVELOPE,
                wire._ENV_HEADER.pack(
                    out.context, out.source, out.tag, out.origin,
                    dest, epoch, trace, parent, out.nbytes, out_flags,
                )
                + payload,
            )
            self._deliver_raw(
                dest, frame[wire._LEN.size + 1:], out.context, out.source,
                out.tag, out.origin, epoch, out.nbytes, out_flags, payload,
                prepacked=frame, trace=trace, parent=parent,
            )

    def _deliver_raw(
        self,
        dest: int,
        body: bytes,
        context: int,
        source: int,
        tag: int,
        origin: int,
        epoch: int,
        nbytes: int,
        flags: int,
        payload: bytes,
        prepacked: bytes | None = None,
        trace: int = 0,
        parent: int = 0,
    ) -> None:
        endpoint = self._endpoints.get(dest)
        if endpoint is not None:
            endpoint.deposit(
                _decode_envelope(context, source, tag, origin, nbytes, flags,
                                 payload, trace=trace, parent=parent)
            )
            return
        # forwarding re-uses the received body verbatim when unmodified
        frame = (
            prepacked if prepacked is not None
            else wire.pack_frame(FrameKind.ENVELOPE, body)
        )
        with self._lock:
            self._buffer_locked(dest, context, flags, payload, frame)
            conn = self._park_or_route_locked(dest, frame)
        if conn is None:
            return
        try:
            conn.send(frame)
        except OSError:
            _log.debug("router: dropping frame for dead rank %d", dest)

    def _handle_disconnect(self, conn: FrameConnection) -> None:
        with self._lock:
            gids = self._conn_gids.pop(conn, set())
            conn_epoch = self._conn_epochs.pop(conn, 0)
            stale = bool(gids) and all(
                conn_epoch < self._epochs.get(gid, 0) for gid in gids
            )
            for gid in gids:
                if self._routes.get(gid) is conn:
                    del self._routes[gid]
            clean = conn in self._closed_clean
            self._closed_clean.discard(conn)
            truncated = getattr(conn, "truncated", False)
        if clean or self._stopping or self.abort_flag.is_set() or not gids:
            return
        if stale:
            # a fenced zombie finally letting go of its socket — its death
            # was already handled when its successor was spawned
            _log.debug("router: stale incarnation of %s disconnected", sorted(gids))
            return
        # EOF without BYE/FAIL: the worker process died ungracefully.
        # Try surgical recovery first: mark every gid recovering and hand
        # the respawn to the runtime (the driver loop forks the
        # replacement); only when some gid is unrecoverable do we fall
        # through to the legacy abort -> whole-job-restart path.
        recoverable = [gid for gid in sorted(gids) if self.begin_recovery(gid)]
        if len(recoverable) == len(gids):
            for gid in recoverable:
                _T.instant(
                    "recovery.rank.lost",
                    cat="recovery",
                    args={"gid": gid, "truncated": bool(truncated)},
                )
            _log.warning(
                "router: worker rank(s) %s died; attempting surgical "
                "respawn", recoverable,
            )
            self._runtime.request_rank_respawn(recoverable)
            return
        for gid in sorted(gids):
            rank, world = self._rank_info.get(gid, (-1, "worker"))
            if self._max_respawns > 0 and gid not in set(recoverable):
                kind, why = "respawn", (
                    f"worker process for global rank {gid} died but is no "
                    f"longer surgically recoverable (respawn budget "
                    f"exhausted or redelivery buffer overflow); degrading "
                    f"to a whole-job restart"
                )
            elif truncated:
                kind, why = "wire", (
                    f"connection to global rank {gid} severed mid-frame "
                    f"(process killed or stream corrupted)"
                )
            else:
                kind, why = "rank", (
                    f"worker process for global rank {gid} disconnected "
                    f"without a goodbye (crashed or killed)"
                )
            record = FailureRecord(
                kind=kind, worker=rank, where=f"{world}[{rank}]", error=why
            )
            self._runtime.record_failure(record)
        self._runtime.abort(
            f"lost worker process (global rank(s) {sorted(gids)})", record=False
        )

    def _dispatch_rpc(self, method: str, params: tuple) -> Any:
        if method == "alloc_context":
            return self._runtime.allocate_context()
        if method == "spawn":
            fn, nprocs, args, parent_group, name = params
            return self._runtime.launch_children(
                fn, nprocs, tuple(args), tuple(parent_group), name
            )
        raise MPIError(f"unknown router rpc {method!r}")


@dataclass
class WorkerSpec:
    """Everything a worker process needs; inherited via fork (fn/args are
    never pickled on the default start method)."""

    address: Any
    gid: int
    group: tuple[int, ...]
    rank: int
    world_context: int
    parent_group: tuple[int, ...]
    inter_context: int
    fn: Callable[..., Any]
    args: tuple
    world_name: str
    name: str
    #: route self-sends through the router so the driver-side injector
    #: sees the same traffic it would on the threaded backend
    chaos_routed: bool = False
    #: rank epoch: 0 for the first incarnation, bumped on each respawn;
    #: stamped into every outgoing envelope so the router can fence the
    #: previous incarnation's zombie frames
    epoch: int = 0
    #: surgical rank recovery armed for this world (receivers stage
    #: shuffle streams and emit plane ACKs)
    recovery: bool = False
    trace_shard: str | None = None
    trace_epoch: float | None = None
    trace_meta: dict = field(default_factory=dict)
    #: where this rank persists its sampling-profiler aggregate (the
    #: ``.prof-`` sibling of the trace shard); None = profiling off or
    #: thread backend (which publishes in-process instead)
    profile_shard: str | None = None


class WorkerTransport(Transport):
    """One rank's view of the world: its own mailbox + the router link."""

    def __init__(
        self,
        abort_flag: AbortFlag,
        gid: int,
        conn: FrameConnection,
        chaos_routed: bool,
        epoch: int = 0,
    ) -> None:
        self.abort_flag = abort_flag
        self.fault_injector = None
        self._gid = gid
        self._conn = conn
        self._endpoint = Endpoint(gid, abort_flag, None)
        self._chaos_routed = chaos_routed
        self._epoch = epoch

    def register(self, gid: int) -> Endpoint:
        if gid != self._gid:
            raise MPIError(f"worker process hosts rank {self._gid}, not {gid}")
        return self._endpoint

    def mailbox(self, gid: int) -> Endpoint:
        if gid != self._gid:
            raise MPIError(
                f"rank {gid}'s mailbox lives in another process "
                f"(this one hosts {self._gid})"
            )
        return self._endpoint

    def local_endpoints(self) -> Iterable[Endpoint]:
        return (self._endpoint,)

    def deposit(self, dest: int, envelope: Envelope) -> None:
        if dest == self._gid and not self._chaos_routed:
            self._endpoint.deposit(envelope)
            return
        try:
            self._conn.send(_encode_envelope(dest, envelope, epoch=self._epoch))
        except OSError:
            self.abort_flag.trip("lost connection to the mpidrun router")
            self._endpoint.wake()
            self.abort_flag.check()
        envelope.delivered.set()


class WorkerRuntime:
    """Runtime proxy inside a worker process.

    Quacks like :class:`~repro.mpi.runtime.BaseRuntime` for everything a
    communicator or the engine touches (deposit/mailbox/abort/context
    allocation/spawn), forwarding global concerns to the router over the
    wire while keeping matching and abort state process-local.
    """

    launcher = "processes"

    def __init__(self, spec: WorkerSpec, conn: FrameConnection) -> None:
        self._spec = spec
        self._conn = conn
        self.abort_flag = AbortFlag()
        self.fault_injector = None
        #: this incarnation's epoch / recovery flag (read by the shuffle
        #: layer to enable staging receivers and epoch-reset streams)
        self.rank_epoch = spec.epoch
        self.rank_recovery = spec.recovery
        self.profile_shard = spec.profile_shard
        self._transport = WorkerTransport(
            self.abort_flag, spec.gid, conn, spec.chaos_routed, epoch=spec.epoch
        )
        self._failure_records: list[FailureRecord] = []
        self._rpc_lock = threading.Lock()
        self._rpc_seq = 0
        self._rpc_pending: dict[int, queue.SimpleQueue] = {}
        self._closing = False
        self._receiver = threading.Thread(
            target=self._recv_loop, name=f"{spec.name}-wire", daemon=True
        )
        self._receiver.start()

    # -- BaseRuntime surface --------------------------------------------------
    @property
    def transport(self) -> Transport:
        return self._transport

    def mailbox(self, gid: int) -> Endpoint:
        return self._transport.mailbox(gid)

    endpoint = mailbox

    def deposit(self, dest: int, envelope: Envelope) -> None:
        self._transport.deposit(dest, envelope)

    def allocate_context(self) -> int:
        return int(self._rpc("alloc_context", ()))

    def launch_children(
        self,
        fn: Callable[..., Any],
        nprocs: int,
        args: tuple,
        parent_group: tuple[int, ...],
        name: str,
    ) -> tuple[tuple[int, ...], int]:
        """Spawn-over-socket: the router forks the grandchild world.

        ``fn``/``args`` cross the wire, so worker-initiated spawns need
        module-level functions and picklable arguments (driver-initiated
        spawns inherit closures via fork and have no such limit).
        """
        group, inter_context = self._rpc(
            "spawn", (fn, nprocs, tuple(args), tuple(parent_group), name)
        )
        return tuple(group), int(inter_context)

    def abort(self, reason: str, errorcode: int = 1, record: bool = True) -> None:
        self._conn.try_send(
            wire.pack_obj_frame(FrameKind.ABORT_REQ, (reason, errorcode))
        )
        self.abort_flag.trip(reason, errorcode)
        self._transport.wake_all()

    def record_failure(self, record: FailureRecord) -> None:
        self._failure_records.append(record)
        self._conn.try_send(
            wire.pack_obj_frame(FrameKind.FAIL, ([record], None, False))
        )

    def ack_plane(self, plane_id: str) -> None:
        """Tell the router this rank fully consumed a shuffle plane, so
        its redelivery-buffer entries for that plane can be released."""
        if not self._spec.recovery:
            return
        self._conn.try_send(
            wire.pack_obj_frame(FrameKind.ACK, (self._spec.gid, plane_id))
        )

    def ship_telemetry(self, snap: dict) -> None:
        """Fire-and-forget one telemetry snapshot to the driver's hub.

        ``try_send`` keeps telemetry strictly best-effort: a full socket
        or a dying connection drops the snapshot instead of blocking the
        shipper thread or killing the rank.
        """
        self._conn.try_send(wire.pack_obj_frame(FrameKind.TELEMETRY, snap))

    def send_stack_dump(self) -> None:
        """Answer a DUMP_REQ: snapshot the live stacks and queue stats of
        every rank this process hosts and fire them back best-effort."""
        try:
            from repro.obs.profiler import PROFILER

            dumps = PROFILER.dump_stacks()
            if not dumps:
                # the engine has not registered yet (or already left):
                # still identify this incarnation so the doctor sees it
                dumps = [{
                    "rank": self._spec.rank,
                    "epoch": self._spec.epoch,
                    "pid": os.getpid(),
                    "ts": _now(),
                    "threads": [],
                }]
        except Exception:  # noqa: BLE001 - diagnostics never kill the rank
            return
        self._conn.try_send(wire.pack_obj_frame(FrameKind.DUMP, dumps))

    def record_error(self, comm: Any, exc: BaseException) -> None:
        import traceback as traceback_mod

        carried = getattr(exc, "failures", None)
        if carried:
            records = list(carried)
        else:
            records = [
                FailureRecord(
                    kind="rank",
                    worker=getattr(comm, "rank", self._spec.rank),
                    where=getattr(comm, "name", self._spec.world_name),
                    error=repr(exc),
                    traceback=traceback_mod.format_exc(),
                )
            ]
        self._failure_records.extend(records)
        try:
            blob = pickle.dumps(exc)
        except Exception:  # noqa: BLE001 - unpicklable exceptions still report
            blob = None
        self._conn.try_send(
            wire.pack_obj_frame(FrameKind.FAIL, (records, blob, True))
        )
        self.abort_flag.trip(f"rank {self._spec.rank}: {exc!r}")
        self._transport.wake_all()

    @property
    def failure_records(self) -> list[FailureRecord]:
        return list(self._failure_records)

    # -- wire plumbing --------------------------------------------------------
    def _rpc(self, method: str, params: tuple) -> Any:
        with self._rpc_lock:
            self._rpc_seq += 1
            req_id = self._rpc_seq
            box: queue.SimpleQueue = queue.SimpleQueue()
            self._rpc_pending[req_id] = box
        self._conn.send(wire.pack_obj_frame(FrameKind.RPC_REQ, (req_id, method, params)))
        deadline = _now() + _RPC_DEADLINE
        while True:
            try:
                ok, result = box.get(timeout=0.1)
                break
            except queue.Empty:
                self.abort_flag.check()
                if _now() > deadline:
                    raise MPIError(
                        f"router rpc {method!r} timed out after {_RPC_DEADLINE}s"
                    ) from None
        if not ok:
            raise MPIError(f"router rpc {method!r} failed: {result}")
        return result

    def _recv_loop(self) -> None:
        conn = self._conn
        while True:
            try:
                frame = conn.recv()
            except ConnectionError:
                frame = None
            if frame is None:
                if not self._closing and not self.abort_flag.is_set():
                    self.abort_flag.trip("lost connection to the mpidrun router")
                    self._transport.wake_all()
                return
            kind, body = frame
            if kind == FrameKind.ENVELOPE:
                (context, source, tag, origin, _dest, _epoch, trace, parent,
                 nbytes, flags, payload) = wire.unpack_envelope_frame(body)
                self._transport._endpoint.deposit(
                    _decode_envelope(
                        context, source, tag, origin, nbytes, flags, payload,
                        trace=trace, parent=parent,
                    )
                )
            elif kind == FrameKind.ABORT:
                reason, errorcode = wire.unpack_obj(body)
                self.abort_flag.trip(reason, errorcode)
                self._transport.wake_all()
            elif kind == FrameKind.RPC_REP:
                req_id, ok, result = wire.unpack_obj(body)
                box = self._rpc_pending.pop(req_id, None)
                if box is not None:
                    box.put((ok, result))
            elif kind == FrameKind.DUMP_REQ:
                # reply on the reader thread: dump_stacks never blocks
                self.send_stack_dump()
            else:
                _log.warning("worker: ignoring unknown frame kind %d", kind)

    def close(self) -> None:
        self._closing = True
        self._conn.try_send(wire.pack_frame(FrameKind.BYE))
        self._conn.close()


def launch_worker_processes(
    runtime: Any,
    fn: Callable[..., Any],
    args: tuple,
    group: tuple[int, ...],
    world_context: int,
    parent_group: tuple[int, ...],
    inter_context: int,
    name: str,
) -> list[tuple[Any, WorkerSpec]]:
    """Fork one process per rank of a spawned world; returns
    ``[(Process, WorkerSpec), ...]`` for the runtime to join."""
    import multiprocessing

    transport: RouterTransport = runtime.transport
    transport.expect(group, name=name)
    recovery = getattr(runtime, "rank_recovery_enabled", False)
    if recovery:
        transport.watch_world(group, world_context)
    ctx = multiprocessing.get_context(runtime.start_method)
    shard_prefix = runtime.trace_shard_prefix
    launched: list[tuple[Any, WorkerSpec]] = []
    for rank, gid in enumerate(group):
        spec = WorkerSpec(
            address=transport.address,
            gid=gid,
            group=group,
            rank=rank,
            world_context=world_context,
            parent_group=parent_group,
            inter_context=inter_context,
            fn=fn,
            args=args,
            world_name=name,
            name=f"{name}[{rank}]",
            chaos_routed=runtime.fault_injector is not None,
            recovery=recovery,
            trace_shard=(
                f"{shard_prefix}.shard-g{gid}.jsonl" if shard_prefix else None
            ),
            trace_epoch=_T._epoch if shard_prefix else None,
            trace_meta=dict(_T.meta) if shard_prefix else {},
            profile_shard=(
                f"{shard_prefix}.prof-g{gid}.jsonl" if shard_prefix else None
            ),
        )
        proc = ctx.Process(
            target=_worker_process_main, args=(spec,), name=spec.name, daemon=True
        )
        launched.append((proc, spec))
    for proc, _ in launched:
        proc.start()
    return launched


def _worker_process_main(spec: WorkerSpec) -> None:
    """Entry point of one worker process: handshake, run the rank, report."""
    from repro.mpi.comm import Intracomm
    from repro.mpi.intercomm import Intercomm

    _T.reset_after_fork(epoch=spec.trace_epoch)
    from repro.obs.profiler import PROFILER as _profiler

    _profiler.reset_after_fork()
    if spec.trace_shard:
        _T.enabled = True
        _T.meta = dict(spec.trace_meta)
    conn = wire.connect_local(spec.address, timeout=30.0, retries=4)
    conn.send(
        wire.pack_obj_frame(FrameKind.HELLO, (spec.gid, os.getpid(), spec.epoch))
    )
    runtime = WorkerRuntime(spec, conn)
    comm = Intracomm(
        runtime, spec.world_context, spec.group, spec.rank, name=spec.world_name
    )
    comm.parent = Intercomm(
        runtime,
        spec.inter_context,
        local_group=spec.group,
        remote_group=spec.parent_group,
        rank=spec.rank,
        side=1,
        name=f"{spec.world_name}.parent",
    )
    _T.bind(spec.gid)
    exitcode = 0
    try:
        spec.fn(comm, *spec.args)
    except MPIAbort:
        pass  # a peer failed first; the driver holds the original record
    except BaseException as exc:  # noqa: BLE001 - must report before dying
        runtime.record_error(comm, exc)
        exitcode = 1
    finally:
        if spec.trace_shard:
            _write_trace_shard(spec.trace_shard)
        runtime.close()
    sys.exit(exitcode)


def _write_trace_shard(path: str) -> None:
    """Drain this process's tracer into a journal shard for the driver to
    merge (``obs.journal.merge_shards``)."""
    import json

    try:
        events = _T.drain()
        if not events:
            return
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")
    except Exception:  # noqa: BLE001 - tracing must never fail the rank
        _log.exception("failed to write trace shard %s", path)
