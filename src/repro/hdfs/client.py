"""DFS client: streaming writers/readers with locality-aware reads."""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import HDFSError
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import BlockInfo, NameNode


class DFSOutputStream:
    """Buffers written bytes and cuts them into blocks at block_size."""

    def __init__(self, client: "DFSClient", path: str) -> None:
        self._client = client
        self._path = path
        self._buffer = bytearray()
        self._closed = False

    def write(self, data: bytes) -> None:
        if self._closed:
            raise HDFSError(f"stream closed: {self._path}")
        self._buffer += data
        block_size = self._client.namenode.block_size
        while len(self._buffer) >= block_size:
            self._flush_block(bytes(self._buffer[:block_size]))
            del self._buffer[:block_size]

    def _flush_block(self, data: bytes) -> None:
        block = self._client.namenode.allocate_block(
            self._path, len(data), self._client.node_id
        )
        for node in block.locations:
            self._client.datanodes[node].store(block.block_id, data)

    def close(self) -> None:
        if self._closed:
            return
        if self._buffer:
            self._flush_block(bytes(self._buffer))
            self._buffer.clear()
        self._client.namenode.complete_file(self._path)
        self._closed = True

    def __enter__(self) -> "DFSOutputStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class DFSClient:
    """Client bound to one host (``node_id``), like a task's JVM.

    ``node_id=None`` models an off-cluster client: writes place no local
    replica and reads are never local.
    """

    def __init__(
        self,
        namenode: NameNode,
        datanodes: list[DataNode],
        node_id: int | None = None,
    ) -> None:
        self.namenode = namenode
        self.datanodes = datanodes
        self.node_id = node_id
        #: reads served from this client's own node (locality accounting)
        self.local_reads = 0
        self.remote_reads = 0

    # -- writes -----------------------------------------------------------------
    def create(self, path: str, overwrite: bool = False) -> DFSOutputStream:
        self.namenode.create(path, overwrite=overwrite)
        return DFSOutputStream(self, path)

    def write_file(self, path: str, data: bytes, overwrite: bool = False) -> None:
        with self.create(path, overwrite=overwrite) as stream:
            stream.write(data)

    # -- reads ------------------------------------------------------------------
    def _pick_replica(self, block: BlockInfo) -> int:
        """Prefer the local replica — the data-centric principle in action."""
        if self.node_id is not None and self.node_id in block.locations:
            self.local_reads += 1
            return self.node_id
        self.remote_reads += 1
        return block.locations[0]

    def read_block(self, block: BlockInfo) -> bytes:
        node = self._pick_replica(block)
        return self.datanodes[node].fetch(block.block_id)

    def read_file(self, path: str) -> bytes:
        return b"".join(self.iter_blocks(path))

    def iter_blocks(self, path: str) -> Iterator[bytes]:
        for block in self.namenode.get_block_locations(path):
            yield self.read_block(block)

    def read_blocks(self, path: str, indices: list[int]) -> bytes:
        """Read a subset of a file's blocks (an input split)."""
        blocks = self.namenode.get_block_locations(path)
        return b"".join(self.read_block(blocks[i]) for i in indices)

    # -- namespace passthroughs ---------------------------------------------------
    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def listdir(self, prefix: str) -> list[str]:
        return self.namenode.listdir(prefix)

    def delete(self, path: str) -> None:
        for block in self.namenode.delete(path):
            for node in block.locations:
                self.datanodes[node].drop(block.block_id)

    def rename(self, src: str, dst: str) -> None:
        self.namenode.rename(src, dst)

    def file_size(self, path: str) -> int:
        return self.namenode.file_meta(path).size
