"""MiniDFSCluster: one-call assembly of a NameNode + DataNodes."""

from __future__ import annotations

from repro.common.units import MiB
from repro.hdfs.client import DFSClient
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode


class MiniDFSCluster:
    """A complete in-memory HDFS deployment.

    >>> dfs = MiniDFSCluster(num_nodes=4, block_size=1 * MiB).client(0)
    >>> dfs.write_file("/data/a", b"hello")
    >>> dfs.read_file("/data/a")
    b'hello'
    """

    def __init__(
        self,
        num_nodes: int = 4,
        block_size: int = 4 * MiB,
        replication: int = 1,
        seed: int = 17,
    ) -> None:
        self.namenode = NameNode(
            num_datanodes=num_nodes,
            block_size=block_size,
            replication=replication,
            seed=seed,
        )
        self.datanodes = [DataNode(i) for i in range(num_nodes)]

    @property
    def num_nodes(self) -> int:
        return len(self.datanodes)

    def client(self, node_id: int | None = None) -> DFSClient:
        """A client homed on ``node_id`` (None = off-cluster)."""
        if node_id is not None and not 0 <= node_id < self.num_nodes:
            raise ValueError(f"node_id {node_id} out of range")
        return DFSClient(self.namenode, self.datanodes, node_id)

    def locality_map(self, path: str) -> list[tuple[int, tuple[int, ...]]]:
        """(block index, replica nodes) for scheduling decisions."""
        return [
            (i, block.locations)
            for i, block in enumerate(self.namenode.get_block_locations(path))
        ]

    def total_stored_bytes(self) -> int:
        return sum(dn.used_bytes() for dn in self.datanodes)
