"""NameNode: namespace and block placement.

Placement follows HDFS's default policy in a rack-unaware cluster: the
first replica lands on the writer's node (when it runs a DataNode), the
remaining replicas on distinct randomly-chosen other nodes.  A
deterministic RNG keeps test runs reproducible.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.common.errors import HDFSError


@dataclass(frozen=True)
class BlockInfo:
    """One block of a file."""

    block_id: int
    size: int
    locations: tuple[int, ...]  # datanode ids holding replicas


@dataclass
class FileMeta:
    """Namespace entry for one file."""

    path: str
    blocks: list[BlockInfo] = field(default_factory=list)
    complete: bool = False

    @property
    def size(self) -> int:
        return sum(b.size for b in self.blocks)


class NameNode:
    """Namespace + placement authority."""

    def __init__(
        self,
        num_datanodes: int,
        block_size: int,
        replication: int = 1,
        seed: int = 17,
    ) -> None:
        if num_datanodes < 1:
            raise HDFSError("need at least one datanode")
        if replication < 1:
            raise HDFSError("replication must be >= 1")
        self.num_datanodes = num_datanodes
        self.block_size = block_size
        self.replication = min(replication, num_datanodes)
        self._files: dict[str, FileMeta] = {}
        self._next_block = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    # -- namespace -------------------------------------------------------------
    def create(self, path: str, overwrite: bool = False) -> FileMeta:
        with self._lock:
            if path in self._files and not overwrite:
                raise HDFSError(f"file exists: {path}")
            meta = FileMeta(path)
            self._files[path] = meta
            return meta

    def complete_file(self, path: str) -> None:
        with self._lock:
            self._meta(path).complete = True

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._files

    def delete(self, path: str) -> list[BlockInfo]:
        """Remove a file; returns its blocks so the client can free them."""
        with self._lock:
            meta = self._files.pop(path, None)
            return list(meta.blocks) if meta else []

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            if dst in self._files:
                raise HDFSError(f"destination exists: {dst}")
            meta = self._files.pop(src, None)
            if meta is None:
                raise HDFSError(f"no such file: {src}")
            meta.path = dst
            self._files[dst] = meta

    def listdir(self, prefix: str) -> list[str]:
        """All file paths under ``prefix`` (path-component aware)."""
        prefix = prefix.rstrip("/")
        with self._lock:
            return sorted(
                p
                for p in self._files
                if p == prefix or p.startswith(prefix + "/")
            )

    def file_meta(self, path: str) -> FileMeta:
        with self._lock:
            return self._meta(path)

    def _meta(self, path: str) -> FileMeta:
        try:
            return self._files[path]
        except KeyError:
            raise HDFSError(f"no such file: {path}") from None

    # -- placement -------------------------------------------------------------
    def allocate_block(self, path: str, size: int, writer_node: int | None) -> BlockInfo:
        """Allocate one block: writer-local first replica, random others."""
        with self._lock:
            meta = self._meta(path)
            if meta.complete:
                raise HDFSError(f"file is closed: {path}")
            locations: list[int] = []
            if writer_node is not None and 0 <= writer_node < self.num_datanodes:
                locations.append(writer_node)
            others = [n for n in range(self.num_datanodes) if n not in locations]
            self._rng.shuffle(others)
            locations.extend(others[: self.replication - len(locations)])
            block = BlockInfo(self._next_block, size, tuple(locations))
            self._next_block += 1
            meta.blocks.append(block)
            return block

    def get_block_locations(self, path: str) -> list[BlockInfo]:
        """The locality map used by data-centric task scheduling."""
        with self._lock:
            return list(self._meta(path).blocks)

    # -- reports ----------------------------------------------------------------
    def total_bytes(self, prefix: str = "") -> int:
        with self._lock:
            return sum(
                meta.size
                for path, meta in self._files.items()
                if path.startswith(prefix)
            )

    def block_distribution(self) -> dict[int, int]:
        """datanode id -> replica count (for placement-balance tests)."""
        counts: dict[int, int] = {n: 0 for n in range(self.num_datanodes)}
        with self._lock:
            for meta in self._files.values():
                for block in meta.blocks:
                    for node in block.locations:
                        counts[node] += 1
        return counts
