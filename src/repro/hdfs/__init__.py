"""Mini-HDFS: a block-based distributed filesystem substrate.

Hadoop's and DataMPI's data-centric scheduling both hinge on HDFS
semantics: files split into fixed-size blocks, blocks replicated across
DataNodes, and ``getBlockLocations`` exposing which hosts store each
block so tasks can be scheduled data-local (paper §IV-B: "a utility
function is designed to locally load data from HDFS for O tasks by their
ranks and the communicator size").

The implementation is in-memory (one :class:`~repro.hdfs.datanode.DataNode`
per simulated host), with HDFS's writer-local first-replica placement —
the property that makes map-side locality possible at all.
"""

from repro.hdfs.client import DFSClient
from repro.hdfs.cluster import MiniDFSCluster
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import BlockInfo, FileMeta, NameNode

__all__ = [
    "NameNode",
    "DataNode",
    "DFSClient",
    "MiniDFSCluster",
    "BlockInfo",
    "FileMeta",
]
