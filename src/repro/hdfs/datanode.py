"""DataNode: replica storage for one simulated host."""

from __future__ import annotations

import threading

from repro.common.errors import HDFSError


class DataNode:
    """In-memory block store; tracks read/write byte counters so resource
    profiling can attribute disk traffic to hosts."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._blocks: dict[int, bytes] = {}
        self._lock = threading.Lock()
        self.bytes_written = 0
        self.bytes_read = 0

    def store(self, block_id: int, data: bytes) -> None:
        with self._lock:
            self._blocks[block_id] = data
            self.bytes_written += len(data)

    def fetch(self, block_id: int) -> bytes:
        with self._lock:
            try:
                data = self._blocks[block_id]
            except KeyError:
                raise HDFSError(
                    f"datanode {self.node_id} has no block {block_id}"
                ) from None
            self.bytes_read += len(data)
            return data

    def has_block(self, block_id: int) -> bool:
        with self._lock:
            return block_id in self._blocks

    def drop(self, block_id: int) -> None:
        with self._lock:
            self._blocks.pop(block_id, None)

    def used_bytes(self) -> int:
        with self._lock:
            return sum(len(b) for b in self._blocks.values())

    def block_count(self) -> int:
        with self._lock:
            return len(self._blocks)
