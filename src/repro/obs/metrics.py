"""Windowed runtime metrics: counters, gauges, histograms, and a sampler.

The registry is the write side — cheap enough for hot paths (a counter
``inc`` is one lock-free int add; CPython's GIL makes it atomic for our
purposes).  The :class:`WindowedSampler` is the read side: it snapshots
every metric on an interval into :class:`~repro.common.stats.TimeSeries`
so a real run reproduces the paper's Fig-11-style utilization series.
Process CPU and RSS are sampled alongside (stdlib ``os.times`` /
``resource``; no external dependencies).

The clock and the loop are injectable, so tests drive ``sample_once``
with a fake clock and get bit-identical series.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable

from repro.common.stats import TimeSeries, percentile, summarize

try:  # not on every platform; gate instead of hard-requiring
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "WindowedSampler"]


class Counter:
    """Monotonic event count (records shuffled, bytes sent...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Point-in-time level; either set explicitly or read via callback."""

    __slots__ = ("name", "_value", "fn")

    def __init__(self, name: str, fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self._value


class Histogram:
    """Bounded reservoir of samples with percentile summaries.

    The reservoir is deterministic: it keeps every sample until
    ``capacity``, then thins itself by dropping every other retained
    sample and doubling the keep-stride — so long-running series stay
    bounded while remaining evenly spread over time, with no random
    draws (reproducible runs are worth more than perfect uniformity).
    """

    __slots__ = ("name", "capacity", "samples", "count", "total", "_stride", "_skip")

    def __init__(self, name: str, capacity: int = 1024) -> None:
        self.name = name
        self.capacity = max(2, capacity)
        self.samples: list[float] = []
        self.count = 0
        self.total = 0.0
        self._stride = 1
        self._skip = 0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._skip += 1
        if self._skip < self._stride:
            return
        self._skip = 0
        self.samples.append(value)
        if len(self.samples) >= self.capacity:
            self.samples = self.samples[::2]
            self._stride *= 2

    def percentile(self, q: float) -> float:
        return percentile(self.samples, q)

    def summary(self) -> dict[str, float]:
        out = summarize(self.samples)
        out["count"] = float(self.count)
        out["mean"] = self.total / self.count if self.count else 0.0
        return out


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self.counters.get(name)
            if c is None:
                c = self.counters[name] = Counter(name)
            return c

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        with self._lock:
            g = self.gauges.get(name)
            if g is None:
                g = self.gauges[name] = Gauge(name, fn)
            elif fn is not None:
                g.fn = fn
            return g

    def histogram(self, name: str, capacity: int = 1024) -> Histogram:
        with self._lock:
            h = self.histograms.get(name)
            if h is None:
                h = self.histograms[name] = Histogram(name, capacity)
            return h

    def snapshot(self) -> dict[str, float]:
        """Current value of every counter and gauge (histograms report
        their sample count; full summaries come from the objects)."""
        with self._lock:
            out: dict[str, float] = {}
            for name, c in self.counters.items():
                out[name] = float(c.value)
            for name, g in self.gauges.items():
                out[name] = g.value
            for name, h in self.histograms.items():
                out[f"{name}.count"] = float(h.count)
            return out


def _process_cpu_seconds() -> float:
    t = os.times()
    return t.user + t.system


try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # non-POSIX
    _PAGE_SIZE = 4096


def _process_rss_bytes() -> float:
    # /proc/self/statm field 2 is *current* resident pages — the series
    # can go down after frees.  ru_maxrss is the lifetime high-water
    # mark, kept only as the non-Linux fallback.
    try:
        with open("/proc/self/statm", "rb") as f:
            return float(int(f.read().split()[1]) * _PAGE_SIZE)
    except (OSError, ValueError, IndexError):
        pass
    if _resource is None:
        return 0.0
    # ru_maxrss is KiB on Linux, bytes on macOS; normalize heuristically
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    return float(rss * 1024 if rss < 1 << 32 else rss)


class WindowedSampler:
    """Interval snapshotter: registry -> per-metric TimeSeries.

    ``start()`` runs a daemon thread; tests instead call
    :meth:`sample_once` directly with a fake clock for deterministic
    series.  Counter series record the cumulative value; consumers can
    difference adjacent samples for rates (the inspector does).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
        include_process: bool = True,
    ) -> None:
        self.registry = registry
        self.interval = interval
        self.clock = clock
        self.include_process = include_process
        self.series: dict[str, TimeSeries] = {}
        self._epoch: float | None = None
        self._cpu0 = 0.0
        self._last: tuple[float, float] | None = None  # (t, cpu) for utilization
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling -----------------------------------------------------------
    def _series(self, name: str) -> TimeSeries:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = TimeSeries(name=name)
        return s

    def sample_once(self, now: float | None = None) -> None:
        """Take one snapshot at time ``now`` (defaults to the clock)."""
        t = self.clock() if now is None else now
        if self._epoch is None:
            self._epoch = t
            self._cpu0 = _process_cpu_seconds() if self.include_process else 0.0
        rel = t - self._epoch
        for name, value in self.registry.snapshot().items():
            self._series(name).add(rel, value)
        if self.include_process:
            cpu = _process_cpu_seconds()
            self._series("process.cpu.seconds").add(rel, cpu - self._cpu0)
            if self._last is not None:
                dt = t - self._last[0]
                if dt > 0:
                    util = (cpu - self._last[1]) / dt * 100.0
                    self._series("process.cpu.percent").add(rel, util)
            self._last = (t, cpu)
            self._series("process.rss.bytes").add(rel, _process_rss_bytes())

    # -- the interval thread ------------------------------------------------
    def start(self) -> "WindowedSampler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self.sample_once()

        def loop() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.sample_once()
                except Exception:  # noqa: BLE001 - sampling must never kill a job
                    return

        self._thread = threading.Thread(
            target=loop, daemon=True, name="obs-sampler"
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None
        self.sample_once()  # closing sample so short jobs still get >= 2 points

    def as_journal_series(self) -> dict[str, tuple[list[float], list[float]]]:
        return {
            name: (list(s.times), list(s.values))
            for name, s in self.series.items()
        }
