"""Observability: the flight recorder threaded through the whole stack.

Three pieces, all designed to cost nothing when off:

* :mod:`repro.obs.tracer` — nestable spans, instant events and counter
  samples recorded per thread into lock-free (thread-local) buffers.
  The process-wide singleton :data:`~repro.obs.tracer.TRACER` is what
  the instrumented layers (transport, shuffle, sorter, engine,
  checkpoint) talk to; its ``enabled`` flag is the only thing a
  disabled hot path ever touches.
* :mod:`repro.obs.journal` — the per-job JSONL event journal and the
  Chrome ``chrome://tracing`` / Perfetto ``trace.json`` exporter.
* :mod:`repro.obs.metrics` — a windowed :class:`MetricsRegistry`
  (counter / gauge / histogram) sampled on an interval thread into
  Fig-11-style utilization time series.
* :mod:`repro.obs.telemetry` — the live telemetry plane: per-rank
  snapshot builders and the driver-side :class:`TelemetryHub` that
  merges them into cluster rollups behind a Prometheus/RPC endpoint
  (see docs/OBSERVABILITY.md and ``repro top``).

:mod:`repro.obs.inspect` turns a journal back into the paper's tables:
per-phase time breakdown, top-N slowest tasks, failure timeline.
"""

from repro.obs.tracer import TRACER, Tracer, flow_id
from repro.obs.journal import (
    Journal,
    JournalWriter,
    export_chrome,
    read_journal,
    to_chrome_trace,
    write_journal,
)
from repro.obs.metrics import MetricsRegistry, WindowedSampler
from repro.obs.telemetry import TelemetryHub, build_snapshot

__all__ = [
    "TRACER",
    "TelemetryHub",
    "Tracer",
    "Journal",
    "JournalWriter",
    "MetricsRegistry",
    "WindowedSampler",
    "build_snapshot",
    "export_chrome",
    "flow_id",
    "read_journal",
    "to_chrome_trace",
    "write_journal",
]
