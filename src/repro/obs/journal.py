"""The per-job JSONL event journal and the Chrome/Perfetto exporter.

A journal is a newline-delimited JSON file with one record per line,
each tagged with a ``type``:

* ``meta``    — job name, nprocs, mode, attempt count, schema version
* ``event``   — one tracer event (``ph`` is ``X`` span / ``i`` instant /
  ``C`` counter; ``ts``/``dur`` in seconds relative to the job epoch)
* ``series``  — one windowed metrics time series (``times``/``values``)
* ``summary`` — driver-side digest: per-worker phase times and wall,
  merged job phase times, per-task metrics, failure timeline

The format is append-friendly (a crashed run still has a parsable
prefix) and greppable.  :func:`to_chrome_trace` converts a journal to
the Chrome ``trace.json`` format: load it at ``chrome://tracing`` or
https://ui.perfetto.dev.  Each rank becomes a process lane, each thread
a named track; counters render as counter tracks.
"""

from __future__ import annotations

import glob as _glob
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "JOURNAL_VERSION",
    "Journal",
    "JournalWriter",
    "export_chrome",
    "merge_shards",
    "read_journal",
    "to_chrome_trace",
    "write_journal",
]

JOURNAL_VERSION = 1


class JournalWriter:
    """Streams journal records to ``path`` (one JSON object per line)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._f = open(path, "w", encoding="utf-8")

    def _write(self, record: dict) -> None:
        self._f.write(json.dumps(record, default=repr, sort_keys=False))
        self._f.write("\n")

    def write_meta(self, **meta: Any) -> None:
        self._write({"type": "meta", "version": JOURNAL_VERSION, **meta})

    def write_event(self, event: dict) -> None:
        self._write({"type": "event", **event})

    def write_events(self, events: Iterable[dict]) -> None:
        for event in events:
            self.write_event(event)

    def write_series(
        self, name: str, times: list[float], values: list[float]
    ) -> None:
        self._write(
            {"type": "series", "name": name, "times": times, "values": values}
        )

    def write_profile(self, profile: dict) -> None:
        """One rank's sampling-profiler aggregate (collapsed stacks per
        phase bucket; see :mod:`repro.obs.profiler`)."""
        self._write({"type": "profile", **profile})

    def write_summary(self, summary: dict) -> None:
        self._write({"type": "summary", **summary})

    def close(self) -> None:
        self._f.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False


@dataclass
class Journal:
    """A parsed journal."""

    meta: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)
    series: dict[str, tuple[list[float], list[float]]] = field(default_factory=dict)
    summary: dict = field(default_factory=dict)
    #: sampling-profiler aggregates, one per (rank, epoch)
    profiles: list[dict] = field(default_factory=list)

    @property
    def spans(self) -> list[dict]:
        return [e for e in self.events if e.get("ph") == "X"]

    @property
    def instants(self) -> list[dict]:
        return [e for e in self.events if e.get("ph") == "i"]

    @property
    def counters(self) -> list[dict]:
        return [e for e in self.events if e.get("ph") == "C"]


def write_journal(
    path: str,
    meta: dict,
    events: Iterable[dict],
    series: dict[str, tuple[list[float], list[float]]] | None = None,
    summary: dict | None = None,
) -> str:
    """One-shot journal write; returns ``path``."""
    with JournalWriter(path) as w:
        w.write_meta(**meta)
        w.write_events(events)
        for name, (times, values) in (series or {}).items():
            w.write_series(name, times, values)
        if summary is not None:
            w.write_summary(summary)
    return path


def merge_shards(journal_path: str, cleanup: bool = True) -> list[dict]:
    """Collect per-process journal shards written by worker processes.

    On the process backend every worker drains its own tracer into
    ``<journal_path>.a<attempt>.shard-g<gid>.jsonl`` (raw event dicts, one
    per line, timestamps already on the driver's epoch).  The driver calls
    this while writing the merged journal; shard files are deleted after
    a successful read so reruns do not double-count.
    """
    events: list[dict] = []
    for shard in sorted(_glob.glob(f"{_glob.escape(journal_path)}.a*.shard-*.jsonl")):
        try:
            with open(shard, "r", encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except json.JSONDecodeError:
                        continue  # torn tail of a crashed worker
        except OSError:
            continue
        if cleanup:
            try:
                os.unlink(shard)
            except OSError:
                pass
    events.sort(key=lambda e: e.get("ts", 0.0))
    return events


def read_journal(path: str) -> Journal:
    """Parse a JSONL journal (tolerates a truncated final line)."""
    journal = Journal()
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a crashed run
            kind = record.pop("type", None)
            if kind == "meta":
                journal.meta = record
            elif kind == "event":
                journal.events.append(record)
            elif kind == "series":
                journal.series[record["name"]] = (
                    record["times"], record["values"]
                )
            elif kind == "summary":
                journal.summary = record
            elif kind == "profile":
                journal.profiles.append(record)
    return journal


def to_chrome_trace(journal: Journal) -> dict:
    """Convert to the Chrome ``trace.json`` object format.

    ``pid`` is the rank (driver/unattributed threads land on pid 0),
    ``tid`` is a dense index per thread name with ``thread_name``
    metadata, timestamps are microseconds.

    Spans whose args carry a ``flow_out`` / ``flow_in`` id (the shuffle
    send/recv instrumentation) additionally emit Chrome flow events: a
    flow start (``ph: s``) anchored to the sending span and a binding
    flow finish (``ph: f``, ``bp: e``) anchored to the receiving span,
    sharing the 63-bit flow id minted by :func:`repro.obs.tracer.flow_id`.
    Perfetto renders these as arrows from each send to its receive —
    cross-rank causal traces.
    """
    trace_events: list[dict] = []
    tids: dict[tuple[int, str], int] = {}
    pids_named: set[int] = set()

    def lane(rank: int, tid_name: str) -> tuple[int, int]:
        pid = rank if rank >= 0 else 0
        key = (pid, tid_name)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len([k for k in tids if k[0] == pid])
            trace_events.append(
                {
                    "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                    "args": {"name": tid_name},
                }
            )
            if pid not in pids_named:
                pids_named.add(pid)
                label = f"rank {pid}" if rank >= 0 else "driver"
                trace_events.append(
                    {
                        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                        "args": {"name": label},
                    }
                )
        return pid, tid

    for event in journal.events:
        ph = event.get("ph")
        pid, tid = lane(event.get("rank", -1), event.get("tid", "?"))
        out: dict[str, Any] = {
            "ph": ph,
            "pid": pid,
            "tid": tid,
            "name": event.get("name", "?"),
            "ts": round(event.get("ts", 0.0) * 1e6, 3),
        }
        if event.get("cat"):
            out["cat"] = event["cat"]
        if ph == "X":
            out["dur"] = round(event.get("dur", 0.0) * 1e6, 3)
            args = event.get("args")
            if args:
                out["args"] = args
                flow_out = args.get("flow_out")
                flow_in = args.get("flow_in")
                # anchor flow endpoints to the span *end* (ts + dur): the
                # send span always closes before its matched recv span
                # does, so the arrow points forward in time
                end_ts = round((event.get("ts", 0.0) + event.get("dur", 0.0)) * 1e6, 3)
                if flow_out:
                    trace_events.append(
                        {
                            "ph": "s", "pid": pid, "tid": tid, "ts": end_ts,
                            "id": flow_out, "name": "shuffle.flow",
                            "cat": "shuffle",
                        }
                    )
                if flow_in:
                    trace_events.append(
                        {
                            "ph": "f", "bp": "e", "pid": pid, "tid": tid,
                            "ts": end_ts, "id": flow_in,
                            "name": "shuffle.flow", "cat": "shuffle",
                        }
                    )
        elif ph == "i":
            out["s"] = "t"  # thread-scoped instant
            if event.get("args"):
                out["args"] = event["args"]
        elif ph == "C":
            out["args"] = event.get("args", {"value": 0})
        else:
            continue
        trace_events.append(out)

    for name, (times, values) in journal.series.items():
        for t, v in zip(times, values):
            trace_events.append(
                {
                    "ph": "C", "pid": 0, "tid": 0, "name": name,
                    "ts": round(t * 1e6, 3), "args": {"value": v},
                }
            )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(journal.meta),
    }


def export_chrome(journal: Journal, path: str) -> str:
    """Write ``trace.json`` for chrome://tracing / Perfetto; returns path."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(to_chrome_trace(journal), f, default=repr)
    return path
