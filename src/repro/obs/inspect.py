"""Journal inspector: the engine room of the ``repro trace`` subcommand.

Turns a flight-recorder journal back into the paper's analyses:

* **per-phase time table** — compute / partition-sort / communicate /
  merge / spill / checkpoint, per worker and merged (Fig. 5's overlap
  story, from a *real* run);
* **coverage** — the fraction of each worker's wall time the disjoint
  phase buckets explain (the acceptance bar is >= 95%);
* **top-N slowest tasks** — from the per-task metrics table;
* **failure timeline** — supervision records and fault-injector firings
  in timestamp order.

Works from the driver-written summary record when present and falls
back to raw span aggregation, so a journal from a crashed run (no
summary line) still yields a report.
"""

from __future__ import annotations

from typing import Any

from repro.obs.journal import Journal

__all__ = [
    "COVERAGE_PHASES",
    "OVERLAY_PHASES",
    "coverage",
    "format_report",
    "phase_table",
    "summarize_journal",
]

#: disjoint main-thread buckets; their sum should explain a worker's wall
COVERAGE_PHASES = (
    "compute", "partition-sort", "communicate", "merge", "checkpoint", "control",
)
#: buckets measured on background threads; they overlap the ones above
OVERLAY_PHASES = ("spill",)


def _phase_times_from_spans(journal: Journal) -> dict[str, float]:
    """Fallback aggregation: sum span durations by name for phase spans."""
    out: dict[str, float] = {}
    for event in journal.spans:
        if event.get("cat") != "phase":
            continue
        name = event.get("name", "?")
        out[name] = out.get(name, 0.0) + float(event.get("dur", 0.0))
    return out


def phase_table(journal: Journal) -> dict[str, float]:
    """Merged per-phase seconds (summary record preferred, spans else)."""
    summary = journal.summary
    if summary.get("phase_times"):
        return {k: float(v) for k, v in summary["phase_times"].items()}
    return _phase_times_from_spans(journal)


def coverage(journal: Journal) -> float:
    """Mean fraction of per-worker wall time the disjoint buckets explain.

    1.0 means the recorder accounted for every second each worker spent;
    anything >= 0.95 satisfies the flight-recorder acceptance bar.
    Returns 0.0 when the journal has no per-worker summary.
    """
    workers = journal.summary.get("workers") or []
    fractions: list[float] = []
    for worker in workers:
        wall = float(worker.get("wall_seconds", 0.0))
        if wall <= 0:
            continue
        phases = worker.get("phase_times", {})
        explained = sum(
            float(phases.get(name, 0.0)) for name in COVERAGE_PHASES
        )
        fractions.append(min(1.0, explained / wall))
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)


def top_tasks(journal: Journal, n: int = 10) -> list[dict]:
    """The N slowest task attempts, slowest first."""
    tasks = journal.summary.get("tasks")
    if not tasks:
        tasks = [
            {
                "kind": (e.get("args") or {}).get("kind", "?"),
                "task_id": (e.get("args") or {}).get("task", -1),
                "duration": float(e.get("dur", 0.0)),
                "worker": e.get("rank", -1),
                "records_emitted": (e.get("args") or {}).get("emitted", 0),
                "records_received": (e.get("args") or {}).get("received", 0),
            }
            for e in journal.spans
            if e.get("cat") == "task"
        ]
    return sorted(tasks, key=lambda t: -float(t.get("duration", 0.0)))[:n]


def failure_timeline(journal: Journal) -> list[dict]:
    """Failure / fault instants in time order (plus summary records)."""
    timeline = [
        {
            "ts": float(e.get("ts", 0.0)),
            "kind": e.get("name", "?"),
            "cat": e.get("cat", ""),
            "rank": e.get("rank", -1),
            "detail": e.get("args") or {},
        }
        for e in journal.instants
        if e.get("cat") in ("failure", "fault", "recovery")
    ]
    for record in journal.summary.get("failures", []):
        timeline.append(
            {
                "ts": float(record.get("ts", -1.0)),
                "kind": record.get("kind", "?"),
                "cat": "failure",
                "rank": record.get("worker", -1),
                "detail": record,
            }
        )
    timeline.sort(key=lambda f: f["ts"])
    return timeline


def summarize_journal(journal: Journal, n_tasks: int = 10) -> dict[str, Any]:
    """Everything the CLI report prints, as one dict (JSON-friendly)."""
    events = journal.events
    wall = journal.summary.get("wall_seconds")
    if wall is None and events:
        t0 = min(e.get("ts", 0.0) for e in events)
        t1 = max(
            e.get("ts", 0.0) + e.get("dur", 0.0) for e in events
        )
        wall = t1 - t0
    return {
        "job": journal.meta.get("job", "?"),
        "nprocs": journal.summary.get("nprocs", journal.meta.get("nprocs", 0)),
        "wall_seconds": float(wall or 0.0),
        "events": len(events),
        "spans": len(journal.spans),
        "phase_times": phase_table(journal),
        "coverage": coverage(journal),
        "top_tasks": top_tasks(journal, n_tasks),
        "failures": failure_timeline(journal),
        "restarts": journal.summary.get("restarts", 0),
        "recovery": {
            counter: int(
                (journal.summary.get("recovery") or {}).get(counter, 0)
            )
            for counter in (
                "respawns", "redelivered_frames", "stale_frames_dropped",
                "replays_dropped",
            )
        },
        "series": sorted(journal.series),
    }


def _fmt_seconds(s: float) -> str:
    return f"{s * 1000:.1f}ms" if s < 1.0 else f"{s:.2f}s"


def format_report(summary: dict[str, Any]) -> str:
    """Human-readable report for the terminal."""
    lines: list[str] = []
    lines.append(
        f"job {summary['job']}  wall={_fmt_seconds(summary['wall_seconds'])}  "
        f"nprocs={summary['nprocs']}  events={summary['events']}  "
        f"restarts={summary['restarts']}"
    )
    recovery = summary.get("recovery") or {}
    if any(recovery.values()):
        lines.append(
            "rank recovery: "
            f"respawns={recovery.get('respawns', 0)}  "
            f"redelivered_frames={recovery.get('redelivered_frames', 0)}  "
            f"stale_frames_dropped={recovery.get('stale_frames_dropped', 0)}  "
            f"replays_dropped={recovery.get('replays_dropped', 0)}"
        )
    phases = summary["phase_times"]
    if phases:
        lines.append("")
        lines.append("phase times (summed across workers):")
        total = sum(v for k, v in phases.items() if k in COVERAGE_PHASES) or 1.0
        order = [p for p in (*COVERAGE_PHASES, *OVERLAY_PHASES) if p in phases]
        order += [p for p in sorted(phases) if p not in order]
        for name in order:
            seconds = phases[name]
            overlay = " (overlaps)" if name in OVERLAY_PHASES else ""
            share = f"{seconds / total * 100:5.1f}%" if not overlay else "      "
            lines.append(
                f"  {name:<15} {_fmt_seconds(seconds):>10}  {share}{overlay}"
            )
        lines.append(
            f"  coverage of worker wall time: {summary['coverage'] * 100:.1f}%"
        )
    tasks = summary["top_tasks"]
    if tasks:
        lines.append("")
        lines.append(f"top {len(tasks)} slowest task attempts:")
        for t in tasks:
            lines.append(
                f"  {t.get('kind', '?')}-task {t.get('task_id', -1):>4}  "
                f"{_fmt_seconds(float(t.get('duration', 0.0))):>10}  "
                f"emitted={t.get('records_emitted', 0)} "
                f"received={t.get('records_received', 0)}"
            )
    failures = summary["failures"]
    if failures:
        lines.append("")
        lines.append("failure timeline:")
        for f in failures:
            ts = f["ts"]
            stamp = f"t+{_fmt_seconds(ts)}" if ts >= 0 else "t+?"
            detail = f["detail"]
            text = detail.get("error", "") if isinstance(detail, dict) else ""
            lines.append(f"  {stamp:>12}  [{f['cat']}] {f['kind']} {text}".rstrip())
    if summary["series"]:
        lines.append("")
        lines.append(
            "metric series: " + ", ".join(summary["series"])
        )
    return "\n".join(lines)
