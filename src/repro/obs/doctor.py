"""Repro doctor: automatic straggler and stall diagnosis.

The telemetry plane reports symptoms (straggler score, queue depth,
phase buckets); the profiler explains mechanisms (where the samples
land).  The :class:`Doctor` closes the loop on the driver side: a daemon
thread watches :class:`~repro.obs.telemetry.TelemetryHub` rollups for
**stall signatures** —

* *straggler*: busy-time straggler score (max busy / median busy, where
  busy = compute + partition-sort + merge + checkpoint; waiting phases
  are excluded because ranks blocked *on* the straggler mirror its
  wall) over a threshold; the finding attributes the slow rank's time
  using the profile summary riding its telemetry snapshots ("82% of
  samples in sorter.merge under merge");
* *stall*: a live rank whose snapshots keep arriving but whose phase
  clock stands still for longer than the stall window — the shape of a
  rank wedged inside a shuffle wait (phase buckets accrue only *after*
  a wait returns), which automatically triggers an **all-rank stack
  capture** over the DUMP wire frame;
* *silent*: a rank that stopped reporting entirely (snapshots aged out);
* *queue growth*: pending-envelope depth over a threshold;
* *redelivery churn*: recovery counters (respawns, redelivered frames,
  replays dropped) still climbing between evaluations;
* *shuffle skew*: max rank bytes-sent over the median, above threshold.

Findings are ranked by severity into a structured report surfaced three
ways: written to ``doctor.json``, attached to ``JobResult.doctor``, and
served live over the job's telemetry RPC endpoint for
``repro doctor <endpoint>``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.logging import get_logger
from repro.core.constants import (
    DOCTOR_INTERVAL_DEFAULT,
    DOCTOR_QUEUE_DEPTH_DEFAULT,
    DOCTOR_STALL_SECONDS_DEFAULT,
    DOCTOR_STRAGGLER_THRESHOLD_DEFAULT,
)

_log = get_logger("obs.doctor")

__all__ = ["Doctor", "DoctorConfig", "render_report"]

#: keep at most this many capture records in a report
MAX_CAPTURES = 8

# severity bands: stalls are acute, stragglers chronic, the rest hints
_SEV_STALL = 100.0
_SEV_SILENT = 90.0
_SEV_QUEUE = 50.0
_SEV_STRAGGLER = 10.0
_SEV_REDELIVERY = 5.0
_SEV_SKEW = 1.0

#: phases counted as *work* when scoring stragglers — communicate and
#: control are waiting, and waiting ranks mirror the straggler's wall
_BUSY_PHASES = ("compute", "partition-sort", "merge", "checkpoint")


@dataclass
class DoctorConfig:
    interval: float = DOCTOR_INTERVAL_DEFAULT
    straggler_threshold: float = DOCTOR_STRAGGLER_THRESHOLD_DEFAULT
    stall_seconds: float = DOCTOR_STALL_SECONDS_DEFAULT
    queue_depth: int = DOCTOR_QUEUE_DEPTH_DEFAULT
    skew_threshold: float = 2.0
    #: seconds to wait after a DUMP_REQ broadcast for replies to land
    capture_grace: float = 0.5
    #: minimum seconds between automatic captures
    capture_backoff: float = 2.0


def _phase_attribution(snap: dict[str, Any]) -> dict[str, Any]:
    """Attribute a rank's time: prefer profiler samples (mechanism),
    fall back to phase-bucket wall times (symptom)."""
    profile = snap.get("profile") or {}
    samples = int(profile.get("samples", 0) or 0)
    if samples > 0:
        phases: dict[str, int] = dict(profile.get("phases", {}))
        top_phase = max(phases, key=phases.get) if phases else ""
        top_stack = ""
        for entry in profile.get("top", []):
            # entries are [phase, collapsed_stack, count], ranked
            if len(entry) >= 3 and entry[0] == top_phase:
                top_stack = str(entry[1]).split(";")[-1]
                break
        return {
            "source": "profile",
            "phase": top_phase,
            "phase_pct": round(100.0 * phases.get(top_phase, 0) / samples, 1),
            "top_stack": top_stack,
            "samples": samples,
        }
    phases_s: dict[str, float] = dict(snap.get("phases", {}))
    phases_s.pop("spill", None)  # overlay, not wall coverage
    wall = sum(phases_s.values())
    top_phase = max(phases_s, key=phases_s.get) if phases_s else ""
    return {
        "source": "phases",
        "phase": top_phase,
        "phase_pct": round(100.0 * phases_s.get(top_phase, 0.0) / wall, 1)
        if wall > 0
        else 0.0,
        "top_stack": "",
        "samples": 0,
    }


class Doctor:
    """Driver-side diagnosis engine over a live :class:`TelemetryHub`."""

    def __init__(
        self,
        hub: Any,
        config: DoctorConfig | None = None,
        job: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.hub = hub
        self.config = config or DoctorConfig()
        self.job = job
        self._clock = clock
        self._lock = threading.Lock()
        #: rank -> (last observed wall_s, clock when it last advanced)
        self._progress: dict[int, tuple[float, float]] = {}
        #: rank -> clock when its stall was first seen (cleared on progress)
        self._stalled_since: dict[int, float] = {}
        self._recovery_last: dict[str, int] = {}
        self._recovery_churn: dict[str, int] = {}
        self._captures: list[dict] = []
        self._findings: list[dict] = []
        self._last_capture = 0.0
        self.evaluations = 0
        self._stop: threading.Event | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "Doctor":
        if self._thread is None:
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._loop, args=(self._stop,),
                name="datampi-doctor", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        stop, thread = self._stop, self._thread
        self._stop = self._thread = None
        if stop is not None:
            stop.set()
        if thread is not None:
            thread.join(timeout=5)

    def close(self) -> dict:
        """Stop the loop, run one final evaluation, return the report."""
        self.stop()
        try:
            self.evaluate()
        except Exception:  # noqa: BLE001 - a report beats a perfect report
            _log.exception("doctor: final evaluation failed")
        return self.report()

    def _loop(self, stop: threading.Event) -> None:
        while not stop.wait(self.config.interval):
            try:
                findings = self.evaluate()
            except Exception:  # noqa: BLE001 - diagnosis never kills the driver
                _log.exception("doctor: evaluation failed")
                continue
            if any(f["kind"] == "stall" for f in findings):
                now = self._clock()
                if now - self._last_capture >= self.config.capture_backoff:
                    self._last_capture = now
                    try:
                        self.capture("stall detected")
                    except Exception:  # noqa: BLE001
                        _log.exception("doctor: capture failed")

    # -- diagnosis -------------------------------------------------------------
    def evaluate(self) -> list[dict]:
        """One evaluation pass; returns (and stores) ranked findings."""
        rows = self.hub.per_rank()
        rollups = self.hub.rollups()
        now = self._clock()
        findings: list[dict] = []
        findings.extend(self._check_stalls(rows, now))
        findings.extend(self._check_straggler(rows, rollups))
        findings.extend(self._check_queues(rows))
        findings.extend(self._check_redelivery(rollups))
        findings.extend(self._check_skew(rollups))
        findings.sort(key=lambda f: -f["severity"])
        with self._lock:
            self._findings = findings
            self.evaluations += 1
        return findings

    def _check_stalls(self, rows: list[dict], now: float) -> list[dict]:
        cfg = self.config
        findings: list[dict] = []
        for row in rows:
            rank = row["rank"]
            if row["status"] == "done":
                self._progress.pop(rank, None)
                self._stalled_since.pop(rank, None)
                continue
            wall = float(row["wall_s"])
            held = self._progress.get(rank)
            if held is None or wall > held[0] + 1e-9:
                self._progress[rank] = (wall, now)
                self._stalled_since.pop(rank, None)
                continue
            stuck_for = now - held[1]
            if stuck_for < cfg.stall_seconds:
                continue
            self._stalled_since.setdefault(rank, now)
            silent = row["age_s"] > max(cfg.stall_seconds, 3.0)
            kind = "silent" if silent else "stall"
            attribution = self._attribution_for(rank)
            findings.append({
                "kind": kind,
                "rank": rank,
                "severity": (_SEV_SILENT if silent else _SEV_STALL) + stuck_for,
                "summary": (
                    f"rank {rank}: "
                    + (
                        "stopped reporting"
                        if silent
                        else "phase clock frozen"
                    )
                    + f" for {stuck_for:.1f}s at wall {wall:.2f}s"
                    + (
                        f" (last seen in {attribution['phase']})"
                        if attribution["phase"]
                        else ""
                    )
                ),
                "details": {
                    "stuck_for_s": round(stuck_for, 3),
                    "wall_s": wall,
                    "age_s": row["age_s"],
                    "pending": row["pending"],
                    **attribution,
                },
            })
        return findings

    def _check_straggler(self, rows: list[dict], rollups: dict) -> list[dict]:
        # the hub's wall-based straggler score is blind to skew: ranks
        # *waiting* on the straggler accrue the same wall in communicate
        # as the straggler does working.  Diagnose on busy time instead.
        busy = {
            row["rank"]: sum(
                row.get("phases", {}).get(phase, 0.0) for phase in _BUSY_PHASES
            )
            for row in rows
        }
        busys = sorted(busy.values())
        if len(busys) < 2 or busys[-1] <= 0.0:
            return []
        mid = len(busys) // 2
        median = (
            busys[mid] if len(busys) % 2 else 0.5 * (busys[mid - 1] + busys[mid])
        )
        # ranks that did (almost) no work can push the median to zero —
        # floor it at 1ms so the score stays finite and comparable
        score = round(busys[-1] / max(median, 1e-3), 4)
        if score < self.config.straggler_threshold:
            return []
        slow_rank = max(busy, key=busy.get)
        slow = next(row for row in rows if row["rank"] == slow_rank)
        attribution = self._attribution_for(slow["rank"])
        shuffle_skew = float(rollups.get("shuffle_skew", 0.0) or 0.0)
        pct = attribution["phase_pct"]
        where = attribution["top_stack"] or attribution["phase"] or "unknown"
        summary = (
            f"rank {slow['rank']}: {pct:.0f}% of "
            + ("samples" if attribution["source"] == "profile" else "wall time")
            + f" in {where}"
            + (
                f" under {attribution['phase']}"
                if attribution["top_stack"]
                else ""
            )
            + f" — straggler score {score:.1f}x"
        )
        if shuffle_skew >= self.config.skew_threshold:
            summary += f", shuffle skew {shuffle_skew:.1f}x"
        return [{
            "kind": "straggler",
            "rank": slow["rank"],
            # cap the score's contribution so an extreme straggler still
            # ranks below an acute stall
            "severity": _SEV_STRAGGLER + min(score, 50.0),
            "summary": summary,
            "details": {
                "straggler_score": score,
                "busy_s": round(busy[slow_rank], 4),
                "wall_straggler_score": float(
                    rollups.get("straggler_score", 0.0) or 0.0
                ),
                "shuffle_skew": shuffle_skew,
                "wall_s": slow["wall_s"],
                "phases": slow["phases"],
                **attribution,
            },
        }]

    def _check_queues(self, rows: list[dict]) -> list[dict]:
        findings = []
        for row in rows:
            pending = int(row.get("pending", 0))
            if pending >= self.config.queue_depth:
                findings.append({
                    "kind": "queue-growth",
                    "rank": row["rank"],
                    "severity": _SEV_QUEUE + pending / self.config.queue_depth,
                    "summary": (
                        f"rank {row['rank']}: {pending} envelopes pending "
                        f"({row.get('bytes_in', 0)} bytes) — consumer not "
                        f"keeping up"
                    ),
                    "details": {
                        "pending": pending,
                        "bytes_in": row.get("bytes_in", 0),
                    },
                })
        return findings

    def _check_redelivery(self, rollups: dict) -> list[dict]:
        recovery = {
            k: int(v or 0) for k, v in (rollups.get("recovery") or {}).items()
        }
        churn = {
            k: v - self._recovery_last.get(k, 0)
            for k, v in recovery.items()
            if v > self._recovery_last.get(k, 0)
        }
        self._recovery_last = recovery
        if churn:
            self._recovery_churn = churn
        if not churn:
            return []
        desc = ", ".join(f"{k} +{v}" for k, v in sorted(churn.items()))
        return [{
            "kind": "redelivery-churn",
            "rank": -1,
            "severity": _SEV_REDELIVERY + sum(churn.values()),
            "summary": f"recovery counters climbing: {desc}",
            "details": {"delta": churn, "totals": recovery},
        }]

    def _check_skew(self, rollups: dict) -> list[dict]:
        skew = float(rollups.get("shuffle_skew", 0.0) or 0.0)
        if skew < self.config.skew_threshold:
            return []
        return [{
            "kind": "shuffle-skew",
            "rank": -1,
            "severity": _SEV_SKEW + skew,
            "summary": (
                f"shuffle skew {skew:.1f}x: one rank ships "
                f"{skew:.1f}x the median bytes — check the partitioner"
            ),
            "details": {"shuffle_skew": skew},
        }]

    def _attribution_for(self, rank: int) -> dict[str, Any]:
        snap = self.hub.latest().get(rank)
        if snap is None:
            return {
                "source": "none", "phase": "", "phase_pct": 0.0,
                "top_stack": "", "samples": 0,
            }
        return _phase_attribution(snap)

    # -- capture ---------------------------------------------------------------
    def capture(self, reason: str = "manual") -> dict:
        """All-rank stack/queue capture: local dumps immediately, remote
        ranks via DUMP_REQ broadcast (replies land in the hub within the
        grace window)."""
        runtime = getattr(self.hub, "runtime", None)
        if runtime is not None:
            try:
                for dump in runtime.request_stack_dump():
                    self.hub.ingest_dump(dump)
            except Exception:  # noqa: BLE001 - capture what we can
                _log.exception("doctor: local stack dump failed")
            time.sleep(self.config.capture_grace)
        record = {
            "ts": time.time(),
            "reason": reason,
            "dumps": list(self.hub.dumps().values()),
        }
        with self._lock:
            self._captures.append(record)
            del self._captures[:-MAX_CAPTURES]
        return record

    # -- reporting -------------------------------------------------------------
    def report(self) -> dict:
        """The structured doctor.json payload (ranked findings first)."""
        with self._lock:
            findings = list(self._findings)
            captures = list(self._captures)
            evaluations = self.evaluations
        try:
            rollups = self.hub.rollups()
        except Exception:  # noqa: BLE001
            rollups = {}
        return {
            "job": self.job,
            "ts": time.time(),
            "evaluations": evaluations,
            "thresholds": {
                "straggler": self.config.straggler_threshold,
                "stall_seconds": self.config.stall_seconds,
                "queue_depth": self.config.queue_depth,
                "skew": self.config.skew_threshold,
            },
            "findings": findings,
            "captures": captures,
            "rollups": rollups,
        }

    def write_report(self, path: str) -> str:
        """Write doctor.json atomically; returns the path."""
        report = self.report()
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        os.replace(tmp, path)
        return path

    def rpc_target(self) -> dict[str, Callable]:
        """Extra handlers merged into the telemetry RPC endpoint."""
        return {
            "doctor_report": self.report,
            "doctor_capture": lambda: self.capture("rpc request"),
        }


def render_report(report: dict) -> str:
    """Human-readable rendering of a doctor report (CLI + logs)."""
    lines = [
        f"doctor report — job {report.get('job') or '?'} "
        f"({report.get('evaluations', 0)} evaluations)"
    ]
    findings = report.get("findings", [])
    if not findings:
        lines.append("  no findings: all ranks healthy")
    for i, finding in enumerate(findings, 1):
        lines.append(
            f"  {i}. [{finding.get('kind')}] {finding.get('summary')}"
        )
    captures = report.get("captures", [])
    if captures:
        last = captures[-1]
        lines.append(
            f"  captures: {len(captures)} (last: {last.get('reason')}, "
            f"{len(last.get('dumps', []))} rank dumps)"
        )
        for dump in last.get("dumps", []):
            for thread in dump.get("threads", []):
                stack = thread.get("stack") or ["<no frames>"]
                lines.append(
                    f"    rank {dump.get('rank')} {thread.get('name')} "
                    f"[{thread.get('phase')}] {stack[-1]}"
                )
    rollups = report.get("rollups", {})
    if rollups:
        lines.append(
            f"  rollups: straggler {rollups.get('straggler_score', 0)}x, "
            f"shuffle skew {rollups.get('shuffle_skew', 0)}x, "
            f"{rollups.get('ranks_done', 0)}/{rollups.get('ranks_expected', 0)}"
            f" ranks done"
        )
    return "\n".join(lines)
