"""Live telemetry plane: in-flight per-rank metrics and cluster rollups.

The flight recorder (:mod:`repro.obs.journal`) is post-hoc — nothing is
inspectable until ``mpidrun`` returns.  This module is the *live* half:
while a job runs, each rank's engine snapshots its metrics registry,
phase buckets, shuffle/queue state and recovery counters on an interval
(``mpi.d.telemetry.interval.seconds``) and ships the snapshot to the
driver:

* **process backend** — a TELEMETRY wire frame (fire-and-forget
  ``try_send``) through the rank's existing router connection;
* **thread backend** — a direct :meth:`TelemetryHub.ingest` call (the
  hub lives in the same interpreter).

The driver-side :class:`TelemetryHub` keeps a bounded ring per
``(rank, epoch)`` series — a reincarnated rank gets a *new* series, so
its counters never clobber its predecessor's — and merges the latest
snapshots into cluster rollups: per-phase p50/p99, a straggler score
(slowest rank vs median), shuffle skew (max bytes sent vs median) and
live recovery counts read off the runtime at scrape time.

Two read paths, both served by a :class:`repro.rpc.server.SocketRpcServer`
the driver starts next to the job (its address is written to
``mpi.d.telemetry.endpoint.file``):

* ``telemetry_scrape`` — Prometheus text exposition (``datampi_*``
  families), for scrapers;
* ``telemetry_ranks`` / ``telemetry_rollups`` / ``telemetry_meta`` —
  structured dicts, polled by the ``repro top <endpoint>`` CLI.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import deque
from typing import Any, Callable

from repro.obs.metrics import (
    MetricsRegistry,
    _process_cpu_seconds,
    _process_rss_bytes,
)

__all__ = ["TelemetryHub", "build_snapshot", "COVERAGE_PHASES"]

#: the disjoint engine phase buckets (mirrors ``repro.obs.inspect``)
COVERAGE_PHASES = (
    "compute", "partition-sort", "communicate", "merge", "checkpoint",
    "control",
)


def _escape_label_value(value: Any) -> str:
    """Prometheus 0.0.4 label-value escaping: backslash, double-quote
    and newline must be escaped inside the quoted label value."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value: Any, fmt: str = "{:.6f}", fallback: float = 0.0) -> str:
    """Render one sample value per the exposition format: non-numbers
    fall back, NaN/inf become the spellings Prometheus parses."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        number = fallback
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    return fmt.format(number)


def _as_int(value: Any, fallback: int = 0) -> int:
    """Defensive int coercion: snapshots cross the wire from rank code
    and may carry NaN/None where a count belongs."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        return fallback
    if math.isnan(number) or math.isinf(number):
        return fallback
    return int(number)


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile without the numpy dependency —
    snapshots are small (one value per rank) and the hub must import
    even where ``repro.common.stats`` (numpy) is unavailable."""
    if not values:
        return 0.0
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def build_snapshot(
    rank: int,
    epoch: int,
    seq: int,
    phases: dict[str, float],
    shuffle: dict[str, int] | None = None,
    queue: dict[str, int] | None = None,
    tasks: dict[str, int] | None = None,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """One rank-side telemetry snapshot (a plain dict: it crosses the
    wire pickled and must stay cheap to build on the shipper thread)."""
    return {
        "rank": rank,
        "epoch": epoch,
        "seq": seq,
        "pid": os.getpid(),
        "ts": time.time(),
        "phases": dict(phases),
        "shuffle": dict(shuffle or {}),
        "queue": dict(queue or {}),
        "tasks": dict(tasks or {}),
        "process": {
            "cpu_seconds": _process_cpu_seconds(),
            "rss_bytes": _process_rss_bytes(),
        },
        "metrics": registry.snapshot() if registry is not None else {},
    }


class TelemetryHub:
    """Driver-side aggregator of per-rank telemetry series.

    Series are keyed by ``(rank, epoch)`` in bounded rings: a respawned
    rank reports under a bumped epoch and therefore under a *fresh* key,
    so the dead incarnation's last counters survive next to (not under)
    its successor's.  ``latest()`` surfaces the highest epoch per rank.

    Thread-safe: router reader threads ingest while RPC handler threads
    scrape.
    """

    def __init__(self, ring: int = 256, job: str = "") -> None:
        self._lock = threading.Lock()
        self._ring = max(1, int(ring))
        self._series: dict[tuple[int, int], deque] = {}
        #: latest live stack dump per (rank, epoch) — DUMP frames on the
        #: process backend, direct ingest_dump on threads
        self._dumps: dict[tuple[int, int], dict] = {}
        self._done: set[int] = set()
        self._expected = 0
        self._runtime: Any = None
        self.job = job
        self.snapshots_ingested = 0
        self.dumps_ingested = 0
        self._t0 = time.time()

    # -- wiring ---------------------------------------------------------------
    def bind_runtime(self, runtime: Any) -> None:
        """Read live recovery counters off this runtime at scrape time."""
        self._runtime = runtime

    @property
    def runtime(self) -> Any:
        """The bound runtime (None before attach) — the doctor asks it
        for all-rank stack dumps."""
        return self._runtime

    def expect(self, nprocs: int) -> None:
        """The scheduler announces the world size (rollup denominators)."""
        with self._lock:
            self._expected = nprocs
            self._done.clear()

    def mark_done(self, rank: int) -> None:
        """The scheduler saw this rank's final report."""
        with self._lock:
            self._done.add(rank)

    # -- write path -----------------------------------------------------------
    def ingest(self, snap: dict[str, Any]) -> None:
        """Accept one snapshot (router reader thread or engine thread)."""
        if not isinstance(snap, dict) or "rank" not in snap:
            return
        key = (int(snap["rank"]), int(snap.get("epoch", 0)))
        with self._lock:
            ring = self._series.get(key)
            if ring is None:
                ring = self._series[key] = deque(maxlen=self._ring)
            ring.append(snap)
            self.snapshots_ingested += 1

    def ingest_dump(self, dump: dict[str, Any]) -> None:
        """Accept one live stack dump (DUMP frame reply or local call)."""
        if not isinstance(dump, dict) or "rank" not in dump:
            return
        key = (int(dump["rank"]), int(dump.get("epoch", 0)))
        with self._lock:
            self._dumps[key] = dump
            self.dumps_ingested += 1

    def dumps(self) -> dict[int, dict[str, Any]]:
        """Latest stack dump per rank, from that rank's highest epoch."""
        with self._lock:
            best: dict[int, tuple[int, dict]] = {}
            for (rank, epoch), dump in self._dumps.items():
                held = best.get(rank)
                if held is None or epoch > held[0]:
                    best[rank] = (epoch, dump)
            return {rank: dump for rank, (_e, dump) in best.items()}

    # -- read path ------------------------------------------------------------
    def series_keys(self) -> list[tuple[int, int]]:
        with self._lock:
            return sorted(self._series)

    def series(self, rank: int, epoch: int = 0) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._series.get((rank, epoch), ()))

    def latest(self) -> dict[int, dict[str, Any]]:
        """Newest snapshot per rank, from that rank's highest epoch."""
        with self._lock:
            best: dict[int, tuple[int, dict[str, Any]]] = {}
            for (rank, epoch), ring in self._series.items():
                if not ring:
                    continue
                held = best.get(rank)
                if held is None or epoch > held[0]:
                    best[rank] = (epoch, ring[-1])
            return {rank: snap for rank, (_e, snap) in best.items()}

    def _recovery_counts(self) -> dict[str, int]:
        runtime = self._runtime
        transport = getattr(runtime, "_transport", None)
        counts = {
            "respawns": int(getattr(runtime, "respawns", 0) or 0),
            "redelivered_frames": int(
                getattr(transport, "redelivered_frames", 0) or 0
            ),
            "stale_frames_dropped": int(
                getattr(transport, "stale_frames_dropped", 0) or 0
            ),
        }
        replays = duplicates = 0
        for snap in self.latest().values():
            shuffle = snap.get("shuffle", {})
            replays += int(shuffle.get("replays_dropped", 0))
            duplicates += int(shuffle.get("duplicates_dropped", 0))
        counts["replays_dropped"] = replays
        counts["duplicates_dropped"] = duplicates
        return counts

    def per_rank(self) -> list[dict[str, Any]]:
        """One row per live rank for the ``repro top`` table."""
        with self._lock:
            done = set(self._done)
        rows = []
        for rank, snap in sorted(self.latest().items()):
            phases = snap.get("phases", {})
            shuffle = snap.get("shuffle", {})
            q = snap.get("queue", {})
            rows.append(
                {
                    "rank": rank,
                    "epoch": snap.get("epoch", 0),
                    "pid": snap.get("pid", 0),
                    "seq": snap.get("seq", 0),
                    "age_s": round(time.time() - snap.get("ts", 0.0), 3),
                    "phases": {k: round(v, 4) for k, v in phases.items()},
                    "wall_s": round(sum(phases.values()), 4),
                    "bytes_sent": _as_int(shuffle.get("bytes_sent", 0)),
                    "records_received": _as_int(shuffle.get("records_received", 0)),
                    "pending": _as_int(q.get("pending", 0)),
                    "bytes_in": _as_int(q.get("bytes_in", 0)),
                    "cpu_s": round(
                        snap.get("process", {}).get("cpu_seconds", 0.0), 3
                    ),
                    "rss_mb": round(
                        snap.get("process", {}).get("rss_bytes", 0.0) / 2**20, 1
                    ),
                    "tasks": snap.get("tasks", {}),
                    "status": "done" if rank in done else "running",
                }
            )
        return rows

    def rollups(self) -> dict[str, Any]:
        """Cluster-level view computed from the latest snapshot per rank."""
        latest = self.latest()
        phase_q: dict[str, dict[str, float]] = {}
        for phase in COVERAGE_PHASES:
            values = [
                float(s.get("phases", {}).get(phase, 0.0))
                for s in latest.values()
            ]
            values = [v for v in values if v > 0.0]
            if values:
                phase_q[phase] = {
                    "p50": round(_percentile(values, 50.0), 6),
                    "p99": round(_percentile(values, 99.0), 6),
                    "max": round(max(values), 6),
                    "ranks": len(values),
                }
        walls = [
            sum(s.get("phases", {}).values()) for s in latest.values()
        ]
        sent = [
            float(s.get("shuffle", {}).get("bytes_sent", 0))
            for s in latest.values()
        ]

        def skew(values: list[float]) -> float:
            positive = [v for v in values if v > 0.0]
            if not positive:
                return 0.0
            med = _percentile(positive, 50.0)
            return round(max(positive) / med, 4) if med > 0 else 0.0

        with self._lock:
            done, expected = len(self._done), self._expected
            ingested = self.snapshots_ingested
        return {
            "ranks_reporting": len(latest),
            "ranks_done": done,
            "ranks_expected": expected,
            "snapshots_ingested": ingested,
            "uptime_s": round(time.time() - self._t0, 3),
            "phases": phase_q,
            "straggler_score": skew(walls),
            "shuffle_skew": skew(sent),
            "recovery": self._recovery_counts(),
        }

    # -- Prometheus text exposition -------------------------------------------
    def prometheus_text(self) -> str:
        """Text exposition format, 0.0.4 (the format every Prometheus
        scraper speaks); served over the job's SocketRpcServer."""
        lines: list[str] = []

        def family(name: str, kind: str, help_text: str) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        family("datampi_job_info", "gauge",
               "Constant 1; the job label carries the (escaped) job name.")
        lines.append(
            f'datampi_job_info{{job="{_escape_label_value(self.job)}"}} 1'
        )
        latest = self.latest()
        family("datampi_phase_seconds", "gauge",
               "Cumulative seconds per engine phase bucket, per rank.")
        for rank, snap in sorted(latest.items()):
            for phase, seconds in sorted(snap.get("phases", {}).items()):
                lines.append(
                    f'datampi_phase_seconds{{rank="{rank}",'
                    f'phase="{_escape_label_value(phase)}"}}'
                    f" {_fmt_value(seconds)}"
                )
        rollups = self.rollups()
        family("datampi_phase_quantile_seconds", "gauge",
               "Cross-rank phase time quantiles (latest snapshot per rank).")
        for phase, quantiles in sorted(rollups["phases"].items()):
            for q_name in ("p50", "p99"):
                quantile = "0.5" if q_name == "p50" else "0.99"
                lines.append(
                    f'datampi_phase_quantile_seconds'
                    f'{{phase="{_escape_label_value(phase)}",'
                    f'quantile="{quantile}"}} {_fmt_value(quantiles[q_name])}'
                )
        family("datampi_shuffle_bytes_sent_total", "counter",
               "Shuffle payload bytes sent, per rank.")
        family("datampi_shuffle_records_received_total", "counter",
               "Shuffle records received, per rank.")
        family("datampi_queue_pending", "gauge",
               "Envelopes pending in the rank's mailbox.")
        family("datampi_queue_bytes", "gauge",
               "Payload bytes pending in the rank's mailbox.")
        family("datampi_process_cpu_seconds_total", "counter",
               "Process CPU time (user+system), per rank.")
        family("datampi_process_rss_bytes", "gauge",
               "Current resident set size, per rank.")
        family("datampi_telemetry_snapshots_total", "counter",
               "Snapshots received from each (rank, epoch) series.")
        for rank, snap in sorted(latest.items()):
            shuffle = snap.get("shuffle", {})
            q = snap.get("queue", {})
            process = snap.get("process", {})
            label = f'rank="{rank}"'
            lines.append(
                f"datampi_shuffle_bytes_sent_total{{{label}}}"
                f" {_as_int(shuffle.get('bytes_sent', 0))}"
            )
            lines.append(
                f"datampi_shuffle_records_received_total{{{label}}}"
                f" {_as_int(shuffle.get('records_received', 0))}"
            )
            lines.append(
                f"datampi_queue_pending{{{label}}} {_as_int(q.get('pending', 0))}"
            )
            lines.append(
                f"datampi_queue_bytes{{{label}}} {_as_int(q.get('bytes_in', 0))}"
            )
            lines.append(
                f"datampi_process_cpu_seconds_total{{{label}}}"
                f" {_fmt_value(process.get('cpu_seconds', 0.0), '{:.3f}')}"
            )
            lines.append(
                f"datampi_process_rss_bytes{{{label}}}"
                f" {_fmt_value(process.get('rss_bytes', 0.0), '{:.0f}')}"
            )
        with self._lock:
            per_series = {
                key: len(ring) for key, ring in sorted(self._series.items())
            }
        for (rank, epoch), count in per_series.items():
            lines.append(
                f'datampi_telemetry_snapshots_total{{rank="{rank}",'
                f'epoch="{epoch}"}} {count}'
            )
        family("datampi_straggler_score", "gauge",
               "Slowest rank wall time over the median (1.0 = balanced).")
        lines.append(
            f"datampi_straggler_score {_fmt_value(rollups['straggler_score'], '{:.4f}')}"
        )
        family("datampi_shuffle_skew", "gauge",
               "Max rank shuffle bytes sent over the median.")
        lines.append(
            f"datampi_shuffle_skew {_fmt_value(rollups['shuffle_skew'], '{:.4f}')}"
        )
        recovery = rollups["recovery"]
        family("datampi_recovery_total", "counter",
               "Rank-recovery event counts (live, from the runtime).")
        for counter, value in sorted(recovery.items()):
            lines.append(
                f'datampi_recovery_total{{event="{_escape_label_value(counter)}"}}'
                f" {_as_int(value)}"
            )
        family("datampi_ranks_reporting", "gauge",
               "Ranks with at least one telemetry snapshot.")
        lines.append(f"datampi_ranks_reporting {rollups['ranks_reporting']}")
        family("datampi_ranks_done", "gauge",
               "Ranks whose final report reached the scheduler.")
        lines.append(f"datampi_ranks_done {rollups['ranks_done']}")
        return "\n".join(lines) + "\n"

    def rpc_target(self) -> dict[str, Callable]:
        """Handler dict for :class:`repro.rpc.server.SocketRpcServer`."""
        return {
            "telemetry_scrape": self.prometheus_text,
            "telemetry_ranks": self.per_rank,
            "telemetry_rollups": self.rollups,
            "telemetry_meta": lambda: {
                "series": [list(k) for k in self.series_keys()],
                "snapshots_ingested": self.snapshots_ingested,
            },
        }
