"""Low-overhead span tracer with per-thread event buffers.

Every instrumented layer talks to the process-wide :data:`TRACER`.  The
design centers on two costs:

* **Disabled** (the default): a call site pays one attribute load and a
  boolean check.  ``span()`` returns a shared immutable null context
  manager, ``instant``/``counter``/``complete`` return immediately —
  no allocation, no lock, no clock read.  Hot paths additionally guard
  with ``if TRACER.enabled:`` so even argument tuples are never built.
* **Enabled**: events append to a plain ``list`` owned by the calling
  thread (thread-local), so recording never takes a lock and never
  contends.  The registry of buffers is locked only on first use per
  thread and on :meth:`Tracer.drain`.

Events become dicts only at drain time; in the buffers they are small
tuples.  Timestamps are ``clock()`` values (``time.perf_counter`` by
default) made epoch-relative on drain, so a journal starts near zero.

Thread attribution: each buffer remembers its thread name; the engine
additionally calls :meth:`Tracer.bind` so events carry the worker's
global rank, which the exporters map to Perfetto process lanes.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Any

__all__ = ["TRACER", "Tracer", "flow_id"]


def flow_id(plane: str, origin: int, seq: int, domain: int = 0) -> int:
    """Deterministic 63-bit flow id for cross-rank causal tracing.

    Sender and receiver compute the same id from the same coordinates
    regardless of interpreter (``hash()`` is salted per process by
    ``PYTHONHASHSEED``, so it cannot be used here).  ``domain`` separates
    id families minted from the same coordinates — 0 for the flow id
    itself, 1 for the emitting span's id.  Masked to 63 bits so the id
    always fits the signed ``q`` field of the wire envelope header.
    """
    digest = hashlib.blake2b(
        f"{domain}|{plane}|{origin}|{seq}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _ThreadBuf:
    """One thread's event list plus its identity."""

    __slots__ = ("events", "tid", "rank")

    def __init__(self, tid: str) -> None:
        self.events: list[tuple] = []
        self.tid = tid
        self.rank = -1


class _Span:
    """A live span; records one complete ("X") event on exit."""

    __slots__ = ("_tracer", "_buf", "name", "cat", "args", "_t0")

    def __init__(
        self, tracer: "Tracer", buf: _ThreadBuf, name: str, cat: str,
        args: dict | None,
    ) -> None:
        self._tracer = tracer
        self._buf = buf
        self.name = name
        self.cat = cat
        self.args = args
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = self._tracer.clock()
        return self

    def set(self, key: str, value: Any) -> "_Span":
        """Attach an attribute discovered while the span is open."""
        if self.args is None:
            self.args = {}
        self.args[key] = value
        return self

    def __exit__(self, *exc: Any) -> bool:
        t1 = self._tracer.clock()
        self._buf.events.append(
            ("X", self._t0, t1 - self._t0, self.name, self.cat, self.args)
        )
        return False


class Tracer:
    """Span / instant / counter recorder with thread-local buffers."""

    def __init__(self, clock=time.perf_counter) -> None:
        #: the one flag instrumented code checks; plain attribute access
        self.enabled = False
        self.clock = clock
        self.meta: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._bufs: list[_ThreadBuf] = []
        self._epoch = 0.0
        #: bumped on every enable(); stale thread-locals re-register
        self._generation = 0

    # -- lifecycle ----------------------------------------------------------
    def enable(self, **meta: Any) -> None:
        """Start recording; clears any previous buffers."""
        with self._lock:
            self._bufs = []
            self._generation += 1
            self.meta = dict(meta)
            self._epoch = self.clock()
            self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def drain(self) -> list[dict]:
        """Stop-the-presses collection: every buffered event as a dict,
        globally sorted by timestamp (epoch-relative seconds)."""
        with self._lock:
            bufs = list(self._bufs)
        events: list[dict] = []
        epoch = self._epoch
        for buf in bufs:
            for ev in list(buf.events):
                ph = ev[0]
                record: dict[str, Any] = {
                    "ph": ph,
                    "ts": ev[1] - epoch,
                    "name": ev[3] if ph == "X" else ev[2],
                    "tid": buf.tid,
                    "rank": buf.rank,
                }
                if ph == "X":
                    record["dur"] = ev[2]
                    if ev[4]:
                        record["cat"] = ev[4]
                    if ev[5]:
                        record["args"] = ev[5]
                elif ph == "i":
                    if ev[3]:
                        record["cat"] = ev[3]
                    if ev[4]:
                        record["args"] = ev[4]
                else:  # "C"
                    record["args"] = {"value": ev[3]}
                    if ev[4]:
                        record["cat"] = ev[4]
                events.append(record)
        events.sort(key=lambda e: e["ts"])
        return events

    def reset(self) -> None:
        """Drop all buffered events (tests)."""
        with self._lock:
            self._bufs = []
            self._generation += 1

    def reset_after_fork(self, epoch: float | None = None) -> None:
        """Make the tracer sane in a freshly forked worker process.

        The child inherits the parent's buffers (they belong to threads
        that do not exist here) and possibly a lock captured mid-hold;
        both are replaced.  ``epoch`` lets the driver hand its own epoch
        to workers so per-process journal shards share one timeline
        (``perf_counter`` is CLOCK_MONOTONIC — system-wide on Linux).
        """
        self._lock = threading.Lock()
        self._local = threading.local()
        self._bufs = []
        self._generation += 1
        self.enabled = False
        if epoch is not None:
            self._epoch = epoch

    # -- thread attribution -------------------------------------------------
    def _buf(self) -> _ThreadBuf:
        local = self._local
        buf = getattr(local, "buf", None)
        if buf is None or getattr(local, "gen", -1) != self._generation:
            buf = _ThreadBuf(threading.current_thread().name)
            local.buf = buf
            local.gen = self._generation
            with self._lock:
                self._bufs.append(buf)
        return buf

    def bind(self, rank: int) -> None:
        """Attribute the calling thread's events to a global rank."""
        if self.enabled:
            self._buf().rank = rank

    # -- cross-rank flow propagation ----------------------------------------
    # A sender arms the (trace, parent) pair just before the send; the
    # comm layer pops it onto the outgoing Envelope.  On receive, the
    # comm layer notes the incoming pair; the receiver's instrumentation
    # pops it onto its span args.  Both sides are thread-local, so
    # concurrent sender/receiver threads never see each other's pair.
    def set_flow(self, trace: int, parent: int) -> None:
        """Arm the calling thread's next send with a causal pair."""
        self._local.flow_out = (trace, parent)

    def take_flow(self) -> tuple[int, int] | None:
        """Pop the armed outgoing pair (None when nothing was armed)."""
        flow = getattr(self._local, "flow_out", None)
        if flow is not None:
            self._local.flow_out = None
        return flow

    def note_recv_flow(self, trace: int, parent: int) -> None:
        """Record the causal pair carried by a just-received envelope."""
        self._local.flow_in = (trace, parent)

    def recv_flow(self) -> tuple[int, int] | None:
        """Pop the pair from the calling thread's last receive."""
        flow = getattr(self._local, "flow_in", None)
        if flow is not None:
            self._local.flow_in = None
        return flow

    # -- recording ----------------------------------------------------------
    def span(self, name: str, cat: str = "", args: dict | None = None):
        """A nestable context manager; a no-op singleton when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, self._buf(), name, cat, args)

    def instant(self, name: str, cat: str = "", args: dict | None = None) -> None:
        """A point-in-time event (failures, faults, EOS markers...)."""
        if not self.enabled:
            return
        self._buf().events.append(("i", self.clock(), name, cat, args))

    def counter(self, name: str, value: float, cat: str = "") -> None:
        """One sample of a numeric series (bytes, queue depth...)."""
        if not self.enabled:
            return
        self._buf().events.append(("C", self.clock(), name, value, cat))

    def complete(
        self, name: str, t0: float, dur: float, cat: str = "",
        args: dict | None = None,
    ) -> None:
        """Record an already-measured span (callers that time themselves
        anyway — SPL seals, spills, checkpoint flushes — avoid a second
        pair of clock reads)."""
        if not self.enabled:
            return
        self._buf().events.append(("X", t0, dur, name, cat, args))


#: the process-wide flight recorder every instrumented layer consults
TRACER = Tracer()
