"""Per-rank sampling profiler: the "why" layer under the telemetry plane.

The telemetry plane (:mod:`repro.obs.telemetry`) can say *which* rank is
slow — straggler score, shuffle skew, queue depth.  This module says
*why*: a process-wide daemon thread walks :func:`sys._current_frames`
at a configurable rate and aggregates collapsed call stacks per rank,
tagged with the rank's **current phase bucket** (compute /
partition-sort / communicate / merge / checkpoint / control — the same
vocabulary the tracer accrues post-hoc).

Design notes:

* One :class:`StackSampler` per interpreter (module singleton
  :data:`PROFILER`), never one per engine.  On the thread backend all
  ranks share the interpreter, and ``sys._current_frames()`` is a
  whole-process snapshot — N engines each running their own sampler
  would pay the walk N times for the same data.  The sampler is
  refcounted: engines :meth:`~StackSampler.acquire` / ``release`` it,
  and the daemon thread runs only while someone holds it.
* The *registry* (thread idents -> rank, current phase, queue-stats
  callables) is always maintained, even with sampling off, so the
  on-demand stack dump (the DUMP wire frame, ``repro doctor``'s
  capture) works on an unprofiled job.
* Aggregates are collapsed-stack counts — the flamegraph interchange
  format — keyed ``(rank, epoch)`` so a respawned rank's incarnations
  stay distinct.  Workers persist them as ``.prof-`` shard files next
  to trace shards; the driver folds them into the journal as
  ``profile`` records, exported via ``repro flame`` as collapsed text
  or speedscope JSON.
"""

from __future__ import annotations

import glob as _glob
import json
import os
import sys
import threading
import time
from typing import Any, Callable, Iterable

#: default sampling rate (Hz) when profiling is enabled without a rate
DEFAULT_HZ = 50.0

#: stacks deeper than this are truncated at the root end
MAX_STACK_DEPTH = 64

#: phase assumed for a registered thread that never declared one
DEFAULT_PHASE = "control"


def _frame_name(code: Any) -> str:
    """``sorter.merge``-style name: module basename + function name."""
    base = os.path.basename(code.co_filename)
    if base.endswith(".py"):
        base = base[:-3]
    return f"{base}.{code.co_name}"


def collapse_stack(frame: Any) -> str:
    """Collapse a live frame chain into ``root.fn;...;leaf.fn``."""
    names: list[str] = []
    while frame is not None and len(names) < MAX_STACK_DEPTH:
        names.append(_frame_name(frame.f_code))
        frame = frame.f_back
    names.reverse()
    return ";".join(names)


def describe_stack(frame: Any) -> list[str]:
    """Root-first frame descriptions with line numbers, for live dumps."""
    out: list[str] = []
    while frame is not None and len(out) < MAX_STACK_DEPTH:
        out.append(f"{_frame_name(frame.f_code)}:{frame.f_lineno}")
        frame = frame.f_back
    out.reverse()
    return out


class StackSampler:
    """Registry of rank-owned threads plus an optional sampling thread.

    Thread-safety: registration and aggregate access take ``_lock``;
    :meth:`set_phase` is a plain dict store keyed by thread ident (one
    writer per key — the owning thread), deliberately lock-free because
    it sits on the engine's per-task hot path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: thread ident -> (rank, epoch)
        self._threads: dict[int, tuple[int, int]] = {}
        #: thread ident -> current phase bucket
        self._phases: dict[int, str] = {}
        #: (rank, epoch) -> transport queue stats callable
        self._queues: dict[tuple[int, int], Callable[[], dict]] = {}
        #: (rank, epoch) -> {(phase, collapsed_stack): samples}
        self._counts: dict[tuple[int, int], dict[tuple[str, str], int]] = {}
        #: (rank, epoch) -> total samples attributed
        self._samples: dict[tuple[int, int], int] = {}
        self._refs = 0
        self._hz = 0.0
        self._started_at = 0.0
        self._stop: threading.Event | None = None
        self._thread: threading.Thread | None = None
        #: cumulative seconds spent inside the sampling walk (all ticks)
        self.sample_cost_seconds = 0.0
        #: sampling ticks taken since construction / fork reset
        self.ticks = 0

    # -- registry (always on) ------------------------------------------------
    def register_thread(
        self, rank: int, epoch: int = 0, phase: str = DEFAULT_PHASE,
        ident: int | None = None,
    ) -> None:
        """Attribute the calling (or given) thread's samples to ``rank``."""
        ident = threading.get_ident() if ident is None else ident
        with self._lock:
            self._threads[ident] = (int(rank), int(epoch))
        self._phases[ident] = phase

    def unregister_thread(self, ident: int | None = None) -> None:
        ident = threading.get_ident() if ident is None else ident
        with self._lock:
            self._threads.pop(ident, None)
        self._phases.pop(ident, None)

    def set_phase(self, phase: str, ident: int | None = None) -> None:
        """Declare the calling thread's current phase bucket (hot path)."""
        self._phases[threading.get_ident() if ident is None else ident] = phase

    def register_queue(
        self, rank: int, epoch: int, stats_fn: Callable[[], dict]
    ) -> None:
        """Attach a transport queue ``stats()`` callable to a rank."""
        with self._lock:
            self._queues[(int(rank), int(epoch))] = stats_fn

    def unregister_queue(self, rank: int, epoch: int = 0) -> None:
        with self._lock:
            self._queues.pop((int(rank), int(epoch)), None)

    def registered_ranks(self) -> list[tuple[int, int]]:
        with self._lock:
            return sorted(set(self._threads.values()))

    # -- sampler lifecycle ---------------------------------------------------
    def acquire(self, hz: float = DEFAULT_HZ) -> None:
        """Refcounted start; the sampler runs at the max requested rate."""
        hz = float(hz)
        if hz <= 0:
            return
        with self._lock:
            self._refs += 1
            self._hz = max(self._hz, hz)
            if self._thread is None:
                self._stop = threading.Event()
                self._started_at = time.monotonic()
                self._thread = threading.Thread(
                    target=self._loop, args=(self._stop,),
                    name="datampi-profiler", daemon=True,
                )
                self._thread.start()

    def release(self) -> None:
        """Refcounted stop; the thread exits when the last holder leaves."""
        with self._lock:
            if self._refs == 0:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            stop, thread = self._stop, self._thread
            self._stop = self._thread = None
            self._hz = 0.0
        if stop is not None:
            stop.set()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5)

    @property
    def running(self) -> bool:
        return self._thread is not None

    @property
    def hz(self) -> float:
        return self._hz

    def _loop(self, stop: threading.Event) -> None:
        while True:
            hz = self._hz or DEFAULT_HZ
            if stop.wait(1.0 / hz):
                return
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - never kill the host
                pass

    def sample_once(self) -> int:
        """Take one sample of every registered thread; returns threads hit.

        Public so the overhead benchmark can measure the per-tick cost
        deterministically instead of racing a timer.
        """
        t0 = time.perf_counter()
        frames = sys._current_frames()
        hit = 0
        with self._lock:
            for ident, key in self._threads.items():
                frame = frames.get(ident)
                if frame is None:
                    continue
                stack = collapse_stack(frame)
                phase = self._phases.get(ident, DEFAULT_PHASE)
                bucket = self._counts.setdefault(key, {})
                bucket[(phase, stack)] = bucket.get((phase, stack), 0) + 1
                self._samples[key] = self._samples.get(key, 0) + 1
                hit += 1
            self.ticks += 1
            self.sample_cost_seconds += time.perf_counter() - t0
        return hit

    # -- aggregate access ----------------------------------------------------
    def collect(self, rank: int, epoch: int = 0, hz: float | None = None) -> dict:
        """Pop and return the finished profile for ``(rank, epoch)``."""
        key = (int(rank), int(epoch))
        with self._lock:
            counts = self._counts.pop(key, {})
            samples = self._samples.pop(key, 0)
        stacks: dict[str, dict[str, int]] = {}
        for (phase, stack), n in counts.items():
            stacks.setdefault(phase, {})[stack] = n
        return {
            "rank": key[0],
            "epoch": key[1],
            "hz": float(hz if hz is not None else self._hz),
            "samples": samples,
            "stacks": stacks,
        }

    def snapshot_for(self, rank: int, epoch: int = 0, top: int = 5) -> dict | None:
        """Small live summary for telemetry piggyback (non-destructive)."""
        key = (int(rank), int(epoch))
        with self._lock:
            counts = dict(self._counts.get(key) or {})
            samples = self._samples.get(key, 0)
        if not samples:
            return None
        phases: dict[str, int] = {}
        for (phase, _stack), n in counts.items():
            phases[phase] = phases.get(phase, 0) + n
        ranked = sorted(counts.items(), key=lambda kv: -kv[1])[:top]
        return {
            "samples": samples,
            "phases": phases,
            "top": [[phase, stack, n] for (phase, stack), n in ranked],
        }

    # -- live dumps ----------------------------------------------------------
    def dump_stacks(self) -> list[dict]:
        """Live stacks + queue stats for every registered rank, by epoch."""
        frames = sys._current_frames()
        names = {t.ident: t.name for t in threading.enumerate()}
        with self._lock:
            threads = list(self._threads.items())
            phases = dict(self._phases)
            queues = dict(self._queues)
        by_key: dict[tuple[int, int], dict] = {}
        for ident, key in threads:
            dump = by_key.setdefault(key, {
                "rank": key[0],
                "epoch": key[1],
                "pid": os.getpid(),
                "ts": time.time(),
                "threads": [],
            })
            frame = frames.get(ident)
            dump["threads"].append({
                "name": names.get(ident, str(ident)),
                "ident": ident,
                "phase": phases.get(ident, DEFAULT_PHASE),
                "stack": describe_stack(frame) if frame is not None else [],
            })
        for key, dump in by_key.items():
            stats_fn = queues.get(key)
            if stats_fn is not None:
                try:
                    dump["queue"] = dict(stats_fn())
                except Exception:
                    dump["queue"] = {}
        return [by_key[k] for k in sorted(by_key)]

    # -- process lifecycle ---------------------------------------------------
    def reset_after_fork(self) -> None:
        """Drop state inherited from the parent (fork-start workers)."""
        self._lock = threading.Lock()
        self._threads.clear()
        self._phases.clear()
        self._queues.clear()
        self._counts.clear()
        self._samples.clear()
        self._refs = 0
        self._hz = 0.0
        self._stop = None
        self._thread = None  # the parent's sampler thread did not survive fork
        self.sample_cost_seconds = 0.0
        self.ticks = 0


#: the process-wide sampler every engine/worker shares
PROFILER = StackSampler()


# -- thread-backend profile hand-off ------------------------------------------
# On the thread backend engines finish inside the driver interpreter, so
# finished profiles are published to this bounded in-process list and
# drained by the driver's trace session.  (Workers on the process
# backend persist shard files instead — see write_profile_shard.)
_LOCAL_LOCK = threading.Lock()
_LOCAL_PROFILES: list[dict] = []
_LOCAL_CAP = 256


def publish_local(profile: dict) -> None:
    with _LOCAL_LOCK:
        _LOCAL_PROFILES.append(profile)
        del _LOCAL_PROFILES[:-_LOCAL_CAP]


def drain_local_profiles() -> list[dict]:
    with _LOCAL_LOCK:
        out = list(_LOCAL_PROFILES)
        _LOCAL_PROFILES.clear()
    return out


# -- shard persistence (process backend) --------------------------------------
def write_profile_shard(path: str, profile: dict) -> None:
    """Append one profile as a JSON line; same contract as trace shards."""
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(profile, sort_keys=True) + "\n")


def merge_profile_shards(journal_path: str, cleanup: bool = True) -> list[dict]:
    """Collect worker ``.prof-`` shards written next to ``journal_path``.

    Shards are named ``{journal}.a{attempt}.prof-g{gid}[e{epoch}].jsonl``
    — the ``.prof-`` infix keeps them clear of the trace-shard glob.
    """
    profiles: list[dict] = []
    for shard in sorted(_glob.glob(f"{_glob.escape(journal_path)}.a*.prof-*.jsonl")):
        try:
            with open(shard, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict) and "stacks" in record:
                        profiles.append(record)
        except OSError:
            continue
        if cleanup:
            try:
                os.unlink(shard)
            except OSError:
                pass
    return profiles


# -- exporters ----------------------------------------------------------------
def _profile_prefix(profile: dict) -> str:
    rank = profile.get("rank", "?")
    epoch = int(profile.get("epoch", 0) or 0)
    return f"rank{rank}" + (f"e{epoch}" if epoch else "")


def to_collapsed(profiles: Iterable[dict]) -> str:
    """Flamegraph collapsed-stack text: ``rank0;phase;a.b;c.d count``."""
    lines: list[str] = []
    for profile in profiles:
        prefix = _profile_prefix(profile)
        for phase in sorted(profile.get("stacks", {})):
            stacks = profile["stacks"][phase]
            for stack in sorted(stacks):
                lines.append(f"{prefix};{phase};{stack} {stacks[stack]}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(profiles: Iterable[dict], name: str = "datampi") -> dict:
    """Speedscope file: one sampled profile per (rank, epoch)."""
    frames: list[dict] = []
    frame_index: dict[str, int] = {}

    def index_of(frame_name: str) -> int:
        if frame_name not in frame_index:
            frame_index[frame_name] = len(frames)
            frames.append({"name": frame_name})
        return frame_index[frame_name]

    out_profiles = []
    for profile in profiles:
        samples: list[list[int]] = []
        weights: list[float] = []
        total = 0
        for phase in sorted(profile.get("stacks", {})):
            stacks = profile["stacks"][phase]
            for stack in sorted(stacks):
                chain = [index_of(phase)]
                chain.extend(index_of(f) for f in stack.split(";") if f)
                samples.append(chain)
                weights.append(float(stacks[stack]))
                total += stacks[stack]
        hz = float(profile.get("hz") or DEFAULT_HZ)
        out_profiles.append({
            "type": "sampled",
            "name": f"{name} {_profile_prefix(profile)}",
            "unit": "seconds",
            "startValue": 0,
            "endValue": total / hz if hz else total,
            "samples": samples,
            "weights": [w / hz if hz else w for w in weights],
        })
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "shared": {"frames": frames},
        "profiles": out_profiles,
        "activeProfileIndex": 0,
        "exporter": "datampi-repro",
    }
