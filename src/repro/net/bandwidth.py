"""Peak-bandwidth microbenchmark (Figure 1a).

"The peak bandwidth is measured by varying both total data size and
packet size" (§I-A).  :func:`peak_bandwidth` sweeps the same grid and
takes the maximum achieved rate, exactly like the paper's benchmark
driver would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.units import KiB, MiB
from repro.net.fabric import FABRICS, Fabric
from repro.net.protocol import PROTOCOLS, ProtocolStack

#: default sweep grids (bytes); packet sizes 4 KiB .. 4 MiB, totals up to 1 GiB
DEFAULT_PACKET_SIZES = tuple(4 * KiB * 2**i for i in range(11))
DEFAULT_TOTAL_SIZES = tuple(16 * MiB * 2**i for i in range(7))


def achieved_bandwidth(
    stack: ProtocolStack, fabric: Fabric, total: int, packet: int
) -> float:
    """Payload bytes/s for one (total, packet) point."""
    return stack.throughput(total, packet, fabric)


def peak_bandwidth(
    stack: ProtocolStack,
    fabric: Fabric,
    packet_sizes: tuple[int, ...] = DEFAULT_PACKET_SIZES,
    total_sizes: tuple[int, ...] = DEFAULT_TOTAL_SIZES,
) -> float:
    """Max achieved bandwidth over the sweep grid, bytes/s."""
    best = 0.0
    for total in total_sizes:
        for packet in packet_sizes:
            best = max(best, achieved_bandwidth(stack, fabric, total, packet))
    return best


@dataclass
class BandwidthBenchmark:
    """Reproduces the full Figure 1(a) bar chart.

    ``run()`` returns ``{fabric: {system: MB/s}}`` using decimal MB/s as
    the paper's axis does.
    """

    packet_sizes: tuple[int, ...] = DEFAULT_PACKET_SIZES
    total_sizes: tuple[int, ...] = DEFAULT_TOTAL_SIZES
    fabrics: dict[str, Fabric] = field(default_factory=lambda: dict(FABRICS))
    stacks: dict[str, ProtocolStack] = field(default_factory=lambda: dict(PROTOCOLS))

    def run(self) -> dict[str, dict[str, float]]:
        result: dict[str, dict[str, float]] = {}
        for fabric_name, fabric in self.fabrics.items():
            row: dict[str, float] = {}
            for stack_name, stack in self.stacks.items():
                row[stack_name] = peak_bandwidth(
                    stack, fabric, self.packet_sizes, self.total_sizes
                ) / 1e6
            result[fabric_name] = row
        return result

    def sweep_curve(
        self, stack_name: str, fabric_name: str, total: int = 256 * MiB
    ) -> list[tuple[int, float]]:
        """Bandwidth-vs-packet-size curve (MB/s) for one system+fabric."""
        stack = self.stacks[stack_name]
        fabric = self.fabrics[fabric_name]
        return [
            (packet, achieved_bandwidth(stack, fabric, total, packet) / 1e6)
            for packet in self.packet_sizes
        ]

    @staticmethod
    def improvement_matrix(result: dict[str, dict[str, float]]) -> dict[str, float]:
        """MPI-vs-Jetty bandwidth ratio per fabric (paper: >2x on IB/10GigE)."""
        ratios = {}
        for fabric_name, row in result.items():
            ratios[fabric_name] = row["DataMPI"] / row["Hadoop Jetty"]
        return ratios


def summarize_figure_1a() -> str:
    """Text rendering of Figure 1(a) for the benchmark harness."""
    bench = BandwidthBenchmark()
    result = bench.run()
    systems = ["Hadoop Jetty", "DataMPI", "MVAPICH2"]
    lines = ["Figure 1(a) Peak Bandwidth (MB/sec, higher is better)"]
    header = f"{'Network':<16}" + "".join(f"{s:>14}" for s in systems)
    lines.append(header)
    for fabric_name, row in result.items():
        cells = "".join(f"{row[s]:>14.1f}" for s in systems)
        lines.append(f"{fabric_name:<16}{cells}")
    ratios = bench.improvement_matrix(result)
    lines.append(
        "DataMPI/Jetty ratio: "
        + ", ".join(f"{k}: {v:.2f}x" for k, v in ratios.items())
    )
    return "\n".join(lines)
