"""Network fabrics and protocol-stack cost models.

The paper's Figure 1 compares primitive-level communication (Hadoop Jetty
HTTP, DataMPI, MVAPICH2) over three fabrics (IB/IPoIB 16 Gbps, 10GigE,
1GigE).  This package models those stacks mechanistically: each protocol
is a pipeline of wire transfer, kernel/stack traversals and memory
copies, so achieved bandwidth and RPC latency *emerge* from per-stage
costs instead of being hardcoded per experiment.
"""

from repro.net.bandwidth import BandwidthBenchmark, achieved_bandwidth, peak_bandwidth
from repro.net.fabric import (
    FABRICS,
    GIGE1,
    GIGE10,
    IB_16G,
    IPOIB_16G,
    Fabric,
)
from repro.net.latency import RPC_STACKS, RpcLatencyModel, rpc_latency_comparison
from repro.net.protocol import (
    PROTOCOLS,
    DataMPIStack,
    JettyHTTPStack,
    NativeMPIStack,
    ProtocolStack,
)

__all__ = [
    "Fabric",
    "GIGE1",
    "GIGE10",
    "IB_16G",
    "IPOIB_16G",
    "FABRICS",
    "ProtocolStack",
    "JettyHTTPStack",
    "DataMPIStack",
    "NativeMPIStack",
    "PROTOCOLS",
    "achieved_bandwidth",
    "peak_bandwidth",
    "BandwidthBenchmark",
    "RpcLatencyModel",
    "RPC_STACKS",
    "rpc_latency_comparison",
]
