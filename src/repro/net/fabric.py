"""Network fabric descriptors.

A :class:`Fabric` captures the physical/wire-level properties of one of
the paper's three test networks.  Rates are in bytes/second, latencies in
seconds.  Framing efficiency accounts for protocol headers at the MTU
(Ethernet+IP+TCP is ~94% efficient at a 1500 B MTU; IPoIB pays extra
encapsulation; native IB verbs frames are near-free at a 4 KB MTU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import gbps_to_bytes_per_sec


@dataclass(frozen=True)
class Fabric:
    """One physical network."""

    name: str
    #: raw link speed, bytes/s
    link_rate: float
    #: one-way wire+switch latency for a minimal packet, seconds, as seen
    #: by a kernel TCP stack (native-verbs users see ``rdma_latency``)
    base_latency: float
    #: fraction of the raw link usable for payload after framing
    framing_efficiency: float
    #: maximum transmission unit, bytes
    mtu: int
    #: one-way latency over native RDMA verbs, or None if unavailable
    rdma_latency: float | None = None
    #: payload efficiency for native verbs transfers (None = no verbs)
    rdma_efficiency: float | None = None

    @property
    def tcp_goodput(self) -> float:
        """Peak payload bytes/s achievable through the kernel TCP path."""
        return self.link_rate * self.framing_efficiency

    @property
    def rdma_goodput(self) -> float | None:
        """Peak payload bytes/s over native verbs (None on plain Ethernet)."""
        if self.rdma_efficiency is None:
            return None
        return self.link_rate * self.rdma_efficiency

    @property
    def has_rdma(self) -> bool:
        return self.rdma_latency is not None

    def __str__(self) -> str:
        return self.name


#: 1 Gigabit Ethernet — Testbed A/B's interconnect.
GIGE1 = Fabric(
    name="1GigE",
    link_rate=gbps_to_bytes_per_sec(1),
    base_latency=50e-6,
    framing_efficiency=0.94,
    mtu=1500,
)

#: 10 Gigabit Ethernet.
GIGE10 = Fabric(
    name="10GigE",
    link_rate=gbps_to_bytes_per_sec(10),
    base_latency=25e-6,
    framing_efficiency=0.94,
    mtu=1500,
)

#: InfiniBand at a 16 Gbps signalling rate.  Sockets applications use the
#: IPoIB encapsulation (higher latency, lower efficiency); MPI uses native
#: verbs.  The paper labels Hadoop's runs "IPoIB (16Gbps)" and DataMPI's
#: "IB (16Gbps)" accordingly.
IB_16G = Fabric(
    name="IB (16Gbps)",
    link_rate=gbps_to_bytes_per_sec(16),
    base_latency=18e-6,  # IPoIB path
    framing_efficiency=0.85,  # IPoIB encapsulation overhead
    mtu=2044,
    rdma_latency=2e-6,
    rdma_efficiency=0.975,
)

#: Alias emphasising the sockets view of the same hardware.
IPOIB_16G = IB_16G

FABRICS: dict[str, Fabric] = {
    GIGE1.name: GIGE1,
    GIGE10.name: GIGE10,
    IB_16G.name: IB_16G,
}
