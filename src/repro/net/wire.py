"""Length-prefixed frame protocol shared by the socket backends.

This is the *real* wire layer (``net/protocol.py`` is the Figure 1a
transfer-cost *model*; see :data:`repro.net.protocol.LocalSocketStack`
for the modelled cost of this stack).  Two consumers share it:

* :mod:`repro.mpi.socket_transport` — the process-per-rank MPI backend
  routes pickled envelopes between worker processes through a driver-side
  router using these frames.
* :mod:`repro.rpc.server` / :mod:`repro.rpc.client` — the Hadoop-style
  RPC layer serves its call protocol over the same accept/read loops
  instead of re-implementing them.

Frame layout on the wire::

    !I            frame length N (bytes that follow)
    B             frame kind (FrameKind)
    N-1 bytes     body

Envelope frames carry a fixed struct header so the router can route and
fault-inject on metadata *without unpickling the payload*::

    !6i3qB        context, source, tag, origin, dest, epoch,
                  trace, parent, nbytes, flags
    ...           payload body (FLAG_BATCH: structured record-batch
                  layout below; otherwise serde PickleSerializer bytes)

``epoch`` is the sender's rank incarnation number: 0 for a first spawn,
incremented each time the driver respawns that rank.  The router fences
stale incarnations with it — a zombie process whose rank was already
respawned keeps stamping the old epoch, and its frames are dropped at
the hub instead of corrupting the reincarnated rank's streams.

``trace``/``parent`` are the causal-tracing pair: a 63-bit flow id
linking the sender-side span to the receiver-side span, and the id of
the emitting span.  Zero means "untraced" — the common case — and
costs nothing beyond the 16 header bytes.  The exporter turns matched
pairs into Chrome-trace flow events (see ``repro.obs.journal``).

Shuffle batch envelopes — the data-plane hot path — skip pickle
entirely.  A ``("batch", plane_id, (seq, origin, blocks, eos))`` message
whose blocks all carry sealed :class:`~repro.serde.batch.RecordBatch`
payloads is framed with the Writable primitives (FLAG_BATCH set)::

    utf           plane_id
    vlong         seq
    vint          origin
    boolean       eos
    vint          number of blocks
    per block:
      vint        partition_id
      vlong       nbytes
      byte        flags: 1 = sorted, 2 = raw batch
      vint        record count
      vint        len(batch bytes)
      ...         batch bytes, copied verbatim from the sealed batch

so the batch bytes sealed by the sender-side buffer travel to the
receiving process without any re-encode; the decoder hands back batches
as zero-copy views over the frame body.

Everything else (control traffic, object-tuple blocks, RPC) is pickled
at the wire boundary via
:class:`repro.serde.serialization.PickleSerializer` — the same "Java
Serializable analogue" the shuffle uses, so anything a job can shuffle
it can also send across the process boundary.
"""

from __future__ import annotations

import contextlib
import os
import random
import socket
import struct
import tempfile
import threading
import time
from typing import Any, Callable

from repro.common.logging import get_logger
from repro.serde.io import DataInput, DataOutput
from repro.serde.serialization import PickleSerializer

_log = get_logger("net.wire")

_LEN = struct.Struct("!I")
_ENV_HEADER = struct.Struct("!6i3qB")

#: single serializer instance for the wire boundary (stateless)
WIRE_SERDE = PickleSerializer()

MAX_FRAME = 1 << 30  # defensive cap: a corrupt length prefix fails loudly


class FrameKind:
    """One byte discriminating what a frame body means."""

    HELLO = 1       # worker -> router: (gid, pid, epoch) rank handshake
    ENVELOPE = 2    # either direction: header + pickled payload
    ABORT = 3       # router -> workers: (reason, errorcode); wakes everyone
    ABORT_REQ = 4   # worker -> router: (reason, errorcode) MPI_Abort request
    FAIL = 5        # worker -> router: (FailureRecord, repr) rank failure
    BYE = 6         # worker -> router: clean shutdown (EOF without BYE = crash)
    RPC_REQ = 7     # worker -> router: (req_id, method, pickled args)
    RPC_REP = 8     # router -> worker: (req_id, ok, payload-or-error)
    TRACE = 9       # reserved: inline trace events (shards are file-based)
    ACK = 10        # worker -> router: (gid, plane_id) plane consumed; the
                    # router releases that plane's redelivery-buffer entries
    TELEMETRY = 11  # worker -> router: one pickled telemetry snapshot dict;
                    # fire-and-forget (try_send), ingested by the TelemetryHub
    DUMP_REQ = 12   # router -> worker: request a live stack/queue dump of
                    # every rank the worker hosts (empty body)
    DUMP = 13       # worker -> router: pickled list of per-rank stack-dump
                    # dicts; fire-and-forget reply to DUMP_REQ

#: truncate-fault marker in the envelope header flags byte
FLAG_TRUNCATED = 0x01
#: payload is the structured record-batch layout, not pickle
FLAG_BATCH = 0x02

#: block flag bits inside a FLAG_BATCH body
_BLOCK_SORTED = 0x01
_BLOCK_RAW = 0x02

#: lazily resolved (Block, RecordBatch) — net sits below core in the
#: layering, so the shuffle types are imported on first use only
_shuffle_types_cache = None


def _shuffle_types():
    global _shuffle_types_cache
    if _shuffle_types_cache is None:
        from repro.core.buffers import Block
        from repro.serde.batch import RecordBatch

        _shuffle_types_cache = (Block, RecordBatch)
    return _shuffle_types_cache


def encode_payload(payload: Any) -> tuple[bytes, int]:
    """Encode an envelope payload: ``(body, flag_bits)``.

    Shuffle batch messages whose blocks are all sealed record batches use
    the structured FLAG_BATCH layout (batch bytes copied verbatim, no
    pickle); everything else falls back to :data:`WIRE_SERDE`.
    """
    body = _encode_shuffle_batch(payload)
    if body is not None:
        return body, FLAG_BATCH
    return WIRE_SERDE.dumps(payload), 0


def decode_payload(body: bytes, flags: int) -> Any:
    """Inverse of :func:`encode_payload` (flags from the envelope header)."""
    if flags & FLAG_BATCH:
        return _decode_shuffle_batch(body)
    return WIRE_SERDE.loads(body)


def _encode_shuffle_batch(payload: Any) -> bytes | None:
    """The FLAG_BATCH body for a shuffle batch message, or ``None`` when
    the payload is not one (caller falls back to pickle)."""
    if not (isinstance(payload, tuple) and len(payload) == 3):
        return None
    kind, plane_id, inner = payload
    if kind != "batch" or not isinstance(plane_id, str):
        return None
    if not (isinstance(inner, tuple) and len(inner) == 4):
        return None
    seq, origin, blocks, eos = inner
    if (
        not isinstance(seq, int)
        or not isinstance(origin, int)
        or not isinstance(eos, bool)
        or not isinstance(blocks, list)
    ):
        return None
    block_cls, batch_cls = _shuffle_types()
    for block in blocks:
        if type(block) is not block_cls or not isinstance(block.records, batch_cls):
            return None
    out = DataOutput()
    out.write_utf(plane_id)
    out.write_vlong(seq)
    out.write_vint(origin)
    out.write_boolean(eos)
    out.write_vint(len(blocks))
    for block in blocks:
        batch = block.records
        out.write_vint(block.partition_id)
        out.write_vlong(block.nbytes)
        out.write_byte(
            (_BLOCK_SORTED if block.sorted else 0)
            | (_BLOCK_RAW if batch.raw else 0)
        )
        out.write_vint(batch.count)
        out.write_vint(len(batch.data))
        out.write_bytes(batch.data)
    return out.getvalue()


def _decode_shuffle_batch(body: bytes) -> Any:
    """Rebuild the shuffle batch message; batch payloads are zero-copy
    views over ``body`` (the views keep the frame body alive)."""
    block_cls, batch_cls = _shuffle_types()
    src = DataInput(body)
    plane_id = src.read_utf()
    seq = src.read_vlong()
    origin = src.read_vint()
    eos = src.read_boolean()
    blocks = []
    for _ in range(src.read_vint()):
        partition_id = src.read_vint()
        nbytes = src.read_vlong()
        block_flags = src.read_byte()
        count = src.read_vint()
        data = src.read_view(src.read_vint())
        blocks.append(
            block_cls(
                partition_id,
                batch_cls(data, count, raw=bool(block_flags & _BLOCK_RAW)),
                nbytes,
                sorted=bool(block_flags & _BLOCK_SORTED),
            )
        )
    return ("batch", plane_id, (seq, origin, blocks, eos))


def pack_frame(kind: int, body: bytes = b"") -> bytes:
    """One contiguous buffer: length prefix + kind + body."""
    return _LEN.pack(1 + len(body)) + bytes([kind]) + body


def pack_obj_frame(kind: int, obj: Any) -> bytes:
    """Frame whose body is one serde-pickled object."""
    return pack_frame(kind, WIRE_SERDE.dumps(obj))


def unpack_obj(body: bytes) -> Any:
    return WIRE_SERDE.loads(body)


def pack_envelope_frame(
    context: int,
    source: int,
    tag: int,
    origin: int,
    dest: int,
    nbytes: int,
    payload: bytes,
    flags: int = 0,
    epoch: int = 0,
    trace: int = 0,
    parent: int = 0,
) -> bytes:
    """ENVELOPE frame: routable header + already-pickled payload bytes."""
    header = _ENV_HEADER.pack(
        context, source, tag, origin, dest, epoch, trace, parent, nbytes, flags
    )
    return pack_frame(FrameKind.ENVELOPE, header + payload)


def unpack_envelope_frame(
    body: bytes,
) -> tuple[int, int, int, int, int, int, int, int, int, int, bytes]:
    """(context, source, tag, origin, dest, epoch, trace, parent, nbytes,
    flags, payload)."""
    context, source, tag, origin, dest, epoch, trace, parent, nbytes, flags = (
        _ENV_HEADER.unpack_from(body)
    )
    return (
        context, source, tag, origin, dest, epoch, trace, parent, nbytes,
        flags, body[_ENV_HEADER.size:],
    )


class FrameTruncatedError(ConnectionError):
    """The peer vanished *mid-frame* (or sent a corrupt length prefix).

    Distinct from a clean EOF at a frame boundary (``recv() -> None``):
    truncation means bytes were lost in flight — a severed stream or a
    process killed mid-write — and the connection's last frame cannot be
    trusted.  Consumers surface it as a ``wire``-kind failure record
    rather than the generic "peer went away".
    """


class FrameConnection:
    """A socket speaking the frame protocol.

    Writes are serialized by a lock so any thread may send; reads are
    expected from a single reader thread (the accept loop or the worker
    receiver), matching how both consumers use it.

    ``recv`` distinguishes how the peer went away: ``None`` for EOF at a
    frame boundary (orderly close, or abrupt close between frames) vs
    :class:`FrameTruncatedError` for EOF inside a frame; ``truncated``
    latches once the latter happened.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._closed = False
        #: latched when the peer disappeared mid-frame
        self.truncated = False

    def send(self, frame: bytes) -> None:
        """Send one pre-packed frame; raises ConnectionError when closed."""
        with self._send_lock:
            if self._closed:
                raise ConnectionError("frame connection is closed")
            self._sock.sendall(frame)

    def try_send(self, frame: bytes) -> bool:
        """Best-effort send for teardown paths (abort fan-out)."""
        try:
            self.send(frame)
            return True
        except OSError:
            return False

    def recv(self) -> tuple[int, bytes] | None:
        """One (kind, body) frame, or ``None`` on EOF at a frame boundary.

        Raises :class:`FrameTruncatedError` when the stream ends inside
        a frame — the peer died mid-write and data was lost.
        """
        head = self._recv_exact(_LEN.size)
        if head is None:
            return None
        (length,) = _LEN.unpack(head)
        if not 1 <= length <= MAX_FRAME:
            self.truncated = True
            raise FrameTruncatedError(f"corrupt frame length {length}")
        body = self._recv_exact(length, mid_frame=True)
        assert body is not None  # mid_frame raises instead of returning None
        return body[0], body[1:]

    def _recv_exact(self, n: int, mid_frame: bool = False) -> bytes | None:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except OSError as exc:
                if chunks or mid_frame:
                    self.truncated = True
                    raise FrameTruncatedError(
                        f"stream severed {n - remaining}/{n} bytes into a "
                        f"{'frame body' if mid_frame else 'length prefix'}"
                    ) from exc
                return None
            if not chunk:
                if chunks or mid_frame:
                    self.truncated = True
                    raise FrameTruncatedError(
                        f"peer closed {n - remaining}/{n} bytes into a "
                        f"{'frame body' if mid_frame else 'length prefix'}"
                    )
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        with self._send_lock:
            self._closed = True
        with contextlib.suppress(OSError):
            self._sock.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._sock.close()


def listen_local(name: str = "wire") -> tuple[socket.socket, Any]:
    """A listening socket reachable from child processes on this host.

    Prefers an abstract-namespace-free AF_UNIX socket under a private
    tempdir (no TCP stack, no port exhaustion); falls back to loopback
    TCP on platforms without AF_UNIX.  Returns ``(server, address)``
    where ``address`` is what :func:`connect_local` accepts.
    """
    if hasattr(socket, "AF_UNIX"):
        directory = tempfile.mkdtemp(prefix=f"repro-{name}-")
        path = os.path.join(directory, "sock")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(path)
        server.listen(128)
        return server, path
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    server.bind(("127.0.0.1", 0))
    server.listen(128)
    return server, server.getsockname()


#: default jitter source for connect backoff; tests pass a seeded Random
_CONNECT_RNG = random.Random()


def connect_local(
    address: Any,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.05,
    backoff_cap: float = 1.0,
    rng: random.Random | None = None,
) -> FrameConnection:
    """Connect to a :func:`listen_local` address.

    With ``retries > 0``, a refused/failed connect is retried with
    exponentially growing, jittered, capped delays: attempt *k* sleeps
    ``min(backoff_cap, backoff * 2**k)`` scaled by a uniform factor in
    ``[0.5, 1.5)`` so simultaneous reconnectors (a whole world of
    respawned ranks) don't stampede the accept queue in lockstep.  Pass
    a seeded ``rng`` for deterministic test schedules.
    """
    jitter = rng if rng is not None else _CONNECT_RNG
    attempt = 0
    while True:
        if isinstance(address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if timeout is not None:
            sock.settimeout(timeout)
        try:
            sock.connect(address)
        except OSError:
            with contextlib.suppress(OSError):
                sock.close()
            if attempt >= retries:
                raise
            delay = min(backoff_cap, backoff * (2 ** attempt))
            time.sleep(delay * (0.5 + jitter.random()))
            attempt += 1
            continue
        sock.settimeout(None)
        return FrameConnection(sock)


def cleanup_local(address: Any) -> None:
    """Remove the filesystem residue of an AF_UNIX listen address."""
    if isinstance(address, str):
        with contextlib.suppress(OSError):
            os.unlink(address)
        with contextlib.suppress(OSError):
            os.rmdir(os.path.dirname(address))


class FrameServer:
    """Shared accept loop + per-connection frame-read loops.

    Both the MPI process-backend router and the socket RPC server are
    "accept connections, read frames, hand each to a handler" servers;
    this class owns that skeleton so neither reimplements it.

    ``handler(conn, kind, body)`` runs on the connection's reader thread
    (frames from one peer are therefore processed in arrival order — the
    non-overtaking guarantee the MPI layer needs).  ``on_disconnect(conn)``
    fires exactly once when the peer goes away, cleanly or not.
    """

    def __init__(
        self,
        handler: Callable[[FrameConnection, int, bytes], None],
        on_disconnect: Callable[[FrameConnection], None] | None = None,
        name: str = "wire",
    ) -> None:
        self._handler = handler
        self._on_disconnect = on_disconnect
        self._name = name
        self._server, self.address = listen_local(name)
        self._accept_thread: threading.Thread | None = None
        self._readers: list[threading.Thread] = []
        self._conns: list[FrameConnection] = []
        self._lock = threading.Lock()
        self._stopping = False

    def start(self) -> "FrameServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{self._name}-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                sock, _ = self._server.accept()
            except OSError:
                return  # listener closed during stop()
            if self._server.family == socket.AF_INET:
                with contextlib.suppress(OSError):
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = FrameConnection(sock)
            reader = threading.Thread(
                target=self._read_loop, args=(conn,),
                name=f"{self._name}-reader", daemon=True,
            )
            with self._lock:
                self._conns.append(conn)
                self._readers.append(reader)
            reader.start()

    def _read_loop(self, conn: FrameConnection) -> None:
        try:
            while True:
                try:
                    frame = conn.recv()
                except FrameTruncatedError as exc:
                    # conn.truncated is latched; the disconnect handler
                    # reads it to blame a severed stream, not a clean exit
                    _log.warning("%s: %s", self._name, exc)
                    break
                if frame is None:
                    break
                kind, body = frame
                try:
                    self._handler(conn, kind, body)
                except Exception:  # handler bugs must not kill the reader
                    _log.exception("%s: frame handler failed", self._name)
        finally:
            if self._on_disconnect is not None and not self._stopping:
                try:
                    self._on_disconnect(conn)
                except Exception:
                    _log.exception("%s: disconnect handler failed", self._name)

    def connections(self) -> list[FrameConnection]:
        with self._lock:
            return list(self._conns)

    def stop(self) -> None:
        self._stopping = True
        with contextlib.suppress(OSError):
            self._server.close()
        cleanup_local(self.address)
        for conn in self.connections():
            conn.close()
        for reader in list(self._readers):
            reader.join(timeout=2.0)
