"""Protocol stack transfer-cost models (Figure 1a machinery).

Each stack models a bulk transfer of ``total_size`` bytes moved in
``packet_size`` chunks as a *serial* per-chunk pipeline:

    t_chunk = fixed_per_chunk + chunk/wire_rate + copies * chunk/copy_rate

Achieved bandwidth is ``total/sum(t_chunk)``.  The decisive differences
between the three systems are mechanistic, not tuned per figure:

* **MVAPICH2** (native MPI): zero-copy RDMA on IB, a single registered-
  buffer copy on Ethernet, microsecond-scale per-message costs.
* **DataMPI** (Java binding over native MPI): identical wire path plus a
  JNI boundary crossing and one JVM-heap copy per chunk — which is why
  the paper observes it "slightly lower than MVAPICH2" (§I-A).
* **Hadoop Jetty** (HTTP shuffle server): kernel TCP path plus an HTTP
  transaction per chunk (request parse, servlet dispatch) and three
  JVM-side copies (file→heap, heap→chunked encoder, encoder→socket).
  On fast fabrics the copies bound throughput (software ceiling); on
  1GigE the wire is the bottleneck, so Jetty is only slightly slower —
  exactly the Figure 1(a) shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.net.fabric import Fabric

#: JVM memory copy rate, bytes/s (heap-to-heap memcpy incl. GC pressure).
JVM_COPY_RATE = 2.4e9
#: Native (registered buffer) copy rate, bytes/s.
NATIVE_COPY_RATE = 12.0e9


@dataclass(frozen=True)
class ProtocolStack:
    """A protocol's per-chunk serial cost model."""

    name: str
    #: fixed software cost per chunk, seconds (syscalls, dispatch, headers)
    per_chunk_cost: float
    #: number of memory copies each payload byte suffers
    copies: float
    #: bytes/s for each copy
    copy_rate: float
    #: True if the stack can use native verbs when the fabric offers them
    uses_rdma: bool
    #: extra fixed cost per chunk on RDMA (JNI crossing etc.), seconds
    rdma_extra_cost: float = 0.0

    def wire_rate(self, fabric: Fabric) -> float:
        """Payload bytes/s this stack can push onto ``fabric``'s wire."""
        if self.uses_rdma and fabric.has_rdma:
            rate = fabric.rdma_goodput
            assert rate is not None
            return rate
        return fabric.tcp_goodput

    def wire_latency(self, fabric: Fabric) -> float:
        """One-way minimal-packet latency this stack observes."""
        if self.uses_rdma and fabric.has_rdma:
            assert fabric.rdma_latency is not None
            return fabric.rdma_latency
        return fabric.base_latency

    def chunk_time(self, chunk: int, fabric: Fabric) -> float:
        """Seconds to move one ``chunk``-byte packet end to end."""
        fixed = self.per_chunk_cost
        if self.uses_rdma and fabric.has_rdma:
            fixed += self.rdma_extra_cost
        return (
            fixed
            + self.wire_latency(fabric)
            + chunk / self.wire_rate(fabric)
            + self.copies * chunk / self.copy_rate
        )

    def transfer_time(self, total: int, chunk: int, fabric: Fabric) -> float:
        """Seconds to move ``total`` bytes in ``chunk``-byte packets."""
        if total <= 0:
            return 0.0
        chunk = min(chunk, total)
        n_full, rest = divmod(total, chunk)
        t = n_full * self.chunk_time(chunk, fabric)
        if rest:
            t += self.chunk_time(rest, fabric)
        return t

    def throughput(self, total: int, chunk: int, fabric: Fabric) -> float:
        """Achieved payload bytes/s for the whole transfer."""
        t = self.transfer_time(total, chunk, fabric)
        return total / t if t > 0 else math.inf


#: Hadoop's built-in Jetty HTTP server (TaskTracker shuffle proxy).
#: per-chunk: HTTP request parse + servlet dispatch + response headers.
JettyHTTPStack = ProtocolStack(
    name="Hadoop Jetty",
    per_chunk_cost=150e-6,
    copies=3.5,  # server: pagecache->heap->encoder->socket; client: socket->heap
    copy_rate=JVM_COPY_RATE,
    uses_rdma=False,
)

#: DataMPI: native MPI wire path reached through a JNI binding; one JVM
#: heap copy + the JNI crossing per chunk.
DataMPIStack = ProtocolStack(
    name="DataMPI",
    per_chunk_cost=12e-6,
    copies=1.0,
    copy_rate=JVM_COPY_RATE * 2,  # direct-buffer IO (§IV-A "optimized buffer
    # management by native direct IO") halves the JVM copy cost
    uses_rdma=True,
    rdma_extra_cost=8e-6,
)

#: MVAPICH2: the native MPI baseline.
NativeMPIStack = ProtocolStack(
    name="MVAPICH2",
    per_chunk_cost=5e-6,
    copies=1.0,
    copy_rate=NATIVE_COPY_RATE,
    uses_rdma=True,
)

#: The process-per-rank socket backend (``mpi.d.launcher=processes``):
#: loopback/AF_UNIX stream path through :mod:`repro.net.wire` — a kernel
#: round-trip per frame.  Shuffle data rides FLAG_BATCH envelopes whose
#: record-batch bytes are copied verbatim into the frame (no pickle on
#: either side), leaving one buffer copy per hop on the data plane.
#: Modelled here for apples-to-apples comparison with the Figure 1a
#: stacks; deliberately *not* in :data:`PROTOCOLS`, which is pinned to
#: the paper's three systems.
LocalSocketStack = ProtocolStack(
    name="Local Socket",
    per_chunk_cost=25e-6,  # syscall pair + frame header parse per chunk
    copies=1.0,  # sealed batch bytes -> frame; the wire codec never pickles
    copy_rate=NATIVE_COPY_RATE,
    uses_rdma=False,
)

PROTOCOLS: dict[str, ProtocolStack] = {
    stack.name: stack for stack in (JettyHTTPStack, DataMPIStack, NativeMPIStack)
}
