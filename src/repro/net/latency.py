"""RPC round-trip latency model (Figure 1b).

A request/response RPC's latency decomposes into wire round trip,
kernel/stack traversals, serialization of the payload, and server-side
dispatch.  Hadoop RPC and DataMPI RPC share the serialization mechanism
("we further implement an RPC system based on DataMPI by using the same
data serialization mechanism as default Hadoop RPC", §I-A), so the
difference is purely transport + dispatch: DataMPI rides the MPI wire
path (native verbs on IB) with a slim dispatcher, while Hadoop RPC pays
the Java NIO socket stack and its handler-queue hand-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.fabric import FABRICS, Fabric

#: serialization throughput (Writable encode+decode), bytes/s
SERDE_RATE = 400e6
#: fixed serialization cost per call (headers, method name, reflection)
SERDE_FIXED = 10e-6
#: size of the RPC response (ack + status), bytes
RESPONSE_BYTES = 64


@dataclass(frozen=True)
class RpcLatencyModel:
    """One RPC system's latency decomposition."""

    name: str
    #: per-traversal kernel/socket stack cost, seconds (x2 ends x2 ways)
    stack_cost: float
    #: server-side dispatch cost per call (queueing, handler hand-off)
    dispatch_cost: float
    #: True -> uses native verbs latency/rate when the fabric has RDMA
    uses_rdma: bool
    #: extra fixed per-call cost (JNI crossing for the Java binding)
    binding_cost: float = 0.0

    def _one_way_latency(self, fabric: Fabric) -> float:
        if self.uses_rdma and fabric.has_rdma:
            assert fabric.rdma_latency is not None
            return fabric.rdma_latency
        return fabric.base_latency

    def _wire_rate(self, fabric: Fabric) -> float:
        if self.uses_rdma and fabric.has_rdma:
            rate = fabric.rdma_goodput
            assert rate is not None
            return rate
        return fabric.tcp_goodput

    def latency(self, payload: int, fabric: Fabric) -> float:
        """Round-trip seconds for a call with ``payload`` request bytes."""
        wire = (
            2 * self._one_way_latency(fabric)
            + (payload + RESPONSE_BYTES) / self._wire_rate(fabric)
        )
        stacks = 4 * self.stack_cost  # client send/recv + server recv/send
        serde = 2 * SERDE_FIXED + (payload + RESPONSE_BYTES) / SERDE_RATE
        return wire + stacks + serde + self.dispatch_cost + self.binding_cost


#: Default Hadoop RPC: Java NIO sockets, reader thread -> call queue ->
#: handler thread -> responder.
HadoopRpcModel = RpcLatencyModel(
    name="Hadoop",
    stack_cost=5e-6,
    dispatch_cost=50e-6,
    uses_rdma=False,
)

#: DataMPI RPC: MPI transport, direct handler dispatch, JNI boundary.
DataMPIRpcModel = RpcLatencyModel(
    name="DataMPI",
    stack_cost=3e-6,
    dispatch_cost=12e-6,
    uses_rdma=True,
    binding_cost=8e-6,
)

RPC_STACKS: dict[str, RpcLatencyModel] = {
    "Hadoop": HadoopRpcModel,
    "DataMPI": DataMPIRpcModel,
}

#: payload sweep used by the paper: 1 B .. 4 KB in powers of two
PAYLOAD_SIZES = tuple(2**i for i in range(13))


def rpc_latency_comparison(
    fabric: Fabric, payloads: tuple[int, ...] = PAYLOAD_SIZES
) -> dict[str, list[tuple[int, float]]]:
    """Latency curves (seconds) for both RPC systems on ``fabric``."""
    return {
        name: [(p, model.latency(p, fabric)) for p in payloads]
        for name, model in RPC_STACKS.items()
    }


def max_improvement(fabric: Fabric, payloads: tuple[int, ...] = PAYLOAD_SIZES) -> float:
    """Max percentage improvement of DataMPI RPC over Hadoop RPC.

    The paper reports this "up to" figure per fabric: 18% on 1GigE, 32%
    on 10GigE, 55% on IB.
    """
    best = 0.0
    for p in payloads:
        h = HadoopRpcModel.latency(p, fabric)
        d = DataMPIRpcModel.latency(p, fabric)
        best = max(best, (h - d) / h * 100.0)
    return best


def summarize_figure_1b() -> str:
    """Text rendering of Figure 1(b) for the benchmark harness."""
    lines = ["Figure 1(b) RPC Latency (microseconds, lower is better)"]
    for fabric_name, fabric in FABRICS.items():
        curves = rpc_latency_comparison(fabric)
        lines.append(f"-- {fabric_name} --")
        lines.append(f"{'payload(B)':>12}{'Hadoop':>12}{'DataMPI':>12}{'improve':>10}")
        for (p, h), (_, d) in zip(curves["Hadoop"], curves["DataMPI"]):
            lines.append(
                f"{p:>12}{h * 1e6:>12.1f}{d * 1e6:>12.1f}"
                f"{(h - d) / h * 100:>9.1f}%"
            )
        lines.append(f"max improvement on {fabric_name}: {max_improvement(fabric):.1f}%")
    return "\n".join(lines)
