"""Job and task metrics collected by the DataMPI engine."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Counters for one task attempt."""

    task_id: int = -1
    kind: str = ""  # "O" or "A"
    records_emitted: int = 0
    records_received: int = 0
    duration: float = 0.0
    #: worker process the attempt ran on (-1 before it is assigned)
    worker: int = -1
    #: O/A round the attempt belongs to (Iteration mode)
    round_no: int = 0

    def as_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "kind": self.kind,
            "worker": self.worker,
            "round_no": self.round_no,
            "duration": self.duration,
            "records_emitted": self.records_emitted,
            "records_received": self.records_received,
        }


@dataclass
class WorkerMetrics:
    """Per-process counters, merged into :class:`JobMetrics` by the driver."""

    process_rank: int = -1
    o_tasks_run: int = 0
    a_tasks_run: int = 0
    records_sent: int = 0
    bytes_sent: int = 0
    blocks_sent: int = 0
    records_received: int = 0
    blocks_received: int = 0
    spilled_bytes: int = 0
    combined_away: int = 0
    checkpointed_records: int = 0
    reloaded_records: int = 0
    local_a_tasks: int = 0  # A tasks that ran where their data lived
    #: whole replayed shuffle streams dropped (rank recovery exactly-once)
    replays_dropped: int = 0
    #: wall-clock seconds of this worker's engine loop
    wall_seconds: float = 0.0
    #: disjoint main-thread time buckets (compute / partition-sort /
    #: communicate / merge / checkpoint / control) plus overlapping
    #: background buckets (spill); see docs/OBSERVABILITY.md
    phase_times: dict = field(default_factory=dict)
    #: every task attempt this worker executed, in execution order
    tasks: list = field(default_factory=list)

    def add_phase(self, phase: str, seconds: float) -> None:
        if seconds <= 0:
            return
        self.phase_times[phase] = self.phase_times.get(phase, 0.0) + seconds

    def merge_into(self, job: "JobMetrics") -> None:
        job.o_tasks_run += self.o_tasks_run
        job.a_tasks_run += self.a_tasks_run
        job.records_sent += self.records_sent
        job.bytes_sent += self.bytes_sent
        job.blocks_sent += self.blocks_sent
        job.records_received += self.records_received
        job.blocks_received += self.blocks_received
        job.spilled_bytes += self.spilled_bytes
        job.combined_away += self.combined_away
        job.checkpointed_records += self.checkpointed_records
        job.reloaded_records += self.reloaded_records
        job.local_a_tasks += self.local_a_tasks
        job.replays_dropped += self.replays_dropped
        for phase, seconds in self.phase_times.items():
            job.phase_times[phase] = job.phase_times.get(phase, 0.0) + seconds
        job.tasks.extend(self.tasks)


@dataclass
class JobMetrics:
    """Aggregated view of one job execution."""

    o_tasks_run: int = 0
    a_tasks_run: int = 0
    records_sent: int = 0
    bytes_sent: int = 0
    blocks_sent: int = 0
    records_received: int = 0
    blocks_received: int = 0
    spilled_bytes: int = 0
    combined_away: int = 0
    checkpointed_records: int = 0
    reloaded_records: int = 0
    local_a_tasks: int = 0
    duration: float = 0.0
    #: automatic supervised restarts it took to produce this result
    restarts: int = 0
    #: surgical single-rank respawns (process backend; no job restart)
    respawns: int = 0
    #: frames replayed to reborn ranks from the redelivery buffer
    redelivered_frames: int = 0
    #: zombie-incarnation frames fenced at the router by epoch
    stale_frames_dropped: int = 0
    #: whole replayed shuffle streams dropped by receivers (exactly-once)
    replays_dropped: int = 0
    #: per-phase seconds summed across workers (Fig. 5's breakdown)
    phase_times: dict = field(default_factory=dict)
    #: :class:`TaskMetrics` for every task attempt across all workers
    tasks: list = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-friendly dump (``--metrics-json`` and the journal)."""
        return {
            "o_tasks_run": self.o_tasks_run,
            "a_tasks_run": self.a_tasks_run,
            "records_sent": self.records_sent,
            "bytes_sent": self.bytes_sent,
            "blocks_sent": self.blocks_sent,
            "records_received": self.records_received,
            "blocks_received": self.blocks_received,
            "spilled_bytes": self.spilled_bytes,
            "combined_away": self.combined_away,
            "checkpointed_records": self.checkpointed_records,
            "reloaded_records": self.reloaded_records,
            "local_a_tasks": self.local_a_tasks,
            "duration": self.duration,
            "restarts": self.restarts,
            "respawns": self.respawns,
            "redelivered_frames": self.redelivered_frames,
            "stale_frames_dropped": self.stale_frames_dropped,
            "replays_dropped": self.replays_dropped,
            "phase_times": dict(self.phase_times),
            "tasks": [t.as_dict() for t in self.tasks],
        }


@dataclass
class JobResult:
    """What ``mpidrun`` returns."""

    name: str
    success: bool
    metrics: JobMetrics = field(default_factory=JobMetrics)
    error: str = ""
    #: automatic restarts consumed (0 = succeeded or failed first try)
    restarts: int = 0
    #: structured :class:`~repro.common.errors.FailureRecord` history across
    #: all attempts — empty for a clean run, populated even on success when
    #: the job recovered from failures
    failures: list = field(default_factory=list)
    #: flight-recorder journal path ("" when tracing was off)
    trace_path: str = ""
    #: final doctor report (ranked findings, captures, rollups) when the
    #: diagnosis engine ran — empty dict otherwise
    doctor: dict = field(default_factory=dict)
    #: doctor.json path ("" when the doctor was off)
    doctor_path: str = ""

    @property
    def a_data_locality(self) -> float:
        """Fraction of A tasks that ran on the process holding their data.

        The data-centric scheduler should keep this at 1.0 (§IV-B).
        """
        if self.metrics.a_tasks_run == 0:
            return 1.0
        return self.metrics.local_a_tasks / self.metrics.a_tasks_run

    @property
    def task_metrics(self) -> list[TaskMetrics]:
        """Per-task-attempt table (duration, records in/out, worker)."""
        return list(self.metrics.tasks)
