"""Job and task metrics collected by the DataMPI engine."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Counters for one task attempt."""

    task_id: int = -1
    kind: str = ""  # "O" or "A"
    records_emitted: int = 0
    records_received: int = 0
    duration: float = 0.0


@dataclass
class WorkerMetrics:
    """Per-process counters, merged into :class:`JobMetrics` by the driver."""

    process_rank: int = -1
    o_tasks_run: int = 0
    a_tasks_run: int = 0
    records_sent: int = 0
    bytes_sent: int = 0
    blocks_sent: int = 0
    records_received: int = 0
    blocks_received: int = 0
    spilled_bytes: int = 0
    combined_away: int = 0
    checkpointed_records: int = 0
    reloaded_records: int = 0
    local_a_tasks: int = 0  # A tasks that ran where their data lived

    def merge_into(self, job: "JobMetrics") -> None:
        job.o_tasks_run += self.o_tasks_run
        job.a_tasks_run += self.a_tasks_run
        job.records_sent += self.records_sent
        job.bytes_sent += self.bytes_sent
        job.blocks_sent += self.blocks_sent
        job.records_received += self.records_received
        job.blocks_received += self.blocks_received
        job.spilled_bytes += self.spilled_bytes
        job.combined_away += self.combined_away
        job.checkpointed_records += self.checkpointed_records
        job.reloaded_records += self.reloaded_records
        job.local_a_tasks += self.local_a_tasks


@dataclass
class JobMetrics:
    """Aggregated view of one job execution."""

    o_tasks_run: int = 0
    a_tasks_run: int = 0
    records_sent: int = 0
    bytes_sent: int = 0
    blocks_sent: int = 0
    records_received: int = 0
    blocks_received: int = 0
    spilled_bytes: int = 0
    combined_away: int = 0
    checkpointed_records: int = 0
    reloaded_records: int = 0
    local_a_tasks: int = 0
    duration: float = 0.0
    #: automatic supervised restarts it took to produce this result
    restarts: int = 0


@dataclass
class JobResult:
    """What ``mpidrun`` returns."""

    name: str
    success: bool
    metrics: JobMetrics = field(default_factory=JobMetrics)
    error: str = ""
    #: automatic restarts consumed (0 = succeeded or failed first try)
    restarts: int = 0
    #: structured :class:`~repro.common.errors.FailureRecord` history across
    #: all attempts — empty for a clean run, populated even on success when
    #: the job recovered from failures
    failures: list = field(default_factory=list)

    @property
    def a_data_locality(self) -> float:
        """Fraction of A tasks that ran on the process holding their data.

        The data-centric scheduler should keep this at 1.0 (§IV-B).
        """
        if self.metrics.a_tasks_run == 0:
            return 1.0
        return self.metrics.local_a_tasks / self.metrics.a_tasks_run
