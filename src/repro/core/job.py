"""Job definitions.

A :class:`DataMPIJob` bundles the user's O/A task functions with the
optional Table-II functions (compare, partition, combine), the task
counts, and mode + configuration.  :func:`mapreduce_job` adapts
classic ``map(k, v, emit)`` / ``reduce(k, values, emit)`` callables onto
the bipartite API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.common.errors import DataMPIError
from repro.core.constants import Mode
from repro.core.context import TaskContext
from repro.core.partition import Partitioner, hash_partitioner
from repro.core.sorter import group_by_key
from repro.serde.comparators import Compare

TaskFn = Callable[[TaskContext], None]
#: input provider: (task rank, num tasks) -> iterable of (key, value)
InputProvider = Callable[[int, int], Iterable[tuple[Any, Any]]]
#: output collector: (task rank, key, value) -> None
OutputCollector = Callable[[int, Any, Any], None]
Combiner = Callable[[Any, list[Any]], Iterable[Any]]


@dataclass
class DataMPIJob:
    """Everything ``mpidrun`` needs to execute one application."""

    name: str
    o_fn: TaskFn
    a_fn: TaskFn
    o_tasks: int
    a_tasks: int
    mode: Mode = Mode.MAPREDUCE
    conf: Mapping[str, Any] = field(default_factory=dict)
    #: MPI_D_PARTITION (Table II); default hash-modulo policy
    partitioner: Partitioner = hash_partitioner
    #: MPI_D_COMPARE (Table II); None = natural key ordering
    comparator: Compare | None = None
    #: MPI_D_COMBINE (Table II); None = no combining
    combiner: Combiner | None = None
    #: Iteration mode: number of O/A rounds
    rounds: int = 1

    def validate(self) -> None:
        if self.o_tasks < 1 or self.a_tasks < 1:
            raise DataMPIError("jobs need at least one O and one A task")
        if self.rounds < 1:
            raise DataMPIError("rounds must be >= 1")
        if self.rounds > 1 and self.mode is not Mode.ITERATION:
            raise DataMPIError("multi-round jobs require Iteration mode")


def mapreduce_job(
    name: str,
    input_provider: InputProvider,
    mapper: Callable[[Any, Any, Callable[[Any, Any], None]], None],
    reducer: Callable[[Any, list[Any], Callable[[Any, Any], None]], None],
    output_collector: OutputCollector,
    o_tasks: int,
    a_tasks: int,
    conf: Mapping[str, Any] | None = None,
    combiner: Combiner | None = None,
    partitioner: Partitioner = hash_partitioner,
    comparator: Compare | None = None,
) -> DataMPIJob:
    """Adapt map/reduce callables to the bipartite model (MapReduce mode).

    The O task streams its input split through ``mapper``; the A task
    groups its key-sorted partition and feeds ``reducer``.
    """

    def o_fn(ctx: TaskContext) -> None:
        for key, value in input_provider(ctx.rank, ctx.o_size):
            mapper(key, value, ctx.send)

    def a_fn(ctx: TaskContext) -> None:
        def emit(key: Any, value: Any) -> None:
            output_collector(ctx.rank, key, value)

        for key, values in group_by_key(ctx.recv_iter()):
            reducer(key, values, emit)

    return DataMPIJob(
        name=name,
        o_fn=o_fn,
        a_fn=a_fn,
        o_tasks=o_tasks,
        a_tasks=a_tasks,
        mode=Mode.MAPREDUCE,
        conf=dict(conf or {}),
        partitioner=partitioner,
        comparator=comparator,
        combiner=combiner,
    )


def common_job(
    name: str,
    o_fn: TaskFn,
    a_fn: TaskFn,
    o_tasks: int,
    a_tasks: int,
    conf: Mapping[str, Any] | None = None,
    **kwargs: Any,
) -> DataMPIJob:
    """SPMD-style Common-mode job (the Listing-1 shape)."""
    return DataMPIJob(
        name=name,
        o_fn=o_fn,
        a_fn=a_fn,
        o_tasks=o_tasks,
        a_tasks=a_tasks,
        mode=Mode.COMMON,
        conf=dict(conf or {}),
        **kwargs,
    )
