"""Sorting and k-way merging of key-value runs (§IV-C/§IV-D machinery).

A *run* is a key-sorted sequence of (key, value) pairs.  Runs live in
memory or on disk (spilled, serialized); :func:`merge_runs` lazily merges
any mix of them with a heap, preserving stability so equal keys keep
their arrival order — which MapReduce semantics rely on.
"""

from __future__ import annotations

import heapq
import os
import tempfile
from typing import Any, Callable, Iterable, Iterator

from repro.common.records import kv_bytes
from repro.serde.comparators import Compare, default_compare, sort_key
from repro.serde.io import DataInput, DataOutput
from repro.serde.serialization import Serializer

KV = tuple[Any, Any]


def sort_block(records: list[KV], cmp: Compare | None = None) -> list[KV]:
    """Stable in-memory sort of one block by key."""
    key_fn = sort_key(cmp or default_compare)
    return sorted(records, key=lambda kv: key_fn(kv[0]))


def merge_runs(
    runs: list[Iterable[KV]], cmp: Compare | None = None
) -> Iterator[KV]:
    """Lazy stable k-way merge of key-sorted runs.

    Ties break by run index then arrival order, so the merge is stable
    with respect to the order runs were produced.
    """
    cmp = cmp or default_compare
    key_fn = sort_key(cmp)
    heap: list[tuple[Any, int, int, KV, Iterator[KV]]] = []
    for idx, run in enumerate(runs):
        it = iter(run)
        first = next(it, None)
        if first is not None:
            heap.append((key_fn(first[0]), idx, 0, first, it))
    heapq.heapify(heap)
    while heap:
        _, idx, seq, record, it = heapq.heappop(heap)
        yield record
        nxt = next(it, None)
        if nxt is not None:
            heapq.heappush(heap, (key_fn(nxt[0]), idx, seq + 1, nxt, it))


def group_by_key(sorted_records: Iterable[KV]) -> Iterator[tuple[Any, list[Any]]]:
    """Group a key-sorted stream into (key, [values]) — the reduce input."""
    it = iter(sorted_records)
    first = next(it, None)
    if first is None:
        return
    current_key, values = first[0], [first[1]]
    for key, value in it:
        if key == current_key:
            values.append(value)
        else:
            yield current_key, values
            current_key, values = key, [value]
    yield current_key, values


def combine_run(
    sorted_records: Iterable[KV],
    combiner: Callable[[Any, list[Any]], Iterable[Any]],
) -> list[KV]:
    """Apply ``MPI_D_COMBINE`` to a sorted run, shrinking it in place.

    The combiner receives (key, values) and returns the combined output
    values for that key (usually one).
    """
    out: list[KV] = []
    for key, values in group_by_key(sorted_records):
        for combined in combiner(key, values):
            out.append((key, combined))
    return out


class SpillFile:
    """One on-disk serialized (optionally compressed) run."""

    def __init__(
        self,
        path: str,
        serializer: Serializer,
        count: int,
        nbytes: int,
        compressed: bool = False,
    ):
        self.path = path
        self.serializer = serializer
        self.count = count
        #: bytes on disk (post-compression)
        self.nbytes = nbytes
        self.compressed = compressed

    def __iter__(self) -> Iterator[KV]:
        with open(self.path, "rb") as f:
            data = f.read()
        if self.compressed:
            import zlib

            data = zlib.decompress(data)
        src = DataInput(data)
        for _ in range(self.count):
            yield self.serializer.deserialize_kv(src)

    def delete(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def spill_run(
    records: list[KV],
    serializer: Serializer,
    directory: str,
    stem: str,
    compress: bool = False,
) -> SpillFile:
    """Serialize one run to ``directory`` and return its handle.

    ``compress`` trades CPU for disk bandwidth like Hadoop's
    ``mapred.compress.map.output`` — worthwhile exactly when the disk is
    the bottleneck, which §V-B says it is on single-HDD nodes.
    """
    out = DataOutput()
    for key, value in records:
        serializer.serialize_kv(key, value, out)
    payload = out.getvalue()
    if compress:
        import zlib

        payload = zlib.compress(payload, level=1)
    fd, path = tempfile.mkstemp(prefix=f"{stem}-", suffix=".spill", dir=directory)
    with os.fdopen(fd, "wb") as f:
        f.write(payload)
    return SpillFile(path, serializer, len(records), len(payload), compress)


class RunStore:
    """Accumulates runs for one partition, spilling past a memory budget.

    The store tracks the estimated in-memory footprint; once it exceeds
    ``memory_budget`` the largest in-memory runs are spilled.  Iteration
    merges everything (memory + disk) in key order.
    """

    def __init__(
        self,
        cmp: Compare | None,
        serializer: Serializer,
        directory: str,
        memory_budget: int,
        stem: str = "run",
        compress_spills: bool = False,
    ) -> None:
        self.cmp = cmp
        self.serializer = serializer
        self.directory = directory
        self.memory_budget = memory_budget
        self.stem = stem
        self.compress_spills = compress_spills
        self.memory_runs: list[list[KV]] = []
        self.disk_runs: list[SpillFile] = []
        self.memory_bytes = 0
        self.spilled_bytes = 0
        self.total_records = 0

    def add_run(self, run: list[KV], nbytes: int | None = None) -> None:
        """Add a key-sorted run (or unsorted when cmp is None)."""
        if nbytes is None:
            nbytes = sum(kv_bytes(k, v) for k, v in run)
        self.memory_runs.append(run)
        self.memory_bytes += nbytes
        self.total_records += len(run)
        while self.memory_bytes > self.memory_budget and self.memory_runs:
            self._spill_largest()

    def _spill_largest(self) -> None:
        idx = max(
            range(len(self.memory_runs)), key=lambda i: len(self.memory_runs[i])
        )
        run = self.memory_runs.pop(idx)
        nbytes = sum(kv_bytes(k, v) for k, v in run)
        self.memory_bytes = max(0, self.memory_bytes - nbytes)
        spill = spill_run(
            run, self.serializer, self.directory, self.stem,
            compress=self.compress_spills,
        )
        self.disk_runs.append(spill)
        self.spilled_bytes += spill.nbytes

    def compact(self, max_runs: int) -> None:
        """Background merge: collapse in-memory runs when too many pile up.

        This is the paper's receive-side merge thread behaviour: "some of
        the cached RPLs are merged" once the merge queue crosses a
        threshold.
        """
        if len(self.memory_runs) <= max_runs:
            return
        merged = list(merge_runs(self.memory_runs, self.cmp)) if self.cmp else [
            record for run in self.memory_runs for record in run
        ]
        self.memory_runs = [merged]

    def __iter__(self) -> Iterator[KV]:
        runs: list[Iterable[KV]] = list(self.memory_runs) + list(self.disk_runs)
        if self.cmp is None:
            for run in runs:
                yield from run
        else:
            yield from merge_runs(runs, self.cmp)

    def cleanup(self) -> None:
        for spill in self.disk_runs:
            spill.delete()
        self.disk_runs.clear()
        self.memory_runs.clear()
        self.memory_bytes = 0
