"""Sorting and k-way merging of key-value runs (§IV-C/§IV-D machinery).

A *run* is a key-sorted sequence of (key, value) pairs.  Runs live in
memory or on disk (spilled, serialized); :func:`merge_runs` lazily merges
any mix of them with a heap, preserving stability so equal keys keep
their arrival order — which MapReduce semantics rely on.
"""

from __future__ import annotations

import heapq
import operator
import os
import tempfile
import zlib
from time import perf_counter as _clock
from typing import Any, Callable, Iterable, Iterator

from repro.common.records import kv_run_bytes
from repro.obs.tracer import TRACER as _T
from repro.serde.batch import BatchBuilder, RecordBatch, concat_batches
from repro.serde.comparators import Compare, bytes_compare, default_compare, sort_key
from repro.serde.io import ChunkedDataInput, DataOutput
from repro.serde.serialization import Serializer

KV = tuple[Any, Any]

_key_of = operator.itemgetter(0)


def _native_class(key: Any) -> type | None:
    """The native comparison class of ``key``, or None when key ordering
    must go through the total-order comparator.

    Keys whose class is returned here sort identically under Python's
    built-in ``<`` and under :func:`default_compare` (which also only uses
    ``<``), so ``sorted``/``heapq`` can compare them directly — C-speed —
    instead of bouncing every comparison through a Python-level
    ``cmp_to_key`` wrapper.  int/float/bool are mutually comparable and
    share one class.
    """
    t = type(key)
    if t is str:
        return str
    if t is int or t is float or t is bool:
        return float
    if t is bytes:
        return bytes
    return None


def sort_block(records: list[KV], cmp: Compare | None = None) -> list[KV]:
    """Stable in-memory sort of one block by key."""
    cmp = cmp or default_compare
    if cmp is default_compare or cmp is bytes_compare:
        # bytes_compare orders exactly like native ``<`` on bytes keys
        try:
            return sorted(records, key=_key_of)
        except TypeError:
            pass  # heterogeneous/unorderable keys: total-order path below
    key_fn = sort_key(cmp)
    return sorted(records, key=lambda kv: key_fn(kv[0]))


def merge_runs(
    runs: list[Iterable[KV]], cmp: Compare | None = None
) -> Iterator[KV]:
    """Lazy stable k-way merge of key-sorted runs.

    Ties break by run index then arrival order, so the merge is stable
    with respect to the order runs were produced.  When the default
    comparator is in play and every key shares one native comparison
    class, heap comparisons run on the raw keys (C speed); the merge
    downgrades itself to the wrapped-comparator path the moment a
    non-conforming key shows up.
    """
    cmp = cmp or default_compare
    heads: list[tuple[KV, int, Iterator[KV]]] = []
    native_class: type | None = None
    # bytes_compare is ``<`` on bytes: raw-key merges (TeraSort) take the
    # native path too instead of bouncing through cmp_to_key
    native = cmp is default_compare or cmp is bytes_compare
    for idx, run in enumerate(runs):
        it = iter(run)
        first = next(it, None)
        if first is None:
            continue
        heads.append((first, idx, it))
        if native:
            cls = _native_class(first[0])
            if (
                cls is None
                or (cmp is bytes_compare and cls is not bytes)
                or (native_class is not None and cls is not native_class)
            ):
                native = False
            else:
                native_class = cls
    key_fn = sort_key(cmp)
    if native and native_class is not None:
        return _merge_native(heads, native_class, key_fn)
    return _drain_wrapped(
        [(key_fn(rec[0]), idx, 0, rec, it) for rec, idx, it in heads], key_fn
    )


def _merge_native(
    heads: list[tuple[KV, int, Iterator[KV]]],
    native_class: type,
    key_fn: Callable[[Any], Any],
) -> Iterator[KV]:
    """Merge with raw-key comparisons; every key is type-checked *before*
    entering the heap so heap operations can never raise mid-sift."""
    heap = [(rec[0], idx, 0, rec, it) for rec, idx, it in heads]
    heapq.heapify(heap)
    while heap:
        _, idx, seq, record, it = heapq.heappop(heap)
        yield record
        nxt = next(it, None)
        if nxt is None:
            continue
        if _native_class(nxt[0]) is not native_class:
            # downgrade: re-wrap the surviving entries and continue stably
            wrapped = [(key_fn(r[0]), i, s, r, i2) for (_, i, s, r, i2) in heap]
            wrapped.append((key_fn(nxt[0]), idx, seq + 1, nxt, it))
            yield from _drain_wrapped(wrapped, key_fn)
            return
        heapq.heappush(heap, (nxt[0], idx, seq + 1, nxt, it))


def _drain_wrapped(
    heap: list[tuple[Any, int, int, KV, Iterator[KV]]],
    key_fn: Callable[[Any], Any],
) -> Iterator[KV]:
    heapq.heapify(heap)
    while heap:
        _, idx, seq, record, it = heapq.heappop(heap)
        yield record
        nxt = next(it, None)
        if nxt is not None:
            heapq.heappush(heap, (key_fn(nxt[0]), idx, seq + 1, nxt, it))


def merge_batches(
    batches: list[RecordBatch], cmp: Compare | None, serializer: Serializer
) -> RecordBatch:
    """K-way merge sealed batches into one batch, bytes-first.

    Only the keys are decoded (to drive the heap); record payloads are
    copied as opaque slices into the output batch — no value ever
    materializes.  Raw batches merge on ``bytes`` key slices, which the
    native heap fast path compares at C speed.
    """
    if cmp is None:
        return concat_batches(batches)
    builder = BatchBuilder(serializer, raw=batches[0].raw if batches else False)
    add_record = builder.add_record
    for _key, record in merge_runs(
        [batch.iter_keyed(serializer) for batch in batches], cmp
    ):
        add_record(record)
    return builder.seal()


def group_by_key(sorted_records: Iterable[KV]) -> Iterator[tuple[Any, list[Any]]]:
    """Group a key-sorted stream into (key, [values]) — the reduce input."""
    it = iter(sorted_records)
    first = next(it, None)
    if first is None:
        return
    current_key, values = first[0], [first[1]]
    for key, value in it:
        if key == current_key:
            values.append(value)
        else:
            yield current_key, values
            current_key, values = key, [value]
    yield current_key, values


def combine_run(
    sorted_records: Iterable[KV],
    combiner: Callable[[Any, list[Any]], Iterable[Any]],
) -> list[KV]:
    """Apply ``MPI_D_COMBINE`` to a sorted run, shrinking it in place.

    The combiner receives (key, values) and returns the combined output
    values for that key (usually one).
    """
    out: list[KV] = []
    for key, values in group_by_key(sorted_records):
        for combined in combiner(key, values):
            out.append((key, combined))
    return out


#: read granularity when streaming a spill back in
_SPILL_CHUNK_BYTES = 64 * 1024


class SpillFile:
    """One on-disk serialized (optionally compressed) run."""

    def __init__(
        self,
        path: str,
        serializer: Serializer,
        count: int,
        nbytes: int,
        compressed: bool = False,
        batch: bool = False,
        raw: bool = False,
    ):
        self.path = path
        self.serializer = serializer
        self.count = count
        #: bytes on disk (post-compression)
        self.nbytes = nbytes
        self.compressed = compressed
        #: True when the file is one sealed record batch written verbatim
        #: (length-prefixed layout) instead of back-to-back serialize_kv
        self.batch = batch
        self.raw = raw

    def __iter__(self) -> Iterator[KV]:
        """Stream the run back with buffered incremental reads.

        The k-way merge holds one iterator per spill; slurping whole
        files here would momentarily resident the entire spilled dataset,
        defeating the memory budget that caused the spill.
        """
        with open(self.path, "rb") as f:
            src = ChunkedDataInput(self._chunks(f))
            if self.batch:
                if self.raw:
                    for _ in range(self.count):
                        key = src.read_bytes(src.read_vint())
                        value = src.read_bytes(src.read_vint())
                        yield key, value
                else:
                    deserialize = self.serializer.deserialize
                    for _ in range(self.count):
                        src.read_vint()  # record framing; encoding delimits
                        key = deserialize(src)
                        src.read_vint()
                        value = deserialize(src)
                        yield key, value
            else:
                for _ in range(self.count):
                    yield self.serializer.deserialize_kv(src)

    def _chunks(self, f) -> Iterator[bytes]:
        if not self.compressed:
            while True:
                raw = f.read(_SPILL_CHUNK_BYTES)
                if not raw:
                    return
                yield raw
        else:
            decomp = zlib.decompressobj()
            while True:
                raw = f.read(_SPILL_CHUNK_BYTES)
                if not raw:
                    break
                out = decomp.decompress(raw)
                if out:
                    yield out
            tail = decomp.flush()
            if tail:
                yield tail

    def delete(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def spill_run(
    records: list[KV],
    serializer: Serializer,
    directory: str,
    stem: str,
    compress: bool = False,
) -> SpillFile:
    """Serialize one run to ``directory`` and return its handle.

    ``compress`` trades CPU for disk bandwidth like Hadoop's
    ``mapred.compress.map.output`` — worthwhile exactly when the disk is
    the bottleneck, which §V-B says it is on single-HDD nodes.
    """
    out = DataOutput()
    for key, value in records:
        serializer.serialize_kv(key, value, out)
    payload = out.getvalue()
    if compress:
        payload = zlib.compress(payload, level=1)
    fd, path = tempfile.mkstemp(prefix=f"{stem}-", suffix=".spill", dir=directory)
    with os.fdopen(fd, "wb") as f:
        f.write(payload)
    return SpillFile(path, serializer, len(records), len(payload), compress)


def spill_batch(
    batch: RecordBatch,
    serializer: Serializer,
    directory: str,
    stem: str,
    compress: bool = False,
) -> SpillFile:
    """Write a sealed batch to disk verbatim — no per-record re-encode."""
    payload = batch.data if isinstance(batch.data, bytes) else bytes(batch.data)
    if compress:
        payload = zlib.compress(payload, level=1)
    fd, path = tempfile.mkstemp(prefix=f"{stem}-", suffix=".spill", dir=directory)
    with os.fdopen(fd, "wb") as f:
        f.write(payload)
    return SpillFile(
        path, serializer, batch.count, len(payload), compress,
        batch=True, raw=batch.raw,
    )


class RunStore:
    """Accumulates runs for one partition, spilling past a memory budget.

    The store tracks the estimated in-memory footprint; once it exceeds
    ``memory_budget`` the largest in-memory runs are spilled.  Iteration
    merges everything (memory + disk) in key order.
    """

    def __init__(
        self,
        cmp: Compare | None,
        serializer: Serializer,
        directory: str,
        memory_budget: int,
        stem: str = "run",
        compress_spills: bool = False,
    ) -> None:
        self.cmp = cmp
        self.serializer = serializer
        self.directory = directory
        self.memory_budget = memory_budget
        self.stem = stem
        self.compress_spills = compress_spills
        #: in-memory runs: object lists (legacy blocks) or sealed
        #: :class:`RecordBatch` byte blocks (bytes-first datapath)
        self.memory_runs: list[list[KV] | RecordBatch] = []
        #: cached payload estimate per in-memory run, parallel to
        #: ``memory_runs`` — sized once on entry, never re-scanned
        self.run_nbytes: list[int] = []
        self.disk_runs: list[SpillFile] = []
        self.memory_bytes = 0
        self.spilled_bytes = 0
        self.total_records = 0
        #: seconds spent writing spills (overlaps compute: spills happen
        #: on the receiver thread, so this is an overlay phase bucket)
        self.spill_seconds = 0.0

    def add_run(self, run: list[KV], nbytes: int | None = None) -> None:
        """Add a key-sorted run (or unsorted when cmp is None).

        Callers that already know the run's size (sealed blocks carry it)
        pass ``nbytes``; otherwise the run is sized exactly once here.
        """
        if nbytes is None:
            nbytes = kv_run_bytes(run)
        self.memory_runs.append(run)
        self.run_nbytes.append(nbytes)
        self.memory_bytes += nbytes
        self.total_records += len(run)
        while self.memory_bytes > self.memory_budget and self.memory_runs:
            self._spill_largest()

    def add_batch(self, batch: RecordBatch, nbytes: int | None = None) -> None:
        """Add a sealed record batch as one run — O(1) on arrival; the
        batch bytes spill and merge without per-record re-encoding."""
        self.add_run(batch, len(batch.data) if nbytes is None else nbytes)

    def _spill_largest(self) -> None:
        """Spill the largest-by-bytes in-memory run (frees the most budget
        per disk write; the old largest-by-count pick could spill a long
        run of tiny records while a few huge pairs stayed resident)."""
        idx = max(range(len(self.run_nbytes)), key=self.run_nbytes.__getitem__)
        run = self.memory_runs.pop(idx)
        nbytes = self.run_nbytes.pop(idx)
        self.memory_bytes = max(0, self.memory_bytes - nbytes)
        t0 = _clock()
        if isinstance(run, RecordBatch):
            spill = spill_batch(
                run, self.serializer, self.directory, self.stem,
                compress=self.compress_spills,
            )
        else:
            spill = spill_run(
                run, self.serializer, self.directory, self.stem,
                compress=self.compress_spills,
            )
        dur = _clock() - t0
        self.spill_seconds += dur
        if _T.enabled:
            _T.complete(
                "spill", t0, dur, cat="spill",
                args={
                    "stem": self.stem, "records": len(run),
                    "bytes": spill.nbytes,
                },
            )
        self.disk_runs.append(spill)
        self.spilled_bytes += spill.nbytes

    def compact(self, max_runs: int) -> None:
        """Background merge: collapse in-memory runs when too many pile up.

        This is the paper's receive-side merge thread behaviour: "some of
        the cached RPLs are merged" once the merge queue crosses a
        threshold.
        """
        if len(self.memory_runs) <= max_runs:
            return
        with _T.span(
            "rpl.compact", cat="merge",
            args={"stem": self.stem, "runs": len(self.memory_runs)},
        ):
            merged: list[KV] | RecordBatch
            if all(isinstance(run, RecordBatch) for run in self.memory_runs):
                # bytes-first: keys drive the heap, record slices are
                # copied verbatim — values never materialize
                merged = merge_batches(self.memory_runs, self.cmp, self.serializer)
            else:
                runs = [self._as_pairs(run) for run in self.memory_runs]
                merged = list(merge_runs(runs, self.cmp)) if self.cmp else [
                    record for run in runs for record in run
                ]
        # merging permutes records but never changes their payload size
        total = sum(self.run_nbytes)
        self.memory_runs = [merged]
        self.run_nbytes = [total]

    def _as_pairs(self, run: list[KV] | RecordBatch) -> Iterable[KV]:
        if isinstance(run, RecordBatch):
            return run.iter_pairs(self.serializer)
        return run

    def as_batch(self) -> RecordBatch | None:
        """The whole store as one merged batch, or ``None``.

        Available when everything is resident as sealed batches (no disk
        runs, no legacy object runs): raw-byte consumers (TeraSort A
        tasks) then read the merged partition without materializing any
        Python objects.  Compacts first if several batches remain.
        """
        if self.disk_runs or not self.memory_runs:
            return None
        if not all(isinstance(run, RecordBatch) for run in self.memory_runs):
            return None
        if len(self.memory_runs) > 1:
            self.compact(1)
        run = self.memory_runs[0]
        return run if isinstance(run, RecordBatch) else None

    def __iter__(self) -> Iterator[KV]:
        runs: list[Iterable[KV]] = [
            self._as_pairs(run) for run in self.memory_runs
        ] + list(self.disk_runs)
        if self.cmp is None:
            for run in runs:
                yield from run
        else:
            yield from merge_runs(runs, self.cmp)

    def cleanup(self) -> None:
        for spill in self.disk_runs:
            spill.delete()
        self.disk_runs.clear()
        self.memory_runs.clear()
        self.run_nbytes.clear()
        self.memory_bytes = 0
