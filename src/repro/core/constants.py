"""Reserved configuration keys and modes (paper Table I, §III-A).

``MPI_D_Constants`` mirrors the Java binding's constants class used in
Listing 1 (``MPI_D_Constants.KEY_CLASS`` etc.).  Every tunable the
DataMPI engine reads is named here so profiles, tests and user code share
one vocabulary.
"""

from __future__ import annotations

from enum import Enum


class Mode(Enum):
    """The four diversified communication modes (§II-A, §III-A)."""

    #: SPMD-style programming and execution, like traditional MPI programs
    COMMON = "common"
    #: MPMD-style MapReduce applications (sorted, one-way exchange)
    MAPREDUCE = "mapreduce"
    #: iterative computations (bi-directional, multiple rounds)
    ITERATION = "iteration"
    #: real-time data streams (unsorted, pipelined delivery)
    STREAMING = "streaming"


class MPI_D_Constants:
    """Reserved configuration keys."""

    # -- serialization (the two keys shown in the paper) -----------------------
    KEY_CLASS = "mpi.d.key.class"
    VALUE_CLASS = "mpi.d.value.class"
    #: serializer backend: "writable" | "pickle" | "java"
    SERIALIZER = "mpi.d.serializer"

    # -- buffer management (§IV-D) ---------------------------------------------
    #: flush threshold per send-partition, bytes
    SPL_PARTITION_BYTES = "mpi.d.spl.partition.bytes"
    #: receive-side merge trigger: blocks per partition before a merge pass
    MERGE_THRESHOLD_BLOCKS = "mpi.d.merge.threshold.blocks"
    #: memory budget for cached intermediate data per process, bytes;
    #: beyond it, merged runs spill to disk (§V-E)
    MEMORY_CACHE_BYTES = "mpi.d.memory.cache.bytes"
    #: fraction of intermediate data cached in memory (Figure 12 knob);
    #: when set, overrides MEMORY_CACHE_BYTES proportionally
    CACHE_FRACTION = "mpi.d.cache.fraction"
    #: directory for spill files (defaults to a temp dir)
    LOCAL_DIR = "mpi.d.local.dir"
    #: zlib-compress spilled runs (trade CPU for disk bandwidth)
    SPILL_COMPRESS = "mpi.d.spill.compress"
    #: sender-side coalescing cap: blocks bound for one destination ride in
    #: a single MPI envelope until the batch reaches this many bytes
    SHUFFLE_BATCH_BYTES = "mpi.d.shuffle.batch.bytes"
    #: bytes-first datapath: seal emitted pairs into contiguous record
    #: batches (serialize once, ship bytes) instead of object tuples
    SHUFFLE_BYTES = "mpi.d.shuffle.bytes.batch"
    #: raw record batches: keys/values are the application's own bytes,
    #: framed without serializer tags (TeraSort-style byte workloads)
    SHUFFLE_RAW = "mpi.d.shuffle.raw.bytes"

    # -- semantics toggles (mode profile defaults) --------------------------------
    #: sort key-value pairs by key during the exchange
    SORT = "mpi.d.sort"
    #: allow A->O communication (Iteration mode)
    BIDIRECTIONAL = "mpi.d.bidirectional"
    #: deliver pairs as they arrive instead of after the O phase
    PIPELINED_DELIVERY = "mpi.d.pipelined.delivery"
    #: number of O/A rounds (Iteration mode)
    ROUNDS = "mpi.d.rounds"

    # -- fault tolerance (§IV-E) ----------------------------------------------
    #: enable the key-value library-level checkpoint
    FT_ENABLED = "mpi.d.ft.enabled"
    #: records per checkpoint round
    FT_INTERVAL_RECORDS = "mpi.d.ft.interval.records"
    #: checkpoint directory (must survive restarts)
    FT_DIR = "mpi.d.ft.dir"
    #: stable job id, so a restart finds its checkpoints
    JOB_ID = "mpi.d.job.id"

    # -- supervision (automatic detect -> abort -> resume) -----------------------
    #: with FT enabled, mpidrun reruns a failed job up to this many times
    #: (0 = report the failure to the caller, the pre-supervision behaviour)
    JOB_MAX_RESTARTS = "mpi.d.job.max.restarts"
    #: give up once any single task has failed this many attempts
    TASK_MAX_ATTEMPTS = "mpi.d.task.max.attempts"
    #: base of the exponential backoff between restarts, seconds
    RESTART_BACKOFF_SECONDS = "mpi.d.restart.backoff.seconds"
    #: jitter fraction applied to each restart delay: the computed delay is
    #: scaled by a uniform factor in [1-j, 1+j] so concurrent supervised
    #: jobs don't retry in lockstep (0 disables; default 0.25)
    RESTART_BACKOFF_JITTER = "mpi.d.restart.backoff.jitter"
    #: seed for the restart jitter RNG (tests pin it for determinism)
    RESTART_BACKOFF_SEED = "mpi.d.restart.backoff.seed"
    #: worker -> driver heartbeat period, seconds
    HEARTBEAT_INTERVAL_SECONDS = "mpi.d.heartbeat.interval.seconds"
    #: a worker silent this long is declared lost (<= 0 disables detection)
    HEARTBEAT_DEADLINE_SECONDS = "mpi.d.heartbeat.deadline.seconds"
    #: shuffle-plane completion timeout, seconds
    PLANE_TIMEOUT_SECONDS = "mpi.d.plane.timeout.seconds"
    #: current job attempt, 1-based (set internally by mpidrun on restarts)
    JOB_ATTEMPT = "mpi.d.job.attempt"

    # -- surgical rank recovery (process backend) ---------------------------------
    #: respawn a dead rank in place up to this many times per rank per
    #: attempt before degrading to the whole-job restart path (0 = off,
    #: every rank death aborts the world as before)
    RANK_MAX_RESPAWNS = "mpi.d.rank.max.respawns"
    #: cap on the driver-side redelivery buffer per rank, bytes; overflow
    #: marks the rank surgically unrecoverable (its death then degrades
    #: to a whole-job restart)
    RANK_REDELIVERY_BYTES = "mpi.d.rank.redelivery.bytes"

    # -- observability (flight recorder) -------------------------------------------
    #: record spans/instants/counters into a per-job JSONL journal
    #: rank substrate: "threads" (in-process, zero-copy) or "processes"
    #: (one OS process per rank over the socket router — real parallelism)
    LAUNCHER = "mpi.d.launcher"
    #: multiprocessing start method for the process backend ("fork"
    #: inherits job closures; "spawn" requires picklable jobs)
    LAUNCHER_START_METHOD = "mpi.d.launcher.start.method"

    TRACE_ENABLED = "mpi.d.trace.enabled"
    #: journal path (defaults to <job>.trace.jsonl in the local dir);
    #: setting it implies TRACE_ENABLED
    TRACE_PATH = "mpi.d.trace.path"
    #: windowed metrics sampling period, seconds (<= 0 disables the sampler)
    TRACE_METRICS_INTERVAL_SECONDS = "mpi.d.trace.metrics.interval.seconds"
    #: also write a Chrome/Perfetto trace.json next to the journal
    TRACE_CHROME = "mpi.d.trace.chrome"

    # -- live telemetry plane ------------------------------------------------------
    #: ship per-rank telemetry snapshots to the driver's TelemetryHub
    #: while the job runs (served over a SocketRpcServer for `repro top`
    #: and Prometheus scrapes)
    TELEMETRY_ENABLED = "mpi.d.telemetry.enabled"
    #: snapshot shipping period per rank, seconds
    TELEMETRY_INTERVAL_SECONDS = "mpi.d.telemetry.interval.seconds"
    #: ring-buffer depth per (rank, epoch) series in the hub
    TELEMETRY_RING = "mpi.d.telemetry.ring"
    #: write the hub's RPC endpoint address to this file so concurrent
    #: clients (`repro top`, scrapers) can find a running job
    TELEMETRY_ENDPOINT_FILE = "mpi.d.telemetry.endpoint.file"

    # -- sampling profiler ---------------------------------------------------------
    #: sample every rank's call stacks while the job runs (collapsed
    #: stacks land in the trace journal; `repro flame` renders them)
    PROFILE_ENABLED = "mpi.d.profile.enabled"
    #: sampling rate in Hz (stack walks per second)
    PROFILE_HZ = "mpi.d.profile.hz"

    # -- doctor (automatic diagnosis) ----------------------------------------------
    #: run the driver-side diagnosis engine: watch telemetry rollups for
    #: stall signatures, auto-capture all-rank stack dumps, and write a
    #: ranked doctor.json report (implies live telemetry)
    DOCTOR_ENABLED = "mpi.d.doctor.enabled"
    #: evaluation period, seconds
    DOCTOR_INTERVAL_SECONDS = "mpi.d.doctor.interval.seconds"
    #: straggler score (max wall / median wall) that triggers a finding
    DOCTOR_STRAGGLER_THRESHOLD = "mpi.d.doctor.straggler.threshold"
    #: seconds a live rank's phase clock may stand still before it is
    #: declared stalled (and an all-rank stack capture fires)
    DOCTOR_STALL_SECONDS = "mpi.d.doctor.stall.seconds"
    #: pending-envelope depth per rank that triggers a queue finding
    DOCTOR_QUEUE_DEPTH = "mpi.d.doctor.queue.depth"
    #: where to write the doctor.json report (default: temp dir)
    DOCTOR_PATH = "mpi.d.doctor.path"

    # -- failure injection (testing) ----------------------------------------------
    #: crash the job after this many total emitted records (-1 = never)
    INJECT_CRASH_AFTER_RECORDS = "mpi.d.inject.crash.after.records"
    #: rank of the O task that crashes (with the above)
    INJECT_CRASH_TASK = "mpi.d.inject.crash.task"
    #: job attempt the injected crash fires on (-1 = every attempt);
    #: defaults to the first, so an automatic restart recovers
    INJECT_CRASH_ATTEMPT = "mpi.d.inject.crash.attempt"


#: default sender-side coalescing cap (see ``SHUFFLE_BATCH_BYTES``)
SHUFFLE_BATCH_BYTES_DEFAULT = 256 * 1024

#: default per-rank redelivery-buffer cap (see ``RANK_REDELIVERY_BYTES``)
RANK_REDELIVERY_BYTES_DEFAULT = 64 * 1024 * 1024

#: default restart-backoff jitter fraction (see ``RESTART_BACKOFF_JITTER``)
RESTART_BACKOFF_JITTER_DEFAULT = 0.25

#: default telemetry shipping period (see ``TELEMETRY_INTERVAL_SECONDS``)
TELEMETRY_INTERVAL_DEFAULT = 0.25
#: default hub ring-buffer depth (see ``TELEMETRY_RING``)
TELEMETRY_RING_DEFAULT = 256

#: default profiler sampling rate (see ``PROFILE_HZ``)
PROFILE_HZ_DEFAULT = 50.0

#: default doctor evaluation period (see ``DOCTOR_INTERVAL_SECONDS``)
DOCTOR_INTERVAL_DEFAULT = 0.5
#: default straggler-score trigger (see ``DOCTOR_STRAGGLER_THRESHOLD``)
DOCTOR_STRAGGLER_THRESHOLD_DEFAULT = 2.0
#: default stall window in seconds (see ``DOCTOR_STALL_SECONDS``)
DOCTOR_STALL_SECONDS_DEFAULT = 5.0
#: default queue-depth trigger (see ``DOCTOR_QUEUE_DEPTH``)
DOCTOR_QUEUE_DEPTH_DEFAULT = 10_000

#: internal shuffle tag on the worker world communicator
SHUFFLE_TAG = 900_001
#: control-protocol tag on the driver<->worker intercommunicator
CONTROL_TAG = 900_002
#: completion/metrics tag
REPORT_TAG = 900_003
