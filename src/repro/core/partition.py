"""Partitioners and the Partition Window (§III-A Table II, §IV-D).

``MPI_D_PARTITION`` decides which *A task* a key-value pair belongs to
(the default policy is hash-modulo, as the paper requires).  The
**Partition Window** then redirects task-level partitions to the
*processes* that host them — resolving the "mismatches between
process-level MPI communication and task-level data movements" shown in
Figure 6 for the NUMO>NUMA / = / < cases.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Sequence

from repro.common.errors import DataMPIError

#: signature of a user partition function: (key, value, num_partitions) -> dest
Partitioner = Callable[[Any, Any, int], int]


def _stable_hash(key: Any) -> int:
    """Deterministic, process-independent hash (Python's str hash is salted)."""
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, float):
        return zlib.crc32(repr(key).encode())
    if isinstance(key, tuple):
        h = 0x811C9DC5
        for item in key:
            h = (h * 31 + _stable_hash(item)) & 0x7FFFFFFF
        return h
    if hasattr(key, "to_bytes") and callable(getattr(key, "to_bytes", None)):
        try:
            return zlib.crc32(key.to_bytes())  # Writable values
        except TypeError:
            pass
    return zlib.crc32(repr(key).encode())


def hash_partitioner(key: Any, value: Any, num_partitions: int) -> int:
    """The default hash-modulo policy required by the specification."""
    return _stable_hash(key) % num_partitions


def range_partitioner(boundaries: Sequence[Any]) -> Partitioner:
    """Total-order partitioner from sorted split points (TeraSort-style).

    ``len(boundaries)`` must be ``num_partitions - 1``; keys <=
    ``boundaries[i]`` land in partition i.
    """
    import bisect

    cut = list(boundaries)

    def partition(key: Any, value: Any, num_partitions: int) -> int:
        if len(cut) != num_partitions - 1:
            raise DataMPIError(
                f"range partitioner has {len(cut)} boundaries for "
                f"{num_partitions} partitions"
            )
        return bisect.bisect_left(cut, key)

    return partition


def validate_destination(dest: int, num_partitions: int) -> int:
    """Clamp-check a user partitioner's output."""
    if not 0 <= dest < num_partitions:
        raise DataMPIError(
            f"partitioner returned {dest}, outside [0, {num_partitions})"
        )
    return dest


class PartitionWindow:
    """Maps A-task partitions onto worker processes (Figure 6).

    The default is round-robin (partition ``t`` lives on process ``t %
    nprocs``), which covers all three Figure 6 cases:

    * NUMO > NUMA: only the first NUMA processes receive data;
    * NUMO = NUMA: a one-to-one mapping;
    * NUMO < NUMA: processes own multiple partitions, and A tasks run in
      waves on the process that holds their partition — preserving
      reduce-side data locality.
    """

    def __init__(self, num_partitions: int, num_processes: int) -> None:
        if num_partitions < 1 or num_processes < 1:
            raise DataMPIError("partition window needs >=1 partition and process")
        self.num_partitions = num_partitions
        self.num_processes = num_processes

    def owner(self, partition: int) -> int:
        """The process rank hosting ``partition``'s intermediate data."""
        if not 0 <= partition < self.num_partitions:
            raise DataMPIError(
                f"partition {partition} outside [0, {self.num_partitions})"
            )
        return partition % self.num_processes

    def owned_by(self, process: int) -> list[int]:
        """All partitions hosted by ``process`` (that process's A-task wave)."""
        return list(range(process, self.num_partitions, self.num_processes))

    def busy_processes(self) -> int:
        """How many processes receive any data at all."""
        return min(self.num_partitions, self.num_processes)
