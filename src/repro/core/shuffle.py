"""O-side shuffle pipeline (§IV-C) over the MPI bipartite model.

Per worker process:

* the **main thread** runs task logic and emits pairs into the SPL;
* the **communication (sender) thread** drains sealed blocks from a send
  queue and pushes them to the owning process with MPI point-to-point;
* the **receiver thread** accepts blocks from every peer, caching them
  in the RPL of the hosted partition and triggering background merges
  (the paper's merge thread) — so computation, copy and merge overlap.

A *plane* is one logical exchange (forward O→A, or backward A→O per
Iteration round).  A plane completes when an end-of-stream marker has
arrived from every process; Streaming mode delivers records to per-
partition queues as blocks land instead of waiting for completion.

The sender thread *coalesces*: consecutive sealed blocks bound for the
same ``(plane, destination)`` ride in one MPI envelope (size-capped by
``batch_bytes``), and the per-plane EOS marker folds into the last batch
for each destination instead of costing ``nprocs`` extra messages.
Batches flush when the send queue runs dry, so an idle pipeline never
holds data back.
"""

from __future__ import annotations

import queue
import threading
from time import monotonic as _now
from typing import Any, Callable, Iterator

from repro.common.errors import DataMPIError, MPIAbort
from repro.core.buffers import Block, ReceivePartitionList
from repro.core.constants import SHUFFLE_BATCH_BYTES_DEFAULT, SHUFFLE_TAG
from repro.core.partition import PartitionWindow
from repro.core.sorter import RunStore
from repro.mpi.datatypes import ANY_SOURCE
from repro.mpi.transport import TruncatedPayload
from repro.obs.tracer import TRACER as _T, flow_id as _flow_id
from repro.serde.batch import RecordBatch
from repro.serde.comparators import Compare
from repro.serde.serialization import Serializer

KV = tuple[Any, Any]

#: sentinel ending a streaming partition queue
_STREAM_EOS = object()


class PlaneConfig:
    """Everything a plane needs to build its receive side."""

    def __init__(
        self,
        num_partitions: int,
        window: PartitionWindow,
        cmp: Compare | None,
        serializer: Serializer,
        spill_dir: str,
        memory_budget: int,
        merge_threshold_blocks: int,
        pipelined: bool,
        compress_spills: bool = False,
    ) -> None:
        self.num_partitions = num_partitions
        self.window = window
        self.cmp = cmp
        self.serializer = serializer
        self.spill_dir = spill_dir
        self.memory_budget = memory_budget
        self.merge_threshold_blocks = merge_threshold_blocks
        self.pipelined = pipelined
        self.compress_spills = compress_spills


class ShufflePlane:
    """Receive-side state of one exchange on one process."""

    def __init__(self, plane_id: str, process_rank: int, config: PlaneConfig) -> None:
        self.plane_id = plane_id
        self.config = config
        owned = config.window.owned_by(process_rank)
        budget_each = max(1, config.memory_budget // max(1, len(owned)))
        self.rpls: dict[int, ReceivePartitionList] = {
            p: ReceivePartitionList(
                p,
                config.cmp,
                RunStore(
                    config.cmp,
                    config.serializer,
                    config.spill_dir,
                    budget_each,
                    stem=f"{plane_id}-p{p}",
                    compress_spills=config.compress_spills,
                ),
                config.merge_threshold_blocks,
            )
            for p in owned
        }
        self.streams: dict[int, "queue.Queue[Any]"] = (
            {p: queue.Queue() for p in owned} if config.pipelined else {}
        )
        self._eos_seen = 0
        self._eos_expected = config.window.num_processes
        self.complete = threading.Event()
        self._lock = threading.Lock()
        #: runtime abort latch (set by ShuffleService); lets waiters unwind
        #: promptly when the world dies instead of sitting out the timeout
        self.abort = None

    def add_block(self, block: Block) -> None:
        rpl = self.rpls.get(block.partition_id)
        if rpl is None:
            raise DataMPIError(
                f"plane {self.plane_id}: received partition {block.partition_id}"
                " not owned by this process (Partition Window mismatch)"
            )
        rpl.add_block(block)
        if self.config.pipelined:
            # one queue op per block, not per record; stream_iter unpacks
            self.streams[block.partition_id].put(block.records)

    def add_eos(self) -> None:
        with self._lock:
            self._eos_seen += 1
            if self._eos_seen > self._eos_expected:
                raise DataMPIError(f"plane {self.plane_id}: extra EOS marker")
            if self._eos_seen == self._eos_expected:
                for stream in self.streams.values():
                    stream.put(_STREAM_EOS)
                self.complete.set()
                if _T.enabled:
                    _T.instant(
                        "plane.complete", cat="shuffle",
                        args={"plane": self.plane_id},
                    )

    # -- consumption -----------------------------------------------------------
    def merged_iter(self, partition: int) -> Iterator[KV]:
        """Post-completion ordered iterator for one partition."""
        if not self.complete.is_set():
            raise DataMPIError(
                f"plane {self.plane_id}: partition {partition} read before EOS"
            )
        return self.rpls[partition].merged()

    def merged_batch(self, partition: int) -> "RecordBatch | None":
        """Post-completion partition payload as one contiguous batch.

        ``None`` when the partition holds object runs or spilled to disk;
        callers fall back to :meth:`merged_iter`.
        """
        if not self.complete.is_set():
            raise DataMPIError(
                f"plane {self.plane_id}: partition {partition} read before EOS"
            )
        return self.rpls[partition].merged_batch()

    def stream_iter(self, partition: int) -> Iterator[KV]:
        """Live iterator (Streaming mode): yields pairs as they arrive.

        The queue carries whole blocks (tuples of records, or sealed
        record batches decoded lazily here); per-partition record order
        is preserved because the receiver thread enqueues blocks in
        arrival order and each block is unpacked in order here.
        """
        stream = self.streams[partition]
        serializer = self.config.serializer
        while True:
            item = stream.get()
            if item is _STREAM_EOS:
                return
            if isinstance(item, RecordBatch):
                yield from item.iter_pairs(serializer)
            else:
                yield from item

    def wait_complete(self, timeout: float | None = None) -> None:
        deadline = None if timeout is None else _now() + timeout
        while not self.complete.is_set():
            if self.abort is not None:
                self.abort.check()  # raises MPIAbort once the world died
            slice_ = 0.05
            if deadline is not None:
                remaining = deadline - _now()
                if remaining <= 0:
                    raise DataMPIError(
                        f"plane {self.plane_id}: completion timed out"
                    )
                slice_ = min(slice_, remaining)
            self.complete.wait(slice_)

    def cleanup(self) -> None:
        for rpl in self.rpls.values():
            rpl.cleanup()

    # -- stats ------------------------------------------------------------------
    def records_received(self) -> int:
        return sum(r.records_received for r in self.rpls.values())

    def blocks_received(self) -> int:
        return sum(r.blocks_received for r in self.rpls.values())

    def spilled_bytes(self) -> int:
        return sum(r.store.spilled_bytes for r in self.rpls.values())

    def spill_seconds(self) -> float:
        return sum(r.store.spill_seconds for r in self.rpls.values())


class _Batch:
    """Blocks coalescing toward one (plane, destination) envelope."""

    __slots__ = ("blocks", "nbytes", "eos", "items")

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.nbytes = 0
        self.eos = False
        #: send-queue items folded in (for task_done accounting)
        self.items = 0


class _Channel:
    """Receive-side state of one (plane, origin) stream under rank
    recovery: blocks stage here until the origin's EOS commits them
    atomically, so a stream cut short by a death leaves no half-applied
    contribution behind."""

    __slots__ = ("epoch", "last", "staged", "committed")

    def __init__(self) -> None:
        self.epoch = 0
        self.last = -1
        self.staged: list[Block] = []
        self.committed = False


class ShuffleService:
    """Sender + receiver threads of one worker process."""

    def __init__(
        self,
        world: Any,  # worker Intracomm
        plane_config_factory: Callable[[str], PlaneConfig],
        batch_bytes: int = SHUFFLE_BATCH_BYTES_DEFAULT,
    ) -> None:
        self.world = world
        self.rank = world.rank
        self.nprocs = world.size
        self._factory = plane_config_factory
        self._planes: dict[str, ShufflePlane] = {}
        self._planes_lock = threading.Lock()
        self._send_queue: "queue.Queue[tuple | None]" = queue.Queue()
        self.batch_bytes = batch_bytes
        self.blocks_sent = 0
        self.bytes_sent = 0
        self.envelopes_sent = 0
        #: per-(plane, dest) batch sequence numbers; receivers use them to
        #: drop duplicated envelopes and detect lost ones (chaos tolerance)
        self._send_seq: dict[tuple[str, int], int] = {}
        self.duplicates_dropped = 0
        # -- surgical rank recovery (process backend) -----------------------
        # This incarnation's epoch (> 0 after a respawn) and whether the
        # world runs with rank recovery armed.  A reborn sender announces
        # ("reset", plane, (rank, epoch)) ahead of each re-sent stream so
        # receivers can tell a replay from a duplicate; receivers then
        # *stage* each (plane, origin) stream and commit it atomically at
        # that origin's EOS — a stream cut short by a death is discarded
        # wholesale instead of half-applied (coalescing boundaries are
        # nondeterministic, so replayed batches never line up seq-by-seq).
        runtime = getattr(world, "runtime", None)
        self.epoch = getattr(runtime, "rank_epoch", 0)
        self.recovery = bool(getattr(runtime, "rank_recovery", False))
        self._reset_announced: set[tuple[str, int]] = set()
        self.replays_dropped = 0
        self._sender = threading.Thread(
            target=self._sender_loop, daemon=True, name=f"shuffle-send-{self.rank}"
        )
        self._receiver = threading.Thread(
            target=self._receiver_loop, daemon=True, name=f"shuffle-recv-{self.rank}"
        )
        self._sender.start()
        self._receiver.start()

    # -- plane registry -----------------------------------------------------------
    def plane(self, plane_id: str) -> ShufflePlane:
        with self._planes_lock:
            plane = self._planes.get(plane_id)
            if plane is None:
                plane = ShufflePlane(plane_id, self.rank, self._factory(plane_id))
                runtime = getattr(self.world, "runtime", None)
                if runtime is not None:
                    plane.abort = runtime.abort_flag
                self._planes[plane_id] = plane
            return plane

    # -- send path -------------------------------------------------------------
    def send_block(self, plane_id: str, block: Block) -> None:
        """Hand a sealed block to the communication thread."""
        config = self.plane(plane_id).config
        dest = config.window.owner(block.partition_id)
        self._send_queue.put(("block", plane_id, dest, block))

    def send_eos(self, plane_id: str) -> None:
        """Tell every process this sender finished the plane."""
        for dest in range(self.nprocs):
            self._send_queue.put(("eos", plane_id, dest, None))

    def _sender_loop(self) -> None:
        _T.bind(self.rank)  # attribute send spans to this rank's lane
        pending: dict[tuple[str, int], _Batch] = {}
        while True:
            if pending:
                # more batching is only worthwhile while items are already
                # waiting; the moment the queue runs dry, flush everything
                try:
                    item = self._send_queue.get_nowait()
                except queue.Empty:
                    if not self._flush_pending(pending):
                        return  # aborted
                    continue
            else:
                item = self._send_queue.get()
            if item is None:
                self._flush_pending(pending)
                self._send_queue.task_done()
                return
            kind, plane_id, dest, block = item
            key = (plane_id, dest)
            batch = pending.get(key)
            if batch is None:
                pending[key] = batch = _Batch()
            batch.items += 1
            if kind == "block":
                batch.blocks.append(block)
                batch.nbytes += block.nbytes
                if batch.nbytes >= self.batch_bytes:
                    del pending[key]
                    if not self._transmit(key, batch):
                        self._drain_aborted(pending)
                        return
            else:  # eos: nothing more can follow for this (plane, dest)
                batch.eos = True
                del pending[key]
                if not self._transmit(key, batch):
                    self._drain_aborted(pending)
                    return

    def _flush_pending(self, pending: dict[tuple[str, int], _Batch]) -> bool:
        """Transmit every held batch; False when the job aborted."""
        for key in list(pending):
            batch = pending.pop(key)
            if not self._transmit(key, batch):
                self._drain_aborted(pending)
                return False
        return True

    def _transmit(self, key: tuple[str, int], batch: _Batch) -> bool:
        plane_id, dest = key
        seq = self._send_seq.get(key, -1) + 1
        self._send_seq[key] = seq
        trace_t0 = _T.clock() if _T.enabled else 0.0
        try:
            if self.recovery and self.epoch > 0 and key not in self._reset_announced:
                # reborn incarnation: tell the receiver its (plane, origin)
                # channel restarts from seq 0 at this epoch before the
                # first batch of the re-sent stream arrives
                self._reset_announced.add(key)
                self.world.send(
                    ("reset", plane_id, (self.rank, self.epoch)),
                    dest=dest,
                    tag=SHUFFLE_TAG,
                )
            flow = 0
            if _T.enabled:
                # deterministic causal pair: the receiver recomputes the
                # same flow id from (plane>dest, origin, seq), and the
                # pair additionally travels in the envelope header so the
                # link survives the wire even for wildcard receivers.
                # dest is part of the name because seq counts per
                # (plane, dest) channel — without it two same-seq batches
                # from one rank to different receivers would collide.
                channel = f"{plane_id}>{dest}"
                flow = _flow_id(channel, self.rank, seq)
                _T.set_flow(flow, _flow_id(channel, self.rank, seq, domain=1))
            self.world.send(
                ("batch", plane_id, (seq, self.rank, batch.blocks, batch.eos)),
                dest=dest,
                tag=SHUFFLE_TAG,
            )
        except MPIAbort:
            # the job is dead; account the items so drain_sends unblocks
            for _ in range(batch.items):
                self._send_queue.task_done()
            return False
        self.envelopes_sent += 1
        self.blocks_sent += len(batch.blocks)
        self.bytes_sent += batch.nbytes
        if _T.enabled:
            _T.complete(
                "shuffle.send", trace_t0, _T.clock() - trace_t0, cat="shuffle",
                args={
                    "plane": plane_id, "dest": dest, "seq": seq,
                    "blocks": len(batch.blocks), "bytes": batch.nbytes,
                    "eos": batch.eos, "flow_out": flow,
                },
            )
            _T.counter(f"shuffle.r{self.rank}.bytes_sent", self.bytes_sent)
        for _ in range(batch.items):
            self._send_queue.task_done()
        return True

    def _drain_aborted(self, pending: dict[tuple[str, int], _Batch]) -> None:
        """After an abort: release every queued item so joiners unblock."""
        for batch in pending.values():
            for _ in range(batch.items):
                self._send_queue.task_done()
        pending.clear()
        while True:
            try:
                self._send_queue.get_nowait()
            except queue.Empty:
                return
            self._send_queue.task_done()

    # -- receive path ------------------------------------------------------------
    def _receiver_loop(self) -> None:
        """Accept blocks from every peer until shutdown (or abort).

        Batch envelopes carry ``(seq, origin, blocks, eos)``: per
        (plane, origin) the sequence must advance by exactly one, so a
        duplicated envelope (``seq`` already applied) is dropped without
        double-counting records and a lost envelope (a gap) fails loudly
        instead of silently producing short output.  A
        :class:`TruncatedPayload` marker means wire corruption — same
        treatment.  Any receiver-side failure aborts the whole world; a
        dead receiver thread must never leave peers blocked on a plane
        that cannot complete.

        With rank recovery armed, each (plane, origin) stream is
        *staged* and committed atomically at that origin's EOS, and a
        ``("reset", plane, (origin, epoch))`` announcement from a reborn
        sender either discards the partial staging (stream restarts from
        seq 0) or, when the stream already committed, marks the whole
        replay as droppable — a rank's contribution is applied exactly
        once, whole, no matter how many times it dies mid-stream.
        """
        _T.bind(self.rank)  # attribute recv spans to this rank's lane
        last_seq: dict[tuple[str, int], int] = {}
        channels: dict[tuple[str, int], _Channel] = {}
        staging = self.recovery
        while True:
            try:
                message = self.world.recv(source=ANY_SOURCE, tag=SHUFFLE_TAG)
            except MPIAbort:
                return  # job aborted; planes will never complete, that's fine
            flow_in = _T.recv_flow() if _T.enabled else None
            try:
                if isinstance(message, TruncatedPayload):
                    raise DataMPIError(
                        f"shuffle receiver rank {self.rank}: truncated "
                        f"envelope {message!r}; refusing to interpret "
                        "corrupt data"
                    )
                kind, plane_id, payload = message
                if kind == "shutdown":
                    return
                if kind == "reset":
                    origin, epoch = payload
                    key = (plane_id, origin)
                    channel = channels.get(key)
                    if channel is None:
                        channel = channels[key] = _Channel()
                    if epoch > channel.epoch:
                        channel.epoch = epoch
                        if not channel.committed:
                            # stream died mid-flight: discard the partial
                            # staging, the replay restarts from seq 0
                            channel.staged = []
                            channel.last = -1
                        if _T.enabled:
                            _T.instant(
                                "shuffle.stream_reset", cat="recovery",
                                args={"plane": plane_id, "origin": origin,
                                      "epoch": epoch,
                                      "committed": channel.committed},
                            )
                    continue
                plane = self.plane(plane_id)
                if kind == "batch":
                    seq, origin, blocks, eos = payload
                    key = (plane_id, origin)
                    if staging:
                        channel = channels.get(key)
                        if channel is None:
                            channel = channels[key] = _Channel()
                        if channel.committed:
                            # a replayed stream whose first life already
                            # landed in full: drop it wholesale
                            self.replays_dropped += 1
                            if _T.enabled:
                                _T.instant(
                                    "shuffle.replay_dropped", cat="recovery",
                                    args={"plane": plane_id, "origin": origin,
                                          "seq": seq},
                                )
                            continue
                        last = channel.last
                    else:
                        last = last_seq.get(key, -1)
                    if seq <= last:
                        # duplicated envelope: already applied in full
                        self.duplicates_dropped += 1
                        if _T.enabled:
                            _T.instant(
                                "shuffle.duplicate_dropped", cat="shuffle",
                                args={"plane": plane_id, "origin": origin,
                                      "seq": seq},
                            )
                        continue
                    if seq != last + 1:
                        if _T.enabled:
                            _T.instant(
                                "shuffle.seq_gap", cat="shuffle",
                                args={"plane": plane_id, "origin": origin,
                                      "expected": last + 1, "got": seq},
                            )
                        raise DataMPIError(
                            f"shuffle plane {plane_id}: lost batch from "
                            f"process {origin} (expected seq {last + 1}, "
                            f"got {seq})"
                        )
                    trace_t0 = _T.clock() if _T.enabled else 0.0
                    if staging:
                        channel.last = seq
                        channel.staged.extend(blocks)
                        if eos:
                            # commit the whole stream atomically
                            for block in channel.staged:
                                plane.add_block(block)
                            channel.staged = []
                            channel.committed = True
                            plane.add_eos()
                    else:
                        last_seq[key] = seq
                        for block in blocks:
                            plane.add_block(block)
                        if eos:
                            plane.add_eos()
                    if _T.enabled and blocks:
                        # prefer the pair the envelope header carried; a
                        # path that lost it (direct deposits in unit
                        # tests) falls back to recomputing the same id
                        channel_name = f"{plane_id}>{self.rank}"
                        trace, parent = (
                            flow_in if flow_in is not None
                            else (_flow_id(channel_name, origin, seq),
                                  _flow_id(channel_name, origin, seq,
                                           domain=1))
                        )
                        _T.complete(
                            "shuffle.recv.batch", trace_t0,
                            _T.clock() - trace_t0, cat="shuffle",
                            args={"plane": plane_id, "origin": origin,
                                  "blocks": len(blocks), "seq": seq,
                                  "flow_in": trace, "flow_parent": parent},
                        )
                elif kind == "block":  # un-coalesced single block (direct callers)
                    plane.add_block(payload)
                elif kind == "eos":
                    plane.add_eos()
                else:
                    raise DataMPIError(f"unknown shuffle message kind {kind!r}")
            except MPIAbort:
                return
            except BaseException as exc:  # noqa: BLE001 - must abort the world
                self.world.abort(
                    reason=f"shuffle receiver rank {self.rank}: {exc!r}"
                )
                return

    def ack_plane(self, plane_id: str) -> None:
        """This rank has fully consumed ``plane_id``: release its entries
        in the driver-side redelivery buffer (process backend with
        recovery armed; a no-op everywhere else)."""
        if not self.recovery:
            return
        runtime = getattr(self.world, "runtime", None)
        ack = getattr(runtime, "ack_plane", None)
        if ack is not None:
            ack(plane_id)

    # -- lifecycle ---------------------------------------------------------------
    def drain_sends(self) -> None:
        """Block until the communication thread emptied the send queue."""
        self._send_queue.join()

    def shutdown(self) -> None:
        self._send_queue.put(None)
        self._sender.join(timeout=10)
        try:
            # self-deliver the receiver stop marker through MPI so it drains
            # everything already enqueued first
            self.world.send(("shutdown", "", None), dest=self.rank, tag=SHUFFLE_TAG)
        except MPIAbort:
            pass  # receiver already unwound via the abort
        self._receiver.join(timeout=10)
        for plane in self._planes.values():
            plane.cleanup()

    def stats(self) -> dict[str, int]:
        return {
            "blocks_sent": self.blocks_sent,
            "bytes_sent": self.bytes_sent,
            "envelopes_sent": self.envelopes_sent,
            "records_received": sum(
                p.records_received() for p in self._planes.values()
            ),
            "blocks_received": sum(
                p.blocks_received() for p in self._planes.values()
            ),
            "spilled_bytes": sum(p.spilled_bytes() for p in self._planes.values()),
            "duplicates_dropped": self.duplicates_dropped,
            "replays_dropped": self.replays_dropped,
        }

    def spill_seconds(self) -> float:
        """Receiver-thread seconds spent writing spills (overlay phase)."""
        return sum(p.spill_seconds() for p in self._planes.values())
