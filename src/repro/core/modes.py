"""Mode profiles (§IV-A "Profile").

"Each communication mode has a kind of profile, which contains a set of
typical configurations and related extensions to the DataMPI core.  For
example, the MapReduce mode requires the intermediate data to be sorted
by keys, while the Streaming mode may not need this feature.  The
Iteration mode needs the communication to be bi-directional."

A profile is just a defaults layer under the user ``conf``.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.common.config import Configuration
from repro.common.units import KiB, MiB
from repro.core.constants import Mode, MPI_D_Constants as K

_SHARED_DEFAULTS: dict[str, Any] = {
    K.SERIALIZER: "writable",
    K.SPL_PARTITION_BYTES: 32 * KiB,
    K.SHUFFLE_BATCH_BYTES: 256 * KiB,
    K.MERGE_THRESHOLD_BLOCKS: 8,
    K.MEMORY_CACHE_BYTES: 64 * MiB,
    K.SPILL_COMPRESS: False,
    K.FT_ENABLED: False,
    K.FT_INTERVAL_RECORDS: 10_000,
    K.JOB_MAX_RESTARTS: 0,
    K.TASK_MAX_ATTEMPTS: 4,
    K.RESTART_BACKOFF_SECONDS: 0.1,
    K.HEARTBEAT_INTERVAL_SECONDS: 0.5,
    K.HEARTBEAT_DEADLINE_SECONDS: 15.0,
    K.PLANE_TIMEOUT_SECONDS: 120.0,
    K.JOB_ATTEMPT: 1,
    K.INJECT_CRASH_AFTER_RECORDS: -1,
    K.INJECT_CRASH_TASK: 0,
    K.INJECT_CRASH_ATTEMPT: 1,
    K.ROUNDS: 1,
}

_PROFILE_DEFAULTS: dict[Mode, dict[str, Any]] = {
    # Common: SPMD, sorted exchange so the Listing-1 Sort works out of the box
    Mode.COMMON: {
        K.SORT: True,
        K.BIDIRECTIONAL: False,
        K.PIPELINED_DELIVERY: False,
    },
    # MapReduce: sorted, strictly one-way O->A
    Mode.MAPREDUCE: {
        K.SORT: True,
        K.BIDIRECTIONAL: False,
        K.PIPELINED_DELIVERY: False,
    },
    # Iteration: bi-directional rounds, no sorting required
    Mode.ITERATION: {
        K.SORT: False,
        K.BIDIRECTIONAL: True,
        K.PIPELINED_DELIVERY: False,
    },
    # Streaming: unsorted, pairs delivered while O tasks still run; a
    # small flush threshold keeps per-record latency low
    Mode.STREAMING: {
        K.SORT: False,
        K.BIDIRECTIONAL: False,
        K.PIPELINED_DELIVERY: True,
        K.SPL_PARTITION_BYTES: 2 * KiB,
    },
}


def profile_for(mode: Mode, user_conf: Mapping[str, Any] | None = None) -> Configuration:
    """Layer user configuration over the mode's profile defaults."""
    base = Configuration(_SHARED_DEFAULTS)
    profile = base.child(_PROFILE_DEFAULTS[mode])
    return profile.child(dict(user_conf or {}))


def mode_sorts(conf: Configuration) -> bool:
    return conf.get_bool(K.SORT, False)


def mode_is_pipelined(conf: Configuration) -> bool:
    return conf.get_bool(K.PIPELINED_DELIVERY, False)


def mode_is_bidirectional(conf: Configuration) -> bool:
    return conf.get_bool(K.BIDIRECTIONAL, False)
