"""Key-value library-level checkpointing (§IV-E, Figure 7).

"Each task makes the checkpoint separably after a round of data
exchanging" — emitted key-value pairs are buffered and persisted in
numbered *rounds* (``cp_<task>_<round>.ckpt``); a round file is written
to a temp name and renamed, so a crash can never leave a half-round
visible.  On recovery the library replays all complete rounds straight
from disk (the "Job Reload Checkpoint" phase of Figure 13) and the
re-executed task skips that many records — transparent for
deterministic applications, exactly as the paper requires.
"""

from __future__ import annotations

import os
import re
from typing import Any, Iterator

from repro.common.errors import CheckpointError
from repro.serde.io import DataInput, DataOutput
from repro.serde.serialization import Serializer

KV = tuple[Any, Any]

_ROUND_RE = re.compile(r"^cp_(?P<task>.+)_(?P<round>\d{6})\.ckpt$")


def _round_path(directory: str, task: str, round_no: int) -> str:
    return os.path.join(directory, f"cp_{task}_{round_no:06d}.ckpt")


class CheckpointWriter:
    """Streams one task's emitted pairs into numbered round files."""

    def __init__(
        self,
        directory: str,
        task: str,
        serializer: Serializer,
        interval_records: int,
        start_round: int = 0,
    ) -> None:
        if interval_records < 1:
            raise CheckpointError("checkpoint interval must be >= 1 record")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.task = task
        self.serializer = serializer
        self.interval_records = interval_records
        self.round_no = start_round
        self._buffer: list[KV] = []
        self.records_persisted = 0

    def add(self, key: Any, value: Any) -> None:
        self._buffer.append((key, value))
        if len(self._buffer) >= self.interval_records:
            self.flush_round()

    def flush_round(self) -> None:
        """Persist the buffered round atomically (write-then-rename)."""
        if not self._buffer:
            return
        out = DataOutput()
        out.write_vint(len(self._buffer))
        for key, value in self._buffer:
            self.serializer.serialize_kv(key, value, out)
        final = _round_path(self.directory, self.task, self.round_no)
        tmp = final + ".tmp"
        with open(tmp, "wb") as f:
            f.write(out.getvalue())
        os.replace(tmp, final)
        self.records_persisted += len(self._buffer)
        self._buffer.clear()
        self.round_no += 1

    def close(self) -> None:
        """Flush the trailing partial round (task completed normally)."""
        self.flush_round()


class CheckpointReader:
    """Recovers one task's persisted rounds."""

    def __init__(self, directory: str, task: str, serializer: Serializer) -> None:
        self.directory = directory
        self.task = task
        self.serializer = serializer

    def complete_rounds(self) -> list[int]:
        """Round numbers with a successfully persisted file, sorted."""
        if not os.path.isdir(self.directory):
            return []
        rounds = []
        for name in os.listdir(self.directory):
            m = _ROUND_RE.match(name)
            if m and m.group("task") == self.task:
                rounds.append(int(m.group("round")))
        return sorted(rounds)

    def max_round(self) -> int:
        """Highest persisted round + 1 (0 when nothing was checkpointed)."""
        rounds = self.complete_rounds()
        return rounds[-1] + 1 if rounds else 0

    def replay(self) -> Iterator[KV]:
        """All persisted pairs in emit order."""
        for round_no in self.complete_rounds():
            path = _round_path(self.directory, self.task, round_no)
            with open(path, "rb") as f:
                src = DataInput(f.read())
            count = src.read_vint()
            for _ in range(count):
                yield self.serializer.deserialize_kv(src)

    def record_count(self) -> int:
        return sum(1 for _ in self.replay())


class CheckpointManager:
    """Per-job checkpoint coordination.

    The job's directory is ``<ft_dir>/<job_id>``; tasks are identified as
    ``o<task_id>`` (only O-side emits are checkpointed — A output goes to
    the job's final sink).  ``global_max_round`` is the coordination
    value the paper describes: "all processes can coordinate with each
    other to get the global maximum checkpoint number among all
    successfully generated checkpoints".
    """

    def __init__(
        self,
        ft_dir: str,
        job_id: str,
        serializer: Serializer,
        interval_records: int,
    ) -> None:
        self.directory = os.path.join(ft_dir, job_id)
        self.serializer = serializer
        self.interval_records = interval_records

    def writer(self, task_id: int, start_round: int = 0) -> CheckpointWriter:
        return CheckpointWriter(
            self.directory,
            f"o{task_id}",
            self.serializer,
            self.interval_records,
            start_round=start_round,
        )

    def reader(self, task_id: int) -> CheckpointReader:
        return CheckpointReader(self.directory, f"o{task_id}", self.serializer)

    def global_max_round(self, num_o_tasks: int) -> int:
        return max(
            (self.reader(t).max_round() for t in range(num_o_tasks)), default=0
        )

    def total_persisted(self, num_o_tasks: int) -> int:
        return sum(self.reader(t).record_count() for t in range(num_o_tasks))

    def clear(self) -> None:
        """Remove all checkpoints (job completed)."""
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name.endswith(".ckpt") or name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except FileNotFoundError:
                    pass
        try:
            os.rmdir(self.directory)
        except OSError:
            pass
