"""Key-value library-level checkpointing (§IV-E, Figure 7).

"Each task makes the checkpoint separably after a round of data
exchanging" — emitted key-value pairs are buffered and persisted in
numbered *rounds* (``cp_<task>_<round>.ckpt``); a round file is written
to a temp name and renamed, so a crash can never leave a half-round
visible.  On recovery the library replays all complete rounds straight
from disk (the "Job Reload Checkpoint" phase of Figure 13) and the
re-executed task skips that many records — transparent for
deterministic applications, exactly as the paper requires.

Round files are integrity-checked: the payload (vint record count +
serialized pairs) is prefixed with its CRC32, verified before replay.  A
round that fails the check is *quarantined* — renamed to ``*.ckpt.bad``
along with every higher-numbered round of the task (replay semantics
need a contiguous prefix: the skip counter assumes rounds reload in emit
order with no holes) — and recovery proceeds from the surviving prefix,
so a corrupted checkpoint degrades to re-execution instead of wrong
output or a crash loop.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from time import perf_counter as _clock
from typing import Any, Iterator

from repro.common.errors import CheckpointError
from repro.common.logging import get_logger
from repro.obs.tracer import TRACER as _T
from repro.serde.io import DataInput, DataOutput
from repro.serde.serialization import Serializer

KV = tuple[Any, Any]

_log = get_logger("core.checkpoint")

_ROUND_RE = re.compile(r"^cp_(?P<task>.+)_(?P<round>\d{6})\.ckpt$")

_CRC = struct.Struct(">I")
#: CRC prefix + the longest possible vlong encoding of the record count
_HEADER_MAX_BYTES = _CRC.size + 9


def _round_path(directory: str, task: str, round_no: int) -> str:
    return os.path.join(directory, f"cp_{task}_{round_no:06d}.ckpt")


class CheckpointWriter:
    """Streams one task's emitted pairs into numbered round files."""

    def __init__(
        self,
        directory: str,
        task: str,
        serializer: Serializer,
        interval_records: int,
        start_round: int = 0,
    ) -> None:
        if interval_records < 1:
            raise CheckpointError("checkpoint interval must be >= 1 record")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.task = task
        self.serializer = serializer
        self.interval_records = interval_records
        self.round_no = start_round
        self._buffer: list[KV] = []
        self.records_persisted = 0
        #: seconds spent serializing + fsync-writing round files; the
        #: engine reports it as the "checkpoint" phase bucket
        self.write_seconds = 0.0

    def add(self, key: Any, value: Any) -> None:
        self._buffer.append((key, value))
        if len(self._buffer) >= self.interval_records:
            self.flush_round()

    def flush_round(self) -> None:
        """Persist the buffered round atomically (write-then-rename)."""
        if not self._buffer:
            return
        t0 = _clock()
        out = DataOutput()
        out.write_vint(len(self._buffer))
        for key, value in self._buffer:
            self.serializer.serialize_kv(key, value, out)
        payload = out.getvalue()
        final = _round_path(self.directory, self.task, self.round_no)
        tmp = final + ".tmp"
        with open(tmp, "wb") as f:
            f.write(_CRC.pack(zlib.crc32(payload)))
            f.write(payload)
        os.replace(tmp, final)
        dur = _clock() - t0
        self.write_seconds += dur
        if _T.enabled:
            _T.complete(
                "checkpoint.flush", t0, dur, cat="checkpoint",
                args={
                    "task": self.task, "round": self.round_no,
                    "records": len(self._buffer), "bytes": len(payload),
                },
            )
        self.records_persisted += len(self._buffer)
        self._buffer.clear()
        self.round_no += 1

    def close(self) -> None:
        """Flush the trailing partial round (task completed normally)."""
        self.flush_round()


class CheckpointReader:
    """Recovers one task's persisted rounds."""

    def __init__(self, directory: str, task: str, serializer: Serializer) -> None:
        self.directory = directory
        self.task = task
        self.serializer = serializer

    def complete_rounds(self) -> list[int]:
        """Round numbers with a verified persisted file, sorted.

        Verification quarantines as a side effect: a round whose CRC32
        fails is renamed ``*.ckpt.bad``, together with every
        higher-numbered round of this task (replay needs a contiguous
        prefix), and only the surviving verified prefix is returned.
        """
        if not os.path.isdir(self.directory):
            return []
        rounds = []
        for name in os.listdir(self.directory):
            m = _ROUND_RE.match(name)
            if m and m.group("task") == self.task:
                rounds.append(int(m.group("round")))
        rounds.sort()
        verified: list[int] = []
        for idx, round_no in enumerate(rounds):
            path = _round_path(self.directory, self.task, round_no)
            if self._verify(path):
                verified.append(round_no)
            else:
                self._quarantine(rounds[idx:])
                break
        return verified

    def _verify(self, path: str) -> bool:
        try:
            with open(path, "rb") as f:
                header = f.read(_CRC.size)
                if len(header) < _CRC.size:
                    return False
                (expected,) = _CRC.unpack(header)
                return zlib.crc32(f.read()) == expected
        except OSError:
            return False

    def _quarantine(self, rounds: list[int]) -> None:
        """Rename corrupt + unreachable rounds out of the way (``.bad``)."""
        for round_no in rounds:
            path = _round_path(self.directory, self.task, round_no)
            try:
                os.replace(path, path + ".bad")
            except OSError:
                continue
            if _T.enabled:
                _T.instant(
                    "checkpoint.quarantine", cat="checkpoint",
                    args={"task": self.task, "round": round_no},
                )
            _log.warning(
                "checkpoint task %s round %d failed verification or lost "
                "its prefix; quarantined as %s",
                self.task, round_no, path + ".bad",
            )

    def max_round(self) -> int:
        """Verified rounds count = highest usable round + 1 (0 when none).

        A resumed writer starting here overwrites any quarantined round
        numbers rather than skipping past the hole.
        """
        rounds = self.complete_rounds()
        return rounds[-1] + 1 if rounds else 0

    def replay(self) -> Iterator[KV]:
        """All verified persisted pairs in emit order."""
        for round_no in self.complete_rounds():
            path = _round_path(self.directory, self.task, round_no)
            with open(path, "rb") as f:
                src = DataInput(f.read())
            src.read_bytes(_CRC.size)  # CRC already verified
            count = src.read_vint()
            for _ in range(count):
                yield self.serializer.deserialize_kv(src)

    def record_count(self) -> int:
        """Persisted record total from the round headers alone.

        Reads ``CRC + vint`` (a dozen bytes) per round file instead of
        deserializing every pair like :meth:`replay` would.
        """
        total = 0
        for round_no in self.complete_rounds():
            path = _round_path(self.directory, self.task, round_no)
            with open(path, "rb") as f:
                head = DataInput(f.read(_HEADER_MAX_BYTES))
            head.read_bytes(_CRC.size)
            total += head.read_vint()
        return total


class CheckpointManager:
    """Per-job checkpoint coordination.

    The job's directory is ``<ft_dir>/<job_id>``; tasks are identified as
    ``o<task_id>`` (only O-side emits are checkpointed — A output goes to
    the job's final sink).  ``global_max_round`` is the coordination
    value the paper describes: "all processes can coordinate with each
    other to get the global maximum checkpoint number among all
    successfully generated checkpoints".
    """

    def __init__(
        self,
        ft_dir: str,
        job_id: str,
        serializer: Serializer,
        interval_records: int,
    ) -> None:
        self.directory = os.path.join(ft_dir, job_id)
        self.serializer = serializer
        self.interval_records = interval_records

    def writer(self, task_id: int, start_round: int = 0) -> CheckpointWriter:
        return CheckpointWriter(
            self.directory,
            f"o{task_id}",
            self.serializer,
            self.interval_records,
            start_round=start_round,
        )

    def reader(self, task_id: int) -> CheckpointReader:
        return CheckpointReader(self.directory, f"o{task_id}", self.serializer)

    def global_max_round(self, num_o_tasks: int) -> int:
        return max(
            (self.reader(t).max_round() for t in range(num_o_tasks)), default=0
        )

    def total_persisted(self, num_o_tasks: int) -> int:
        return sum(self.reader(t).record_count() for t in range(num_o_tasks))

    def clear(self) -> None:
        """Remove all checkpoints (job completed)."""
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if name.endswith((".ckpt", ".tmp", ".bad")):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except FileNotFoundError:
                    pass
        try:
            os.rmdir(self.directory)
        except OSError:
            pass


# -- rank-scoped resume manifests (surgical rank recovery) --------------------
def _manifest_path(ft_dir: str, job_id: str, worker: int) -> str:
    return os.path.join(ft_dir, job_id, f"rank_{worker}.manifest.json")


def write_rank_manifest(
    ft_dir: str, job_id: str, worker: int, payload: dict
) -> str:
    """Persist one rank's recovery manifest (epoch, tasks requeued, …).

    Written by the driver when it respawns a single rank, scoping the
    resume to that rank's failure domain: the manifest records exactly
    which incarnation is authoritative and what was replayed, and the
    reborn rank's O tasks reload their own ``cp_o<task>_*`` rounds — the
    whole-job checkpoint set is never touched.  Write is atomic
    (temp + rename), same crash discipline as round files.
    """
    import json

    directory = os.path.join(ft_dir, job_id)
    os.makedirs(directory, exist_ok=True)
    path = _manifest_path(ft_dir, job_id, worker)
    manifest = dict(payload)
    manifest["worker"] = worker
    manifest["respawns"] = read_rank_manifest(ft_dir, job_id, worker).get(
        "respawns", 0
    ) + 1
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, sort_keys=True)
    os.replace(tmp, path)
    return path


def read_rank_manifest(ft_dir: str, job_id: str, worker: int) -> dict:
    """The rank's recovery manifest, or ``{}`` when it never respawned
    (or the manifest is unreadable — recovery state is advisory)."""
    import json

    try:
        with open(
            _manifest_path(ft_dir, job_id, worker), encoding="utf-8"
        ) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return {}
