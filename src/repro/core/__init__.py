"""DataMPI core — the paper's primary contribution.

Public surface:

* :class:`~repro.core.api.MPI_D` — the extended MPI interface
  (Tables I & II): ``Init``/``Finalize``, ``Comm_rank``/``Comm_size``
  over the bipartite communicators, and key-value ``Send``/``Recv``.
* :class:`~repro.core.job.DataMPIJob` + helpers — job definitions
  carrying the optional user functions (compare/partition/combine).
* :func:`~repro.core.mpidrun.mpidrun` — the launcher/scheduler.
* :class:`~repro.core.constants.Mode` — Common, MapReduce, Iteration,
  Streaming.
"""

from repro.core.api import MPI_D
from repro.core.constants import Mode, MPI_D_Constants
from repro.core.context import BipartiteComm, TaskContext
from repro.core.job import DataMPIJob, common_job, mapreduce_job
from repro.core.metrics import JobMetrics, JobResult, WorkerMetrics
from repro.core.mpidrun import mpidrun, parse_mpidrun_command
from repro.core.output import FileSink
from repro.core.partition import (
    PartitionWindow,
    hash_partitioner,
    range_partitioner,
)

__all__ = [
    "MPI_D",
    "MPI_D_Constants",
    "Mode",
    "DataMPIJob",
    "mapreduce_job",
    "common_job",
    "mpidrun",
    "parse_mpidrun_command",
    "TaskContext",
    "BipartiteComm",
    "JobResult",
    "JobMetrics",
    "WorkerMetrics",
    "FileSink",
    "PartitionWindow",
    "hash_partitioner",
    "range_partitioner",
]
