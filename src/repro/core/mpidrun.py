"""``mpidrun``: the job launcher (§IV-B).

The paper launches applications as::

    $ mpidrun -f hostfile -O n -A m -M mode -jar jarname classname params

Here the equivalent is :func:`mpidrun` (programmatic) and
:func:`parse_mpidrun_command` (the CLI shape, for fidelity and for the
examples).  ``mpidrun`` creates an MPI runtime, runs the driver as a
one-rank world, which spawns the working processes and schedules tasks.
"""

from __future__ import annotations

import shlex
import time
from typing import Any, Mapping

from repro.common.errors import DataMPIError
from repro.core.constants import Mode
from repro.core.job import DataMPIJob
from repro.core.metrics import JobResult
from repro.core.scheduler import driver_main, merge_reports
from repro.mpi.runtime import MPIRuntime

#: default cap on working processes (threads on one box)
MAX_DEFAULT_PROCESSES = 8


def default_process_count(job: DataMPIJob, cap: int = MAX_DEFAULT_PROCESSES) -> int:
    """Paper's Figure 4 sizing: enough processes to host the wider side,
    capped so thread counts stay sane on one machine."""
    return max(1, min(max(job.o_tasks, job.a_tasks), cap))


def mpidrun(
    job: DataMPIJob,
    nprocs: int | None = None,
    timeout: float = 300.0,
    raise_on_error: bool = False,
) -> JobResult:
    """Run ``job`` on ``nprocs`` working processes; returns a JobResult.

    Failures (including injected crashes) are reported in the result by
    default so fault-tolerance flows can restart the job; pass
    ``raise_on_error=True`` to get the exception instead.
    """
    job.validate()
    nprocs = nprocs or default_process_count(job)
    if nprocs < 1:
        raise DataMPIError("need at least one working process")
    runtime = MPIRuntime()
    start = time.perf_counter()
    try:
        results = runtime.run(
            driver_main, 1, args=(job, nprocs), timeout=timeout, name="mpidrun"
        )
    except Exception as exc:  # noqa: BLE001 - folded into the JobResult
        if raise_on_error:
            raise
        return JobResult(name=job.name, success=False, error=f"{exc!r}")
    reports = results[0]
    metrics = merge_reports(reports)
    metrics.duration = time.perf_counter() - start
    return JobResult(name=job.name, success=True, metrics=metrics)


_MODE_NAMES = {mode.value: mode for mode in Mode}


def parse_mpidrun_command(command: str) -> dict[str, Any]:
    """Parse the paper's CLI shape into launch options.

    >>> parse_mpidrun_command(
    ...     "mpidrun -f hosts -O 4 -A 2 -M mapreduce -jar app.jar Sort x y")
    ... # doctest: +NORMALIZE_WHITESPACE
    {'hostfile': 'hosts', 'o_tasks': 4, 'a_tasks': 2,
     'mode': <Mode.MAPREDUCE: 'mapreduce'>, 'jar': 'app.jar',
     'classname': 'Sort', 'params': ['x', 'y']}
    """
    tokens = shlex.split(command)
    if not tokens or tokens[0] != "mpidrun":
        raise DataMPIError("command must start with 'mpidrun'")
    options: dict[str, Any] = {
        "hostfile": None,
        "o_tasks": None,
        "a_tasks": None,
        "mode": Mode.COMMON,
        "jar": None,
        "classname": None,
        "params": [],
    }
    i = 1
    while i < len(tokens):
        tok = tokens[i]
        if tok == "-f":
            options["hostfile"] = tokens[i + 1]
            i += 2
        elif tok == "-O":
            options["o_tasks"] = int(tokens[i + 1])
            i += 2
        elif tok == "-A":
            options["a_tasks"] = int(tokens[i + 1])
            i += 2
        elif tok == "-M":
            mode_name = tokens[i + 1].lower()
            if mode_name not in _MODE_NAMES:
                raise DataMPIError(f"unknown mode {tokens[i + 1]!r}")
            options["mode"] = _MODE_NAMES[mode_name]
            i += 2
        elif tok == "-jar":
            options["jar"] = tokens[i + 1]
            if i + 2 < len(tokens):
                options["classname"] = tokens[i + 2]
                options["params"] = tokens[i + 3 :]
            i = len(tokens)
        else:
            raise DataMPIError(f"unknown mpidrun flag {tok!r}")
    if options["o_tasks"] is None or options["a_tasks"] is None:
        raise DataMPIError("mpidrun requires -O and -A task counts")
    return options
