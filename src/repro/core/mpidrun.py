"""``mpidrun``: the job launcher (§IV-B).

The paper launches applications as::

    $ mpidrun -f hostfile -O n -A m -M mode -jar jarname classname params

Here the equivalent is :func:`mpidrun` (programmatic) and
:func:`parse_mpidrun_command` (the CLI shape, for fidelity and for the
examples).  ``mpidrun`` creates an MPI runtime, runs the driver as a
one-rank world, which spawns the working processes and schedules tasks.

``mpidrun`` is also the supervisor (§IV-E): with ``mpi.d.ft.enabled``
and ``mpi.d.job.max.restarts`` > 0 a failed attempt is automatically
rerun — with exponential backoff, on a fresh runtime, under the same
stable job id so the checkpoint reload path (Figure 13's "Job Reload
Checkpoint") replays every round the previous attempt persisted.  The
failure history of all attempts travels on the returned
:class:`~repro.core.metrics.JobResult` as structured records, and a
single task failing ``mpi.d.task.max.attempts`` times stops the retry
loop early — restarting cannot fix a deterministic bug.
"""

from __future__ import annotations

import dataclasses
import os
import random
import shlex
import tempfile
import time
from typing import Any, Mapping

from repro.common.errors import DataMPIError, FailureRecord
from repro.core.constants import (
    DOCTOR_INTERVAL_DEFAULT,
    DOCTOR_QUEUE_DEPTH_DEFAULT,
    DOCTOR_STALL_SECONDS_DEFAULT,
    DOCTOR_STRAGGLER_THRESHOLD_DEFAULT,
    Mode,
    MPI_D_Constants as K,
    RANK_REDELIVERY_BYTES_DEFAULT,
    RESTART_BACKOFF_JITTER_DEFAULT,
    TELEMETRY_RING_DEFAULT,
)
from repro.core.job import DataMPIJob
from repro.core.metrics import JobResult, WorkerMetrics
from repro.core.modes import profile_for
from repro.core.scheduler import driver_main, merge_reports
from repro.mpi.runtime import BaseRuntime, ProcessRuntime, create_runtime
from repro.mpi.transport import FaultInjector
from repro.common.logging import get_logger
from repro.obs.journal import JournalWriter, export_chrome, merge_shards, read_journal
from repro.obs.metrics import MetricsRegistry, WindowedSampler
from repro.obs.tracer import TRACER as _T

_log = get_logger("core.mpidrun")

#: cap on the exponential restart backoff, seconds
_MAX_BACKOFF = 5.0

#: reporting priority: a task's own failure outranks the liveness symptom
#: it caused, which outranks generic rank/timeout/abort noise; "respawn"
#: (surgical recovery exhausted) beats the rank/wire records it follows
_BLAME_ORDER = {
    "task": 0, "heartbeat": 1, "respawn": 2, "rank": 3, "wire": 4,
    "timeout": 5, "abort": 6,
}

#: default cap on working processes (threads on one box)
MAX_DEFAULT_PROCESSES = 8


def default_process_count(job: DataMPIJob, cap: int = MAX_DEFAULT_PROCESSES) -> int:
    """Paper's Figure 4 sizing: enough processes to host the wider side,
    capped so thread counts stay sane on one machine."""
    return max(1, min(max(job.o_tasks, job.a_tasks), cap))


def restart_delay(
    attempt: int,
    backoff: float,
    jitter: float = 0.0,
    rng: "random.Random | None" = None,
) -> float:
    """Backoff before re-running attempt ``attempt + 1``: exponential in
    the attempt number, capped, then scaled by a uniform factor in
    ``[1-jitter, 1+jitter]`` so concurrent supervised jobs sharing a
    machine don't hammer it in lockstep.  Deterministic for a seeded
    ``rng`` (``mpi.d.restart.backoff.seed``)."""
    delay = min(_MAX_BACKOFF, backoff * (2 ** (attempt - 1)))
    if jitter > 0 and delay > 0:
        delay *= (rng or random).uniform(max(0.0, 1.0 - jitter), 1.0 + jitter)
    return delay


def _recovery_counts(runtime: BaseRuntime) -> tuple[int, int, int]:
    """(respawns, redelivered frames, stale frames fenced) for one
    attempt's runtime; zeros on backends without rank recovery."""
    transport = getattr(runtime, "transport", None)
    return (
        int(getattr(runtime, "respawns", 0)),
        int(getattr(transport, "redelivered_frames", 0)),
        int(getattr(transport, "stale_frames_dropped", 0)),
    )


def _collect_failures(
    runtime: BaseRuntime, exc: BaseException, attempt: int
) -> list[FailureRecord]:
    """Everything the runtime (and the exception itself) knows about why
    this attempt died, stamped with the attempt number, deduplicated and
    sorted by blame.  Dedup is by content, not identity: a record can
    reach the runtime via both the worker's own exception and the
    driver's ``fail`` control message, and on the process backend those
    are distinct pickled copies of the same failure."""
    records: list[FailureRecord] = []
    seen: set[tuple] = set()
    carried = getattr(exc, "failures", None) or []
    for record in list(runtime.failure_records) + list(carried):
        if record.attempt == 0:
            record.attempt = attempt
        key = (
            record.kind, record.worker, record.phase, record.task_id,
            record.round_no, record.attempt, record.error,
        )
        if key in seen:
            continue
        seen.add(key)
        records.append(record)
    if not records:
        records.append(FailureRecord(kind="abort", attempt=attempt, error=repr(exc)))
    records.sort(key=lambda r: _BLAME_ORDER.get(r.kind, 9))
    return records


def _failure_dict(record: FailureRecord) -> dict:
    return {
        "kind": record.kind,
        "worker": record.worker,
        "phase": record.phase,
        "task_id": record.task_id,
        "round_no": record.round_no,
        "attempt": record.attempt,
        "error": record.error,
    }


class _TraceSession:
    """The flight recorder's lifecycle around one ``mpidrun`` call.

    Owns the process-wide :data:`~repro.obs.tracer.TRACER` for the
    duration of the job, runs the windowed sampler alongside, and writes
    the journal (meta + drained events + series + driver summary) on
    close — also on the exception path, so a crashed run still leaves a
    parsable journal prefix for ``repro trace``.
    """

    def __init__(self, job: DataMPIJob, conf: Any, nprocs: int) -> None:
        self.job = job
        self.conf = conf
        self.nprocs = nprocs
        self.path = conf.get(K.TRACE_PATH) or os.path.join(
            tempfile.gettempdir(), f"datampi-{job.name}.trace.jsonl"
        )
        self.t0 = time.perf_counter()
        self._closed = False
        # discard profiles a prior *untraced* profiled job in this
        # process left in the hand-off buffer: they are not this job's
        from repro.obs import profiler as _profiler_mod

        _profiler_mod.drain_local_profiles()
        _T.enable(job=job.name, nprocs=nprocs, mode=job.mode.value)
        _T.bind(-1)  # the driver/launcher thread
        self.sampler = WindowedSampler(
            MetricsRegistry(),
            interval=conf.get_float(K.TRACE_METRICS_INTERVAL_SECONDS, 0.25),
        )
        self.sampler.start()

    @staticmethod
    def maybe(job: DataMPIJob, conf: Any, nprocs: int) -> "_TraceSession | None":
        # an explicit journal path implies tracing (the common CLI shape)
        if not (conf.get_bool(K.TRACE_ENABLED, False) or conf.get(K.TRACE_PATH)):
            return None
        return _TraceSession(job, conf, nprocs)

    def failures(self, records: list[FailureRecord]) -> None:
        for record in records:
            _T.instant(
                f"failure.{record.kind}", cat="failure",
                args=_failure_dict(record),
            )

    def restart(self, attempt: int, delay: float) -> None:
        _T.instant(
            "job.restart", cat="failure",
            args={"attempt": attempt, "backoff_seconds": delay},
        )

    def close(
        self,
        result: JobResult | None = None,
        reports: dict[int, WorkerMetrics] | None = None,
    ) -> str:
        if self._closed:
            return self.path
        self._closed = True
        self.sampler.stop()
        events = _T.drain()
        _T.disable()
        # process-backend workers leave per-process journal shards next to
        # the journal; fold them onto the driver's timeline
        shard_events = merge_shards(self.path)
        if shard_events:
            events = sorted(
                events + shard_events, key=lambda e: e.get("ts", 0.0)
            )
        # sampling-profiler aggregates travel the same way: thread-backend
        # engines publish in-process, process-backend workers leave
        # ``.prof-`` shards next to the journal
        from repro.obs import profiler as profiler_mod

        profiles = profiler_mod.drain_local_profiles()
        profiles += profiler_mod.merge_profile_shards(self.path)
        profiles.sort(key=lambda p: (p.get("rank", 0), p.get("epoch", 0)))
        summary: dict[str, Any] = {
            "wall_seconds": time.perf_counter() - self.t0,
            "nprocs": self.nprocs,
        }
        if result is not None:
            summary["success"] = result.success
            summary["restarts"] = result.restarts
            summary["phase_times"] = dict(result.metrics.phase_times)
            summary["tasks"] = [t.as_dict() for t in result.metrics.tasks]
            summary["failures"] = [_failure_dict(f) for f in result.failures]
            summary["recovery"] = {
                "respawns": result.metrics.respawns,
                "redelivered_frames": result.metrics.redelivered_frames,
                "stale_frames_dropped": result.metrics.stale_frames_dropped,
                "replays_dropped": result.metrics.replays_dropped,
            }
        summary["workers"] = [
            {
                "rank": rank,
                "wall_seconds": wm.wall_seconds,
                "phase_times": dict(wm.phase_times),
            }
            for rank, wm in sorted((reports or {}).items())
        ]
        with JournalWriter(self.path) as writer:
            writer.write_meta(
                job=self.job.name,
                nprocs=self.nprocs,
                mode=self.job.mode.value,
            )
            writer.write_events(events)
            for name, (times, values) in self.sampler.as_journal_series().items():
                writer.write_series(name, times, values)
            for profile in profiles:
                writer.write_profile(profile)
            writer.write_summary(summary)
        if self.conf.get_bool(K.TRACE_CHROME, False):
            chrome_path = os.path.splitext(self.path)[0] + ".json"
            export_chrome(read_journal(self.path), chrome_path)
            _log.info("chrome trace exported to %s", chrome_path)
        _log.info("flight-recorder journal written to %s", self.path)
        return self.path


class _TelemetrySession:
    """The live telemetry plane around one ``mpidrun`` call.

    Owns the driver-side :class:`~repro.obs.telemetry.TelemetryHub` and
    the :class:`~repro.rpc.server.SocketRpcServer` that serves it, so a
    concurrent client can scrape per-rank/rollup metrics (Prometheus
    text via ``telemetry_scrape``, structured dicts for ``repro top``)
    *while the job runs*.  The server address is written atomically to
    ``mpi.d.telemetry.endpoint.file`` so clients can find a running job
    without coordination.
    """

    def __init__(self, job: DataMPIJob, conf: Any) -> None:
        from repro.obs.telemetry import TelemetryHub
        from repro.rpc.server import SocketRpcServer

        self.hub = TelemetryHub(
            ring=conf.get_int(K.TELEMETRY_RING, TELEMETRY_RING_DEFAULT),
            job=job.name,
        )
        self.endpoint_file = str(conf.get(K.TELEMETRY_ENDPOINT_FILE) or "")
        self.doctor = None
        self.doctor_path = ""
        self._report: dict | None = None
        self._closed = False
        self.server = None
        target = self.hub.rpc_target()
        if conf.get_bool(K.DOCTOR_ENABLED, False):
            from repro.obs.doctor import Doctor, DoctorConfig

            self.doctor = Doctor(
                self.hub,
                DoctorConfig(
                    interval=conf.get_float(
                        K.DOCTOR_INTERVAL_SECONDS, DOCTOR_INTERVAL_DEFAULT
                    ),
                    straggler_threshold=conf.get_float(
                        K.DOCTOR_STRAGGLER_THRESHOLD,
                        DOCTOR_STRAGGLER_THRESHOLD_DEFAULT,
                    ),
                    stall_seconds=conf.get_float(
                        K.DOCTOR_STALL_SECONDS, DOCTOR_STALL_SECONDS_DEFAULT
                    ),
                    queue_depth=conf.get_int(
                        K.DOCTOR_QUEUE_DEPTH, DOCTOR_QUEUE_DEPTH_DEFAULT
                    ),
                ),
                job=job.name,
            )
            self.doctor_path = str(
                conf.get(K.DOCTOR_PATH)
                or os.path.join(
                    tempfile.gettempdir(), f"datampi-{job.name}.doctor.json"
                )
            )
            target = {**target, **self.doctor.rpc_target()}
        # from here on every failure must tear down what already started,
        # or an aborted launch leaks the server/endpoint file
        try:
            self.server = SocketRpcServer(
                target, num_handlers=2, name=f"telemetry-{job.name}"
            )
            self.server.start()
            if self.endpoint_file:
                import json

                address = self.server.address
                payload = {
                    "address": list(address) if isinstance(address, tuple) else address,
                    "job": job.name,
                    "pid": os.getpid(),
                }
                tmp = f"{self.endpoint_file}.tmp"
                with open(tmp, "w", encoding="utf-8") as f:
                    json.dump(payload, f)
                os.replace(tmp, self.endpoint_file)  # pollers never see a partial file
            if self.doctor is not None:
                self.doctor.start()
        except BaseException:
            self.close()
            raise
        _log.info("telemetry endpoint: %r", self.server.address)

    @staticmethod
    def maybe(job: DataMPIJob, conf: Any) -> "_TelemetrySession | None":
        # the doctor needs the live plane, so enabling it implies one
        if not (
            conf.get_bool(K.TELEMETRY_ENABLED, False)
            or conf.get_bool(K.DOCTOR_ENABLED, False)
        ):
            return None
        return _TelemetrySession(job, conf)

    def attach(self, runtime: BaseRuntime) -> None:
        """Bind this attempt's runtime: the router forwards TELEMETRY
        frames to the hub, the scheduler marks rank completion on it, and
        rollups read live recovery counters off the runtime."""
        runtime.telemetry_hub = self.hub
        self.hub.bind_runtime(runtime)

    def close(self) -> dict | None:
        """Stop the doctor and server, remove the endpoint file.

        Idempotent, and ordered so the endpoint file goes away on *every*
        exit path — even when the doctor or the server's stop raises —
        because a stale endpoint file points the next ``repro top`` at a
        dead socket.  Returns the final doctor report (None = no doctor).
        """
        if self._closed:
            return self._report
        self._closed = True
        try:
            if self.doctor is not None:
                try:
                    self._report = self.doctor.close()
                    if self.doctor_path:
                        self.doctor.write_report(self.doctor_path)
                        _log.info("doctor report written to %s", self.doctor_path)
                except Exception:  # noqa: BLE001 - diagnosis never blocks teardown
                    _log.exception("doctor teardown failed")
        finally:
            try:
                if self.server is not None:
                    self.server.stop()
            except Exception:  # noqa: BLE001 - teardown must finish
                _log.exception("telemetry server stop failed")
            finally:
                if self.endpoint_file:
                    try:
                        os.unlink(self.endpoint_file)  # no stale pointers
                    except OSError:
                        pass
        return self._report


def mpidrun(
    job: DataMPIJob,
    nprocs: int | None = None,
    timeout: float = 300.0,
    raise_on_error: bool = False,
    fault_injector: FaultInjector | None = None,
) -> JobResult:
    """Run ``job`` on ``nprocs`` working processes; returns a JobResult.

    Failures (including injected crashes) are reported in the result by
    default; pass ``raise_on_error=True`` to get the exception instead.
    With fault tolerance enabled and ``mpi.d.job.max.restarts`` > 0 the
    job is automatically rerun after a failure (checkpointed rounds
    reload on re-execution), so a single call rides out transient
    crashes.  ``fault_injector`` installs transport chaos
    (:class:`~repro.mpi.transport.FaultInjector`) on every attempt's
    runtime — rule hit counters persist across restarts, so bounded
    faults heal.
    """
    job.validate()
    nprocs = nprocs or default_process_count(job)
    if nprocs < 1:
        raise DataMPIError("need at least one working process")
    conf = profile_for(job.mode, job.conf)
    launcher = str(conf.get(K.LAUNCHER) or "threads")
    start_method = str(conf.get(K.LAUNCHER_START_METHOD) or "fork")
    ft_enabled = conf.get_bool(K.FT_ENABLED, False)
    max_restarts = conf.get_int(K.JOB_MAX_RESTARTS, 0) if ft_enabled else 0
    max_task_attempts = max(1, conf.get_int(K.TASK_MAX_ATTEMPTS, 4))
    backoff = conf.get_float(K.RESTART_BACKOFF_SECONDS, 0.1)
    jitter = conf.get_float(
        K.RESTART_BACKOFF_JITTER, RESTART_BACKOFF_JITTER_DEFAULT
    )
    seed = conf.get(K.RESTART_BACKOFF_SEED)
    backoff_rng = random.Random(None if seed is None else int(seed))
    max_respawns = conf.get_int(K.RANK_MAX_RESPAWNS, 0)
    redelivery_bytes = conf.get_bytes(
        K.RANK_REDELIVERY_BYTES, RANK_REDELIVERY_BYTES_DEFAULT
    )
    start = time.perf_counter()
    trace = _TraceSession.maybe(job, conf, nprocs)
    telemetry = _TelemetrySession.maybe(job, conf)
    failures: list[FailureRecord] = []
    task_attempts: dict[tuple[str, int], int] = {}
    attempt = 0
    result: JobResult | None = None
    reports: dict[int, WorkerMetrics] = {}
    respawns_total = redelivered_total = stale_total = 0
    try:
        while True:
            attempt += 1
            extra_conf: dict[str, Any] = {K.JOB_ATTEMPT: attempt}
            if telemetry is not None and telemetry.doctor is not None:
                # the diagnosis engine reads live rollups, so engines must
                # ship telemetry snapshots even if the user only asked for
                # the doctor
                extra_conf[K.TELEMETRY_ENABLED] = True
            attempt_job = dataclasses.replace(
                job, conf={**dict(job.conf or {}), **extra_conf}
            )
            runtime = create_runtime(
                launcher, fault_injector=fault_injector, start_method=start_method
            )
            if isinstance(runtime, ProcessRuntime) and max_respawns > 0:
                runtime.enable_rank_recovery(max_respawns, redelivery_bytes)
            if trace is not None and isinstance(runtime, ProcessRuntime):
                # workers of this attempt write their tracer events here
                runtime.trace_shard_prefix = f"{trace.path}.a{attempt}"
            if telemetry is not None:
                telemetry.attach(runtime)
            try:
                results = runtime.run(
                    driver_main, 1, args=(attempt_job, nprocs),
                    timeout=timeout, name="mpidrun",
                )
            except Exception as exc:  # noqa: BLE001 - folded into the JobResult
                counts = _recovery_counts(runtime)
                respawns_total += counts[0]
                redelivered_total += counts[1]
                stale_total += counts[2]
                attempt_failures = _collect_failures(runtime, exc, attempt)
                failures.extend(attempt_failures)
                if trace is not None:
                    trace.failures(attempt_failures)
                exhausted: tuple[str, int] | None = None
                for record in attempt_failures:
                    if record.kind != "task" or record.task_id < 0:
                        continue
                    key = (record.phase, record.task_id)
                    task_attempts[key] = task_attempts.get(key, 0) + 1
                    if task_attempts[key] >= max_task_attempts:
                        exhausted = key
                if attempt <= max_restarts and exhausted is None:
                    delay = restart_delay(attempt, backoff, jitter, backoff_rng)
                    _log.warning(
                        "job %s attempt %d failed (%s); restarting in %.2fs "
                        "(%d restart(s) left)",
                        job.name, attempt, attempt_failures[0].describe(),
                        delay, max_restarts - attempt + 1,
                    )
                    if trace is not None:
                        trace.restart(attempt + 1, delay)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if raise_on_error:
                    raise
                primary = attempt_failures[0]
                error = primary.describe()
                if exhausted is not None:
                    error = (
                        f"{exhausted[0]} task {exhausted[1]} failed "
                        f"{task_attempts[exhausted]} attempt(s) "
                        f"(mpi.d.task.max.attempts={max_task_attempts}): {error}"
                    )
                result = JobResult(
                    name=job.name,
                    success=False,
                    error=error,
                    restarts=attempt - 1,
                    failures=list(failures),
                )
                result.metrics.respawns = respawns_total
                result.metrics.redelivered_frames = redelivered_total
                result.metrics.stale_frames_dropped = stale_total
                break
            reports = results[0]
            counts = _recovery_counts(runtime)
            respawns_total += counts[0]
            redelivered_total += counts[1]
            stale_total += counts[2]
            metrics = merge_reports(reports)
            metrics.duration = time.perf_counter() - start
            metrics.restarts = attempt - 1
            metrics.respawns = respawns_total
            metrics.redelivered_frames = redelivered_total
            metrics.stale_frames_dropped = stale_total
            if respawns_total:
                _log.info(
                    "job %s survived %d surgical rank respawn(s) "
                    "(%d frame(s) redelivered, %d zombie frame(s) fenced)",
                    job.name, respawns_total, redelivered_total, stale_total,
                )
            if attempt > 1:
                _log.info(
                    "job %s recovered after %d restart(s), %d record(s) "
                    "reloaded from checkpoints",
                    job.name, attempt - 1, metrics.reloaded_records,
                )
            result = JobResult(
                name=job.name,
                success=True,
                metrics=metrics,
                restarts=attempt - 1,
                failures=list(failures),
            )
            break
    finally:
        if telemetry is not None:
            doctor_report = telemetry.close()
            if result is not None and doctor_report is not None:
                result.doctor = doctor_report
                result.doctor_path = telemetry.doctor_path
        if trace is not None:
            path = trace.close(result, reports)
            if result is not None:
                result.trace_path = path
    return result


_MODE_NAMES = {mode.value: mode for mode in Mode}


def parse_mpidrun_command(command: str) -> dict[str, Any]:
    """Parse the paper's CLI shape into launch options.

    >>> parse_mpidrun_command(
    ...     "mpidrun -f hosts -O 4 -A 2 -M mapreduce -jar app.jar Sort x y")
    ... # doctest: +NORMALIZE_WHITESPACE
    {'hostfile': 'hosts', 'o_tasks': 4, 'a_tasks': 2,
     'mode': <Mode.MAPREDUCE: 'mapreduce'>, 'jar': 'app.jar',
     'classname': 'Sort', 'params': ['x', 'y']}
    """
    tokens = shlex.split(command)
    if not tokens or tokens[0] != "mpidrun":
        raise DataMPIError("command must start with 'mpidrun'")
    options: dict[str, Any] = {
        "hostfile": None,
        "o_tasks": None,
        "a_tasks": None,
        "mode": Mode.COMMON,
        "jar": None,
        "classname": None,
        "params": [],
    }
    i = 1
    while i < len(tokens):
        tok = tokens[i]
        if tok == "-f":
            options["hostfile"] = tokens[i + 1]
            i += 2
        elif tok == "-O":
            options["o_tasks"] = int(tokens[i + 1])
            i += 2
        elif tok == "-A":
            options["a_tasks"] = int(tokens[i + 1])
            i += 2
        elif tok == "-M":
            mode_name = tokens[i + 1].lower()
            if mode_name not in _MODE_NAMES:
                raise DataMPIError(f"unknown mode {tokens[i + 1]!r}")
            options["mode"] = _MODE_NAMES[mode_name]
            i += 2
        elif tok == "-jar":
            options["jar"] = tokens[i + 1]
            if i + 2 < len(tokens):
                options["classname"] = tokens[i + 2]
                options["params"] = tokens[i + 3 :]
            i = len(tokens)
        else:
            raise DataMPIError(f"unknown mpidrun flag {tok!r}")
    if options["o_tasks"] is None or options["a_tasks"] is None:
        raise DataMPIError("mpidrun requires -O and -A task counts")
    return options
