"""Partition-List buffer management (§IV-D, Figure 6).

Send side: a :class:`SendPartitionList` (SPL) holds one
:class:`DataPartition` per A task.  An emitted pair is cached in the
partition selected by ``MPI_D_PARTITION``; when a partition crosses the
flush threshold it is sealed into a block (sorted and combined if the
mode asks for it) and handed to the communication thread's send queue.

Receive side: a :class:`ReceivePartitionList` (RPL) per hosted partition
accumulates arriving blocks into a :class:`~repro.core.sorter.RunStore`,
merging in the background past a block threshold and spilling to disk
past the memory budget.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter as _clock
from typing import Any, Callable, Iterable, Iterator

from repro.common.records import kv_bytes, kv_run_bytes
from repro.core.sorter import RunStore, combine_run, sort_block
from repro.obs.tracer import TRACER as _T
from repro.serde.batch import RecordBatch, batch_from_pairs, sort_batch
from repro.serde.comparators import Compare
from repro.serde.serialization import Serializer

KV = tuple[Any, Any]
Combiner = Callable[[Any, list[Any]], Iterable[Any]]


@dataclass
class DataPartition:
    """Buffered records destined for one A task, with meta information."""

    partition_id: int
    records: list[KV] = field(default_factory=list)
    nbytes: int = 0

    def add(self, key: Any, value: Any) -> None:
        self.records.append((key, value))
        self.nbytes += kv_bytes(key, value)

    def __len__(self) -> int:
        return len(self.records)

    def drain(self) -> list[KV]:
        records, self.records, self.nbytes = self.records, [], 0
        return records


@dataclass(frozen=True)
class Block:
    """A sealed partition block in flight between processes.

    ``records`` is either a tuple of (key, value) pairs (legacy object
    blocks) or a sealed :class:`~repro.serde.batch.RecordBatch` — one
    contiguous byte payload that every downstream hop (coalescing, wire,
    spill, merge) moves without re-encoding.
    """

    partition_id: int
    records: "tuple[KV, ...] | RecordBatch"
    nbytes: int
    sorted: bool

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def is_batch(self) -> bool:
        return isinstance(self.records, RecordBatch)

    def serialized_size(self) -> int:
        # payload + header slop, picked up by common.records._size_of
        return self.nbytes + 16


class SendPartitionList:
    """SPL: per-destination-partition staging buffers."""

    def __init__(
        self,
        num_partitions: int,
        flush_bytes: int,
        cmp: Compare | None,
        combiner: Combiner | None = None,
        serializer: Serializer | None = None,
        raw: bool = False,
    ) -> None:
        self.partitions = [DataPartition(p) for p in range(num_partitions)]
        self.flush_bytes = flush_bytes
        self.cmp = cmp
        self.combiner = combiner
        #: with a serializer (or ``raw``), seals encode records into one
        #: contiguous RecordBatch — the single serialization point of the
        #: bytes-first datapath; without one, seals ship object tuples
        self.serializer = serializer
        self.raw = raw
        self.records_in = 0
        self.records_out = 0
        self.bytes_out = 0
        self.combined_away = 0
        #: seconds spent sorting/combining inside seals — the engine
        #: subtracts this from task compute time to isolate the paper's
        #: "partition-sort" phase
        self.sort_seconds = 0.0

    def add(self, partition: int, key: Any, value: Any) -> Block | None:
        """Cache a pair; returns a sealed block when the partition filled."""
        part = self.partitions[partition]
        part.add(key, value)
        self.records_in += 1
        if part.nbytes >= self.flush_bytes:
            return self._seal(part)
        return None

    def _seal(self, part: DataPartition) -> Block:
        # sorting permutes records but never resizes them, so the running
        # total kept by DataPartition.add is already exact — only a
        # combiner (which rewrites the payload) forces a re-count; batch
        # seals get an exact byte count for free from the encoded block
        nbytes = part.nbytes
        records = part.drain()
        batch_mode = self.serializer is not None or self.raw
        t0 = _clock()
        timed = False
        if self.cmp is not None:
            timed = True
            records = sort_block(records, self.cmp)
            if self.combiner is not None:
                before = len(records)
                records = combine_run(records, self.combiner)
                self.combined_away += before - len(records)
                if not batch_mode:
                    nbytes = kv_run_bytes(records)
        count = len(records)
        payload: tuple[KV, ...] | RecordBatch
        if batch_mode:
            timed = True
            payload = batch_from_pairs(records, self.serializer, raw=self.raw)
            nbytes = len(payload.data)
        else:
            payload = tuple(records)
        if timed:
            dur = _clock() - t0
            self.sort_seconds += dur
            if _T.enabled:
                _T.complete(
                    "spl.seal", t0, dur, cat="sort",
                    args={"partition": part.partition_id, "records": count},
                )
        self.records_out += count
        self.bytes_out += nbytes
        return Block(
            part.partition_id, payload, nbytes, sorted=self.cmp is not None
        )

    def flush_all(self) -> list[Block]:
        """Seal every non-empty partition (end of the O phase)."""
        blocks = []
        for part in self.partitions:
            if part.records:
                blocks.append(self._seal(part))
        return blocks


class ReceivePartitionList:
    """RPL: arriving blocks for one hosted partition.

    Thread-safe: the receiver thread appends while an A task may already
    be iterating (Streaming mode uses :meth:`stream` instead).
    """

    def __init__(
        self,
        partition_id: int,
        cmp: Compare | None,
        store: RunStore,
        merge_threshold_blocks: int,
    ) -> None:
        self.partition_id = partition_id
        self.cmp = cmp
        self.store = store
        self.merge_threshold_blocks = merge_threshold_blocks
        self.blocks_received = 0
        self.records_received = 0
        self._lock = threading.Lock()

    def add_block(self, block: Block) -> None:
        with self._lock:
            records = block.records
            if isinstance(records, RecordBatch):
                if self.cmp is not None and not block.sorted:
                    records = sort_batch(records, self.cmp, self.store.serializer)
                self.store.add_batch(records, block.nbytes)
                count = records.count
            else:
                run = list(records)
                if self.cmp is not None and not block.sorted:
                    run = sort_block(run, self.cmp)
                self.store.add_run(run, block.nbytes)
                count = len(run)
            self.blocks_received += 1
            self.records_received += count
            # background merge pass once the merge queue is deep enough
            self.store.compact(self.merge_threshold_blocks)

    def merged(self) -> Iterator[KV]:
        """Final merged iterator (after the plane completed)."""
        with self._lock:
            return iter(self.store)

    def merged_batch(self) -> "RecordBatch | None":
        """The whole partition as one merged batch, or ``None`` when any
        run is on disk / object-typed (callers fall back to :meth:`merged`)."""
        with self._lock:
            return self.store.as_batch()

    def cleanup(self) -> None:
        with self._lock:
            self.store.cleanup()
