"""Worker-side execution engine.

Each DataMPI *working process* (one MPI rank of the spawned worker
world) runs a :class:`WorkerEngine`: it pulls task assignments from
``mpidrun`` over the parent intercommunicator (the control protocol of
§IV-B), executes O tasks feeding the shuffle pipeline, waits for plane
completion, then executes the A tasks whose partitions it hosts —
reduce-side data locality by construction.

Iteration mode loops rounds with a backward plane (A→O) per round and a
process-local ``state`` dict that stays put across rounds.  Streaming
mode starts the A tasks first, on their own threads, consuming pairs as
they arrive.
"""

from __future__ import annotations

import tempfile
import threading
import time
from typing import Any

from repro.common.config import Configuration
from repro.common.errors import DataMPIError, FailureRecord, MPIAbort
from repro.core import context as context_mod
from repro.core.buffers import SendPartitionList
from repro.core.checkpoint import CheckpointManager
from repro.core.constants import CONTROL_TAG, Mode, MPI_D_Constants as K
from repro.core.context import TaskContext
from repro.core.job import DataMPIJob
from repro.core.metrics import WorkerMetrics
from repro.core.modes import (
    mode_is_bidirectional,
    mode_is_pipelined,
    mode_sorts,
    profile_for,
)
from repro.core.partition import PartitionWindow
from repro.core.shuffle import PlaneConfig, ShufflePlane, ShuffleService
from repro.common.logging import get_logger
from repro.core.constants import PROFILE_HZ_DEFAULT, TELEMETRY_INTERVAL_DEFAULT
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import PROFILER
from repro.obs import profiler as profiler_mod
from repro.obs.telemetry import build_snapshot
from repro.obs.tracer import TRACER as _T
from repro.serde.comparators import default_compare
from repro.serde.serialization import get_serializer

_log = get_logger("core.engine")

#: plane completion timeout (seconds); generous, aborted earlier on failure
PLANE_TIMEOUT = 120.0


def worker_main(world: Any, job: DataMPIJob, nprocs: int) -> WorkerMetrics:
    """Entry point of one spawned working process."""
    engine = WorkerEngine(world, job, nprocs)
    return engine.run()


class WorkerEngine:
    def __init__(self, world: Any, job: DataMPIJob, nprocs: int) -> None:
        self.world = world
        self.parent = world.Get_parent()
        if self.parent is None:
            raise DataMPIError("worker engine requires a parent intercommunicator")
        self.job = job
        self.nprocs = nprocs
        self.rank = world.rank
        self.conf: Configuration = profile_for(job.mode, job.conf)
        self.attempt = self.conf.get_int(K.JOB_ATTEMPT, 1)
        self.plane_timeout = self.conf.get_float(
            K.PLANE_TIMEOUT_SECONDS, PLANE_TIMEOUT
        )
        self.sorts = mode_sorts(self.conf)
        self.pipelined = mode_is_pipelined(self.conf)
        self.bidirectional = mode_is_bidirectional(self.conf)
        self.cmp = (job.comparator or default_compare) if self.sorts else None
        self.serializer = get_serializer(self.conf.get_str(K.SERIALIZER, "writable"))
        self.spill_dir = self.conf.get(K.LOCAL_DIR) or tempfile.mkdtemp(
            prefix=f"datampi-{job.name}-w{self.rank}-"
        )
        cache_fraction = self.conf.get_float(K.CACHE_FRACTION, 1.0)
        self.memory_budget = max(
            0, int(self.conf.get_bytes(K.MEMORY_CACHE_BYTES) * cache_fraction)
        )
        self.window_fwd = PartitionWindow(job.a_tasks, nprocs)
        self.window_bwd = PartitionWindow(job.o_tasks, nprocs)
        self.metrics = WorkerMetrics(process_rank=self.rank)
        #: per-rank registry shipped with telemetry snapshots
        self.registry = MetricsRegistry()
        #: guards phase-bucket accrual (streaming A tasks run on threads)
        self._phase_lock = threading.Lock()
        self.state: dict = {}  # process-local cross-round state (Iteration)
        self.shuffle = ShuffleService(
            world,
            self._plane_config,
            batch_bytes=self.conf.get_bytes(K.SHUFFLE_BATCH_BYTES),
        )
        self._checkpoints = self._build_checkpoint_manager()
        #: sampling rate; 0 = profiler off (the stack registry for live
        #: dumps is maintained regardless)
        self.profile_hz = (
            self.conf.get_float(K.PROFILE_HZ, PROFILE_HZ_DEFAULT)
            if self.conf.get_bool(K.PROFILE_ENABLED, False)
            else 0.0
        )
        self._prof_epoch = 0
        from repro.serde.registry import resolve_type

        self.key_class = resolve_type(self.conf.get(K.KEY_CLASS))
        self.value_class = resolve_type(self.conf.get(K.VALUE_CLASS))

    # -- configuration plumbing ---------------------------------------------------
    def _plane_config(self, plane_id: str) -> PlaneConfig:
        window = self.window_bwd if plane_id.startswith("bwd") else self.window_fwd
        return PlaneConfig(
            num_partitions=window.num_partitions,
            window=window,
            cmp=self.cmp,
            serializer=self.serializer,
            spill_dir=self.spill_dir,
            memory_budget=self.memory_budget,
            merge_threshold_blocks=self.conf.get_int(K.MERGE_THRESHOLD_BLOCKS),
            pipelined=self.pipelined,
            compress_spills=self.conf.get_bool(K.SPILL_COMPRESS, False),
        )

    def _build_checkpoint_manager(self) -> CheckpointManager | None:
        if not self.conf.get_bool(K.FT_ENABLED, False):
            return None
        if self.job.mode is Mode.ITERATION or self.pipelined:
            raise DataMPIError(
                "library-level checkpointing supports MapReduce/Common jobs"
            )
        ft_dir = self.conf.get(K.FT_DIR) or tempfile.gettempdir()
        job_id = self.conf.get_str(K.JOB_ID, self.job.name)
        return CheckpointManager(
            ft_dir,
            job_id,
            self.serializer,
            self.conf.get_int(K.FT_INTERVAL_RECORDS),
        )

    # -- phase accounting ---------------------------------------------------------
    def _add_phase(self, phase: str, seconds: float) -> None:
        """Thread-safe accrual into this worker's phase-time buckets."""
        with self._phase_lock:
            self.metrics.add_phase(phase, seconds)

    # -- control protocol ------------------------------------------------------------
    def _request_task(self, phase: str, round_no: int) -> int | None:
        """Ask mpidrun for the next task of (phase, round); None = phase over."""
        t0 = time.perf_counter()
        PROFILER.set_phase("control")
        self.parent.send(("req", phase, round_no, self.rank), dest=0, tag=CONTROL_TAG)
        kind, task_id = self.parent.recv(source=0, tag=CONTROL_TAG)
        self._add_phase("control", time.perf_counter() - t0)
        return task_id if kind == "task" else None

    def _report(self) -> None:
        self.parent.send(("report", self.rank, self.metrics), dest=0, tag=CONTROL_TAG)

    def _report_failure(self, record: FailureRecord) -> None:
        """Best-effort: tell mpidrun exactly which task died before the
        abort storm makes the cause ambiguous."""
        try:
            self.parent.send(("fail", self.rank, record), dest=0, tag=CONTROL_TAG)
        except BaseException:  # noqa: BLE001 - the original error matters more
            pass

    # -- heartbeats ---------------------------------------------------------------
    def _start_heartbeat(self) -> threading.Event | None:
        """Beat ("hb", rank) at the configured interval on a daemon thread
        so a worker deep in a long shuffle wait still proves liveness."""
        interval = self.conf.get_float(K.HEARTBEAT_INTERVAL_SECONDS, 0.5)
        if interval <= 0:
            return None
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    self.parent.send(("hb", self.rank), dest=0, tag=CONTROL_TAG)
                except BaseException:  # noqa: BLE001 - abort in flight; stop quietly
                    return

        thread = threading.Thread(
            target=beat, daemon=True, name=f"hb-w{self.rank}"
        )
        thread.start()
        return stop

    # -- live telemetry ------------------------------------------------------------
    def _telemetry_snapshot(self, epoch: int, endpoint: Any, seq: int) -> dict:
        with self._phase_lock:
            phases = dict(self.metrics.phase_times)
        return build_snapshot(
            self.rank, epoch, seq, phases,
            shuffle=self.shuffle.stats(),
            queue=endpoint.stats(),
            tasks={"o": self.metrics.o_tasks_run, "a": self.metrics.a_tasks_run},
            registry=self.registry,
        )

    def _telemetry_snapshot_with_profile(
        self, epoch: int, endpoint: Any, seq: int
    ) -> dict:
        snap = self._telemetry_snapshot(epoch, endpoint, seq)
        if self.profile_hz > 0:
            prof = PROFILER.snapshot_for(self.rank, epoch)
            if prof is not None:
                snap["profile"] = prof
        return snap

    def _start_telemetry(self) -> tuple[threading.Event, threading.Thread] | None:
        """Ship telemetry snapshots to the driver's hub on an interval
        thread — via the runtime's TELEMETRY wire frames on the process
        backend, or straight into the in-process hub on threads."""
        if not self.conf.get_bool(K.TELEMETRY_ENABLED, False):
            return None
        interval = self.conf.get_float(
            K.TELEMETRY_INTERVAL_SECONDS, TELEMETRY_INTERVAL_DEFAULT
        )
        if interval <= 0:
            return None
        runtime = getattr(self.world, "runtime", None)
        ship = getattr(runtime, "ship_telemetry", None)
        if ship is None:
            hub = getattr(runtime, "telemetry_hub", None)
            if hub is None:
                return None
            ship = hub.ingest
        epoch = int(getattr(runtime, "rank_epoch", 0) or 0)
        endpoint = self.world._my_endpoint()
        snaps = self.registry.counter("telemetry.snapshots")
        stop = threading.Event()

        def pump() -> None:
            seq = 0
            while True:
                try:
                    snaps.inc()
                    ship(self._telemetry_snapshot_with_profile(epoch, endpoint, seq))
                except BaseException:  # noqa: BLE001 - telemetry must not kill the rank
                    return
                seq += 1
                if stop.wait(interval):
                    # one parting snapshot so final phase totals land
                    try:
                        snaps.inc()
                        ship(self._telemetry_snapshot_with_profile(epoch, endpoint, seq))
                    except BaseException:  # noqa: BLE001
                        pass
                    return

        thread = threading.Thread(
            target=pump, daemon=True, name=f"telemetry-w{self.rank}"
        )
        thread.start()
        return stop, thread

    @staticmethod
    def _stop_telemetry(
        telemetry: tuple[threading.Event, threading.Thread] | None,
    ) -> None:
        """Stop the shipper and wait for its parting snapshot (idempotent)."""
        if telemetry is None:
            return
        stop, thread = telemetry
        stop.set()
        thread.join(timeout=2.0)

    # -- task contexts -----------------------------------------------------------------
    def _make_o_context(
        self, task_id: int, round_no: int, spl: SendPartitionList
    ) -> TaskContext:
        t0 = time.perf_counter()
        recv_plane: ShufflePlane | None = None
        if self.bidirectional and round_no > 0:
            recv_plane = self.shuffle.plane(f"bwd:{round_no - 1}")
        cp_writer = cp_reader = None
        if self._checkpoints is not None:
            cp_reader = self._checkpoints.reader(task_id)
            cp_writer = self._checkpoints.writer(
                task_id, start_round=cp_reader.max_round()
            )
        crash_after = -1
        inject_attempt = self.conf.get_int(K.INJECT_CRASH_ATTEMPT, 1)
        if (
            self.conf.get_int(K.INJECT_CRASH_AFTER_RECORDS) >= 0
            and task_id == self.conf.get_int(K.INJECT_CRASH_TASK)
            and (inject_attempt < 0 or inject_attempt == self.attempt)
        ):
            crash_after = self.conf.get_int(K.INJECT_CRASH_AFTER_RECORDS)
        # checkpoint reader/writer construction scans the FT directory;
        # bill it to the control bucket so wall coverage stays honest
        self._add_phase("control", time.perf_counter() - t0)
        return TaskContext(
            kind="O",
            task_id=task_id,
            o_size=self.job.o_tasks,
            a_size=self.job.a_tasks,
            round_no=round_no,
            conf=self.conf,
            partitioner=self.job.partitioner,
            spl=spl,
            send_plane_id=f"fwd:{round_no}",
            shuffle=self.shuffle,
            recv_plane=recv_plane,
            pipelined=False,
            state=self.state,
            checkpoint_writer=cp_writer,
            checkpoint_reader=cp_reader,
            crash_after=crash_after,
            key_class=self.key_class,
            value_class=self.value_class,
        )

    def _make_a_context(
        self,
        task_id: int,
        round_no: int,
        recv_plane: ShufflePlane,
        spl: SendPartitionList | None,
    ) -> TaskContext:
        return TaskContext(
            kind="A",
            task_id=task_id,
            o_size=self.job.o_tasks,
            a_size=self.job.a_tasks,
            round_no=round_no,
            conf=self.conf,
            partitioner=self.job.partitioner,
            spl=spl,
            send_plane_id=f"bwd:{round_no}" if spl is not None else None,
            shuffle=self.shuffle,
            recv_plane=recv_plane,
            pipelined=self.pipelined,
            state=self.state,
            key_class=self.key_class,
            value_class=self.value_class,
        )

    def _execute(self, ctx: TaskContext, fn: Any) -> None:
        _log.debug("start %s task %d (round %d)", ctx.kind, ctx.task_id, ctx.round)
        context_mod.bind(ctx)
        # phase attribution: sort time accrues inside the SPL and checkpoint
        # write time inside the writer while the task function runs, so the
        # deltas across the task let "compute" exclude both
        spl = ctx._spl
        sort0 = spl.sort_seconds if spl is not None else 0.0
        cp = ctx._cp_writer
        cp0 = cp.write_seconds if cp is not None else 0.0
        replay_s = 0.0
        PROFILER.set_phase("compute" if ctx.kind == "O" else "merge")
        start = time.perf_counter()
        try:
            if ctx.kind == "O" and self._checkpoints is not None:
                self.metrics.reloaded_records += ctx.replay_checkpoint()
                replay_s = time.perf_counter() - start
            fn(ctx)
            ctx.close()
        except MPIAbort:
            raise  # a peer already failed; not this task's fault
        except BaseException as exc:  # noqa: BLE001 - annotated and re-raised
            import traceback as traceback_mod

            record = FailureRecord(
                kind="task",
                worker=self.rank,
                phase=ctx.kind,
                task_id=ctx.task_id,
                round_no=ctx.round,
                attempt=self.attempt,
                error=repr(exc),
                traceback=traceback_mod.format_exc(),
            )
            self._report_failure(record)
            try:
                exc.failures = [record]  # adopted by MPIRuntime.record_error
            except AttributeError:
                pass
            raise
        finally:
            duration = time.perf_counter() - start
            ctx.metrics.duration = duration
            ctx.metrics.worker = self.rank
            ctx.metrics.round_no = ctx.round
            sort_delta = (spl.sort_seconds - sort0) if spl is not None else 0.0
            cp_delta = replay_s + (
                (cp.write_seconds - cp0) if cp is not None else 0.0
            )
            with self._phase_lock:
                self.metrics.add_phase("partition-sort", sort_delta)
                self.metrics.add_phase("checkpoint", cp_delta)
                self.metrics.add_phase(
                    "compute" if ctx.kind == "O" else "merge",
                    max(0.0, duration - sort_delta - cp_delta),
                )
                self.metrics.tasks.append(ctx.metrics)
            if _T.enabled:
                _T.complete(
                    f"{ctx.kind}-task-{ctx.task_id}", start, duration, cat="task",
                    args={
                        "kind": ctx.kind, "task": ctx.task_id,
                        "round": ctx.round,
                        "emitted": ctx.metrics.records_emitted,
                        "received": ctx.metrics.records_received,
                    },
                )
            PROFILER.set_phase("control")
            context_mod.bind(None)
            _log.debug(
                "end %s task %d: emitted=%d received=%d %.3fs",
                ctx.kind, ctx.task_id, ctx.metrics.records_emitted,
                ctx.metrics.records_received, ctx.metrics.duration,
            )
        if ctx.kind == "O":
            self.metrics.o_tasks_run += 1
            if ctx._cp_writer is not None:
                self.metrics.checkpointed_records += ctx._cp_writer.records_persisted
        else:
            self.metrics.a_tasks_run += 1

    # -- phase loops ----------------------------------------------------------------------
    def _new_spl(self, direction: str) -> SendPartitionList:
        num = self.job.a_tasks if direction == "fwd" else self.job.o_tasks
        # bytes-first datapath (default on): seals serialize pairs into a
        # contiguous RecordBatch exactly once; every later hop ships bytes
        batched = self.conf.get_bool(K.SHUFFLE_BYTES, True)
        raw = batched and self.conf.get_bool(K.SHUFFLE_RAW, False)
        return SendPartitionList(
            num_partitions=num,
            flush_bytes=self.conf.get_bytes(K.SPL_PARTITION_BYTES),
            cmp=self.cmp,
            combiner=self.job.combiner,
            serializer=self.serializer if batched else None,
            raw=raw,
        )

    def _finish_sends(self, plane_id: str, spl: SendPartitionList) -> None:
        """Flush remaining SPL partitions and signal end-of-stream."""
        t0 = time.perf_counter()
        PROFILER.set_phase("communicate")
        sort0 = spl.sort_seconds
        for block in spl.flush_all():
            self.shuffle.send_block(plane_id, block)
        self.shuffle.send_eos(plane_id)
        self.shuffle.drain_sends()
        # flush_all seals (sorts/combines) the remaining partitions; that
        # slice belongs to partition-sort, the rest is wire time
        sort_delta = spl.sort_seconds - sort0
        self._add_phase("partition-sort", sort_delta)
        self._add_phase(
            "communicate", max(0.0, time.perf_counter() - t0 - sort_delta)
        )
        PROFILER.set_phase("control")
        self.metrics.records_sent += spl.records_out
        self.metrics.combined_away += spl.combined_away

    def _run_o_phase(self, round_no: int) -> SendPartitionList:
        spl = self._new_spl("fwd")
        while True:
            task_id = self._request_task("O", round_no)
            if task_id is None:
                break
            ctx = self._make_o_context(task_id, round_no, spl)
            self._execute(ctx, self.job.o_fn)
        self._finish_sends(f"fwd:{round_no}", spl)
        return spl

    def _wait_plane(self, plane: ShufflePlane) -> None:
        """Block until the plane completes, accrued as communicate time."""
        t0 = time.perf_counter()
        PROFILER.set_phase("communicate")
        try:
            if _T.enabled:
                with _T.span(
                    "plane.wait", cat="phase", args={"plane": plane.plane_id}
                ):
                    plane.wait_complete(self.plane_timeout)
            else:
                plane.wait_complete(self.plane_timeout)
        finally:
            self._add_phase("communicate", time.perf_counter() - t0)
            PROFILER.set_phase("control")

    def _run_a_phase(self, round_no: int) -> None:
        fwd_plane = self.shuffle.plane(f"fwd:{round_no}")
        self._wait_plane(fwd_plane)
        spl = self._new_spl("bwd") if self.bidirectional else None
        while True:
            task_id = self._request_task("A", round_no)
            if task_id is None:
                break
            if task_id in fwd_plane.rpls:
                self.metrics.local_a_tasks += 1
            ctx = self._make_a_context(task_id, round_no, fwd_plane, spl)
            self._execute(ctx, self.job.a_fn)
        if spl is not None:
            self._finish_sends(f"bwd:{round_no}", spl)
            self._wait_plane(self.shuffle.plane(f"bwd:{round_no}"))

    def _run_streaming_round(self, round_no: int) -> None:
        """Streaming: A tasks consume concurrently with O production.

        Completion handling is strict: a consumer that raised is reported
        even if its siblings are still draining, and a consumer still
        alive past the plane timeout raises a descriptive error naming
        the stuck task instead of silently falling through the join.
        """
        fwd_plane = self.shuffle.plane(f"fwd:{round_no}")
        a_tasks: list[int] = []
        while True:
            task_id = self._request_task("A", round_no)
            if task_id is None:
                break
            a_tasks.append(task_id)
        errors: list[BaseException] = []

        def run_a(task_id: int) -> None:
            _T.bind(self.rank)
            PROFILER.register_thread(self.rank, self._prof_epoch, phase="merge")
            try:
                ctx = self._make_a_context(task_id, round_no, fwd_plane, None)
                self._execute(ctx, self.job.a_fn)
                if task_id in fwd_plane.rpls:
                    self.metrics.local_a_tasks += 1
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
            finally:
                PROFILER.unregister_thread()

        threads = [
            threading.Thread(target=run_a, args=(t,), daemon=True, name=f"a-task-{t}")
            for t in a_tasks
        ]
        for thread in threads:
            thread.start()
        spl = self._new_spl("fwd")
        while True:
            task_id = self._request_task("O", round_no)
            if task_id is None:
                break
            ctx = self._make_o_context(task_id, round_no, spl)
            self._execute(ctx, self.job.o_fn)
        self._finish_sends(f"fwd:{round_no}", spl)
        # one shared deadline: the plane budget covers the whole round's
        # drain, not plane_timeout per consumer thread
        deadline = time.monotonic() + self.plane_timeout
        stuck: list[int] = []
        for task_id, thread in zip(a_tasks, threads):
            thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                stuck.append(task_id)
        if errors:
            # a real failure outranks a "stuck" symptom it probably caused
            raise errors[0]
        if stuck:
            raise DataMPIError(
                f"streaming round {round_no} on worker {self.rank}: A task(s) "
                f"{stuck} still running after the {self.plane_timeout}s "
                f"plane timeout"
            )

    # -- top level ----------------------------------------------------------------------------
    def run(self) -> WorkerMetrics:
        rounds = self.job.rounds if self.bidirectional else 1
        _T.bind(self.rank)
        runtime = getattr(self.world, "runtime", None)
        self._prof_epoch = int(getattr(runtime, "rank_epoch", 0) or 0)
        # the stack registry is always on (live DUMP captures work on an
        # unprofiled job); sampling only when profile_hz > 0
        PROFILER.register_thread(self.rank, self._prof_epoch)
        try:
            PROFILER.register_queue(
                self.rank, self._prof_epoch, self.world._my_endpoint().stats
            )
        except Exception:  # noqa: BLE001 - diagnostics never block startup
            pass
        if self.profile_hz > 0:
            PROFILER.acquire(self.profile_hz)
        hb_stop = self._start_heartbeat()
        telemetry = self._start_telemetry()
        wall0 = time.perf_counter()
        try:
            for round_no in range(rounds):
                if self.pipelined:
                    self._run_streaming_round(round_no)
                else:
                    self._run_o_phase(round_no)
                    self._run_a_phase(round_no)
                t0 = time.perf_counter()
                PROFILER.set_phase("communicate")
                self.world.barrier()
                self._add_phase("communicate", time.perf_counter() - t0)
                PROFILER.set_phase("control")
                if not self.bidirectional:
                    # the forward plane is consumed and every peer passed
                    # the barrier: release its driver-side redelivery
                    # entries.  Iteration mode never acks — a reborn rank
                    # replays every round from 0 and needs them all.
                    self.shuffle.ack_plane(f"fwd:{round_no}")
            t0 = time.perf_counter()
            stats = self.shuffle.stats()
            self.metrics.bytes_sent = stats["bytes_sent"]
            self.metrics.blocks_sent = stats["blocks_sent"]
            self.metrics.records_received = stats["records_received"]
            self.metrics.blocks_received = stats["blocks_received"]
            self.metrics.spilled_bytes = stats["spilled_bytes"]
            self.metrics.replays_dropped = stats["replays_dropped"]
            # spill happens on the receiver thread concurrently with the
            # buckets above — report it as an overlay, not coverage
            self._add_phase("spill", self.shuffle.spill_seconds())
            self._add_phase("control", time.perf_counter() - t0)
            self.metrics.wall_seconds = time.perf_counter() - wall0
            # flush the parting telemetry snapshot before the final
            # report: both ride the same FIFO connection, so the hub is
            # guaranteed to hold this rank's last word when the
            # scheduler marks it done
            self._stop_telemetry(telemetry)
            self._report()
            return self.metrics
        finally:
            if hb_stop is not None:
                hb_stop.set()
            self._stop_telemetry(telemetry)
            self._finish_profile(runtime)
            self.shuffle.shutdown()

    def _finish_profile(self, runtime: Any) -> None:
        """Stop sampling, persist this rank's profile, drop registrations.

        Process backend: the profile goes to the ``.prof-`` shard named in
        the worker spec, merged by the driver's trace session.  Thread
        backend: published to the in-process list the same session drains.
        """
        try:
            if self.profile_hz > 0:
                PROFILER.release()
                profile = PROFILER.collect(
                    self.rank, self._prof_epoch, hz=self.profile_hz
                )
                if profile["samples"]:
                    shard = getattr(runtime, "profile_shard", None)
                    if shard:
                        profiler_mod.write_profile_shard(shard, profile)
                    else:
                        profiler_mod.publish_local(profile)
        except Exception:  # noqa: BLE001 - profiling must never fail the rank
            _log.exception("failed to persist profile for rank %d", self.rank)
        finally:
            PROFILER.unregister_thread()
            PROFILER.unregister_queue(self.rank, self._prof_epoch)
