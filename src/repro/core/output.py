"""Process-safe job output sinks.

An output collector is called from A tasks — with
``mpi.d.launcher=processes`` those run in worker processes, so closures
that append to driver-side memory silently lose the output.
:class:`FileSink` is the backend-agnostic alternative: each A task
appends pickled pairs to its own part file under a directory, and the
driver reads the files back after ``mpidrun`` returns.  One writer per
part file (tasks are pinned to ranks) keeps appends safe without
cross-process locking.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import defaultdict
from typing import Any, Iterator

__all__ = ["FileSink"]


class FileSink:
    """File-backed output collector usable on every rank backend.

    >>> sink = FileSink.temporary("wc")
    >>> job = mapreduce_job(..., output_collector=sink, ...)  # doctest: +SKIP
    >>> mpidrun(job, ...)                                     # doctest: +SKIP
    >>> dict(sink.pairs())                                    # doctest: +SKIP
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    @classmethod
    def temporary(cls, name: str = "job") -> "FileSink":
        return cls(tempfile.mkdtemp(prefix=f"datampi-{name}-out-"))

    def _path(self, rank: int) -> str:
        return os.path.join(self.directory, f"part-{rank:05d}.pkl")

    def __call__(self, rank: int, key: Any, value: Any) -> None:
        # append-mode open per record: one writer per part file, and the
        # stream stays parsable even if the worker dies mid-job
        with open(self._path(rank), "ab") as f:
            pickle.dump((key, value), f)

    # -- driver-side readers ---------------------------------------------------
    def ranks(self) -> list[int]:
        out = []
        for name in sorted(os.listdir(self.directory)):
            if name.startswith("part-") and name.endswith(".pkl"):
                out.append(int(name[len("part-"):].split(".")[0]))
        return out

    def pairs_for(self, rank: int) -> Iterator[tuple[Any, Any]]:
        try:
            f = open(self._path(rank), "rb")
        except FileNotFoundError:
            return
        with f:
            while True:
                try:
                    yield pickle.load(f)
                except EOFError:
                    return

    def pairs(self) -> Iterator[tuple[Any, Any]]:
        """All pairs, in part order (A-task rank order)."""
        for rank in self.ranks():
            yield from self.pairs_for(rank)

    def by_task(self) -> dict[int, list[tuple[Any, Any]]]:
        out: dict[int, list[tuple[Any, Any]]] = defaultdict(list)
        for rank in self.ranks():
            out[rank] = list(self.pairs_for(rank))
        return dict(out)

    def merged(self) -> dict[Any, Any]:
        """Pairs folded into a dict (last write per key wins)."""
        return dict(self.pairs())

    def cleanup(self) -> None:
        for rank in self.ranks():
            try:
                os.unlink(self._path(rank))
            except OSError:
                pass
        try:
            os.rmdir(self.directory)
        except OSError:
            pass
