"""The MPI_D programming interface (paper Tables I & II, Listing 1).

Python rendering of the Java binding used in the paper::

    conf = {MPI_D_Constants.KEY_CLASS: "java.lang.String",
            MPI_D_Constants.VALUE_CLASS: "java.lang.String"}
    MPI_D.Init(args, MPI_D.Mode.COMMON, conf)
    if MPI_D.COMM_BIPARTITE_O is not None:
        rank = MPI_D.Comm_rank(MPI_D.COMM_BIPARTITE_O)
        size = MPI_D.Comm_size(MPI_D.COMM_BIPARTITE_O)
        for key in load_keys(rank, size):
            MPI_D.Send(key, "")
    elif MPI_D.COMM_BIPARTITE_A is not None:
        kv = MPI_D.Recv()
        while kv is not None:
            output(kv[0], kv[1])
            kv = MPI_D.Recv()
    MPI_D.Finalize()

The three pairs of basic functions are exactly Table I; the optional
user functions of Table II (``MPI_D_COMPARE``, ``MPI_D_PARTITION``,
``MPI_D_COMBINE``) are supplied on the job object (or via ``conf``) and
invoked by the library.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.common.errors import DataMPIError, MPI_D_Exception  # noqa: F401 re-export
from repro.core import context as _context
from repro.core.constants import Mode, MPI_D_Constants  # noqa: F401 re-export
from repro.core.context import BipartiteComm


class _MPIDMeta(type):
    """Metaclass exposing the bipartite communicators as class attributes.

    They are thread-local underneath: each task thread sees only its own
    communicator, and exactly one of O/A is non-None — the dichotomic
    feature of the bipartite model.
    """

    @property
    def COMM_BIPARTITE_O(cls) -> BipartiteComm | None:  # noqa: N802
        ctx = _context.CURRENT.ctx
        if ctx is None or ctx.kind != "O":
            return None
        return ctx.comm

    @property
    def COMM_BIPARTITE_A(cls) -> BipartiteComm | None:  # noqa: N802
        ctx = _context.CURRENT.ctx
        if ctx is None or ctx.kind != "A":
            return None
        return ctx.comm


class MPI_D(metaclass=_MPIDMeta):
    """Static facade, mirroring the Java binding's ``MPI_D`` class."""

    Mode = Mode
    Constants = MPI_D_Constants

    # -- Table I: init/finalize ------------------------------------------------
    @staticmethod
    def Init(  # noqa: N802
        args: list[str] | None = None,
        mode: Mode | None = None,
        conf: Mapping[str, Any] | None = None,
    ) -> None:
        """Initialize the task execution environment.

        Under ``mpidrun`` the environment (communicators, buffers,
        scheduling) already exists when the task function runs; ``Init``
        validates the binding and marks the context live, mirroring the
        paper's semantics where ``MPI_D_INIT`` creates
        ``COMM_BIPARTITE_O`` for O tasks and ``COMM_BIPARTITE_A`` for A
        tasks.
        """
        ctx = _context.current()
        if ctx.initialized:
            raise DataMPIError("MPI_D.Init called twice in one task")
        ctx.initialized = True

    @staticmethod
    def Finalize() -> None:  # noqa: N802
        """Finalize the task environment (flushes checkpoints)."""
        ctx = _context.current()
        if not ctx.initialized:
            raise DataMPIError("MPI_D.Finalize without MPI_D.Init")
        ctx.finalized = True

    # -- Table I: naming -----------------------------------------------------------
    @staticmethod
    def Comm_rank(comm: BipartiteComm) -> int:  # noqa: N802
        """Rank of this task within ``comm`` (a *task* rank)."""
        if comm is None:
            raise DataMPIError("Comm_rank on a null communicator")
        return comm.rank

    @staticmethod
    def Comm_size(comm: BipartiteComm) -> int:  # noqa: N802
        """Total number of tasks in ``comm``."""
        if comm is None:
            raise DataMPIError("Comm_size on a null communicator")
        return comm.size

    # -- Table I: key-value communication ---------------------------------------------
    @staticmethod
    def Send(key: Any, value: Any) -> None:  # noqa: N802
        """Emit a key-value pair; no destination argument — the library
        partitions and moves the data implicitly (the dynamic feature)."""
        _context.current().send(key, value)

    @staticmethod
    def Recv() -> tuple[Any, Any] | None:  # noqa: N802
        """Receive the next pair for this task, or None when exhausted."""
        return _context.current().recv()

    # -- introspection helpers beyond the paper's surface -----------------------------
    @staticmethod
    def current_context() -> _context.TaskContext:
        """The live task context (useful for state access in Iteration mode)."""
        return _context.current()
