"""mpidrun's task scheduler (§IV-B, Figure 4).

The driver owns two task queues (communicator O & A) and serves workers'
pull requests over the parent intercommunicator:

* **Dichotomic**: separate queues per communicator.
* **Dynamic**: O tasks (MapReduce/Common/Streaming) are handed out
  first-come-first-served, so fast processes naturally take more tasks.
* **Data-centric**: A tasks are assigned *only* to the process that
  hosts their partition (the Partition Window ownership), giving every
  A task reduce-side data locality.  Iteration-mode O tasks are pinned
  the same way so cross-round process-local state stays local.
* **Diversified**: the job's mode changes the loop structure (rounds,
  streaming overlap) on the worker side; the scheduler just serves
  queues keyed by (phase, round).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.common.errors import DataMPIError
from repro.common.logging import get_logger
from repro.core.constants import CONTROL_TAG, Mode
from repro.core.job import DataMPIJob
from repro.core.metrics import JobMetrics, WorkerMetrics
from repro.core.partition import PartitionWindow
from repro.mpi.datatypes import ANY_SOURCE

_log = get_logger("core.scheduler")


class TaskScheduler:
    """Queue state for one job."""

    def __init__(self, job: DataMPIJob, nprocs: int) -> None:
        self.job = job
        self.nprocs = nprocs
        self.window_fwd = PartitionWindow(job.a_tasks, nprocs)
        self.window_bwd = PartitionWindow(job.o_tasks, nprocs)
        #: (phase, round) -> shared FIFO deque (dynamic O scheduling)
        self._shared: dict[tuple[str, int], deque[int]] = {}
        #: (phase, round, worker) -> pinned deque (data-centric scheduling)
        self._pinned: dict[tuple[str, int, int], deque[int]] = {}
        self.assigned: list[tuple[str, int, int, int]] = []  # audit trail

    def _o_is_pinned(self) -> bool:
        return self.job.mode is Mode.ITERATION

    def next_task(self, phase: str, round_no: int, worker: int) -> int | None:
        if phase not in ("O", "A"):
            raise DataMPIError(f"unknown phase {phase!r}")
        if phase == "A" or self._o_is_pinned():
            queue = self._pinned_queue(phase, round_no, worker)
        else:
            queue = self._shared_queue(phase, round_no)
        if not queue:
            return None
        task_id = queue.popleft()
        self.assigned.append((phase, round_no, worker, task_id))
        _log.debug(
            "assign %s task %d (round %d) -> worker %d",
            phase, task_id, round_no, worker,
        )
        return task_id

    def _shared_queue(self, phase: str, round_no: int) -> deque[int]:
        key = (phase, round_no)
        if key not in self._shared:
            count = self.job.o_tasks if phase == "O" else self.job.a_tasks
            self._shared[key] = deque(range(count))
        return self._shared[key]

    def _pinned_queue(self, phase: str, round_no: int, worker: int) -> deque[int]:
        key = (phase, round_no, worker)
        if key not in self._pinned:
            window = self.window_fwd if phase == "A" else self.window_bwd
            self._pinned[key] = deque(window.owned_by(worker))
        return self._pinned[key]


def driver_main(comm: Any, job: DataMPIJob, nprocs: int) -> dict[int, WorkerMetrics]:
    """The mpidrun process: spawn workers, serve the control protocol.

    Runs as rank 0 of a single-rank world; workers are spawned as a child
    world connected by an intercommunicator (Figure 4's process tree).
    """
    from repro.core.engine import worker_main

    inter = comm.spawn(worker_main, nprocs, args=(job, nprocs), name=f"{job.name}-w")
    scheduler = TaskScheduler(job, nprocs)
    reports: dict[int, WorkerMetrics] = {}
    while len(reports) < nprocs:
        message = inter.recv(source=ANY_SOURCE, tag=CONTROL_TAG)
        if message[0] == "req":
            _, phase, round_no, worker = message
            task_id = scheduler.next_task(phase, round_no, worker)
            reply = ("task", task_id) if task_id is not None else ("none", None)
            inter.send(reply, dest=worker, tag=CONTROL_TAG)
        elif message[0] == "report":
            _, worker, metrics = message
            reports[worker] = metrics
        else:
            raise DataMPIError(f"unknown control message {message[0]!r}")
    return reports


def merge_reports(reports: dict[int, WorkerMetrics]) -> JobMetrics:
    job_metrics = JobMetrics()
    for metrics in reports.values():
        metrics.merge_into(job_metrics)
    return job_metrics
