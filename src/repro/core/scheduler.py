"""mpidrun's task scheduler (§IV-B, Figure 4).

The driver owns two task queues (communicator O & A) and serves workers'
pull requests over the parent intercommunicator:

* **Dichotomic**: separate queues per communicator.
* **Dynamic**: O tasks (MapReduce/Common/Streaming) are handed out
  first-come-first-served, so fast processes naturally take more tasks.
* **Data-centric**: A tasks are assigned *only* to the process that
  hosts their partition (the Partition Window ownership), giving every
  A task reduce-side data locality.  Iteration-mode O tasks are pinned
  the same way so cross-round process-local state stays local.
* **Diversified**: the job's mode changes the loop structure (rounds,
  streaming overlap) on the worker side; the scheduler just serves
  queues keyed by (phase, round).
"""

from __future__ import annotations

from collections import deque
from time import monotonic as _now
from typing import Any

from repro.common.errors import (
    DataMPIError,
    FailureRecord,
    JobFailedError,
    RankRecoveryError,
    WorkerLostError,
)
from repro.common.logging import get_logger
from repro.core.constants import CONTROL_TAG, Mode, MPI_D_Constants as K
from repro.core.job import DataMPIJob
from repro.core.metrics import JobMetrics, WorkerMetrics
from repro.core.modes import profile_for
from repro.core.partition import PartitionWindow
from repro.mpi.datatypes import ANY_SOURCE
from repro.obs.tracer import TRACER as _T

_log = get_logger("core.scheduler")


class TaskScheduler:
    """Queue state for one job."""

    def __init__(self, job: DataMPIJob, nprocs: int) -> None:
        self.job = job
        self.nprocs = nprocs
        self.window_fwd = PartitionWindow(job.a_tasks, nprocs)
        self.window_bwd = PartitionWindow(job.o_tasks, nprocs)
        #: (phase, round) -> shared FIFO deque (dynamic O scheduling)
        self._shared: dict[tuple[str, int], deque[int]] = {}
        #: (phase, round, worker) -> pinned deque (data-centric scheduling)
        self._pinned: dict[tuple[str, int, int], deque[int]] = {}
        #: (phase, round, worker) -> replay deque (surgical rank recovery);
        #: drained ahead of the regular queues and pinned to the reborn
        #: worker — replay must land on the same rank so its re-sent
        #: shuffle streams mirror the originals partition-for-partition
        self._replay: dict[tuple[str, int, int], deque[int]] = {}
        self.assigned: list[tuple[str, int, int, int]] = []  # audit trail

    def _o_is_pinned(self) -> bool:
        return self.job.mode is Mode.ITERATION

    def requeue_worker(self, worker: int) -> int:
        """Re-enqueue every task ever assigned to ``worker`` (its failure
        domain, nothing more) for replay by its reborn incarnation;
        returns the number of tasks requeued."""
        for key in [k for k in self._replay if k[2] == worker]:
            del self._replay[key]
        seen: set[tuple[str, int, int]] = set()
        requeued = 0
        for phase, round_no, w, task_id in self.assigned:
            if w != worker:
                continue
            key = (phase, round_no, task_id)
            if key in seen:
                continue
            seen.add(key)
            self._replay.setdefault(
                (phase, round_no, worker), deque()
            ).append(task_id)
            requeued += 1
        return requeued

    def next_task(self, phase: str, round_no: int, worker: int) -> int | None:
        if phase not in ("O", "A"):
            raise DataMPIError(f"unknown phase {phase!r}")
        queue = self._replay.get((phase, round_no, worker))
        if not queue:
            if phase == "A" or self._o_is_pinned():
                queue = self._pinned_queue(phase, round_no, worker)
            else:
                queue = self._shared_queue(phase, round_no)
        if not queue:
            return None
        task_id = queue.popleft()
        self.assigned.append((phase, round_no, worker, task_id))
        if _T.enabled:
            _T.instant(
                "sched.assign", cat="scheduler",
                args={
                    "phase": phase, "round": round_no,
                    "worker": worker, "task": task_id,
                },
            )
        _log.debug(
            "assign %s task %d (round %d) -> worker %d",
            phase, task_id, round_no, worker,
        )
        return task_id

    def _shared_queue(self, phase: str, round_no: int) -> deque[int]:
        key = (phase, round_no)
        if key not in self._shared:
            count = self.job.o_tasks if phase == "O" else self.job.a_tasks
            self._shared[key] = deque(range(count))
        return self._shared[key]

    def _pinned_queue(self, phase: str, round_no: int, worker: int) -> deque[int]:
        key = (phase, round_no, worker)
        if key not in self._pinned:
            window = self.window_fwd if phase == "A" else self.window_bwd
            self._pinned[key] = deque(window.owned_by(worker))
        return self._pinned[key]


class WorkerSupervisor:
    """Liveness + assignment tracking for the spawned worker world.

    Every control message doubles as a heartbeat; a dedicated worker
    thread also beats on an interval, so a worker deep in a long shuffle
    wait still proves it is alive.  A worker silent past ``deadline`` is
    declared lost with a structured record naming its last assignment.
    """

    def __init__(self, nprocs: int, deadline: float, attempt: int = 1) -> None:
        self.deadline = deadline
        self.attempt = attempt
        now = _now()
        self.last_seen: dict[int, float] = {w: now for w in range(nprocs)}
        #: worker -> (phase, round, task) of its most recent assignment
        self.last_assignment: dict[int, tuple[str, int, int]] = {}
        self.done: set[int] = set()

    def beat(self, worker: int) -> None:
        self.last_seen[worker] = _now()

    def note(self, worker: int, phase: str, round_no: int, task_id: int | None) -> None:
        if task_id is not None:
            self.last_assignment[worker] = (phase, round_no, task_id)

    def finish(self, worker: int) -> None:
        self.done.add(worker)

    def reset(self, worker: int) -> None:
        """A reborn incarnation of ``worker`` is coming up: restart its
        liveness clock and forget its last assignment."""
        self.last_seen[worker] = _now()
        self.done.discard(worker)
        self.last_assignment.pop(worker, None)

    def check(self) -> None:
        """Raise :class:`WorkerLostError` for the stalest expired worker."""
        if self.deadline <= 0:
            return
        now = _now()
        lost: tuple[float, int] | None = None
        for worker, seen in self.last_seen.items():
            if worker in self.done:
                continue
            silent = now - seen
            if silent > self.deadline and (lost is None or silent > lost[0]):
                lost = (silent, worker)
        if lost is None:
            return
        silent, worker = lost
        phase, round_no, task_id = self.last_assignment.get(worker, ("", -1, -1))
        record = FailureRecord(
            kind="heartbeat",
            worker=worker,
            phase=phase,
            task_id=task_id,
            round_no=round_no,
            attempt=self.attempt,
            error=(
                f"worker {worker} silent for {silent:.1f}s "
                f"(heartbeat deadline {self.deadline:.1f}s)"
            ),
        )
        raise WorkerLostError(worker, silent, self.deadline, record)


def driver_main(comm: Any, job: DataMPIJob, nprocs: int) -> dict[int, WorkerMetrics]:
    """The mpidrun process: spawn workers, serve the control protocol.

    Runs as rank 0 of a single-rank world; workers are spawned as a child
    world connected by an intercommunicator (Figure 4's process tree).

    The serve loop is supervised: receives are bounded so worker
    heartbeat deadlines are enforced even when no traffic arrives, a
    worker-reported task failure raises :class:`JobFailedError` with the
    worker's own failure record, and *any* driver-side failure aborts the
    worker world before propagating — workers can never be left blocked
    on a dead driver.
    """
    from repro.core.engine import worker_main

    conf = profile_for(job.mode, job.conf)
    deadline = conf.get_float(K.HEARTBEAT_DEADLINE_SECONDS, 15.0)
    attempt = conf.get_int(K.JOB_ATTEMPT, 1)
    poll = max(0.02, min(1.0, deadline / 5)) if deadline > 0 else None
    inter = comm.spawn(worker_main, nprocs, args=(job, nprocs), name=f"{job.name}-w")
    scheduler = TaskScheduler(job, nprocs)
    supervisor = WorkerSupervisor(nprocs, deadline, attempt=attempt)
    reports: dict[int, WorkerMetrics] = {}
    # -- surgical rank recovery plumbing (process backend only) --------------
    runtime = getattr(comm, "runtime", None)
    # -- live telemetry: the hub tracks world size and rank completion so
    # `repro top` can show a status column and honest rollup denominators
    telemetry_hub = getattr(runtime, "telemetry_hub", None)
    if telemetry_hub is not None:
        telemetry_hub.expect(nprocs)
    worker_gids = dict(enumerate(getattr(inter, "remote_group", ())))
    gid_to_worker = {gid: w for w, gid in worker_gids.items()}
    pending_fn = getattr(runtime, "pending_respawns", None)
    respawn_fn = getattr(runtime, "respawn_rank", None)

    def _try_respawn(worker: int, gid: int) -> bool:
        """Fork a replacement for one dead rank and replay only its
        failure domain; False when surgical recovery is off/exhausted."""
        if respawn_fn is None:
            return False
        t0 = _now()
        epoch = respawn_fn(gid)
        if epoch is None:
            return False
        requeued = scheduler.requeue_worker(worker)
        supervisor.reset(worker)
        if conf.get_bool(K.FT_ENABLED, False):
            from repro.core.checkpoint import write_rank_manifest

            write_rank_manifest(
                conf.get(K.FT_DIR) or "",
                conf.get_str(K.JOB_ID, job.name),
                worker,
                {
                    "gid": gid,
                    "epoch": epoch,
                    "attempt": attempt,
                    "tasks_requeued": requeued,
                },
            )
        if _T.enabled:
            _T.instant(
                "recovery.respawn", cat="recovery",
                args={
                    "worker": worker, "gid": gid, "epoch": epoch,
                    "tasks_requeued": requeued,
                    "driver_latency_s": round(_now() - t0, 6),
                },
            )
        _log.warning(
            "respawned worker %d (global rank %d) at epoch %d; "
            "%d task(s) requeued for replay", worker, gid, epoch, requeued,
        )
        return True

    def _supervise() -> None:
        """Heartbeat check + respawn servicing, recovery-aware: a dead
        rank is respawned in place when the budget allows; otherwise the
        original failure propagates (degrading to a whole-job restart)."""
        if pending_fn is not None:
            for gid in pending_fn():
                worker = gid_to_worker.get(gid)
                if worker is None or worker in supervisor.done:
                    continue  # already reported: no successor needed
                if not _try_respawn(worker, gid):
                    record = FailureRecord(
                        kind="respawn",
                        worker=worker,
                        attempt=attempt,
                        error=(
                            f"worker {worker} (global rank {gid}) died and "
                            f"cannot be respawned (budget exhausted or "
                            f"redelivery overflow); degrading to whole-job "
                            f"restart"
                        ),
                    )
                    raise RankRecoveryError(worker, record.error, record)
        try:
            supervisor.check()
        except WorkerLostError as lost:
            gid = worker_gids.get(lost.worker)
            if gid is None or not _try_respawn(lost.worker, gid):
                raise

    try:
        while len(reports) < nprocs:
            try:
                message = inter.recv(source=ANY_SOURCE, tag=CONTROL_TAG, timeout=poll)
            except TimeoutError:
                _supervise()
                continue
            kind = message[0]
            if kind == "req":
                _, phase, round_no, worker = message
                supervisor.beat(worker)
                task_id = scheduler.next_task(phase, round_no, worker)
                supervisor.note(worker, phase, round_no, task_id)
                reply = ("task", task_id) if task_id is not None else ("none", None)
                inter.send(reply, dest=worker, tag=CONTROL_TAG)
            elif kind == "hb":
                supervisor.beat(message[1])
            elif kind == "report":
                _, worker, metrics = message
                supervisor.beat(worker)
                supervisor.finish(worker)
                reports[worker] = metrics
                if telemetry_hub is not None:
                    telemetry_hub.mark_done(worker)
                if _T.enabled:
                    _T.instant(
                        "worker.done", cat="scheduler", args={"worker": worker}
                    )
            elif kind == "fail":
                _, worker, record = message
                raise JobFailedError(
                    f"worker {worker}: {record.phase} task {record.task_id} "
                    f"(attempt {record.attempt}) failed: {record.error}",
                    failures=[record],
                )
            else:
                raise DataMPIError(f"unknown control message {message[0]!r}")
            _supervise()
    except BaseException as exc:
        # never leave workers blocked on a driver that is about to die
        comm.abort(reason=f"driver failed: {exc!r}")
        raise
    return reports


def merge_reports(reports: dict[int, WorkerMetrics]) -> JobMetrics:
    job_metrics = JobMetrics()
    for metrics in reports.values():
        metrics.merge_into(job_metrics)
    return job_metrics
