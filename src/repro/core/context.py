"""Task execution context: the object behind the MPI_D API calls.

One :class:`TaskContext` exists per task attempt.  It knows which
bipartite communicator the task belongs to, routes ``Send`` through the
SPL/partitioner/checkpoint pipeline and serves ``Recv`` from the task's
merged partition (or its live stream in Streaming mode).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.common.errors import DataMPIError
from repro.core.buffers import SendPartitionList
from repro.core.checkpoint import CheckpointReader, CheckpointWriter
from repro.core.metrics import TaskMetrics
from repro.core.partition import Partitioner, validate_destination

if TYPE_CHECKING:
    from repro.core.shuffle import ShufflePlane, ShuffleService

KV = tuple[Any, Any]


@dataclass(frozen=True)
class BipartiteComm:
    """What ``MPI_D.COMM_BIPARTITE_O`` / ``..._A`` evaluate to in a task.

    ``rank`` is the *task* rank within its communicator and ``size`` the
    total number of tasks there (Table I: naming functions operate on
    tasks, not processes).
    """

    kind: str  # "O" or "A"
    rank: int
    size: int


class TaskContext:
    """Runtime state of one task attempt."""

    def __init__(
        self,
        kind: str,
        task_id: int,
        o_size: int,
        a_size: int,
        round_no: int,
        conf: Any,
        partitioner: Partitioner,
        spl: SendPartitionList | None,
        send_plane_id: str | None,
        shuffle: "ShuffleService | None",
        recv_plane: "ShufflePlane | None",
        pipelined: bool = False,
        state: dict | None = None,
        checkpoint_writer: CheckpointWriter | None = None,
        checkpoint_reader: CheckpointReader | None = None,
        crash_after: int = -1,
        key_class: type | None = None,
        value_class: type | None = None,
    ) -> None:
        self.kind = kind
        self.task_id = task_id
        self.o_size = o_size
        self.a_size = a_size
        self.round = round_no
        self.conf = conf
        self._partitioner = partitioner
        self._spl = spl
        self._send_plane_id = send_plane_id
        self._shuffle = shuffle
        self._recv_plane = recv_plane
        self._pipelined = pipelined
        #: process-local state shared between rounds (Iteration mode):
        #: A tasks stash results here; the next round's O task on the same
        #: process reads them data-locally.
        self.state = state if state is not None else {}
        self._cp_writer = checkpoint_writer
        self._cp_reader = checkpoint_reader
        self._crash_after = crash_after
        #: KEY_CLASS / VALUE_CLASS enforcement (§III-A reserved keys);
        #: None disables checking (the default when conf omits them)
        self._key_class = key_class
        self._value_class = value_class
        self._emit_index = 0
        self._skip_emits = 0
        self._recv_iter: Iterator[KV] | None = None
        self.metrics = TaskMetrics(task_id=task_id, kind=kind)
        self.initialized = False
        self.finalized = False

    # -- bipartite communicators -------------------------------------------------
    @property
    def comm(self) -> BipartiteComm:
        size = self.o_size if self.kind == "O" else self.a_size
        return BipartiteComm(self.kind, self.task_id, size)

    @property
    def rank(self) -> int:
        return self.task_id

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def num_send_partitions(self) -> int:
        """Destination count: O sends toward A tasks, A (Iteration) toward O."""
        return self.a_size if self.kind == "O" else self.o_size

    # -- recovery ------------------------------------------------------------------
    def replay_checkpoint(self) -> int:
        """Resend persisted pairs; the task then skips that many emits.

        Returns the number of reloaded records (Figure 13's "Job Reload
        Checkpoint" phase).
        """
        if self._cp_reader is None:
            return 0
        reloaded = 0
        for key, value in self._cp_reader.replay():
            self._send_raw(key, value)
            reloaded += 1
        self._skip_emits = reloaded
        return reloaded

    # -- send path -------------------------------------------------------------------
    def send(self, key: Any, value: Any) -> None:
        """``MPI_D_SEND``: emit one pair; no destination — the library
        partitions and schedules the movement implicitly (§III-A)."""
        if self._spl is None:
            raise DataMPIError(
                f"{self.kind} task {self.task_id} cannot Send in this mode"
            )
        if self._crash_after >= 0 and self._emit_index >= self._crash_after:
            raise DataMPIError(
                f"injected crash in {self.kind} task {self.task_id} after "
                f"{self._emit_index} records"
            )
        self._emit_index += 1
        if self._emit_index <= self._skip_emits:
            return  # this record was already sent from the checkpoint replay
        key = self._typed("key", key, self._key_class)
        value = self._typed("value", value, self._value_class)
        self._send_raw(key, value)
        if self._cp_writer is not None:
            self._cp_writer.add(key, value)

    def _typed(self, what: str, obj: Any, cls: type | None) -> Any:
        """Enforce the configured KEY_CLASS/VALUE_CLASS on an emitted pair."""
        if cls is None or isinstance(obj, cls):
            return obj
        try:
            return cls(obj)
        except (TypeError, ValueError) as exc:
            raise DataMPIError(
                f"{self.kind} task {self.task_id}: {what} {obj!r} is not a "
                f"{cls.__name__} and cannot be coerced ({exc})"
            ) from None

    def _send_raw(self, key: Any, value: Any) -> None:
        assert self._spl is not None and self._shuffle is not None
        dest = validate_destination(
            self._partitioner(key, value, self.num_send_partitions),
            self.num_send_partitions,
        )
        self.metrics.records_emitted += 1
        block = self._spl.add(dest, key, value)
        if block is not None:
            assert self._send_plane_id is not None
            self._shuffle.send_block(self._send_plane_id, block)

    # -- receive path -----------------------------------------------------------------
    def _ensure_recv_iter(self) -> Iterator[KV]:
        if self._recv_iter is None:
            if self._recv_plane is None:
                raise DataMPIError(
                    f"{self.kind} task {self.task_id} has nothing to Recv from"
                )
            if self._pipelined:
                self._recv_iter = self._recv_plane.stream_iter(self.task_id)
            else:
                self._recv_iter = self._recv_plane.merged_iter(self.task_id)
        return self._recv_iter

    def recv(self) -> KV | None:
        """``MPI_D_RECV``: next pair for this task, or ``None`` at end."""
        record = next(self._ensure_recv_iter(), None)
        if record is not None:
            self.metrics.records_received += 1
        return record

    def recv_iter(self) -> Iterator[KV]:
        """All remaining pairs as an iterator (Pythonic convenience)."""
        while True:
            record = self.recv()
            if record is None:
                return
            yield record

    def recv_batch(self):
        """This task's whole input as one merged record batch, or ``None``.

        Available only when no pair has been consumed yet and the entire
        partition is resident as sealed batches (no disk spills, no
        object-tuple blocks, not pipelined) — the zero-materialization
        fast path for byte workloads: iterate ``batch.iter_views()`` and
        never build a Python object per record.  Callers must fall back
        to :meth:`recv` / :meth:`recv_iter` on ``None``.
        """
        if self._recv_iter is not None or self._pipelined:
            return None
        if self._recv_plane is None:
            raise DataMPIError(
                f"{self.kind} task {self.task_id} has nothing to Recv from"
            )
        batch = self._recv_plane.merged_batch(self.task_id)
        if batch is not None:
            self.metrics.records_received += batch.count
            # the input is consumed; recv() afterwards sees end-of-stream
            self._recv_iter = iter(())
        return batch

    # -- lifecycle ----------------------------------------------------------------------
    def close(self) -> None:
        if self._cp_writer is not None:
            self._cp_writer.close()


class _ContextBinding(threading.local):
    """Thread-local binding of the active TaskContext (set by the engine)."""

    def __init__(self) -> None:
        self.ctx: TaskContext | None = None


CURRENT = _ContextBinding()


def bind(ctx: TaskContext | None) -> None:
    CURRENT.ctx = ctx


def current() -> TaskContext:
    if CURRENT.ctx is None:
        raise DataMPIError(
            "no DataMPI task context on this thread; MPI_D calls are only "
            "valid inside a task launched by mpidrun"
        )
    return CURRENT.ctx
