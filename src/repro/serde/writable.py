"""Hadoop-style Writable value types.

A :class:`Writable` serializes itself to a :class:`~repro.serde.io.DataOutput`
and reads itself back from a :class:`~repro.serde.io.DataInput`.  The types
here mirror the ``org.apache.hadoop.io`` classes the paper's benchmarks use
(Text keys for TeraSort/WordCount, numeric writables for PageRank/K-means).

All writables are ordered and hashable so they can flow through sorting
shuffles and hash partitioners directly.
"""

from __future__ import annotations

import functools
from abc import ABC, abstractmethod
from typing import Any

from repro.serde.io import DataInput, DataOutput


class Writable(ABC):
    """Abstract self-serializing value."""

    __slots__ = ()

    @abstractmethod
    def write(self, out: DataOutput) -> None:
        """Serialize this value onto ``out``."""

    @abstractmethod
    def read_fields(self, src: DataInput) -> None:
        """Overwrite this value from ``src``."""

    @classmethod
    def read(cls, src: DataInput) -> "Writable":
        obj = cls()
        obj.read_fields(src)
        return obj

    def to_bytes(self) -> bytes:
        out = DataOutput()
        self.write(out)
        return out.getvalue()

    def serialized_size(self) -> int:
        return len(self.to_bytes())


@functools.total_ordering
class _ScalarWritable(Writable):
    """Shared machinery for single-field writables."""

    __slots__ = ("value",)
    _default: Any = 0

    def __init__(self, value: Any = None) -> None:
        self.value = self._default if value is None else self._coerce(value)

    @staticmethod
    def _coerce(value: Any) -> Any:
        return value

    def get(self) -> Any:
        return self.value

    def set(self, value: Any) -> None:
        self.value = self._coerce(value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _ScalarWritable):
            return self.value == other.value
        return NotImplemented

    def __lt__(self, other: "_ScalarWritable") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.value!r})"


class IntWritable(_ScalarWritable):
    """32-bit signed integer."""

    __slots__ = ()
    _coerce = staticmethod(int)

    def write(self, out: DataOutput) -> None:
        out.write_int(self.value)

    def read_fields(self, src: DataInput) -> None:
        self.value = src.read_int()


class VIntWritable(_ScalarWritable):
    """Variable-length integer (1-5 bytes on the wire)."""

    __slots__ = ()
    _coerce = staticmethod(int)

    def write(self, out: DataOutput) -> None:
        out.write_vint(self.value)

    def read_fields(self, src: DataInput) -> None:
        self.value = src.read_vint()


class LongWritable(_ScalarWritable):
    """64-bit signed integer."""

    __slots__ = ()
    _coerce = staticmethod(int)

    def write(self, out: DataOutput) -> None:
        out.write_long(self.value)

    def read_fields(self, src: DataInput) -> None:
        self.value = src.read_long()


class FloatWritable(_ScalarWritable):
    """32-bit float (values round-trip through single precision)."""

    __slots__ = ()
    _default = 0.0
    _coerce = staticmethod(float)

    def write(self, out: DataOutput) -> None:
        out.write_float(self.value)

    def read_fields(self, src: DataInput) -> None:
        self.value = src.read_float()


class DoubleWritable(_ScalarWritable):
    """64-bit float."""

    __slots__ = ()
    _default = 0.0
    _coerce = staticmethod(float)

    def write(self, out: DataOutput) -> None:
        out.write_double(self.value)

    def read_fields(self, src: DataInput) -> None:
        self.value = src.read_double()


class BooleanWritable(_ScalarWritable):
    """Single-byte boolean."""

    __slots__ = ()
    _default = False
    _coerce = staticmethod(bool)

    def write(self, out: DataOutput) -> None:
        out.write_boolean(self.value)

    def read_fields(self, src: DataInput) -> None:
        self.value = src.read_boolean()


class Text(_ScalarWritable):
    """UTF-8 string, vint-length-prefixed — Hadoop's workhorse key type."""

    __slots__ = ()
    _default = ""
    _coerce = staticmethod(str)

    def write(self, out: DataOutput) -> None:
        out.write_utf(self.value)

    def read_fields(self, src: DataInput) -> None:
        self.value = src.read_utf()

    def __len__(self) -> int:
        return len(self.value)


class BytesWritable(_ScalarWritable):
    """Raw byte payload, int-length-prefixed.

    TeraSort records travel as these: a 10-byte key and a 90-byte value.
    Ordering is lexicographic on the raw bytes, matching Hadoop's
    ``BytesWritable.Comparator``.
    """

    __slots__ = ()
    _default = b""
    _coerce = staticmethod(bytes)

    def write(self, out: DataOutput) -> None:
        out.write_int(len(self.value))
        out.write_bytes(self.value)

    def read_fields(self, src: DataInput) -> None:
        n = src.read_int()
        self.value = src.read_bytes(n)

    def __len__(self) -> int:
        return len(self.value)


class NullWritable(Writable):
    """Zero-byte placeholder; a singleton like Hadoop's NullWritable."""

    __slots__ = ()
    _instance: "NullWritable | None" = None

    def __new__(cls) -> "NullWritable":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def write(self, out: DataOutput) -> None:
        pass

    def read_fields(self, src: DataInput) -> None:
        pass

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NullWritable)

    def __lt__(self, other: object) -> bool:
        return False

    def __hash__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullWritable()"
