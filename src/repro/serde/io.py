"""Binary stream primitives modelled on ``java.io.DataOutput/DataInput``.

Hadoop's Writable protocol is defined in terms of these streams; keeping
an explicit implementation lets the mini-Hadoop engine, the DataMPI
buffers and the checkpoint files all share one wire format, and lets raw
comparators operate on serialized bytes without deserializing.
"""

from __future__ import annotations

import struct

from repro.common.errors import SerializationError

_INT = struct.Struct(">i")
_LONG = struct.Struct(">q")
_FLOAT = struct.Struct(">f")
_DOUBLE = struct.Struct(">d")
_SHORT = struct.Struct(">h")


class DataOutput:
    """A growable big-endian binary output buffer."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def getbuffer(self) -> bytearray:
        """The internal buffer, borrowed — valid only until the next write.

        Lets callers append the accumulated bytes elsewhere (e.g. a record
        batch under construction) without the copy ``getvalue`` makes.
        """
        return self._buf

    def reset(self) -> None:
        self._buf.clear()

    # -- primitive writers -------------------------------------------------
    def write_bytes(self, data: bytes | bytearray | memoryview) -> None:
        self._buf += data

    def write_byte(self, v: int) -> None:
        self._buf.append(v & 0xFF)

    def write_boolean(self, v: bool) -> None:
        self._buf.append(1 if v else 0)

    def write_short(self, v: int) -> None:
        self._buf += _SHORT.pack(v)

    def write_int(self, v: int) -> None:
        self._buf += _INT.pack(v)

    def write_long(self, v: int) -> None:
        self._buf += _LONG.pack(v)

    def write_float(self, v: float) -> None:
        self._buf += _FLOAT.pack(v)

    def write_double(self, v: float) -> None:
        self._buf += _DOUBLE.pack(v)

    def write_vint(self, v: int) -> None:
        """Hadoop-style zig-zag-free variable-length integer.

        Small non-negative ints dominate shuffle metadata (lengths,
        partition ids); this encodes 0..127 in one byte like Hadoop's
        ``WritableUtils.writeVInt``.
        """
        write_vlong(self, v)

    def write_vlong(self, v: int) -> None:
        write_vlong(self, v)

    def write_utf(self, s: str) -> None:
        """Length-prefixed UTF-8 string (vint length + bytes)."""
        data = s.encode("utf-8")
        self.write_vint(len(data))
        self.write_bytes(data)


def write_vlong(out: DataOutput, value: int) -> None:
    """Encode a signed long using Hadoop's variable-length format.

    The format carries at most 64 bits; Python ints beyond that must use
    a different encoding (the Writable serializer's big-int tag), so out
    of range is an error here rather than silent corruption.
    """
    if not -(2**63) <= value < 2**63:
        raise SerializationError(f"vlong out of 64-bit range: {value}")
    if -112 <= value <= 127:
        out.write_byte(value)
        return
    length = -112
    if value < 0:
        value = ~value
        length = -120
    tmp = value
    while tmp != 0:
        tmp >>= 8
        length -= 1
    out.write_byte(length)
    n_bytes = -(length + 112) if length >= -120 else -(length + 120)
    for idx in range(n_bytes - 1, -1, -1):
        out.write_byte((value >> (8 * idx)) & 0xFF)


class DataInput:
    """A big-endian binary reader over a bytes-like object."""

    __slots__ = ("_view", "_pos")

    def __init__(self, data: bytes | bytearray | memoryview, pos: int = 0) -> None:
        self._view = memoryview(data)
        self._pos = pos

    @property
    def position(self) -> int:
        return self._pos

    def seek(self, pos: int) -> None:
        """Reposition within the underlying buffer (random access)."""
        if not 0 <= pos <= len(self._view):
            raise SerializationError(f"seek out of range: {pos}")
        self._pos = pos

    def remaining(self) -> int:
        return len(self._view) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._view)

    def _take(self, n: int) -> memoryview:
        if self._pos + n > len(self._view):
            raise SerializationError(
                f"stream underflow: need {n} bytes, have {self.remaining()}"
            )
        chunk = self._view[self._pos : self._pos + n]
        self._pos += n
        return chunk

    # -- primitive readers -------------------------------------------------
    def read_bytes(self, n: int) -> bytes:
        return bytes(self._take(n))

    def read_view(self, n: int) -> memoryview:
        """A zero-copy view of the next ``n`` bytes.

        The view aliases the underlying buffer; holders must not outlive
        it (record batches sliced out of a wire frame keep the frame's
        body alive through this view).
        """
        return self._take(n)

    def read_byte(self) -> int:
        return self._take(1)[0]

    def read_signed_byte(self) -> int:
        b = self._take(1)[0]
        return b - 256 if b > 127 else b

    def read_boolean(self) -> bool:
        return self._take(1)[0] != 0

    def read_short(self) -> int:
        return _SHORT.unpack(self._take(2))[0]

    def read_int(self) -> int:
        return _INT.unpack(self._take(4))[0]

    def read_long(self) -> int:
        return _LONG.unpack(self._take(8))[0]

    def read_float(self) -> float:
        return _FLOAT.unpack(self._take(4))[0]

    def read_double(self) -> float:
        return _DOUBLE.unpack(self._take(8))[0]

    def read_vint(self) -> int:
        return self.read_vlong()

    def read_vlong(self) -> int:
        first = self.read_signed_byte()
        if first >= -112:
            return first
        negative = first < -120
        n_bytes = -(first + 120) if negative else -(first + 112)
        value = 0
        for _ in range(n_bytes):
            value = (value << 8) | self.read_byte()
        return ~value if negative else value

    def read_utf(self) -> str:
        n = self.read_vint()
        return self.read_bytes(n).decode("utf-8")


class ChunkedDataInput(DataInput):
    """A :class:`DataInput` fed incrementally from an iterator of chunks.

    Lets readers (spill-file merges, checkpoint replays) stream a large
    serialized run without materializing the whole payload: the buffer
    holds only the unconsumed tail plus one chunk.  The chunk source is
    pulled lazily, so wrapping a file/decompressor generator costs nothing
    until bytes are actually needed.
    """

    __slots__ = ("_chunks", "_buf", "_exhausted")

    def __init__(self, chunks) -> None:
        self._chunks = iter(chunks)
        self._buf = bytearray()
        self._exhausted = False
        super().__init__(self._buf)

    def seek(self, pos: int) -> None:
        raise SerializationError("chunked streams are forward-only")

    def _take(self, n: int) -> memoryview:
        if self._pos + n > len(self._view):
            self._refill(n)
        return super()._take(n)

    def _refill(self, n: int) -> None:
        # the bytearray cannot be resized while the memoryview exports it
        self._view.release()
        del self._buf[: self._pos]
        self._pos = 0
        while len(self._buf) < n and not self._exhausted:
            chunk = next(self._chunks, None)
            if chunk is None:
                self._exhausted = True
            else:
                self._buf += chunk
        self._view = memoryview(self._buf)
