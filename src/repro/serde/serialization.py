"""Pluggable serializer framework.

§III-A: "the implementations can choose their preferred approaches to
handle serialization issues."  Two backends are provided:

* :class:`WritableSerializer` — Hadoop's Writable wire protocol plus
  native encodings for Python ``str``/``int``/``float``/``bytes``/``bool``
  and ``tuple``/``list`` of those, so the paper's Listing 1 (String keys)
  works without wrapping everything in Writables.
* :class:`PickleSerializer` — the "Java Serializable" analogue: anything
  picklable round-trips, at a higher per-record byte cost.
"""

from __future__ import annotations

import importlib
import pickle
from abc import ABC, abstractmethod
from typing import Any

from repro.common.errors import SerializationError
from repro.serde.io import DataInput, DataOutput
from repro.serde.writable import (
    BooleanWritable,
    BytesWritable,
    DoubleWritable,
    FloatWritable,
    IntWritable,
    LongWritable,
    NullWritable,
    Text,
    VIntWritable,
    Writable,
)

# Tags for the writable backend's self-describing encoding.  One tag byte
# per value keeps records compact while allowing heterogeneous streams.
_T_NONE = 0
_T_STR = 1
_T_INT = 2
_T_FLOAT = 3
_T_BYTES = 4
_T_BOOL = 5
_T_TUPLE = 6
_T_LIST = 7
_T_WRITABLE = 8
_T_PICKLE = 9
_T_BIGINT = 10  # Python ints beyond the 64-bit vlong range
_T_WRITABLE_NAMED = 11  # non-built-in writable: dotted class name + payload

_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1

#: fixed wire ids for the built-in writables.  The table (order included)
#: is part of the wire format: record batches are encoded on the sending
#: process and decoded on the receiving one, so ids must mean the same
#: class in every interpreter — never reorder, only append.
_BUILTIN_WRITABLES: tuple[type, ...] = (
    Text,
    IntWritable,
    VIntWritable,
    LongWritable,
    FloatWritable,
    DoubleWritable,
    BooleanWritable,
    BytesWritable,
    NullWritable,
)
_BUILTIN_WRITABLE_IDS = {cls: i for i, cls in enumerate(_BUILTIN_WRITABLES)}


class Serializer(ABC):
    """Encodes/decodes single values onto Data streams."""

    name: str = "abstract"

    @abstractmethod
    def serialize(self, value: Any, out: DataOutput) -> None:
        """Append ``value`` to ``out``."""

    @abstractmethod
    def deserialize(self, src: DataInput) -> Any:
        """Read one value from ``src``."""

    # -- convenience -------------------------------------------------------
    def dumps(self, value: Any) -> bytes:
        out = DataOutput()
        self.serialize(value, out)
        return out.getvalue()

    def loads(self, data: bytes) -> Any:
        return self.deserialize(DataInput(data))

    def serialize_kv(self, key: Any, value: Any, out: DataOutput) -> None:
        self.serialize(key, out)
        self.serialize(value, out)

    def deserialize_kv(self, src: DataInput) -> tuple[Any, Any]:
        return self.deserialize(src), self.deserialize(src)


class WritableSerializer(Serializer):
    """Self-describing Writable-protocol serializer."""

    name = "writable"

    def __init__(self) -> None:
        # decode-side cache of dotted name -> class for custom writables
        self._named_cache: dict[str, type] = {}

    def _resolve_writable(self, name: str) -> type:
        cls = self._named_cache.get(name)
        if cls is not None:
            return cls
        module_name, _, qualname = name.rpartition(".")
        try:
            obj: Any = importlib.import_module(module_name)
            for part in qualname.split("."):
                obj = getattr(obj, part)
        except Exception:
            raise SerializationError(
                f"cannot resolve writable class {name!r}; custom writables "
                "must be importable module-level classes"
            ) from None
        if not (isinstance(obj, type) and issubclass(obj, Writable)):
            raise SerializationError(f"{name!r} is not a Writable class")
        self._named_cache[name] = obj
        return obj

    def serialize(self, value: Any, out: DataOutput) -> None:
        if value is None:
            out.write_byte(_T_NONE)
        elif isinstance(value, bool):  # before int: bool is an int subtype
            out.write_byte(_T_BOOL)
            out.write_boolean(value)
        elif isinstance(value, str):
            out.write_byte(_T_STR)
            out.write_utf(value)
        elif isinstance(value, int):
            if _INT64_MIN <= value <= _INT64_MAX:
                out.write_byte(_T_INT)
                out.write_vlong(value)
            else:
                # arbitrary-precision escape: sign-magnitude byte string
                out.write_byte(_T_BIGINT)
                magnitude = abs(value)
                raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
                out.write_boolean(value < 0)
                out.write_vint(len(raw))
                out.write_bytes(raw)
        elif isinstance(value, float):
            out.write_byte(_T_FLOAT)
            out.write_double(value)
        elif isinstance(value, (bytes, bytearray)):
            out.write_byte(_T_BYTES)
            out.write_vint(len(value))
            out.write_bytes(value)
        elif isinstance(value, tuple):
            out.write_byte(_T_TUPLE)
            out.write_vint(len(value))
            for item in value:
                self.serialize(item, out)
        elif isinstance(value, list):
            out.write_byte(_T_LIST)
            out.write_vint(len(value))
            for item in value:
                self.serialize(item, out)
        elif isinstance(value, Writable):
            cls = type(value)
            builtin = _BUILTIN_WRITABLE_IDS.get(cls)
            if builtin is not None:
                out.write_byte(_T_WRITABLE)
                out.write_vint(builtin)
            else:
                out.write_byte(_T_WRITABLE_NAMED)
                out.write_utf(f"{cls.__module__}.{cls.__qualname__}")
            value.write(out)
        else:
            # escape hatch mirroring Hadoop's JavaSerialization fallback
            out.write_byte(_T_PICKLE)
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            out.write_vint(len(blob))
            out.write_bytes(blob)

    def deserialize(self, src: DataInput) -> Any:
        tag = src.read_byte()
        if tag == _T_NONE:
            return None
        if tag == _T_BOOL:
            return src.read_boolean()
        if tag == _T_STR:
            return src.read_utf()
        if tag == _T_INT:
            return src.read_vlong()
        if tag == _T_FLOAT:
            return src.read_double()
        if tag == _T_BYTES:
            return src.read_bytes(src.read_vint())
        if tag == _T_TUPLE:
            n = src.read_vint()
            return tuple(self.deserialize(src) for _ in range(n))
        if tag == _T_LIST:
            n = src.read_vint()
            return [self.deserialize(src) for _ in range(n)]
        if tag == _T_WRITABLE:
            cls_id = src.read_vint()
            try:
                cls = _BUILTIN_WRITABLES[cls_id]
            except IndexError:
                raise SerializationError(
                    f"unknown writable class id {cls_id}"
                ) from None
            return cls.read(src)
        if tag == _T_WRITABLE_NAMED:
            return self._resolve_writable(src.read_utf()).read(src)
        if tag == _T_PICKLE:
            blob = src.read_bytes(src.read_vint())
            return pickle.loads(blob)
        if tag == _T_BIGINT:
            negative = src.read_boolean()
            raw = src.read_bytes(src.read_vint())
            magnitude = int.from_bytes(raw, "big")
            return -magnitude if negative else magnitude
        raise SerializationError(f"corrupt stream: unknown tag {tag}")


class PickleSerializer(Serializer):
    """Pickle everything — the Java ``Serializable`` analogue."""

    name = "pickle"

    def serialize(self, value: Any, out: DataOutput) -> None:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        out.write_vint(len(blob))
        out.write_bytes(blob)

    def deserialize(self, src: DataInput) -> Any:
        n = src.read_vint()
        return pickle.loads(src.read_bytes(n))


_BACKENDS = {
    "writable": WritableSerializer,
    "pickle": PickleSerializer,
    # the paper calls the JDK mechanism "Java (Serializable)"; pickle plays
    # that role here
    "java": PickleSerializer,
}


def get_serializer(name: str = "writable") -> Serializer:
    """Instantiate a serializer backend by name."""
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise SerializationError(
            f"unknown serializer {name!r}; expected one of {sorted(_BACKENDS)}"
        ) from None
