"""Key comparators.

``MPI_D_COMPARE`` (Table II) lets applications "tell the library how to
compare the keys" when a mode requires sorted key-value pairs.  This module
provides the default comparator (natural ordering with a stable cross-type
fallback), a raw lexicographic byte comparator (TeraSort's ordering), and
adapters turning a 3-way compare function into a ``key=`` sort object.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

Compare = Callable[[Any, Any], int]


def default_compare(k1: Any, k2: Any) -> int:
    """Natural ordering; falls back to type-name ordering across types.

    A total order over heterogeneous keys keeps the merge phase robust even
    for user jobs that mix key types (Hadoop would throw; we sort
    deterministically instead, grouping each type together).
    """
    try:
        if k1 < k2:
            return -1
        if k2 < k1:
            return 1
        return 0
    except TypeError:
        t1, t2 = type(k1).__name__, type(k2).__name__
        if t1 != t2:
            return -1 if t1 < t2 else 1
        r1, r2 = repr(k1), repr(k2)
        return -1 if r1 < r2 else (1 if r2 < r1 else 0)


def bytes_compare(k1: bytes, k2: bytes) -> int:
    """Unsigned lexicographic comparison of raw keys (TeraSort order)."""
    if k1 < k2:
        return -1
    if k1 > k2:
        return 1
    return 0


def reverse(cmp: Compare) -> Compare:
    """Descending version of ``cmp`` (used by Top-K style workloads)."""

    def reversed_cmp(k1: Any, k2: Any) -> int:
        return cmp(k2, k1)

    return reversed_cmp


def sort_key(cmp: Compare) -> Callable[[Any], Any]:
    """Adapt a 3-way comparator into a ``key=`` object for ``sorted``."""
    return functools.cmp_to_key(cmp)


class ComparableKey:
    """Wrap a key with a comparator so heapq/merge can order it.

    The k-way merge in the sorter pushes these onto a heap; only the
    comparator decides ordering, never the payload value.
    """

    __slots__ = ("key", "cmp")

    def __init__(self, key: Any, cmp: Compare) -> None:
        self.key = key
        self.cmp = cmp

    def __lt__(self, other: "ComparableKey") -> bool:
        return self.cmp(self.key, other.key) < 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComparableKey):
            return NotImplemented
        return self.cmp(self.key, other.key) == 0

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"ComparableKey({self.key!r})"
