"""Length-prefixed key/value record batches — serialize once, ship bytes.

A :class:`RecordBatch` is one contiguous byte block holding ``count``
records, each framed as::

    vint(klen) key-bytes vint(vlen) value-bytes

With ``raw=False`` the key/value bytes are :class:`Serializer` encodings
(self-describing Writable tags), so a batch can carry any shuffleable
object; the length prefixes let byte-level consumers (merges, spills,
the wire codec) slice and copy records without decoding them.  With
``raw=True`` the key/value bytes are the application's own raw bytes
(TeraSort records): no serializer framing at all, so key slices compare
exactly like the decoded keys under ``bytes_compare`` and a merged batch
can be consumed without materializing a single Python object.

The sender-side buffer seals emitted pairs into a batch exactly once
(:class:`BatchBuilder`); from then on the batch travels as an opaque
buffer through coalescing, transports, spill files and merges — zero
re-encode, zero per-record pickle on any hop.  Receivers decode lazily
at the user-function boundary via :meth:`RecordBatch.iter_pairs`.
"""

from __future__ import annotations

import operator
from typing import Any, Iterable, Iterator

from repro.common.errors import SerializationError
from repro.serde.comparators import (
    Compare,
    bytes_compare,
    default_compare,
    sort_key,
)
from repro.serde.io import DataInput, DataOutput, write_vlong
from repro.serde.serialization import Serializer

KV = tuple[Any, Any]

_key_of = operator.itemgetter(0)


def _read_vint(buf, pos: int) -> tuple[int, int]:
    """Inline Hadoop-vint decode: ``(value, next_pos)``.

    Lengths up to 127 — the overwhelmingly common case for record field
    sizes — are a single unsigned byte, decoded without any method-call
    chain; longer fields fall through to the multi-byte format.
    """
    first = buf[pos]
    pos += 1
    if first <= 127:
        return first, pos
    first -= 256  # signed interpretation of the marker byte
    if first >= -112:
        return first, pos
    negative = first < -120
    n_bytes = -(first + 120) if negative else -(first + 112)
    value = 0
    for _ in range(n_bytes):
        value = (value << 8) | buf[pos]
        pos += 1
    return (~value if negative else value), pos


def _append_vint(buf: bytearray, value: int) -> None:
    """Append a vint; single byte for 0..127 (the hot case)."""
    if 0 <= value <= 127:
        buf.append(value)
        return
    out = DataOutput()
    write_vlong(out, value)
    buf += out.getbuffer()


class RecordBatch:
    """An immutable, contiguous block of length-prefixed records.

    ``data`` may be ``bytes`` or a ``memoryview`` slicing a larger buffer
    (a wire frame body, a spill mmap); iteration never copies more than
    the records actually materialized.
    """

    __slots__ = ("data", "count", "raw")

    def __init__(
        self, data: bytes | memoryview, count: int, raw: bool = False
    ) -> None:
        self.data = data
        self.count = count
        self.raw = raw

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"RecordBatch(count={self.count}, nbytes={len(self.data)}, "
            f"raw={self.raw})"
        )

    def serialized_size(self) -> int:
        return len(self.data)

    def __reduce__(self):
        # pickled only off the hot path (e.g. a fault-injection rule that
        # materializes payloads); the wire codec ships batches unpickled
        return (RecordBatch, (bytes(self.data), self.count, self.raw))

    # -- iteration --------------------------------------------------------
    def iter_views(self) -> Iterator[tuple[memoryview, memoryview]]:
        """(key_view, value_view) per record — zero decode, zero copy.

        Only meaningful for ``raw`` batches, where the field bytes *are*
        the application data; for serialized batches the views carry the
        serializer framing.
        """
        view = memoryview(self.data)
        pos = 0
        read = _read_vint
        for _ in range(self.count):
            n, pos = read(view, pos)
            key = view[pos : pos + n]
            pos += n
            n, pos = read(view, pos)
            value = view[pos : pos + n]
            pos += n
            yield key, value

    def iter_records(self) -> Iterator[memoryview]:
        """Whole-record views (length prefixes included): the unit a merge
        copies into its output batch without decoding."""
        view = memoryview(self.data)
        pos = 0
        read = _read_vint
        for _ in range(self.count):
            start = pos
            n, pos = read(view, pos)
            pos += n
            n, pos = read(view, pos)
            pos += n
            yield view[start:pos]

    def iter_pairs(self, serializer: Serializer) -> Iterator[KV]:
        """Decode records into (key, value) objects — the user-function
        boundary.  Raw batches yield ``bytes`` keys and values."""
        if self.raw:
            buf = self.data if isinstance(self.data, bytes) else bytes(self.data)
            pos = 0
            read = _read_vint
            for _ in range(self.count):
                n, pos = read(buf, pos)
                key = buf[pos : pos + n]
                pos += n
                n, pos = read(buf, pos)
                value = buf[pos : pos + n]
                pos += n
                yield key, value
            return
        src = DataInput(self.data)
        deserialize = serializer.deserialize
        read_vint = src.read_vint
        for _ in range(self.count):
            read_vint()
            key = deserialize(src)
            read_vint()
            value = deserialize(src)
            yield key, value

    def iter_keyed(self, serializer: Serializer) -> Iterator[tuple[Any, memoryview]]:
        """(decoded_key, whole_record_view) pairs: merges order on the key
        while the value bytes stay opaque."""
        view = memoryview(self.data)
        pos = 0
        read = _read_vint
        if self.raw:
            for _ in range(self.count):
                start = pos
                n, pos = read(view, pos)
                key = bytes(view[pos : pos + n])
                pos += n
                n, pos = read(view, pos)
                pos += n
                yield key, view[start:pos]
            return
        src = DataInput(view)
        deserialize = serializer.deserialize
        for _ in range(self.count):
            start = pos
            n, pos = read(view, pos)
            src.seek(pos)
            key = deserialize(src)
            pos += n
            n, pos = read(view, pos)
            pos += n
            yield key, view[start:pos]


class BatchBuilder:
    """Accumulates records into the batch wire layout.

    One builder per seal: the sender-side buffer serializes each pair
    exactly once here; every later hop copies or slices the sealed bytes.
    """

    __slots__ = ("_serializer", "_raw", "_buf", "_scratch", "count")

    def __init__(
        self, serializer: Serializer | None = None, raw: bool = False
    ) -> None:
        if serializer is None and not raw:
            raise SerializationError(
                "BatchBuilder needs a serializer unless building raw batches"
            )
        self._serializer = serializer
        self._raw = raw
        self._buf = bytearray()
        self._scratch = DataOutput()
        self.count = 0

    @property
    def nbytes(self) -> int:
        return len(self._buf)

    def add(self, key: Any, value: Any) -> None:
        """Serialize one pair into the batch (raw mode: frame its bytes)."""
        if self._raw:
            self.add_raw(key, value)
            return
        buf = self._buf
        scratch = self._scratch
        serialize = self._serializer.serialize
        scratch.reset()
        serialize(key, scratch)
        _append_vint(buf, len(scratch))
        buf += scratch.getbuffer()
        scratch.reset()
        serialize(value, scratch)
        _append_vint(buf, len(scratch))
        buf += scratch.getbuffer()
        self.count += 1

    def add_raw(self, key, value) -> None:
        """Frame raw ``bytes``-like key/value without serializer framing."""
        buf = self._buf
        try:
            n = len(key)
            if n <= 127:
                buf.append(n)
            else:
                _append_vint(buf, n)
            buf += key
            n = len(value)
            if n <= 127:
                buf.append(n)
            else:
                _append_vint(buf, n)
            buf += value
        except TypeError:
            raise SerializationError(
                "raw record batches require bytes-like keys and values; got "
                f"({type(key).__name__}, {type(value).__name__})"
            ) from None
        self.count += 1

    def add_record(self, record: bytes | memoryview) -> None:
        """Append one already-framed record verbatim (merge output path)."""
        self._buf += record
        self.count += 1

    def seal(self) -> RecordBatch:
        """Freeze the accumulated records; the builder resets for reuse."""
        batch = RecordBatch(bytes(self._buf), self.count, self._raw)
        self._buf = bytearray()
        self.count = 0
        return batch


def batch_from_pairs(
    pairs: Iterable[KV], serializer: Serializer | None, raw: bool = False
) -> RecordBatch:
    """Seal an iterable of pairs into one batch (serialize-once point)."""
    builder = BatchBuilder(serializer, raw=raw)
    add = builder.add_raw if raw else builder.add
    for key, value in pairs:
        add(key, value)
    return builder.seal()


def concat_batches(batches: list[RecordBatch]) -> RecordBatch:
    """Byte-concatenate batches (unsorted stores): no per-record work."""
    if not batches:
        return RecordBatch(b"", 0)
    if len(batches) == 1:
        return batches[0]
    data = bytearray()
    count = 0
    raw = batches[0].raw
    for batch in batches:
        if batch.raw is not raw:
            raise SerializationError("cannot concatenate raw and serialized batches")
        data += batch.data
        count += batch.count
    return RecordBatch(bytes(data), count, raw)


def sort_batch(
    batch: RecordBatch, cmp: Compare | None, serializer: Serializer
) -> RecordBatch:
    """Key-sort a batch by permuting record slices (stable; values opaque)."""
    keyed = list(batch.iter_keyed(serializer))
    done = False
    if cmp is None or cmp is default_compare or cmp is bytes_compare:
        # both comparators order exactly like native ``<`` on conforming keys
        try:
            keyed.sort(key=_key_of)
            done = True
        except TypeError:
            pass  # heterogeneous keys: total-order path below
    if not done:
        key_fn = sort_key(cmp or default_compare)
        keyed.sort(key=lambda kr: key_fn(kr[0]))
    builder = BatchBuilder(serializer, raw=batch.raw)
    for _key, record in keyed:
        builder.add_record(record)
    return builder.seal()
