"""Serialization substrate.

DataMPI's Java binding supports "the serialization mechanisms of both Java
(Serializable and primitives) and Hadoop (Writable)" (paper §III-B).  This
package provides the Python equivalents: a Writable-style binary protocol
(:mod:`repro.serde.writable`), a pickle backend, raw-byte comparators, and
a registry resolving ``KEY_CLASS``/``VALUE_CLASS`` configuration strings to
types.
"""

from repro.serde.batch import (
    BatchBuilder,
    RecordBatch,
    batch_from_pairs,
    concat_batches,
    sort_batch,
)
from repro.serde.io import DataInput, DataOutput
from repro.serde.registry import resolve_type, type_name
from repro.serde.serialization import (
    PickleSerializer,
    Serializer,
    WritableSerializer,
    get_serializer,
)
from repro.serde.writable import (
    BooleanWritable,
    BytesWritable,
    DoubleWritable,
    FloatWritable,
    IntWritable,
    LongWritable,
    NullWritable,
    Text,
    VIntWritable,
    Writable,
)

__all__ = [
    "BatchBuilder",
    "RecordBatch",
    "batch_from_pairs",
    "concat_batches",
    "sort_batch",
    "DataInput",
    "DataOutput",
    "Writable",
    "Text",
    "IntWritable",
    "LongWritable",
    "VIntWritable",
    "FloatWritable",
    "DoubleWritable",
    "BooleanWritable",
    "BytesWritable",
    "NullWritable",
    "Serializer",
    "WritableSerializer",
    "PickleSerializer",
    "get_serializer",
    "resolve_type",
    "type_name",
]
