"""Type registry resolving ``KEY_CLASS``/``VALUE_CLASS`` strings to types.

The paper's Listing 1 configures ``conf.put(KEY_CLASS,
java.lang.String.class.getName())``; this module is the Python analogue.
Both fully-qualified Java-ish names (for fidelity with the paper's example
code) and short Python names are accepted, and user classes may register
themselves.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import ConfigurationError
from repro.serde import writable as w

_REGISTRY: dict[str, type] = {}
_REVERSE: dict[type, str] = {}


def register_type(name: str, cls: type, *aliases: str) -> None:
    """Register ``cls`` under ``name`` (and optional aliases)."""
    for key in (name, *aliases):
        _REGISTRY[key] = cls
    _REVERSE.setdefault(cls, name)


def resolve_type(spec: str | type | None) -> type | None:
    """Resolve a configuration value into a concrete Python type.

    Accepts ``None`` (pass-through), an actual type, or a registered name.
    """
    if spec is None or isinstance(spec, type):
        return spec
    try:
        return _REGISTRY[spec]
    except KeyError:
        raise ConfigurationError(f"unknown key/value class: {spec!r}") from None


def type_name(cls: type) -> str:
    """Canonical registered name for a type (for round-tripping configs)."""
    try:
        return _REVERSE[cls]
    except KeyError:
        return f"{cls.__module__}.{cls.__qualname__}"


def coerce(value: Any, cls: type | None) -> Any:
    """Coerce a raw Python value into ``cls`` if it is not already one."""
    if cls is None or isinstance(value, cls):
        return value
    return cls(value)


# -- built-in registrations ------------------------------------------------
register_type("java.lang.String", str, "str", "string", "Text.raw")
register_type("java.lang.Integer", int, "int", "integer")
register_type("java.lang.Long", int, "long")
register_type("java.lang.Double", float, "float", "double")
register_type("java.lang.Boolean", bool, "bool", "boolean")
register_type("bytes", bytes, "byte[]")

register_type("org.apache.hadoop.io.Text", w.Text, "Text")
register_type("org.apache.hadoop.io.IntWritable", w.IntWritable, "IntWritable")
register_type("org.apache.hadoop.io.VIntWritable", w.VIntWritable, "VIntWritable")
register_type("org.apache.hadoop.io.LongWritable", w.LongWritable, "LongWritable")
register_type("org.apache.hadoop.io.FloatWritable", w.FloatWritable, "FloatWritable")
register_type(
    "org.apache.hadoop.io.DoubleWritable", w.DoubleWritable, "DoubleWritable"
)
register_type(
    "org.apache.hadoop.io.BooleanWritable", w.BooleanWritable, "BooleanWritable"
)
register_type("org.apache.hadoop.io.BytesWritable", w.BytesWritable, "BytesWritable")
register_type("org.apache.hadoop.io.NullWritable", w.NullWritable, "NullWritable")
