"""The ``mpidrun`` command-line launcher (paper §IV-B).

The paper launches DataMPI applications as::

    $ mpidrun -f hostfile -O n -A m -M mode -jar jarname classname params

This module provides that interface as a console script (and
``python -m repro.cli``): the ``-jar``/classname pair selects one of the
bundled demo applications, which run over synthetic inputs so the
command works out of the box::

    $ mpidrun -O 4 -A 2 -M common -jar demos.jar Sort 200
    $ mpidrun -O 4 -A 2 -M mapreduce -jar demos.jar WordCount 300
    $ mpidrun -O 2 -A 3 -M streaming -jar demos.jar TopK 2000 5

Observability and backend flags ride along on any launch:

    $ mpidrun --trace=/tmp/wc.jsonl -O 4 -A 2 -M mapreduce \\
          -jar demos.jar WordCount 300
    $ mpidrun --metrics-json=/tmp/wc-metrics.json ...
    $ mpidrun --launcher=processes -O 4 -A 2 -M mapreduce \\
          -jar demos.jar WordCount 300

``--launcher`` selects the rank backend (``threads`` or ``processes``,
see ``mpi.d.launcher``); the demos publish their results through
:class:`~repro.core.FileSink`, so both backends print identical output.

and ``trace`` inspects a recorded journal (also exposed as the ``repro``
console script, so ``repro trace <journal>`` works)::

    $ mpidrun trace /tmp/wc.jsonl --top 5
    $ mpidrun trace /tmp/wc.jsonl --out trace.json   # chrome://tracing

``--telemetry`` turns on the live telemetry plane: every rank ships
periodic metric snapshots to a driver-side hub exposed over RPC, and
``top`` polls it into a live per-rank table (or Prometheus text)::

    $ mpidrun --telemetry=/tmp/wc.endpoint --launcher=processes \\
          -O 4 -A 2 -M mapreduce -jar demos.jar WordCount 300 &
    $ mpidrun top /tmp/wc.endpoint            # live per-rank table
    $ mpidrun top /tmp/wc.endpoint --prom     # Prometheus exposition

``--profile[=HZ]`` turns on the per-rank sampling profiler (collapsed
stacks folded into the trace journal; inspect with ``flame``), and
``--doctor[=PATH]`` runs the driver-side diagnosis engine that watches
for stragglers and stalls and writes a ranked ``doctor.json``::

    $ mpidrun --trace=/tmp/wc.jsonl --profile=50 --doctor=/tmp/wc.doctor.json \\
          -O 4 -A 2 -M mapreduce -jar demos.jar WordCount 300
    $ mpidrun flame /tmp/wc.jsonl --out wc.collapsed --speedscope wc.speedscope.json
    $ mpidrun doctor /tmp/wc.doctor.json      # ranked findings + captures
    $ mpidrun doctor /tmp/wc.endpoint --capture   # live, with a stack capture
"""

from __future__ import annotations

import json
import sys
from typing import Any, Callable

from repro.common.errors import DataMPIError
from repro.core import DataMPIJob, FileSink, mpidrun
from repro.core.constants import MPI_D_Constants as K
from repro.core.metrics import JobResult
from repro.core.mpidrun import parse_mpidrun_command


def _run_sort(options: dict, params: list[str]) -> JobResult:
    n = int(params[0]) if params else 200
    sink = FileSink.temporary("sort")

    def o_fn(ctx):
        for i in range(ctx.rank, n, ctx.o_size):
            ctx.send(f"key-{i:06d}", "")

    def a_fn(ctx):
        got = [k for k, _ in ctx.recv_iter()]
        sink(ctx.rank, ctx.rank, got)

    try:
        result = _launch(options, o_fn, a_fn)
        outputs = sink.merged()
    finally:
        sink.cleanup()
    total = sum(len(v) for v in outputs.values())
    print(f"sorted {total} keys across {len(outputs)} partitions")
    for rank in sorted(outputs):
        keys = outputs[rank]
        head = keys[0] if keys else "-"
        tail = keys[-1] if keys else "-"
        print(f"  partition {rank}: {len(keys)} keys [{head} .. {tail}]")
    return result


def _run_wordcount(options: dict, params: list[str]) -> JobResult:
    from repro.workloads.wordcount import generate_text, wordcount_reference

    n_lines = int(params[0]) if params else 200
    lines = generate_text(n_lines)
    sink = FileSink.temporary("wordcount")

    def o_fn(ctx):
        for i in range(ctx.rank, len(lines), ctx.o_size):
            for word in lines[i].split():
                ctx.send(word, 1)

    def a_fn(ctx):
        from repro.core.sorter import group_by_key

        for word, ones in group_by_key(ctx.recv_iter()):
            sink(ctx.rank, word, sum(ones))

    try:
        result = _launch(options, o_fn, a_fn)
        counts = sink.merged()
    finally:
        sink.cleanup()
    assert counts == wordcount_reference(lines)
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print(f"counted {sum(counts.values())} words, {len(counts)} distinct")
    for word, count in top:
        print(f"  {word}: {count}")
    return result


def _run_topk(options: dict, params: list[str]) -> JobResult:
    from repro.workloads.topk import generate_stream, merge_topk, topk_reference
    import heapq

    n_events = int(params[0]) if params else 2000
    k = int(params[1]) if len(params) > 1 else 5
    words = generate_stream(n_events)
    sink = FileSink.temporary("topk")

    def o_fn(ctx):
        for i in range(ctx.rank, len(words), ctx.o_size):
            ctx.send(words[i], 1)

    def a_fn(ctx):
        local: dict[str, int] = {}
        for word, _ in ctx.recv_iter():
            local[word] = local.get(word, 0) + 1
        top = heapq.nsmallest(k, local.items(), key=lambda kv: (-kv[1], kv[0]))
        sink(ctx.rank, ctx.rank, top)

    try:
        result = _launch(options, o_fn, a_fn)
        partials = [pair for top in sink.merged().values() for pair in top]
    finally:
        sink.cleanup()
    top = merge_topk(partials, k)
    assert top == topk_reference(words, k)
    print(f"top-{k} of {n_events} streamed events:")
    for word, count in top:
        print(f"  {word}: {count}")
    return result


def _launch(options: dict, o_fn: Callable, a_fn: Callable) -> JobResult:
    job = DataMPIJob(
        name=options["classname"] or "job",
        o_fn=o_fn,
        a_fn=a_fn,
        o_tasks=options["o_tasks"],
        a_tasks=options["a_tasks"],
        mode=options["mode"],
        conf=options.get("conf") or None,
    )
    result = mpidrun(job, raise_on_error=True)
    return result


#: classname -> runner; names mirror the paper's benchmark programs
APPLICATIONS: dict[str, Callable[[dict, list[str]], JobResult]] = {
    "Sort": _run_sort,
    "WordCount": _run_wordcount,
    "TopK": _run_topk,
}


def _check_launcher(backend: str) -> str:
    """Fail fast on a bad ``--launcher`` value, before the job launches."""
    from repro.common.errors import MPIError
    from repro.mpi.runtime import create_runtime

    try:
        create_runtime(backend)
    except MPIError as exc:
        raise DataMPIError(str(exc)) from None
    return backend


def _extract_obs_flags(argv: list[str]) -> tuple[list[str], dict, str | None]:
    """Strip ``--trace[=PATH]`` / ``--metrics-json[=PATH]`` /
    ``--launcher=BACKEND`` / ``--telemetry[=ENDPOINT_FILE]`` /
    ``--profile[=HZ]`` / ``--doctor[=PATH]`` from ``argv``.

    Returns (remaining argv, conf overrides for the launch, metrics-json
    output path or None).  The flags live outside the paper's mpidrun
    grammar, so they are peeled off before :func:`parse_mpidrun_command`.
    """
    rest: list[str] = []
    conf: dict = {}
    metrics_json: str | None = None
    i = 0
    while i < len(argv):
        tok = argv[i]
        if tok == "--launcher":
            if i + 1 >= len(argv):
                raise DataMPIError("--launcher requires a backend name")
            conf[K.LAUNCHER] = _check_launcher(argv[i + 1])
            i += 1
        elif tok.startswith("--launcher="):
            conf[K.LAUNCHER] = _check_launcher(tok.split("=", 1)[1])
        elif tok == "--telemetry":
            conf[K.TELEMETRY_ENABLED] = True
        elif tok.startswith("--telemetry="):
            conf[K.TELEMETRY_ENABLED] = True
            conf[K.TELEMETRY_ENDPOINT_FILE] = tok.split("=", 1)[1]
        elif tok == "--trace":
            conf[K.TRACE_ENABLED] = True
        elif tok.startswith("--trace="):
            conf[K.TRACE_ENABLED] = True
            conf[K.TRACE_PATH] = tok.split("=", 1)[1]
        elif tok == "--profile":
            conf[K.PROFILE_ENABLED] = True
        elif tok.startswith("--profile="):
            conf[K.PROFILE_ENABLED] = True
            try:
                conf[K.PROFILE_HZ] = float(tok.split("=", 1)[1])
            except ValueError:
                raise DataMPIError(
                    f"--profile wants a sampling rate in Hz, got {tok!r}"
                ) from None
        elif tok == "--doctor":
            conf[K.DOCTOR_ENABLED] = True
        elif tok.startswith("--doctor="):
            conf[K.DOCTOR_ENABLED] = True
            conf[K.DOCTOR_PATH] = tok.split("=", 1)[1]
        elif tok == "--metrics-json":
            if i + 1 >= len(argv):
                raise DataMPIError("--metrics-json requires a path")
            metrics_json = argv[i + 1]
            i += 1
        elif tok.startswith("--metrics-json="):
            metrics_json = tok.split("=", 1)[1]
        else:
            rest.append(tok)
        i += 1
    return rest, conf, metrics_json


def _write_metrics_json(result: JobResult, path: str) -> None:
    payload = {
        "name": result.name,
        "success": result.success,
        "restarts": result.restarts,
        "trace_path": result.trace_path,
        **result.metrics.as_dict(),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, default=repr)
    print(f"metrics written to {path}")


def trace_main(argv: list[str]) -> int:
    """``repro trace <journal>`` — inspect a flight-recorder journal."""
    import argparse

    from repro.obs.inspect import format_report, summarize_journal
    from repro.obs.journal import export_chrome, read_journal

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Inspect a flight-recorder journal (phase times, "
        "slowest tasks, failure timeline).",
    )
    parser.add_argument("journal", help="path to a *.trace.jsonl journal")
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="slowest task attempts to list (default 10)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="also export a Chrome/Perfetto trace.json to PATH",
    )
    parser.add_argument(
        "--check-coverage", type=float, default=None, metavar="PCT",
        help="exit non-zero when phase coverage of worker wall time is "
        "below PCT (e.g. 95)",
    )
    args = parser.parse_args(argv)
    try:
        journal = read_journal(args.journal)
    except OSError as exc:
        print(f"repro trace: cannot read {args.journal}: {exc}", file=sys.stderr)
        return 2
    if not journal.events and not journal.summary:
        print(f"repro trace: {args.journal} holds no journal records",
              file=sys.stderr)
        return 2
    summary = summarize_journal(journal, n_tasks=args.top)
    if args.json:
        print(json.dumps(summary, indent=2, default=repr))
    else:
        print(format_report(summary))
    if args.out:
        export_chrome(journal, args.out)
        print(f"chrome trace exported to {args.out}")
    if args.check_coverage is not None:
        pct = summary["coverage"] * 100.0
        if pct < args.check_coverage:
            print(
                f"repro trace: coverage {pct:.1f}% below the "
                f"{args.check_coverage:.1f}% bar",
                file=sys.stderr,
            )
            return 1
        print(f"coverage check passed: {pct:.1f}% >= {args.check_coverage:.1f}%")
    return 0


def _resolve_telemetry_endpoint(spec: str) -> Any:
    """Turn a ``repro top`` endpoint argument into an RPC address.

    Accepts the endpoint file ``--telemetry=FILE`` writes (JSON with an
    ``address`` key), a raw ``host:port`` pair, or an AF_UNIX socket
    path.
    """
    import os

    if os.path.isfile(spec):
        with open(spec, encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except ValueError as exc:
                raise DataMPIError(f"{spec} is not an endpoint file: {exc}")
        address = doc.get("address") if isinstance(doc, dict) else None
        if address is None:
            raise DataMPIError(f"{spec} has no 'address' key")
        if isinstance(address, list):
            return (address[0], int(address[1]))
        return address
    if ":" in spec and not spec.startswith("/"):
        host, _, port = spec.rpartition(":")
        try:
            return (host, int(port))
        except ValueError:
            raise DataMPIError(f"bad host:port endpoint {spec!r}") from None
    # the remaining shape is a filesystem path: either the endpoint file
    # a running job maintains or an AF_UNIX socket.  A path that does not
    # exist can never connect — fail with a message that says so instead
    # of a confusing connect error.
    if not os.path.exists(spec):
        raise DataMPIError(
            f"no such endpoint file or socket: {spec} "
            "(is the job still running with --telemetry?)"
        )
    return spec


def _format_top_table(rows: list[dict], rollups: dict) -> str:
    """Render one refresh of the ``repro top`` per-rank table."""
    lines: list[str] = []
    lines.append(
        f"ranks {rollups.get('ranks_reporting', 0)}"
        f"/{rollups.get('ranks_expected', 0) or '?'} reporting  "
        f"done={rollups.get('ranks_done', 0)}  "
        f"snapshots={rollups.get('snapshots_ingested', 0)}  "
        f"straggler={rollups.get('straggler_score', 0.0):.2f}  "
        f"skew={rollups.get('shuffle_skew', 0.0):.2f}"
    )
    recovery = rollups.get("recovery") or {}
    if any(recovery.values()):
        lines.append(
            "recovery: " + "  ".join(
                f"{k}={v}" for k, v in sorted(recovery.items()) if v
            )
        )
    header = (
        f"{'rank':>4} {'ep':>2} {'st':>7} {'wall':>8} {'cpu':>7} "
        f"{'rss_mb':>7} {'sent_mb':>8} {'recv':>8} {'pend':>5} "
        f"{'o/a':>7} {'age':>5}"
    )
    lines.append(header)
    for row in sorted(rows, key=lambda r: r.get("rank", -1)):
        tasks = row.get("tasks") or {}
        lines.append(
            f"{row.get('rank', -1):>4} {row.get('epoch', 0):>2} "
            f"{row.get('status', '?'):>7} "
            f"{row.get('wall_s', 0.0):>7.2f}s {row.get('cpu_s', 0.0):>6.2f}s "
            f"{row.get('rss_mb', 0.0):>7.1f} "
            f"{row.get('bytes_sent', 0) / 1e6:>8.2f} "
            f"{row.get('records_received', 0):>8} "
            f"{row.get('pending', 0):>5} "
            f"{tasks.get('o', 0):>3}/{tasks.get('a', 0):<3} "
            f"{row.get('age_s', 0.0):>4.1f}s"
        )
    return "\n".join(lines)


def top_main(argv: list[str]) -> int:
    """``repro top <endpoint>`` — poll a job's live telemetry plane."""
    import argparse
    import time

    from repro.common.errors import RPCError
    from repro.rpc import SocketRpcClient

    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live per-rank table for a running job launched with "
        "--telemetry (polls the driver's telemetry RPC endpoint).",
    )
    parser.add_argument(
        "endpoint",
        help="endpoint file written by --telemetry=FILE, host:port, or "
        "an AF_UNIX socket path",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="seconds between refreshes (default 1.0)",
    )
    parser.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N refreshes (default: until interrupted or the "
        "job's endpoint goes away)",
    )
    parser.add_argument(
        "--once", action="store_true", help="single refresh (same as "
        "--iterations=1)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit per-rank rows and rollups as JSON instead of a table",
    )
    parser.add_argument(
        "--prom", action="store_true",
        help="emit the Prometheus text exposition instead of a table",
    )
    args = parser.parse_args(argv)
    iterations = 1 if args.once else args.iterations
    try:
        address = _resolve_telemetry_endpoint(args.endpoint)
    except DataMPIError as exc:
        print(f"repro top: {exc}", file=sys.stderr)
        return 2
    try:
        client = SocketRpcClient(address, timeout=10.0)
    except OSError as exc:
        print(f"repro top: cannot connect to {address!r}: {exc}",
              file=sys.stderr)
        return 2
    count = 0
    try:
        while True:
            try:
                if args.prom:
                    print(client.call("telemetry_scrape"), end="")
                else:
                    rows = client.call("telemetry_ranks")
                    rollups = client.call("telemetry_rollups")
                    if args.json:
                        print(json.dumps(
                            {"ranks": rows, "rollups": rollups}, default=repr
                        ))
                    else:
                        print(_format_top_table(rows, rollups))
            except (OSError, RPCError) as exc:
                print(f"repro top: endpoint gone ({exc})", file=sys.stderr)
                return 0 if count else 2
            count += 1
            if iterations and count >= iterations:
                return 0
            time.sleep(args.interval)
            if not (args.json or args.prom):
                print()
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def flame_main(argv: list[str]) -> int:
    """``repro flame <journal>`` — flamegraph data from recorded profiles."""
    import argparse

    from repro.obs import profiler as profiler_mod
    from repro.obs.journal import read_journal

    parser = argparse.ArgumentParser(
        prog="repro flame",
        description="Summarize and export the sampling-profiler data a "
        "--trace --profile run folded into its journal (collapsed-stack "
        "text for flamegraph.pl / inferno, speedscope JSON for "
        "https://speedscope.app).",
    )
    parser.add_argument("journal", help="path to a *.trace.jsonl journal")
    parser.add_argument(
        "--rank", type=int, default=None, metavar="R",
        help="only this rank's profile",
    )
    parser.add_argument(
        "--phase", metavar="NAME",
        help="only samples from this phase bucket (e.g. merge, communicate)",
    )
    parser.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="hottest stacks to list per rank (default 5)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="write collapsed-stack lines ('stack count') to PATH",
    )
    parser.add_argument(
        "--speedscope", metavar="PATH",
        help="write a speedscope JSON document to PATH",
    )
    args = parser.parse_args(argv)
    try:
        journal = read_journal(args.journal)
    except OSError as exc:
        print(f"repro flame: cannot read {args.journal}: {exc}", file=sys.stderr)
        return 2
    profiles = journal.profiles
    if args.rank is not None:
        profiles = [p for p in profiles if p.get("rank") == args.rank]
    if args.phase:
        profiles = [
            {
                **p,
                "stacks": {
                    ph: stacks
                    for ph, stacks in (p.get("stacks") or {}).items()
                    if ph == args.phase
                },
            }
            for p in profiles
        ]
        profiles = [p for p in profiles if any(p["stacks"].values())]
    if not profiles:
        print(
            f"repro flame: {args.journal} holds no matching profiles "
            "(was the job launched with --trace and --profile?)",
            file=sys.stderr,
        )
        return 2
    for profile in profiles:
        rank = profile.get("rank", -1)
        epoch = profile.get("epoch", 0)
        samples = profile.get("samples", 0)
        hz = profile.get("hz", 0.0)
        label = f"rank {rank}" + (f" (epoch {epoch})" if epoch else "")
        print(f"{label}: {samples} samples @ {hz:g} Hz")
        by_phase: dict[str, int] = {}
        flat: list[tuple[int, str, str]] = []
        for phase, stacks in (profile.get("stacks") or {}).items():
            for stack, count in stacks.items():
                by_phase[phase] = by_phase.get(phase, 0) + count
                flat.append((count, phase, stack))
        total = sum(by_phase.values()) or 1
        phase_bits = "  ".join(
            f"{phase}={100.0 * n / total:.0f}%"
            for phase, n in sorted(by_phase.items(), key=lambda kv: -kv[1])
        )
        print(f"  phases: {phase_bits}")
        for count, phase, stack in sorted(flat, reverse=True)[: args.top]:
            leaf = stack.rsplit(";", 1)[-1]
            print(f"  {100.0 * count / total:5.1f}%  [{phase}] {leaf}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(profiler_mod.to_collapsed(profiles))
        print(f"collapsed stacks written to {args.out}")
    if args.speedscope:
        doc = profiler_mod.to_speedscope(
            profiles, name=journal.meta.get("job", "datampi")
        )
        with open(args.speedscope, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        print(f"speedscope profile written to {args.speedscope}")
    return 0


def doctor_main(argv: list[str]) -> int:
    """``repro doctor <target>`` — straggler/stall diagnosis report."""
    import argparse
    import os

    from repro.common.errors import RPCError
    from repro.obs.doctor import render_report
    from repro.rpc import SocketRpcClient

    parser = argparse.ArgumentParser(
        prog="repro doctor",
        description="Show the diagnosis engine's report: a written "
        "doctor.json, or live from a running job launched with --doctor "
        "(give it the --telemetry endpoint).",
    )
    parser.add_argument(
        "target",
        help="a doctor.json file, or a live endpoint (endpoint file "
        "written by --telemetry=FILE, host:port, or AF_UNIX socket path)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the raw report JSON"
    )
    parser.add_argument(
        "--capture", action="store_true",
        help="live endpoints only: trigger an all-rank stack capture "
        "before fetching the report",
    )
    parser.add_argument(
        "--out", metavar="PATH", help="also write the report JSON to PATH"
    )
    args = parser.parse_args(argv)

    report: dict | None = None
    if os.path.isfile(args.target):
        with open(args.target, encoding="utf-8") as f:
            try:
                doc = json.load(f)
            except ValueError as exc:
                print(f"repro doctor: {args.target} is not JSON: {exc}",
                      file=sys.stderr)
                return 2
        if isinstance(doc, dict) and "findings" in doc:
            report = doc  # a written doctor.json
        # otherwise fall through: an endpoint file also parses as JSON

    if report is None:
        try:
            address = _resolve_telemetry_endpoint(args.target)
        except DataMPIError as exc:
            print(f"repro doctor: {exc}", file=sys.stderr)
            return 2
        try:
            client = SocketRpcClient(address, timeout=10.0)
        except OSError as exc:
            print(f"repro doctor: cannot connect to {address!r}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            if args.capture:
                client.call("doctor_capture")
            report = client.call("doctor_report")
        except RPCError as exc:
            if "no such RPC method" in str(exc):
                print(
                    "repro doctor: this job has no diagnosis engine "
                    "(launch it with --doctor)",
                    file=sys.stderr,
                )
            else:
                print(f"repro doctor: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"repro doctor: endpoint gone ({exc})", file=sys.stderr)
            return 2
        finally:
            client.close()

    if args.json:
        print(json.dumps(report, indent=2, default=repr, sort_keys=True))
    else:
        print(render_report(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, default=repr, sort_keys=True)
            f.write("\n")
        print(f"doctor report written to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("available classnames:", ", ".join(sorted(APPLICATIONS)))
        return 0
    if argv[0] == "trace":
        return trace_main(argv[1:])
    if argv[0] == "top":
        return top_main(argv[1:])
    if argv[0] == "flame":
        return flame_main(argv[1:])
    if argv[0] == "doctor":
        return doctor_main(argv[1:])
    try:
        argv, conf, metrics_json = _extract_obs_flags(argv)
        options = parse_mpidrun_command("mpidrun " + " ".join(argv))
    except DataMPIError as exc:
        print(f"mpidrun: {exc}", file=sys.stderr)
        return 2
    options["conf"] = conf
    classname = options["classname"]
    if classname not in APPLICATIONS:
        print(
            f"mpidrun: unknown classname {classname!r}; available: "
            f"{', '.join(sorted(APPLICATIONS))}",
            file=sys.stderr,
        )
        return 2
    result = APPLICATIONS[classname](options, options["params"])
    print(
        f"\njob {result.name}: success={result.success} "
        f"records={result.metrics.records_sent} "
        f"A-locality={result.a_data_locality:.0%} "
        f"wall={result.metrics.duration:.2f}s"
    )
    if result.trace_path:
        print(f"trace journal: {result.trace_path}")
    if result.doctor_path:
        findings = len((result.doctor or {}).get("findings") or [])
        print(
            f"doctor report: {result.doctor_path} "
            f"({findings} finding(s); inspect with `repro doctor`)"
        )
    if metrics_json:
        _write_metrics_json(result, metrics_json)
    return 0 if result.success else 1


def console_main() -> None:  # pragma: no cover - thin wrapper
    raise SystemExit(main())


if __name__ == "__main__":
    raise SystemExit(main())
