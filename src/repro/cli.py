"""The ``mpidrun`` command-line launcher (paper §IV-B).

The paper launches DataMPI applications as::

    $ mpidrun -f hostfile -O n -A m -M mode -jar jarname classname params

This module provides that interface as a console script (and
``python -m repro.cli``): the ``-jar``/classname pair selects one of the
bundled demo applications, which run over synthetic inputs so the
command works out of the box::

    $ mpidrun -O 4 -A 2 -M common -jar demos.jar Sort 200
    $ mpidrun -O 4 -A 2 -M mapreduce -jar demos.jar WordCount 300
    $ mpidrun -O 2 -A 3 -M streaming -jar demos.jar TopK 2000 5
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Callable

from repro.common.errors import DataMPIError
from repro.core import DataMPIJob, Mode, mpidrun
from repro.core.metrics import JobResult
from repro.core.mpidrun import parse_mpidrun_command


def _run_sort(options: dict, params: list[str]) -> JobResult:
    n = int(params[0]) if params else 200
    outputs: dict[int, list[str]] = {}
    lock = threading.Lock()

    def o_fn(ctx):
        for i in range(ctx.rank, n, ctx.o_size):
            ctx.send(f"key-{i:06d}", "")

    def a_fn(ctx):
        got = [k for k, _ in ctx.recv_iter()]
        with lock:
            outputs[ctx.rank] = got

    result = _launch(options, o_fn, a_fn)
    total = sum(len(v) for v in outputs.values())
    print(f"sorted {total} keys across {len(outputs)} partitions")
    for rank in sorted(outputs):
        keys = outputs[rank]
        head = keys[0] if keys else "-"
        tail = keys[-1] if keys else "-"
        print(f"  partition {rank}: {len(keys)} keys [{head} .. {tail}]")
    return result


def _run_wordcount(options: dict, params: list[str]) -> JobResult:
    from repro.workloads.wordcount import generate_text, wordcount_reference

    n_lines = int(params[0]) if params else 200
    lines = generate_text(n_lines)
    counts: dict[str, int] = {}
    lock = threading.Lock()

    def o_fn(ctx):
        for i in range(ctx.rank, len(lines), ctx.o_size):
            for word in lines[i].split():
                ctx.send(word, 1)

    def a_fn(ctx):
        from repro.core.sorter import group_by_key

        for word, ones in group_by_key(ctx.recv_iter()):
            with lock:
                counts[word] = sum(ones)

    result = _launch(options, o_fn, a_fn)
    assert counts == wordcount_reference(lines)
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print(f"counted {sum(counts.values())} words, {len(counts)} distinct")
    for word, count in top:
        print(f"  {word}: {count}")
    return result


def _run_topk(options: dict, params: list[str]) -> JobResult:
    from repro.workloads.topk import generate_stream, merge_topk, topk_reference
    import heapq

    n_events = int(params[0]) if params else 2000
    k = int(params[1]) if len(params) > 1 else 5
    words = generate_stream(n_events)
    partials: list[tuple[str, int]] = []
    lock = threading.Lock()

    def o_fn(ctx):
        for i in range(ctx.rank, len(words), ctx.o_size):
            ctx.send(words[i], 1)

    def a_fn(ctx):
        local: dict[str, int] = {}
        for word, _ in ctx.recv_iter():
            local[word] = local.get(word, 0) + 1
        top = heapq.nsmallest(k, local.items(), key=lambda kv: (-kv[1], kv[0]))
        with lock:
            partials.extend(top)

    result = _launch(options, o_fn, a_fn)
    top = merge_topk(partials, k)
    assert top == topk_reference(words, k)
    print(f"top-{k} of {n_events} streamed events:")
    for word, count in top:
        print(f"  {word}: {count}")
    return result


def _launch(options: dict, o_fn: Callable, a_fn: Callable) -> JobResult:
    job = DataMPIJob(
        name=options["classname"] or "job",
        o_fn=o_fn,
        a_fn=a_fn,
        o_tasks=options["o_tasks"],
        a_tasks=options["a_tasks"],
        mode=options["mode"],
    )
    result = mpidrun(job, raise_on_error=True)
    return result


#: classname -> runner; names mirror the paper's benchmark programs
APPLICATIONS: dict[str, Callable[[dict, list[str]], JobResult]] = {
    "Sort": _run_sort,
    "WordCount": _run_wordcount,
    "TopK": _run_topk,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("available classnames:", ", ".join(sorted(APPLICATIONS)))
        return 0
    command = "mpidrun " + " ".join(argv)
    try:
        options = parse_mpidrun_command(command)
    except DataMPIError as exc:
        print(f"mpidrun: {exc}", file=sys.stderr)
        return 2
    classname = options["classname"]
    if classname not in APPLICATIONS:
        print(
            f"mpidrun: unknown classname {classname!r}; available: "
            f"{', '.join(sorted(APPLICATIONS))}",
            file=sys.stderr,
        )
        return 2
    result = APPLICATIONS[classname](options, options["params"])
    print(
        f"\njob {result.name}: success={result.success} "
        f"records={result.metrics.records_sent} "
        f"A-locality={result.a_data_locality:.0%} "
        f"wall={result.metrics.duration:.2f}s"
    )
    return 0 if result.success else 1


def console_main() -> None:  # pragma: no cover - thin wrapper
    raise SystemExit(main())


if __name__ == "__main__":
    raise SystemExit(main())
