"""Deterministic discrete-event simulation of the paper's testbeds.

The evaluation (§V) ran on 17- and 65-node clusters moving hundreds of
gigabytes; that cannot be *measured* in this environment, so this package
rebuilds both frameworks' execution pipelines over simulated hardware:

* :mod:`~repro.simulate.engine` — a generator-based event simulator
  (virtual clock, deterministic given a seed);
* :mod:`~repro.simulate.resources` — devices with FIFO service (HDD,
  NIC) and counted resources (CPU cores, memory), all with utilization
  accounting;
* :mod:`~repro.simulate.cluster` — node/cluster specs for Testbed A
  (17 nodes, 16 cores, 64 GB, 1 HDD, 1GigE) and Testbed B (65 nodes);
* :mod:`~repro.simulate.hadoop_model` / :mod:`~repro.simulate.datampi_model`
  — the two frameworks' task pipelines (map spill/merge + pull shuffle
  vs O-side pipelined push shuffle + data-local A tasks);
* :mod:`~repro.simulate.iteration_model`, :mod:`~repro.simulate.streaming_model`
  — PageRank/K-means rounds and Top-K latency distributions.

Performance differences *emerge* from the modelled mechanisms (disk
contention from map-output spills, shuffle serialization, reduce-side
remote reads), not from per-figure constants; the calibration module
holds only hardware-level numbers.
"""

from repro.simulate.cluster import TESTBED_A, TESTBED_B, ClusterSpec, SimCluster
from repro.simulate.datampi_model import simulate_datampi_job
from repro.simulate.engine import Simulator
from repro.simulate.hadoop_model import simulate_hadoop_job
from repro.simulate.report import SimJobReport

__all__ = [
    "Simulator",
    "ClusterSpec",
    "SimCluster",
    "TESTBED_A",
    "TESTBED_B",
    "simulate_hadoop_job",
    "simulate_datampi_job",
    "SimJobReport",
]
