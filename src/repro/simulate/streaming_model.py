"""Streaming latency model: Top-K on S4 vs DataMPI Streaming (Fig 10c).

The paper drives both systems at 1 K msg/sec (100 B messages) and plots
the distribution of end-to-end processing latencies: DataMPI's fall in
0.5–4 s, S4's in 1.5–12 s.

At these rates neither system is bandwidth-bound; the seconds-scale
latencies come from *software pauses* — JVM garbage collection stalls
and batch/window flushing.  The model is a single-server queue per
system with:

* a deterministic per-event service time,
* a delivery window (results surface at flush boundaries), and
* periodic GC pauses during which the server stops and the queue grows;
  the post-pause backlog drain produces the latency tail.

S4 allocates one event object per message per PE hop (two hops for
Top-K), so it pauses longer and more often than DataMPI's pooled
buffers — that asymmetry *is* the distribution gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.stats import histogram


@dataclass(frozen=True)
class StreamingSystemModel:
    """Queueing+pause parameters of one streaming system."""

    name: str
    service_time: float       # seconds per event through the pipeline
    window: float             # result flush interval (uniform wait 0..window)
    gc_interval: float        # seconds between collection pauses
    gc_duration: float        # pause length
    pipeline_base: float      # fixed pipeline depth (hops, serde, transport)


#: S4 v0.5: per-event keyed-PE dispatch, heavy object churn, two PE hops
#: (counter -> aggregator).  Effective capacity must exceed the arrival
#: rate or the queue is unstable: 1/0.4ms * (8/12 duty cycle) ~ 1.7x.
S4_MODEL = StreamingSystemModel(
    name="S4",
    service_time=0.4e-3,
    window=1.6,
    gc_interval=15.0,
    gc_duration=6.0,
    pipeline_base=1.3,
)

#: DataMPI Streaming: pooled partition buffers, one hop, light GC.
DATAMPI_MODEL = StreamingSystemModel(
    name="DataMPI",
    service_time=0.35e-3,
    window=0.9,
    gc_interval=20.0,
    gc_duration=2.0,
    pipeline_base=0.45,
)


def simulate_stream_latencies(
    model: StreamingSystemModel,
    rate_per_sec: float = 1000.0,
    duration: float = 120.0,
    seed: int = 97,
) -> np.ndarray:
    """Per-event end-to-end latencies (seconds) for one run.

    Single-server queue with Poisson arrivals; the server is unavailable
    during GC pauses.  Delivery adds a uniform window wait.
    """
    rng = np.random.default_rng(seed)
    n = int(rate_per_sec * duration)
    arrivals = np.cumsum(rng.exponential(1.0 / rate_per_sec, size=n))
    # precompute pause intervals covering the horizon (plus drain slack)
    horizon = duration * 1.5
    pause_starts = np.arange(model.gc_interval, horizon, model.gc_interval)
    departures = np.empty(n)
    server_free = 0.0
    pause_idx = 0
    for i in range(n):
        start = max(arrivals[i], server_free)
        # roll the clock past any pauses that begin before we can serve
        while pause_idx < len(pause_starts) and pause_starts[pause_idx] <= start:
            pause_end = pause_starts[pause_idx] + model.gc_duration
            if start < pause_end:
                start = pause_end
            pause_idx += 1
        departures[i] = start + model.service_time
        server_free = departures[i]
    window_wait = rng.uniform(0.0, model.window, size=n)
    return departures - arrivals + window_wait + model.pipeline_base


def latency_distribution(
    latencies: np.ndarray, edges: list[float] | None = None
) -> list[tuple[float, float, float]]:
    """The Fig 10(c) histogram: distribution ratio per 1-second bucket."""
    edges = edges or [0.0] + [float(b) for b in range(1, 13)]
    return histogram(latencies.tolist(), edges)


def topk_comparison(
    rate_per_sec: float = 1000.0, duration: float = 120.0, seed: int = 97
) -> dict[str, np.ndarray]:
    return {
        "S4": simulate_stream_latencies(S4_MODEL, rate_per_sec, duration, seed),
        "DataMPI": simulate_stream_latencies(
            DATAMPI_MODEL, rate_per_sec, duration, seed
        ),
    }
