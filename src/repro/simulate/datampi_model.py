"""Simulated DataMPI execution (§IV-B/C/D mechanisms).

* persistent working processes (tiny task-startup cost, one-time job
  launch);
* **O-side pipelined shuffle**: map compute proceeds chunk by chunk, and
  each chunk's partitions are pushed over MPI *while the next chunk
  computes* — communication fully overlapped, no map-output disk write;
* receive side caches intermediate data in memory, spilling only the
  configured fraction (Fig 12's knob);
* **data-centric A scheduling**: every A task runs where its partition
  already is — its only disk traffic is reading back any spilled
  fraction and writing the job output;
* optional key-value checkpointing (§IV-E): every emitted byte is also
  written locally during the O phase; recovery replays it from disk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator

from repro.common.units import MiB
from repro.simulate.cluster import SimCluster
from repro.simulate.engine import Event
from repro.simulate.profiler import ResourceProfiler
from repro.simulate.profiles import (
    DATAMPI_CONSTANTS,
    HDFS_OPEN_COST,
    PIPELINE_CHUNK,
    WorkloadProfile,
)
from repro.simulate.report import SimJobReport

#: resident set of the DataMPI working processes per node (JVM heap +
#: direct buffers for the partition lists)
_PROCESS_BYTES = 2.4e9
_DAEMON_BYTES = 1.6e9
#: transient SPL/send-queue buffering as a fraction of intermediate data
_SEND_BUFFER_RATIO = 0.3
#: fraction of node RAM the worker heaps may devote to cached
#: intermediate data; beyond it blocks spill even at cache_fraction=1
#: (the Figure 8(b) high-concurrency penalty)
_CACHE_RAM_FRACTION = 0.17


@dataclass
class DataMPISimParams:
    """One simulated DataMPI job."""

    profile: WorkloadProfile
    data_bytes: float
    block_size: float
    num_a_tasks: int
    #: fraction of intermediate data cached in memory (Fig 12; 1.0 default)
    cache_fraction: float = 1.0
    #: enable the key-value library-level checkpoint (Fig 13)
    ft_enabled: bool = False
    #: input already resident in process memory (Iteration rounds > 0):
    #: skip the HDFS read entirely
    resident_input: bool = False
    #: ablation: disable data-centric A scheduling -- A tasks land on
    #: arbitrary nodes and must pull their partition over the network,
    #: like Hadoop reducers (§IV-B's counterfactual)
    data_local_a: bool = True
    #: ablation: disable the O-side pipeline -- each chunk's send blocks
    #: the computation instead of overlapping with it (§IV-C's
    #: counterfactual)
    pipelined_shuffle: bool = True
    name: str = "job"
    constants: "object" = field(default=DATAMPI_CONSTANTS)


def simulate_datampi_job(
    cluster: SimCluster, params: DataMPISimParams, profile_resources: bool = True
) -> SimJobReport:
    sim = cluster.sim
    report = SimJobReport(params.name, "DataMPI")
    job = _DataMPIJobSim(cluster, params, report)
    done = sim.process(job.run())
    if profile_resources:
        ResourceProfiler(cluster, report, until=done)
    sim.run()
    assert done.triggered
    return report


class _DataMPIJobSim:
    def __init__(
        self, cluster: SimCluster, params: DataMPISimParams, report: SimJobReport
    ) -> None:
        self.cluster = cluster
        self.params = params
        self.report = report
        self.sim = cluster.sim
        self.consts = params.constants
        self.num_o_tasks = max(1, math.ceil(params.data_bytes / params.block_size))
        self.inter_total = params.data_bytes * params.profile.map_output_ratio
        self.o_completed = 0
        self.a_completed = 0
        self._send_events: list[Event] = []
        self._rr_dest = 0
        ram = cluster.spec.node.ram_bytes
        self._cache_budget = [
            params.cache_fraction * _CACHE_RAM_FRACTION * ram
            for _ in range(cluster.num_nodes)
        ]
        self._spilled_by_node = [0.0] * cluster.num_nodes
        from repro.common.stats import TimeSeries

        report.progress["O"] = TimeSeries("O %")
        report.progress["A"] = TimeSeries("A %")

    def _mem_baseline(self) -> float:
        slots = max(self.cluster.spec.map_slots, self.cluster.spec.reduce_slots)
        return _DAEMON_BYTES + slots * _PROCESS_BYTES

    def run(self) -> Generator:
        sim = self.sim
        for node in self.cluster.nodes:
            node.mem.allocate(self._mem_baseline())
        yield sim.timeout(self.consts.job_overhead / 2)
        o_start = sim.now
        # ---- O phase: per-node queues, slot-limited, pipelined sends -----------
        per_node: dict[int, list[int]] = {}
        for task in range(self.num_o_tasks):
            per_node.setdefault(task % self.cluster.num_nodes, []).append(task)
        workers = []
        for node_idx, queue in per_node.items():
            for slot in range(self.cluster.spec.map_slots):
                tasks = queue[slot :: self.cluster.spec.map_slots]
                if tasks:
                    workers.append(sim.process(self._o_worker(node_idx, tasks)))
        # SPL / send-queue working buffers live for the O phase
        send_buffer = self.inter_total * _SEND_BUFFER_RATIO / self.cluster.num_nodes
        for node in self.cluster.nodes:
            node.mem.allocate(send_buffer)
        yield sim.all_of(workers)
        # the pipeline drains: wait for in-flight sends
        if self._send_events:
            yield sim.all_of(self._send_events)
        for node in self.cluster.nodes:
            node.mem.release(send_buffer)
        o_end = sim.now
        self.report.phases["O"] = (o_start, o_end)

        # ---- A phase: data-local tasks on every node -----------------------------
        a_start = sim.now
        per_node_bytes = self.inter_total / self.cluster.num_nodes
        a_per_node = max(1, self.params.num_a_tasks // self.cluster.num_nodes)
        a_workers = []
        for node_idx in range(self.cluster.num_nodes):
            a_workers.append(
                sim.process(self._a_worker(node_idx, a_per_node, per_node_bytes))
            )
        yield sim.all_of(a_workers)
        yield sim.timeout(self.consts.job_overhead / 2)
        self.report.phases["A"] = (a_start, sim.now)
        self.report.duration = sim.now
        for node in self.cluster.nodes:
            node.mem.release(self._mem_baseline())

    # -- O side ---------------------------------------------------------------------------
    def _o_worker(self, node_idx: int, tasks: list[int]) -> Generator:
        sim = self.sim
        node = self.cluster.nodes[node_idx]
        profile = self.params.profile
        for task in tasks:
            block = min(
                self.params.block_size,
                self.params.data_bytes - task * self.params.block_size,
            )
            open_cost = 0.0 if self.params.resident_input else HDFS_OPEN_COST
            yield sim.timeout(self.consts.task_startup + open_cost)
            remaining = block
            while remaining > 0:
                chunk = min(PIPELINE_CHUNK, remaining)
                remaining -= chunk
                # read and compute this chunk (prefetched: overlapped)...
                out = chunk * profile.map_output_ratio
                cpu_s = (
                    (chunk / MiB)
                    * profile.cpu_map_s_per_mb
                    * self.consts.cpu_factor_map
                    + (out / MiB) * self.consts.shuffle_cpu_s_per_mb
                )
                pending = [node.cpu.compute(cpu_s)]
                if not self.params.resident_input:
                    pending.append(node.disk.read(chunk))
                yield sim.all_of(pending)
                # ...while its output ships asynchronously (the O-side
                # pipeline: computation/copy/merge overlapped, §IV-C)
                if out > 0:
                    ship = sim.process(self._ship(node_idx, out))
                    if self.params.pipelined_shuffle:
                        self._send_events.append(ship)
                    else:
                        yield ship  # ablation: communication on the critical path
                if self.params.ft_enabled and out > 0:
                    # checkpoint: emitted pairs also persisted locally
                    self._send_events.append(self._ckpt(node, out))
            self.o_completed += 1
            self.report.progress["O"].add(sim.now, self.o_completed / self.num_o_tasks)

    def _ckpt(self, node, nbytes: float) -> Event:
        return node.disk.write(nbytes)

    def _ship(self, src_idx: int, nbytes: float) -> Generator:
        """Push one sealed chunk's partitions to their owners."""
        sim = self.sim
        src = self.cluster.nodes[src_idx]
        n = self.cluster.num_nodes
        # partitions spread uniformly; 1/n stays local and skips the NIC
        remote = nbytes * (n - 1) / n
        dst_idx = self._rr_dest = (self._rr_dest + 1) % n
        dst = self.cluster.nodes[dst_idx]
        if remote > 0:
            out_done = src.nic_out.transfer(remote)
            in_done = dst.nic_in.transfer(remote)
            yield sim.all_of([out_done, in_done])
        # receiver caches in memory up to the node's cache budget; the
        # rest spills to disk (Fig 12 knob and Fig 8b memory pressure)
        cached = min(nbytes, max(0.0, self._cache_budget[dst_idx]))
        self._cache_budget[dst_idx] -= cached
        dst.mem.allocate(cached)
        spill = nbytes - cached
        if spill > 0:
            self._spilled_by_node[dst_idx] += spill
            yield dst.disk.write(spill)

    # -- A side ------------------------------------------------------------------------------
    def _a_worker(
        self, node_idx: int, num_tasks: int, node_bytes: float
    ) -> Generator:
        sim = self.sim
        node = self.cluster.nodes[node_idx]
        profile = self.params.profile
        per_task = node_bytes / num_tasks
        spilled_per_task = self._spilled_by_node[node_idx] / num_tasks
        slots = self.cluster.spec.reduce_slots
        waves = math.ceil(num_tasks / slots)
        for wave in range(waves):
            in_wave = min(slots, num_tasks - wave * slots)
            tasks = [
                sim.process(self._a_task(node, per_task, spilled_per_task))
                for _ in range(in_wave)
            ]
            yield sim.all_of(tasks)

    def _a_task(self, node, task_bytes: float, spilled_bytes: float) -> Generator:
        sim = self.sim
        profile = self.params.profile
        yield sim.timeout(self.consts.task_startup)
        if not self.params.data_local_a:
            # ablation: the partition lives on another node -- pull it over
            # the network first (remote read of the cached+spilled bytes)
            n = self.cluster.num_nodes
            src = self.cluster.nodes[(node.node_id + 1) % n]
            remote = task_bytes * (n - 1) / n
            if spilled_bytes > 0:
                yield src.disk.read(spilled_bytes * (n - 1) / n)
            out_done = src.nic_out.transfer(remote)
            in_done = node.nic_in.transfer(remote)
            yield sim.all_of([out_done, in_done])
            spilled_bytes = 0.0  # already fetched; no local prefetch left
        cpu_s = (task_bytes / MiB) * profile.cpu_reduce_s_per_mb * self.consts.cpu_factor_reduce
        # any spilled fraction is prefetched "at the initial stage of the A
        # phase" (§V-E) — overlapped with the reduce computation, which is
        # why zero-caching costs only a few percent (Fig 12)
        pending = [node.cpu.compute(cpu_s)]
        if spilled_bytes > 0:
            pending.append(node.disk.read(spilled_bytes))
        yield sim.all_of(pending)
        yield node.disk.write(task_bytes * profile.reduce_output_ratio)
        node.mem.release(max(0.0, task_bytes - spilled_bytes))
        self.a_completed += 1
        self.report.progress["A"].add(
            sim.now, self.a_completed / max(1, self.params.num_a_tasks)
        )
