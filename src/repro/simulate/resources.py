"""Simulated hardware resources with utilization accounting.

* :class:`Device` — FIFO-served rate device (an HDD, a NIC direction):
  one transfer at a time at a fixed byte rate, queueing behind earlier
  transfers.  Serialization *is* the contention model: a disk doing map
  spills makes concurrent input reads slow, which is precisely how the
  paper's Hadoop map phase loses read bandwidth (Fig 11b).
* :class:`Cores` — a counted CPU resource; compute() holds one core.
* :class:`MemoryGauge` — byte counter with peak/time-series tracking.

All expose cumulative counters the profiler samples into time series.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from repro.common.errors import SimulationError
from repro.simulate.engine import Event, Simulator


class Device:
    """A FIFO rate-server (disk or one NIC direction)."""

    def __init__(self, sim: Simulator, rate: float, name: str = "dev") -> None:
        if rate <= 0:
            raise SimulationError(f"device rate must be positive: {name}")
        self.sim = sim
        self.rate = rate
        self.name = name
        #: virtual time at which the device frees up
        self._free_at = 0.0
        self.bytes_transferred = 0.0
        self.busy_time = 0.0

    def transfer(self, nbytes: float) -> Event:
        """Event firing when ``nbytes`` have moved through the device."""
        start = max(self.sim.now, self._free_at)
        duration = nbytes / self.rate
        self._free_at = start + duration
        self.bytes_transferred += nbytes
        self.busy_time += duration
        return self.sim.timeout(self._free_at - self.sim.now)

    def utilization(self, window: float) -> float:
        """Fraction of ``window`` the device has been busy (cumulative)."""
        return min(1.0, self.busy_time / window) if window > 0 else 0.0


class Cores:
    """N CPU cores; ``compute(seconds)`` occupies one until done."""

    def __init__(self, sim: Simulator, n: int, name: str = "cpu") -> None:
        if n < 1:
            raise SimulationError("need at least one core")
        self.sim = sim
        self.n = n
        self.name = name
        self.busy = 0
        self._waiters: deque[tuple[float, Event]] = deque()
        self.core_seconds = 0.0

    def compute(self, seconds: float) -> Event:
        """Event firing when the work completes (after core acquisition)."""
        done = self.sim.event()
        if self.busy < self.n:
            self._start(seconds, done)
        else:
            self._waiters.append((seconds, done))
        return done

    def _start(self, seconds: float, done: Event) -> None:
        self.busy += 1
        self.core_seconds += seconds

        def work() -> Generator:
            yield self.sim.timeout(seconds)
            self.busy -= 1
            if self._waiters:
                next_seconds, next_done = self._waiters.popleft()
                self._start(next_seconds, next_done)
            done.succeed()

        self.sim.process(work())

    @property
    def utilization_now(self) -> float:
        return self.busy / self.n


class MemoryGauge:
    """Tracks allocated bytes; never blocks (RAM exhaustion is modelled
    upstream by spill decisions, as in the real systems)."""

    def __init__(self, capacity: float, name: str = "mem") -> None:
        self.capacity = capacity
        self.name = name
        self.used = 0.0
        self.peak = 0.0

    def allocate(self, nbytes: float) -> None:
        self.used += nbytes
        self.peak = max(self.peak, self.used)

    def release(self, nbytes: float) -> None:
        self.used = max(0.0, self.used - nbytes)

    @property
    def available(self) -> float:
        return max(0.0, self.capacity - self.used)
